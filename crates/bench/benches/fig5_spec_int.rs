//! Criterion bench for Figure 5: each SPEC-INT-like kernel under the
//! Execution Layer vs native Itanium. The measured quantity is host
//! time of the simulation; the *reported* figure (printed once per
//! kernel) is the simulated-cycle ratio, which is what the paper plots.

use bench::run_el;
use btgeneric::engine::Config;
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::harness::run_native;

fn cfg() -> Config {
    Config {
        heat_threshold: 256,
        hot_candidates: 2,
        ..Config::default()
    }
}

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    println!(
        "NOTE: bench scales are 1/50th of the canonical runs; translation \
         overhead dominates at this length. Use `figures fig5` for the \
         full-scale Figure 5 numbers."
    );
    for w in workloads::spec_int() {
        let scale = (w.scale / 50).max(256);
        let el = run_el(&w, scale, cfg());
        let native = run_native(&w, scale, cfg().timing);
        println!(
            "fig5 {}: relative = {:.1}% (EL {} cy, native {} cy)",
            w.name,
            native.cycles as f64 * 100.0 / el.cycles as f64,
            el.cycles,
            native.cycles
        );
        group.bench_function(format!("el/{}", w.name), |b| {
            b.iter(|| run_el(&w, scale, cfg()).cycles)
        });
        group.bench_function(format!("native/{}", w.name), |b| {
            b.iter(|| run_native(&w, scale, cfg().timing).cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
