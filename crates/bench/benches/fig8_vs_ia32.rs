//! Criterion bench for Figure 8: the Execution Layer on the Itanium
//! model vs the same binaries on the IA-32 ("Xeon") model, for the INT,
//! FP, and Sysmark composites.

use bench::run_el;
use btgeneric::engine::Config;
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::harness::run_ia32_hw;

fn cfg() -> Config {
    let mut c = Config {
        heat_threshold: 256,
        hot_candidates: 2,
        ..Config::default()
    };
    c.timing.clock_mhz = 1500;
    c
}

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    let ia32_t = ia32::timing::Timing {
        clock_mhz: 1600,
        ..ia32::timing::Timing::default()
    };
    let suites = [
        ("int", workloads::spec_int()),
        ("fp", workloads::spec_fp()),
        ("sysmark", vec![workloads::sysmark()]),
    ];
    for (name, suite) in suites {
        let w = &suite[0];
        let scale = (w.scale / 50).max(256);
        group.bench_function(format!("el/{name}"), |b| {
            b.iter(|| run_el(w, scale, cfg()).cycles)
        });
        group.bench_function(format!("ia32/{name}"), |b| {
            b.iter(|| run_ia32_hw(w, scale, ia32_t).cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
