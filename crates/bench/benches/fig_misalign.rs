//! Criterion bench for the in-text misalignment experiment (1236 s ->
//! 133 s): the misalignment-heavy workload with avoidance off vs on.

use bench::run_el;
use btgeneric::engine::Config;
use criterion::{criterion_group, criterion_main, Criterion};

fn misalign(c: &mut Criterion) {
    let mut group = c.benchmark_group("misalign");
    group.sample_size(10);
    println!(
        "NOTE: short-scale run (1/50th); see `figures misalign` for the \
         canonical speedup."
    );
    let w = workloads::misalign_heavy();
    let scale = (w.scale / 50).max(256);
    let mut off = Config::default();
    off.enable_misalign_avoidance = false;
    let without = run_el(&w, scale, off).cycles;
    let with = run_el(&w, scale, Config::default()).cycles;
    println!(
        "misalign avoidance speedup: {:.2}x ({} -> {} cycles; paper ~9.3x)",
        without as f64 / with as f64,
        without,
        with
    );
    group.bench_function("avoidance_off", |b| {
        b.iter(|| run_el(&w, scale, off).cycles)
    });
    group.bench_function("avoidance_on", |b| {
        b.iter(|| run_el(&w, scale, Config::default()).cycles)
    });
    group.finish();
}

criterion_group!(benches, misalign);
criterion_main!(benches);
