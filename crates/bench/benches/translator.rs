//! Translator micro-benchmarks and ablations: cold translation
//! throughput, hot promotion cost, and the EFlags-liveness / fusion /
//! FP-speculation ablation knobs DESIGN.md calls out.

use bench::run_el;
use btgeneric::engine::Config;
use criterion::{criterion_group, criterion_main, Criterion};

fn base_cfg() -> Config {
    Config {
        heat_threshold: 256,
        hot_candidates: 2,
        ..Config::default()
    }
}

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    println!(
        "NOTE: at bench scale (1/50th) one-time translation overhead \
         dominates, so `no_hot` can beat the baseline here; the full-scale \
         `figures` runs show the steady-state ordering."
    );
    let w = &workloads::spec_int()[0]; // gzip
    let scale = (w.scale / 50).max(512);

    let knobs: [(&str, fn(&mut Config)); 5] = [
        ("baseline", |_| {}),
        ("no_flag_liveness", |c| c.enable_flag_liveness = false),
        ("no_fusion", |c| c.enable_fusion = false),
        ("no_hot", |c| c.enable_hot = false),
        ("no_fp_spec", |c| c.enable_fp_spec = false),
    ];
    for (name, tweak) in knobs {
        let mut cfg = base_cfg();
        tweak(&mut cfg);
        let cycles = run_el(w, scale, cfg).cycles;
        println!("ablation {name}: {cycles} simulated cycles");
        group.bench_function(name, |b| b.iter(|| run_el(w, scale, cfg).cycles));
    }
    group.finish();
}

fn fp_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp_ablations");
    group.sample_size(10);
    let w = &workloads::spec_fp()[1]; // poly: fxch-heavy
    let scale = (w.scale / 50).max(512);
    for (name, spec) in [("fp_spec_on", true), ("fp_spec_off", false)] {
        let mut cfg = base_cfg();
        cfg.enable_fp_spec = spec;
        let cycles = run_el(w, scale, cfg).cycles;
        println!("fp ablation {name}: {cycles} simulated cycles");
        group.bench_function(name, |b| b.iter(|| run_el(w, scale, cfg).cycles));
    }
    group.finish();
}

criterion_group!(benches, ablations, fp_ablation);
criterion_main!(benches);
