//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! figures [fig5|fig6|fig7|fig8|table1|hot_vs_cold|misalign|paper_stats|cache|indirect|ir|chaos|hostile|trace|warmstart|serving|all]
//!         [--fast] [--seed=N]
//! ```
//!
//! `--fast` divides iteration counts by 20 (useful in debug builds).
//! `--seed=N` seeds the `chaos` fault-injection storm (default 1).

use bench::{
    cache_pressure, chaos_storm, figure5, figure6, figure7, figure8, hostile_suite, hot_vs_cold,
    indirect_pressure, indirect_pressure_with, misalign_speedup, paper_stats, serving, templates,
    trace_overhead, trace_run, warm_start,
};
use btgeneric::engine::Config;
use btgeneric::trace::TraceConfig;

fn hot_cfg() -> Config {
    // Full runs reach the heating threshold naturally; the published
    // figures ran minutes of real workload, so scale the threshold with
    // our shorter runs.
    Config {
        heat_threshold: 256,
        hot_candidates: 2,
        ..Config::default()
    }
}

fn print_fig5(div: u32) {
    println!("== Figure 5: SPEC CPU2000 INT, IA-32 EL relative to native Itanium ==");
    println!("(native = 100%, higher is better; paper: gzip 86, vpr 69, gcc 51, mcf 104,");
    println!(" crafty 39, parser 81, eon 41, perlbmk 64, gap 62, vortex 60, bzip2 74,");
    println!(" twolf 76, GeoMean 65)");
    let (rows, geomean) = figure5(hot_cfg(), div);
    for r in &rows {
        println!(
            "  {:<8} {:>6.1}%   (EL {:>12} cy, native {:>12} cy)",
            r.name, r.relative, r.el_cycles, r.native_cycles
        );
    }
    println!("  {:<8} {:>6.1}%", "GeoMean", geomean);
}

fn print_dist(name: &str, d: &btgeneric::stats::TimeDistribution, paper: &str) {
    let (hot, cold, ovh, other, native, idle) = d.percentages();
    println!("== {name} ==");
    println!("(paper: {paper})");
    println!("  hot code  {hot:>5.1}%");
    println!("  cold code {cold:>5.1}%");
    println!("  overhead  {ovh:>5.1}%");
    println!("  other     {other:>5.1}%");
    if native + idle > 0.0 {
        println!("  native/OS {native:>5.1}%");
        println!("  idle      {idle:>5.1}%");
    }
}

fn print_fig8(div: u32) {
    println!("== Figure 8: EL on 1.5GHz Itanium 2 vs 1.6GHz Xeon ==");
    println!("(paper: CPU2000 INT 98.9%, CPU2000 FP 132.6%, Sysmark 2002 105.0%)");
    for r in figure8(hot_cfg(), div) {
        println!(
            "  {:<14} {:>6.1}%   (EL {:.4}s vs IA-32 {:.4}s)",
            r.name, r.relative, r.el_seconds, r.ia32_seconds
        );
    }
}

fn print_table1() {
    println!("== Table 1: push eax — correct vs incorrect state-update order ==");
    println!("  correct:   add r.addr = -4, r.esp ;; st4 [r.addr] = r.eax ;; mov r.esp = r.addr");
    println!("  incorrect: add r.esp = -4, r.esp ;; st4 [r.esp] = r.eax");
    println!("  Our push template stores before updating ESP; the test");
    println!("  `table1_push_does_not_move_esp_on_fault` verifies the fault");
    println!("  leaves ESP unchanged (precise exceptions, paper section 4).");
}

fn print_hot_vs_cold(div: u32) {
    let r = hot_vs_cold(div);
    println!("== In-text: hot-code vs cold-code steady-state performance ==");
    println!("(paper: hot code is ~3x better than cold code)");
    println!("  measured: hot is {r:.2}x better");
}

fn print_misalign(div: u32) {
    let (without, with, speedup) = misalign_speedup(div);
    println!("== In-text: misalignment detection and avoidance ==");
    println!("(paper: one workload went from 1236 s to 133 s, ~9.3x)");
    println!("  without avoidance: {without} cycles");
    println!("  with avoidance:    {with} cycles");
    println!("  speedup:           {speedup:.2}x");
}

fn print_paper_stats(div: u32) {
    let s = paper_stats(div);
    println!("== In-text statistics ==");
    println!(
        "  heated cold blocks:        {:>5.1}%  (paper: 5-10%)",
        s.heated_fraction * 100.0
    );
    println!(
        "  IA-32 insts / cold block:  {:>5.1}   (paper: 4-5)",
        s.cold_block_insts
    );
    println!(
        "  IA-32 insts / hot trace:   {:>5.1}   (paper: ~20)",
        s.hot_trace_insts
    );
    println!(
        "  native insts / commit pt:  {:>5.1}   (paper: ~10)",
        s.insts_per_commit
    );
    println!(
        "  speculation fix events:    {:>5.0}   (paper: 99-100% success)",
        s.spec_fix_per_kilo_entry
    );
    println!(
        "  cold expansion (native/IA-32 inst): {:>4.1}",
        s.cold_expansion
    );
    println!(
        "  hot side exits taken:      {:>5}   (paper: ~6% premature exits)",
        s.side_exits
    );
}

fn print_cache(div: u32) {
    const CAP: usize = 250;
    let cp = cache_pressure(div.max(1) * 20, CAP);
    println!("== Translation-cache management under pressure (cap {CAP} bundles) ==");
    println!("(incremental generation-aware eviction vs. flush-everything GC)");
    println!(
        "  evict: {:>12} cy, {:>6} cold blocks | {}",
        cp.evict.cycles,
        cp.evict.stats.cold_blocks,
        cp.evict.stats.cache_summary()
    );
    println!(
        "  flush: {:>12} cy, {:>6} cold blocks | {}",
        cp.flush.cycles,
        cp.flush.stats.cold_blocks,
        cp.flush.stats.cache_summary()
    );
    println!(
        "  retranslation reduced {:.2}x, total cycles reduced {:.2}x",
        cp.retranslation_ratio(),
        cp.cycle_ratio()
    );
}

fn print_chaos(div: u32, seed: u64) {
    let s = chaos_storm(div.max(1) * 10, seed);
    println!("== Fault injection: deterministic storm, seed {seed} ==");
    println!("(graceful degradation: survive every fault, stay oracle-correct)");
    for r in &s.runs {
        println!(
            "  {:<5} {} / {}  recovery overhead {:.2}x",
            r.name,
            if r.survived { "survived" } else { "DIED" },
            if r.oracle_ok {
                "oracle ok"
            } else {
                "ORACLE MISMATCH"
            },
            r.recovery_overhead
        );
        println!("        {}", r.stats.chaos_summary());
    }
    let by_kind: Vec<String> = s
        .injected_by_kind()
        .iter()
        .map(|(name, n)| format!("{name} {n}"))
        .collect();
    println!(
        "  total faults {} across {} kinds ({})",
        s.total_faults(),
        s.kinds_hit(),
        by_kind.join(", ")
    );
    if !s.survived() || !s.oracle_ok() {
        eprintln!("chaos: a storm run died or diverged from the oracle");
        std::process::exit(1);
    }
}

fn print_indirect(_div: u32) {
    // Always full scale, even under `--fast`: the acceleration's win
    // (and the per-kernel floor below) amortizes one-time translation
    // charges, so short runs measure the wrong regime — and the full
    // run is only seconds.
    let sd = 5;
    let ip = indirect_pressure(sd);
    println!("== Indirect control-transfer acceleration (scale_div {sd}) ==");
    println!("(inline caches + return shadow stack + devirtualized traces + 2-way table,");
    println!(" vs. the same engine with enable_indirect_accel=false)");
    println!(
        "  {:<10} {:>9} {:>9}   {:>12} {:>12} {:>7}",
        "workload", "miss/off", "miss/on", "cycles/off", "cycles/on", "ratio"
    );
    for r in &ip.rows {
        println!(
            "  {:<10} {:>9} {:>9}   {:>12} {:>12} {:>6.3}x",
            r.name,
            r.before.stats.indirect_misses,
            r.after.stats.indirect_misses,
            r.before.cycles,
            r.after.cycles,
            r.before.cycles as f64 / r.after.cycles.max(1) as f64
        );
        println!("             {}", r.after.stats.indirect_summary());
    }
    println!(
        "  IndirectMiss round-trips reduced {:.1}%, cycle geomean {:.3}x",
        ip.miss_reduction() * 100.0,
        ip.cycle_geomean()
    );
    let rows_json: Vec<String> = ip
        .rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"misses_off\": {}, \"misses_on\": {}, \
                 \"cycles_off\": {}, \"cycles_on\": {}, \"ratio\": {:.4}, \
                 \"ic_hits\": {}, \"shadow_hits\": {}, \"demotions\": {}}}",
                r.name,
                r.before.stats.indirect_misses,
                r.after.stats.indirect_misses,
                r.before.cycles,
                r.after.cycles,
                kernel_ratio(r),
                r.after.stats.ic_hits,
                r.after.stats.shadow_hits,
                r.after.stats.indirect_demotions
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale_div\": {sd},\n  \"enable_superinst\": false,\n  \
         \"superinst_floor_checked\": true,\n  \"miss_reduction\": {:.4},\n  \
         \"cycle_geomean\": {:.4},\n  \"rows\": [\n{}\n  ]\n}}\n",
        ip.miss_reduction(),
        ip.cycle_geomean(),
        rows_json.join(",\n")
    );
    match std::fs::write("BENCH_indirect.json", &json) {
        Ok(()) => println!("  wrote BENCH_indirect.json"),
        Err(e) => eprintln!("  could not write BENCH_indirect.json: {e}"),
    }
    if ip.miss_reduction() < 0.20 || ip.cycle_geomean() < 1.05 {
        eprintln!(
            "indirect: acceleration contract violated (need >=20% miss reduction, >=1.05x geomean)"
        );
        std::process::exit(1);
    }
    // The aggregate can hide a single losing kernel (the eon 0.92x
    // regression shipped exactly that way), so each kernel is held to
    // its own floor.
    check_per_kernel_floor(&ip);
    // Same floor with learned superinstructions switched on: idiom
    // fusion must not claw back the indirect win on any kernel.
    println!("  re-checking per-kernel floor with enable_superinst=true ...");
    let ips = indirect_pressure_with(sd, true);
    check_per_kernel_floor(&ips);
}

/// Accel-on speedup of one kernel over the accel-off legacy engine.
fn kernel_ratio(r: &bench::IndirectRow) -> f64 {
    r.before.cycles as f64 / r.after.cycles.max(1) as f64
}

/// Exits nonzero when any kernel regresses below 0.95x of the legacy
/// engine — the per-kernel floor behind BENCH_indirect.json.
fn check_per_kernel_floor(ip: &bench::IndirectPressure) {
    let mut bad = false;
    for r in &ip.rows {
        if kernel_ratio(r) < 0.95 {
            eprintln!(
                "indirect: {} regressed to {:.3}x of legacy (floor 0.95x)",
                r.name,
                kernel_ratio(r)
            );
            bad = true;
        }
    }
    if bad {
        std::process::exit(1);
    }
}

/// The hot-IR smoke gate: reruns the indirect kernels with the typed-IR
/// hot phase explicitly on and holds them to the regression contract
/// that motivated it — every kernel at >= 0.95x of legacy, eon at
/// >= 1.0x with zero demotions, and the IR pipeline actually engaged.
fn print_ir(_div: u32) {
    // Always full scale: the fixed per-trace translation charge only
    // amortizes over long runs, and the eon >= 1.0x contract is a
    // statement about the amortized regime. (The run is seconds.)
    let sd = 5;
    let ip = indirect_pressure(sd);
    println!("== Hot-phase typed IR: per-kernel regression gate (scale_div {sd}) ==");
    println!("(enable_hot_ir on; floor 0.95x per kernel, eon >= 1.0x with zero demotions)");
    let mut bad = false;
    let mut ir_traces = 0;
    for r in &ip.rows {
        let ratio = kernel_ratio(r);
        let demotions = r.after.stats.indirect_demotions;
        ir_traces += r.after.stats.hot_ir_traces;
        println!(
            "  {:<10} {:>6.3}x   (IR traces {}, demotions {})",
            r.name, ratio, r.after.stats.hot_ir_traces, demotions
        );
        if ratio < 0.95 {
            eprintln!("ir: {} below the 0.95x per-kernel floor", r.name);
            bad = true;
        }
        if r.name == "eon" && (ratio < 1.0 || demotions > 0) {
            eprintln!(
                "ir: eon must win outright ({ratio:.3}x, {demotions} demotions) — \
                 demotion papering over the optimizer is the bug this gate pins"
            );
            bad = true;
        }
    }
    println!("  cycle geomean {:.3}x", ip.cycle_geomean());
    if ir_traces == 0 {
        eprintln!("ir: the IR pipeline never compiled a trace");
        bad = true;
    }
    // The same contract with learned superinstructions on: the fused
    // templates ride the IR pipeline, so they are held to the exact
    // floors that pinned the original eon regression.
    println!("  re-checking floors with enable_superinst=true ...");
    let ips = indirect_pressure_with(sd, true);
    for r in &ips.rows {
        let ratio = kernel_ratio(r);
        if ratio < 0.95 {
            eprintln!("ir: {} below the 0.95x floor with superinst on", r.name);
            bad = true;
        }
        if r.name == "eon" && ratio < 1.0 {
            eprintln!("ir: eon must win outright with superinst on ({ratio:.3}x)");
            bad = true;
        }
    }
    if bad {
        std::process::exit(1);
    }
}

/// The hostile-guest acceptance run: three kernels (signal storm,
/// guest JIT, nested handlers) x three seeds under the combined
/// signal + fault storm. Exits nonzero when any trial dies, diverges
/// from the signal-free oracle, fails to replay byte-identically,
/// never gets interrupted, leaks a signal frame, or lets the guest
/// JIT thrash unboundedly.
fn print_hostile(div: u32, seed: u64) {
    // `--fast` shrinks every kernel to the 512-iteration floor.
    let sd = if div > 1 { 200 } else { 20 };
    let hs = hostile_suite(sd, seed);
    println!("== Hostile guests: async signals, SMC storms, re-entrant recovery ==");
    println!(
        "(seeds {seed}..{}, scale_div {sd}; every gate is fatal)",
        seed + 2
    );
    for r in &hs.runs {
        println!(
            "  {:<14} seed {:#x}  {} / {} / {}  overhead {:.2}x",
            r.name,
            r.seed,
            if r.survived { "survived" } else { "DIED" },
            if r.oracle_ok {
                "oracle ok"
            } else {
                "ORACLE MISMATCH"
            },
            if r.deterministic {
                "replayed"
            } else {
                "NONDETERMINISTIC"
            },
            r.recovery_overhead
        );
        println!(
            "        sigreturns {}/{} delivered, {} deferred | {}",
            r.sigreturns,
            r.stats.signals_delivered,
            r.sig_deferrals,
            r.stats.hostile_summary()
        );
    }
    let rows_json: Vec<String> = hs
        .runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"seed\": {}, \"survived\": {}, \
                 \"oracle_ok\": {}, \"deterministic\": {}, \"overhead\": {:.4}, \
                 \"signals_delivered\": {}, \"sigreturns\": {}, \"sig_deferrals\": {}, \
                 \"smc_blacklists\": {}, \"smc_extent_orphans\": {}, \
                 \"smc_extent_keeps\": {}, \"reentrant_recoveries\": {}, \
                 \"recovery_depth_max\": {}}}",
                r.name,
                r.seed,
                r.survived,
                r.oracle_ok,
                r.deterministic,
                r.recovery_overhead,
                r.stats.signals_delivered,
                r.sigreturns,
                r.sig_deferrals,
                r.stats.smc_blacklists,
                r.stats.smc_extent_orphans,
                r.stats.smc_extent_keeps,
                r.stats.reentrant_recoveries,
                r.stats.recovery_depth_max
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale_div\": {sd},\n  \"seed\": {seed},\n  \
         \"signals_delivered\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        hs.signals_delivered(),
        rows_json.join(",\n")
    );
    match std::fs::write("BENCH_hostile.json", &json) {
        Ok(()) => println!("  wrote BENCH_hostile.json"),
        Err(e) => eprintln!("  could not write BENCH_hostile.json: {e}"),
    }
    let mut bad = false;
    if !hs.survived() {
        eprintln!("hostile: a run died");
        bad = true;
    }
    if !hs.oracle_ok() {
        eprintln!("hostile: a run diverged from the signal-free oracle");
        bad = true;
    }
    if !hs.deterministic() {
        eprintln!("hostile: a run failed to replay byte-identically");
        bad = true;
    }
    if hs.signals_delivered() == 0 {
        eprintln!("hostile: the storms never delivered a signal");
        bad = true;
    }
    if !hs.sigreturns_reconciled() {
        eprintln!("hostile: a delivered signal never sigreturned (leaked frame)");
        bad = true;
    }
    if !hs.guest_jit_bounded() {
        eprintln!("hostile: guest_jit governor never tripped or retranslations unbounded");
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
}

fn print_trace(div: u32) {
    let tr = trace_run(div.max(1) * 20, TraceConfig::on());
    println!("== Observability: gcc lifecycle trace ==");
    println!("  {}", tr.summary);
    println!();
    println!("-- top-10 hot paths (by attributed simulated cycles) --");
    print!("{}", tr.hot_path);
    let dir = std::path::Path::new("target/trace");
    match std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(dir.join("gcc.folded"), &tr.collapsed))
        .and_then(|()| std::fs::write(dir.join("gcc.trace.json"), &tr.chrome_json))
    {
        Ok(()) => {
            println!();
            println!(
                "  wrote {} (collapsed stacks; feed to flamegraph tooling)",
                dir.join("gcc.folded").display()
            );
            println!(
                "  wrote {} (load in chrome://tracing or Perfetto)",
                dir.join("gcc.trace.json").display()
            );
        }
        Err(e) => eprintln!("  could not write trace artifacts: {e}"),
    }
    println!();
    let o = trace_overhead(div.max(1) * 20);
    println!("-- trace_overhead --");
    println!("  tracing off:    {:>12} cycles", o.off_cycles);
    println!(
        "  masked (free):  {:>12} cycles (delta {})",
        o.masked_cycles,
        o.off_delta()
    );
    println!(
        "  tracing on:     {:>12} cycles ({:+.3}% | {} events recorded, {} seen)",
        o.on_cycles,
        o.overhead() * 100.0,
        o.events_recorded,
        o.events_seen
    );
    if o.off_delta() != 0 || o.overhead() >= 0.02 {
        eprintln!("trace: overhead contract violated");
        std::process::exit(1);
    }
}

fn print_warmstart(div: u32) {
    let ws = warm_start(div);
    println!("== Warm start: persistent translation cache + pre-translation (scale_div {div}) ==");
    println!("(cold-vs-warm simulated cycles to the first N native slots; warm runs load a");
    println!(" saved image and statically pre-translate the entry CFG before first dispatch)");
    println!(
        "  {:<10} {:>12} {:>14} {:>14} {:>7}   {:>6} {:>6} {:>6}",
        "workload", "budget", "cold cycles", "warm cycles", "ratio", "loaded", "reject", "pre"
    );
    for k in &ws.kernels {
        println!(
            "  {:<10} {:>12} {:>14} {:>14} {:>6.2}x   {:>6} {:>6} {:>6}{}",
            k.name,
            k.budget_slots,
            k.cold_cycles,
            k.warm_cycles,
            k.ratio,
            k.blocks_loaded,
            k.blocks_rejected,
            k.pretranslated,
            if k.oracle_ok { "" } else { "  ORACLE MISMATCH" }
        );
    }
    println!("  corrupted-image legs (gcc):");
    for l in &ws.chaos {
        println!(
            "    {:<12} completed {} oracle {} wholesale {} rejected {} loaded {} -> {}",
            l.kind,
            l.completed,
            l.oracle_ok,
            l.wholesale_rejects,
            l.blocks_rejected,
            l.blocks_loaded,
            if l.ok() { "ok" } else { "FAIL" }
        );
    }
    let rows_json: Vec<String> = ws
        .kernels
        .iter()
        .map(|k| {
            format!(
                "    {{\"name\": \"{}\", \"budget_slots\": {}, \"cold_cycles\": {}, \
                 \"warm_cycles\": {}, \"ratio\": {:.4}, \"oracle_ok\": {}, \
                 \"blocks_loaded\": {}, \"blocks_rejected\": {}, \"pretranslated\": {}}}",
                k.name,
                k.budget_slots,
                k.cold_cycles,
                k.warm_cycles,
                k.ratio,
                k.oracle_ok,
                k.blocks_loaded,
                k.blocks_rejected,
                k.pretranslated
            )
        })
        .collect();
    let chaos_json: Vec<String> = ws
        .chaos
        .iter()
        .map(|l| {
            format!(
                "    {{\"kind\": \"{}\", \"completed\": {}, \"oracle_ok\": {}, \
                 \"wholesale_rejects\": {}, \"blocks_rejected\": {}, \"blocks_loaded\": {}, \
                 \"ok\": {}}}",
                l.kind,
                l.completed,
                l.oracle_ok,
                l.wholesale_rejects,
                l.blocks_rejected,
                l.blocks_loaded,
                l.ok()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale_div\": {div},\n  \"all_faster\": {},\n  \"oracle_ok\": {},\n  \
         \"chaos_ok\": {},\n  \"kernels\": [\n{}\n  ],\n  \"chaos\": [\n{}\n  ]\n}}\n",
        ws.all_faster(),
        ws.oracle_ok(),
        ws.chaos_ok(),
        rows_json.join(",\n"),
        chaos_json.join(",\n")
    );
    match std::fs::write("BENCH_warmstart.json", &json) {
        Ok(()) => println!("  wrote BENCH_warmstart.json"),
        Err(e) => eprintln!("  could not write BENCH_warmstart.json: {e}"),
    }
    // Fatal gates: warm must beat cold everywhere, by >= 1.5x on the
    // translation-heavy gcc/mcf class, with oracle-correct warm runs
    // and graceful degradation on every corrupted image.
    let mut died = false;
    if !ws.all_faster() {
        eprintln!("warmstart: warm start must beat cold start on every kernel");
        died = true;
    }
    for name in ["gcc", "mcf"] {
        let r = ws.ratio_of(name);
        if r < 1.5 {
            eprintln!("warmstart: {name} warm-start ratio {r:.2}x below the 1.5x floor");
            died = true;
        }
    }
    if !ws.oracle_ok() {
        eprintln!("warmstart: a warm run diverged from the interpreter oracle");
        died = true;
    }
    if !ws.chaos_ok() {
        eprintln!("warmstart: a corrupted-image leg failed to degrade gracefully");
        died = true;
    }
    if died {
        std::process::exit(1);
    }
}

/// The multi-tenant serving acceptance run: N concurrent sessions over
/// the 15 INT kernels share per-kernel translation namespaces through
/// the sharded cache and a cooperative scheduler. Fatal gates: shared
/// throughput >= 1.5x the N-isolated baseline at 500 sessions, dedup
/// ratio <= 1.1, shared p99 dispatch latency <= 3x single-tenant, and
/// zero cross-tenant divergence from the interpreter oracle.
fn print_serving(div: u32) {
    // Always the short-session regime: serving is a statement about
    // start-up-dominated fleets, where cold translation is the cost
    // being shared. `--fast` trims the fleet sizes, not the sessions.
    let sd = 2_000;
    let counts: &[usize] = if div > 1 {
        &[100, 500]
    } else {
        &[100, 500, 2000]
    };
    let sv = serving(sd, counts);
    println!("== Multi-tenant serving: shared sharded translation cache (scale_div {sd}) ==");
    println!("(N sessions over 15 kernels; same-kernel cohorts share a namespace; the");
    println!(" isolated baseline gives every session a private cache)");
    println!(
        "  {:>8} {:>13} {:>13} {:>7}  {:>6} {:>9}  {:>11} {:>7}",
        "sessions",
        "shared sl/Mcy",
        "isol sl/Mcy",
        "ratio",
        "dedup",
        "imported",
        "p99 sh/iso",
        "rounds"
    );
    for p in &sv.points {
        println!(
            "  {:>8} {:>13.1} {:>13.1} {:>6.2}x  {:>6.3} {:>9}  {:>5}/{:<5} {:>7}{}",
            p.sessions,
            p.slots_per_mcycle(),
            p.iso_slots_per_mcycle(),
            p.throughput_ratio(),
            p.dedup(),
            p.shared_installs,
            p.hist.percentile(99.0),
            p.iso_hist.percentile(99.0),
            p.rounds,
            if p.oracle_ok { "" } else { "  ORACLE MISMATCH" }
        );
        println!(
            "           gen rejects {}, stale rejects {}, lock contention {}, unique EIPs {}",
            p.gen_rejects, p.stale_rejects, p.lock_contention, p.unique_eips
        );
    }
    let rows_json: Vec<String> = sv
        .points
        .iter()
        .map(|p| {
            format!(
                "    {{\"sessions\": {}, \"shared_slots\": {}, \"shared_cycles\": {}, \
                 \"isolated_slots\": {}, \"isolated_cycles\": {}, \"throughput_ratio\": {:.4}, \
                 \"dedup\": {:.4}, \"organic_cold\": {}, \"shared_installs\": {}, \
                 \"unique_eips\": {}, \"p99_shared\": {}, \"p99_isolated\": {}, \
                 \"p50_shared\": {}, \"gen_rejects\": {}, \"stale_rejects\": {}, \
                 \"lock_contention\": {}, \"oracle_ok\": {}, \"rounds\": {}}}",
                p.sessions,
                p.shared_slots,
                p.shared_cycles,
                p.isolated_slots,
                p.isolated_cycles,
                p.throughput_ratio(),
                p.dedup(),
                p.organic_cold,
                p.shared_installs,
                p.unique_eips,
                p.hist.percentile(99.0),
                p.iso_hist.percentile(99.0),
                p.hist.percentile(50.0),
                p.gen_rejects,
                p.stale_rejects,
                p.lock_contention,
                p.oracle_ok,
                p.rounds
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale_div\": {sd},\n  \"throughput_ok\": {},\n  \"dedup_ok\": {},\n  \
         \"p99_ok\": {},\n  \"oracle_ok\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        sv.throughput_ok(),
        sv.dedup_ok(),
        sv.p99_ok(),
        sv.oracle_ok(),
        rows_json.join(",\n")
    );
    match std::fs::write("BENCH_serving.json", &json) {
        Ok(()) => println!("  wrote BENCH_serving.json"),
        Err(e) => eprintln!("  could not write BENCH_serving.json: {e}"),
    }
    let mut bad = false;
    if !sv.throughput_ok() {
        eprintln!("serving: shared throughput below the 1.5x floor at 500 sessions");
        bad = true;
    }
    if !sv.dedup_ok() {
        eprintln!("serving: cold-translation dedup ratio above 1.1");
        bad = true;
    }
    if !sv.p99_ok() {
        eprintln!("serving: shared p99 dispatch latency above 3x single-tenant");
        bad = true;
    }
    if !sv.oracle_ok() {
        eprintln!("serving: a tenant diverged from the interpreter oracle");
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
}

/// The learned-superinstruction acceptance run: all 15 kernels off vs
/// on, plus the persisted-table warm-start leg. Every gate is fatal:
/// geomean speedup >= 1.05x, no kernel below the 0.97x floor, a
/// nonzero template hit rate on every SPEC INT kernel, zero oracle
/// divergence anywhere, and the warm leg must fuse from its very
/// first translation out of the imported table.
fn print_templates(_div: u32) {
    // Always full scale, even under `--fast`: mining and validation
    // are one-time translation charges, so short runs measure the
    // un-amortized regime the gate deliberately excludes — and the
    // full run is only seconds.
    let sd = 6;
    let t = templates(sd);
    println!("== Learned superinstruction templates (scale_div {sd}) ==");
    println!("(profile-mined idiom fusion, cold peephole + hot trace peephole,");
    println!(" differential-validated; vs. the same engine with enable_superinst=false)");
    println!(
        "  {:<12} {:>12} {:>12} {:>7} {:>6} {:>9} {:>9} {:>8}",
        "workload", "cycles/off", "cycles/on", "ratio", "mined", "hits", "fused", "hitrate"
    );
    for r in &t.rows {
        println!(
            "  {:<12} {:>12} {:>12} {:>6.3}x {:>6} {:>9} {:>9} {:>7.1}%",
            r.name,
            r.off_cycles,
            r.on_cycles,
            r.ratio,
            r.mined,
            r.hits,
            r.fused_slots,
            r.hit_rate * 100.0
        );
    }
    println!(
        "  geomean {:.3}x, floor {:.3}x | warm leg: {} idioms persisted, {} blocks loaded, {} fused firings",
        t.geomean(),
        t.min_ratio(),
        t.warm.idioms_persisted,
        t.warm.blocks_loaded,
        t.warm.hits
    );
    let rows_json: Vec<String> = t
        .rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"spec_int\": {}, \"cycles_off\": {},                  \"cycles_on\": {}, \"ratio\": {:.4}, \"mined\": {}, \"blacklists\": {},                  \"hits\": {}, \"fused_slots\": {}, \"eligible_slots\": {},                  \"hit_rate\": {:.4}}}",
                r.name,
                r.spec_int,
                r.off_cycles,
                r.on_cycles,
                r.ratio,
                r.mined,
                r.blacklists,
                r.hits,
                r.fused_slots,
                r.eligible_slots,
                r.hit_rate
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale_div\": {sd},\n  \"enable_superinst\": true,\n           \"geomean\": {:.4},\n  \"min_ratio\": {:.4},\n           \"warm\": {{\"idioms_persisted\": {}, \"blocks_loaded\": {}, \"hits\": {}, \"oracle_ok\": {}}},\n           \"rows\": [\n{}\n  ]\n}}\n",
        t.geomean(),
        t.min_ratio(),
        t.warm.idioms_persisted,
        t.warm.blocks_loaded,
        t.warm.hits,
        t.warm.oracle_ok,
        rows_json.join(",\n")
    );
    match std::fs::write("BENCH_templates.json", &json) {
        Ok(()) => println!("  wrote BENCH_templates.json"),
        Err(e) => eprintln!("  could not write BENCH_templates.json: {e}"),
    }
    let mut bad = false;
    if !t.oracle_ok() {
        eprintln!("templates: a fusion-enabled run diverged from the oracle");
        bad = true;
    }
    if t.geomean() < 1.05 {
        eprintln!(
            "templates: geomean speedup {:.3}x below the 1.05x gate",
            t.geomean()
        );
        bad = true;
    }
    if t.min_ratio() < 0.97 {
        eprintln!(
            "templates: a kernel regressed to {:.3}x (floor 0.97x)",
            t.min_ratio()
        );
        bad = true;
    }
    if !t.spec_hits_nonzero() {
        eprintln!("templates: a SPEC INT kernel never fired a fused template");
        bad = true;
    }
    if t.warm.idioms_persisted == 0
        || t.warm.blocks_loaded == 0
        || t.warm.hits == 0
        || !t.warm.oracle_ok
    {
        eprintln!(
            "templates: warm leg failed to fuse from the persisted table \
             ({} idioms, {} blocks, {} hits, oracle_ok {})",
            t.warm.idioms_persisted, t.warm.blocks_loaded, t.warm.hits, t.warm.oracle_ok
        );
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let div = if fast { 20 } else { 1 };
    let seed = args
        .iter()
        .find_map(|a| a.strip_prefix("--seed="))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    match what {
        "fig5" => print_fig5(div),
        "fig6" => print_dist(
            "Figure 6: SPEC CPU2000 execution-time distribution",
            &figure6(hot_cfg(), div),
            "hot 95%, cold 3%, overhead 1%, other 1%",
        ),
        "fig7" => print_dist(
            "Figure 7: Sysmark execution-time distribution",
            &figure7(hot_cfg(), div),
            "hot 46%, cold 5%, overhead 12%, other/OS 22%, idle 15%",
        ),
        "fig8" => print_fig8(div),
        "table1" => print_table1(),
        "hot_vs_cold" => print_hot_vs_cold(div),
        "misalign" => print_misalign(div),
        "paper_stats" => print_paper_stats(div),
        "cache" => print_cache(div),
        "indirect" => print_indirect(div),
        "ir" => print_ir(div),
        "chaos" => print_chaos(div, seed),
        "hostile" => print_hostile(div, seed),
        "trace" => print_trace(div),
        "warmstart" => print_warmstart(div),
        "serving" => print_serving(div),
        "templates" => print_templates(div),
        "all" => {
            print_table1();
            println!();
            print_fig5(div);
            println!();
            print_dist(
                "Figure 6: SPEC CPU2000 execution-time distribution",
                &figure6(hot_cfg(), div),
                "hot 95%, cold 3%, overhead 1%, other 1%",
            );
            println!();
            print_dist(
                "Figure 7: Sysmark execution-time distribution",
                &figure7(hot_cfg(), div),
                "hot 46%, cold 5%, overhead 12%, other/OS 22%, idle 15%",
            );
            println!();
            print_fig8(div);
            println!();
            print_hot_vs_cold(div);
            println!();
            print_misalign(div);
            println!();
            print_paper_stats(div);
            println!();
            print_cache(div);
            println!();
            print_indirect(div);
            println!();
            print_ir(div);
            println!();
            print_trace(div);
            println!();
            print_chaos(div, seed);
            println!();
            print_hostile(div, seed);
            println!();
            print_warmstart(div);
            println!();
            print_serving(div);
            println!();
            print_templates(div);
        }
        other => {
            eprintln!("unknown figure: {other}");
            std::process::exit(2);
        }
    }
}
