//! Random-program differential fuzzer: generates random IA-32 programs
//! (straight-line, or loop bodies with `hunt loop`) and checks the
//! Execution Layer against the reference interpreter, printing the
//! first diverging program. Complements the proptest suite with an
//! unbounded, fast, release-mode search.
//!
//! ```text
//! cargo run --release -p bench --bin hunt          # straight-line
//! cargo run --release -p bench --bin hunt -- loop  # hot loops
//! ```
//!
//! Note: generated programs may legitimately fail to terminate when a
//! byte-size write hits CH (ECX's second byte); both sides then agree
//! on `InstLimit`, which the harness reports as an outcome mismatch
//! only if the oracle and the translator disagree.
use ia32::asm::{Asm, Image};
use ia32::inst::*;
use ia32::regs::*;
use ia32::Size;

fn rng(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn gen_inst(x: &mut u64) -> Inst {
    let r = |x: &mut u64| Gpr::new((rng(x) % 8) as u8);
    let nz = |g: Gpr, alt: u8| {
        if g.num() == 1 || g.num() == 4 {
            Gpr::new(alt)
        } else {
            g
        }
    };
    match rng(x) % 7 {
        0 => Inst::Alu {
            op: [
                AluOp::Add,
                AluOp::Sub,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Adc,
                AluOp::Sbb,
                AluOp::Cmp,
            ][(rng(x) % 8) as usize],
            size: [Size::B, Size::W, Size::D][(rng(x) % 3) as usize],
            dst: Rm::Reg(nz(r(x), 5)),
            src: RmI::Imm(rng(x) as i32),
        },
        1 => Inst::Alu {
            op: [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor][(rng(x) % 5) as usize],
            size: Size::D,
            dst: Rm::Reg(nz(r(x), 0)),
            src: RmI::Reg(r(x)),
        },
        2 => Inst::Mov {
            size: Size::D,
            dst: Rm::Reg(nz(r(x), 6)),
            src: RmI::Imm(rng(x) as i32),
        },
        3 => Inst::Shift {
            op: [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][(rng(x) % 3) as usize],
            size: Size::D,
            dst: Rm::Reg(nz(r(x), 3)),
            count: ShiftCount::Imm((rng(x) % 34) as u8),
        },
        4 => Inst::IncDec {
            inc: rng(x).is_multiple_of(2),
            size: Size::D,
            dst: Rm::Reg(nz(r(x), 5)),
        },
        5 => Inst::ImulRm {
            dst: nz(r(x), 0),
            src: Rm::Reg(r(x)),
        },
        _ => Inst::Mov {
            size: Size::D,
            dst: Rm::Reg(nz(r(x), 7)),
            src: RmI::Reg(r(x)),
        },
    }
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    for seed in 1..=4000u64 {
        let mut x = (seed * 0x9E3779B97F4A7C15) | 1;
        let n = 1 + (rng(&mut x) % 10) as usize;
        let iters = 200 + (rng(&mut x) % 400) as i32;
        let body: Vec<Inst> = (0..n).map(|_| gen_inst(&mut x)).collect();
        let mut a = Asm::new(0x40_0000);
        if mode == "loop" {
            a.mov_ri(ECX, iters);
            let top = a.label();
            a.bind(top);
            for i in &body {
                a.inst(*i);
            }
            a.dec(ECX);
            a.jcc(ia32::Cond::Ne, top);
        } else {
            for i in &body {
                a.inst(*i);
            }
        }
        a.hlt();
        let img = Image::from_asm(&a).with_bss(0x50_0000, 0x1000);
        // Oracle.
        let mut omem = ia32::GuestMem::new();
        let ocpu = img.load(&mut omem);
        let mut interp = ia32::Interp::new();
        interp.cpu = ocpu;
        let oend = interp.run(&mut omem, 5_000_000);
        // Translated.
        let cfg = btgeneric::engine::Config {
            heat_threshold: 16,
            hot_candidates: 1,
            ..btgeneric::engine::Config::default()
        };
        let mut p = btlib::Process::launch_with(&img, btlib::SimOs::new(), cfg).unwrap();
        let tout = p.run(30_000_000);
        match (&oend, &tout) {
            (Ok(ia32::Event::Halt), btgeneric::engine::Outcome::Halted(tcpu)) => {
                if interp.cpu.gpr != tcpu.gpr {
                    println!(
                        "SEED {seed}: GPR mismatch\n  {:x?}\n  {:x?}",
                        interp.cpu.gpr, tcpu.gpr
                    );
                    for i in &body {
                        println!("  {i}");
                    }
                    return;
                }
                let of = interp.cpu.eflags & 0x8D5;
                let tf = tcpu.eflags & 0x8D5;
                if of != tf {
                    println!("SEED {seed}: FLAGS mismatch {of:#x} vs {tf:#x}");
                    for i in &body {
                        println!("  {i}");
                    }
                    return;
                }
            }
            (Ok(ia32::Event::Continue), btgeneric::engine::Outcome::InstLimit) => {
                // Both sides hit their budgets (a legitimately
                // non-terminating random program): agreement.
            }
            (o, t) => {
                println!("SEED {seed}: outcome mismatch {o:?} vs {t:?}");
                for i in &body {
                    println!("  {i}");
                }
                return;
            }
        }
        if seed % 500 == 0 {
            println!("...{seed} ok");
        }
    }
    println!("no mismatch found");
}
