//! # Benchmark harness
//!
//! Runs the dual-backend workloads three ways — under the IA-32
//! Execution Layer, natively on the Itanium model, and on the IA-32
//! ("Xeon") model — and regenerates every table and figure of the
//! paper's evaluation (§6). The `figures` binary prints them.

use btgeneric::btos::{BtOs, SyscallOutcome};
use btgeneric::chaos::{FaultKind, FaultPlan, NUM_KINDS};
use btgeneric::engine::{Config, Outcome};
use btgeneric::stats::{DispatchHist, Stats, TimeDistribution};
use btgeneric::trace::{EventMask, TraceConfig};
use btlib::{Process, SignalPlan, SimOs, SimOsFaults};
use ia32::interp::{Event, Interp};
use ia32::mem::GuestMem;
use workloads::harness::{build_image, run_ia32_hw, run_native};
use workloads::{Workload, RESULT};

/// Result of running a workload under the Execution Layer.
#[derive(Clone, Debug)]
pub struct ElRun {
    /// Total simulated Itanium cycles (including overhead categories).
    pub cycles: u64,
    /// Cycle breakdown by category.
    pub dist: TimeDistribution,
    /// Translator statistics.
    pub stats: Stats,
    /// Workload checksum (must match the other backends).
    pub result: u64,
}

/// Runs `w` under the Execution Layer.
///
/// # Panics
///
/// Panics if the workload does not halt cleanly.
pub fn run_el(w: &Workload, scale: u32, cfg: Config) -> ElRun {
    run_el_keep(w, scale, cfg).0
}

/// Like [`run_el`], but also returns the finished process so callers
/// can inspect post-run state (the tracer, the blacklist, memory).
pub fn run_el_keep(w: &Workload, scale: u32, cfg: Config) -> (ElRun, Process<SimOs>) {
    let img = build_image(w, scale);
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    match p.run(u64::MAX / 2) {
        Outcome::Halted(_) => {}
        other => panic!("EL {} did not halt: {other:?}", w.name),
    }
    p.engine.collect_hot_exit_stats();
    p.engine.collect_indirect_stats();
    let mut dist = TimeDistribution::from_region_cycles(&p.engine.machine.region_cycles);
    // Sysmark-model kernel/driver (native) and idle time: fractions of
    // the total wall time, added on top of the translated time.
    let t = dist.total() as f64;
    let translated_frac = 1.0 - w.native_fraction - w.idle_fraction;
    if translated_frac < 1.0 {
        dist.native = (t * w.native_fraction / translated_frac) as u64;
        dist.idle = (t * w.idle_fraction / translated_frac) as u64;
    }
    let el = ElRun {
        cycles: dist.total(),
        dist,
        stats: p.engine.stats.clone(),
        result: p.engine.mem.read(RESULT as u64, 8).unwrap_or(0),
    };
    (el, p)
}

/// A Figure-5-style row: EL score relative to native Itanium.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Benchmark name.
    pub name: &'static str,
    /// EL cycles.
    pub el_cycles: u64,
    /// Native cycles.
    pub native_cycles: u64,
    /// Relative score in percent (native = 100, higher is better).
    pub relative: f64,
}

/// Generates Figure 5 (SPEC INT relative scores, EL vs native Itanium).
pub fn figure5(cfg: Config, scale_div: u32) -> (Vec<Fig5Row>, f64) {
    let mut rows = Vec::new();
    for w in workloads::spec_int() {
        let scale = (w.scale / scale_div).max(256);
        let el = run_el(&w, scale, cfg.clone());
        let native = run_native(&w, scale, cfg.timing);
        rows.push(Fig5Row {
            name: w.name,
            el_cycles: el.cycles,
            native_cycles: native.cycles,
            relative: native.cycles as f64 * 100.0 / el.cycles as f64,
        });
    }
    let geomean = (rows.iter().map(|r| r.relative.ln()).sum::<f64>() / rows.len() as f64).exp();
    (rows, geomean)
}

/// Generates Figure 6 (SPEC time distribution under EL).
pub fn figure6(cfg: Config, scale_div: u32) -> TimeDistribution {
    let mut agg = TimeDistribution::default();
    for w in workloads::spec_int() {
        let scale = (w.scale / scale_div).max(256);
        let el = run_el(&w, scale, cfg.clone());
        agg.hot += el.dist.hot;
        agg.cold += el.dist.cold;
        agg.overhead += el.dist.overhead;
        agg.other += el.dist.other;
        agg.native += el.dist.native;
        agg.idle += el.dist.idle;
    }
    agg
}

/// Generates Figure 7 (Sysmark time distribution under EL).
pub fn figure7(cfg: Config, scale_div: u32) -> TimeDistribution {
    let w = workloads::sysmark();
    let scale = (w.scale / scale_div).max(256);
    run_el(&w, scale, cfg).dist
}

/// A Figure-8 row: EL on Itanium (1.5 GHz) vs IA-32 hardware (1.6 GHz).
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Suite name.
    pub name: &'static str,
    /// EL wall time in seconds.
    pub el_seconds: f64,
    /// IA-32 hardware wall time in seconds.
    pub ia32_seconds: f64,
    /// EL performance relative to IA-32 hardware in percent.
    pub relative: f64,
}

/// Generates Figure 8 for the INT composite, FP composite, and Sysmark.
pub fn figure8(cfg: Config, scale_div: u32) -> Vec<Fig8Row> {
    // 1.5 GHz Itanium 2 vs 1.6 GHz Xeon, as in the paper.
    let mut el_cfg = cfg;
    el_cfg.timing.clock_mhz = 1500;
    let ia32_timing = ia32::timing::Timing {
        clock_mhz: 1600,
        ..ia32::timing::Timing::default()
    };
    let suites: [(&'static str, Vec<Workload>); 3] = [
        ("CPU2000 INT", workloads::spec_int()),
        ("CPU2000 FP", workloads::spec_fp()),
        ("Sysmark 2002", vec![workloads::sysmark()]),
    ];
    let mut rows = Vec::new();
    for (name, suite) in suites {
        let mut el_s = 0.0;
        let mut hw_s = 0.0;
        for w in &suite {
            let scale = (w.scale / scale_div).max(256);
            let el = run_el(w, scale, el_cfg.clone());
            let hw = run_ia32_hw(w, scale, ia32_timing);
            el_s += el.cycles as f64 / (el_cfg.timing.clock_mhz as f64 * 1e6);
            // Kernel and idle time exist on the IA-32 side too.
            let frac = 1.0 - w.native_fraction - w.idle_fraction;
            hw_s += hw.cycles as f64 / (ia32_timing.clock_mhz as f64 * 1e6) / frac;
        }
        rows.push(Fig8Row {
            name,
            el_seconds: el_s,
            ia32_seconds: hw_s,
            relative: hw_s * 100.0 / el_s,
        });
    }
    rows
}

/// In-text experiment: steady-state hot-code vs cold-code performance
/// (paper: "hot code performance is 3X better than cold code").
pub fn hot_vs_cold(scale_div: u32) -> f64 {
    let w = &workloads::spec_int()[0]; // gzip: tight and hot-friendly
    let scale = (w.scale / scale_div).max(2048);
    let cold_cfg = Config {
        enable_hot: false,
        ..Config::default()
    };
    let hot_cfg = Config {
        heat_threshold: 64,
        hot_candidates: 1,
        ..Config::default()
    };
    let cold = run_el(w, scale, cold_cfg);
    let hot = run_el(w, scale, hot_cfg);
    // Compare time spent in translated code only (exclude one-time
    // translation overhead, which scales away on long runs).
    let cold_exec = cold.dist.cold.max(1);
    let hot_exec = (hot.dist.hot + hot.dist.cold).max(1);
    cold_exec as f64 / hot_exec as f64
}

/// In-text experiment: the misalignment-avoidance speedup (paper: one
/// workload went from 1236 s to 133 s, ~9.3x).
pub fn misalign_speedup(scale_div: u32) -> (u64, u64, f64) {
    let w = workloads::misalign_heavy();
    let scale = (w.scale / scale_div).max(512);
    let off = Config {
        enable_misalign_avoidance: false,
        ..Config::default()
    };
    let without = run_el(&w, scale, off).cycles;
    let with = run_el(&w, scale, Config::default()).cycles;
    (without, with, without as f64 / with as f64)
}

/// Tiny-cache experiment: the same workload run under capacity
/// pressure twice — with incremental eviction, and with eviction
/// disabled so every overflow falls back to the seed's wholesale
/// flush.
#[derive(Clone, Debug)]
pub struct CachePressure {
    /// Run with incremental, generation-aware eviction.
    pub evict: ElRun,
    /// Run with eviction disabled (flush-everything GC).
    pub flush: ElRun,
}

impl CachePressure {
    /// Retranslation reduction: flushed-run cold blocks over
    /// eviction-run cold blocks (> 1 means eviction retranslates less).
    pub fn retranslation_ratio(&self) -> f64 {
        self.flush.stats.cold_blocks as f64 / self.evict.stats.cold_blocks.max(1) as f64
    }

    /// Total simulated-cycle reduction: flushed-run cycles over
    /// eviction-run cycles.
    pub fn cycle_ratio(&self) -> f64 {
        self.flush.cycles as f64 / self.evict.cycles.max(1) as f64
    }
}

/// Runs the cache-pressure experiment on gcc — the INT workload with
/// the largest cold working set, so a tiny cache genuinely thrashes —
/// capped at `max_cache_bundles` bundles. Both phases are enabled:
/// eviction's edge over flushing comes from *generation awareness* —
/// hot traces (20x translation cost) and high-use cold blocks stay
/// resident while cold single-pass code churns. A flush rebuilds the
/// hot working set from scratch after every overflow.
pub fn cache_pressure(scale_div: u32, max_cache_bundles: usize) -> CachePressure {
    let all = workloads::spec_int();
    let w = all
        .iter()
        .find(|w| w.name == "gcc")
        .expect("gcc workload exists");
    let scale = (w.scale / scale_div).max(512);
    let evict_cfg = Config {
        heat_threshold: 256,
        hot_candidates: 2,
        max_cache_bundles,
        ..Config::default()
    };
    let flush_cfg = Config {
        enable_eviction: false,
        ..evict_cfg.clone()
    };
    CachePressure {
        evict: run_el(w, scale, evict_cfg),
        flush: run_el(w, scale, flush_cfg),
    }
}

/// One before/after pair of the indirect-acceleration experiment.
#[derive(Clone, Debug)]
pub struct IndirectRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Run with `enable_indirect_accel` off — byte-identical to the
    /// pre-acceleration engine (legacy direct-mapped lookup, no inline
    /// caches, no shadow stack, traces end at every call).
    pub before: ElRun,
    /// Run with the acceleration on (everything else identical).
    pub after: ElRun,
}

/// The `indirect_pressure` experiment: the call-heavy kernels run with
/// indirect acceleration off and on.
#[derive(Clone, Debug)]
pub struct IndirectPressure {
    /// Per-workload pairs.
    pub rows: Vec<IndirectRow>,
}

impl IndirectPressure {
    /// Fractional reduction in `IndirectMiss` dispatcher round-trips
    /// across the suite (1.0 = all misses eliminated).
    pub fn miss_reduction(&self) -> f64 {
        let before: u64 = self
            .rows
            .iter()
            .map(|r| r.before.stats.indirect_misses)
            .sum();
        let after: u64 = self
            .rows
            .iter()
            .map(|r| r.after.stats.indirect_misses)
            .sum();
        1.0 - after as f64 / before.max(1) as f64
    }

    /// Geometric-mean speedup in total simulated cycles (before/after;
    /// > 1 means the acceleration pays).
    pub fn cycle_geomean(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        (self
            .rows
            .iter()
            .map(|r| (r.before.cycles as f64 / r.after.cycles.max(1) as f64).ln())
            .sum::<f64>()
            / n)
            .exp()
    }
}

/// Runs the call-heavy kernels (eon, vcall_mono, callret) twice each:
/// acceleration off (the honest pre-acceleration baseline, including
/// the legacy single-way lookup hash) and on. Hot promotion is on a
/// short fuse so the devirtualizing trace selector participates.
pub fn indirect_pressure(scale_div: u32) -> IndirectPressure {
    indirect_pressure_with(scale_div, false)
}

/// [`indirect_pressure`] with learned superinstruction fusion switched
/// on in *both* legs — the per-kernel regression floors behind
/// `figures indirect` and `figures ir` are enforced with the knob on
/// too, so fusion can never ship a hidden indirect-kernel regression.
pub fn indirect_pressure_with(scale_div: u32, superinst: bool) -> IndirectPressure {
    let on = Config {
        heat_threshold: 64,
        hot_candidates: 4,
        enable_superinst: superinst,
        ..Config::default()
    };
    let off = Config {
        enable_indirect_accel: false,
        ..on.clone()
    };
    let mut rows = Vec::new();
    for w in workloads::indirect_kernels() {
        let scale = (w.scale / scale_div).max(512);
        rows.push(IndirectRow {
            name: w.name,
            before: run_el(&w, scale, off.clone()),
            after: run_el(&w, scale, on.clone()),
        });
    }
    IndirectPressure { rows }
}

/// One chaos trial: a workload run under a [`FaultPlan`] storm, with a
/// clean run of the same configuration as the recovery-overhead
/// baseline and the IA-32 hardware model as the correctness oracle.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// Benchmark name.
    pub name: &'static str,
    /// The storm run halted cleanly (no panic, no runaway).
    pub survived: bool,
    /// Final guest state matches the IA-32 hardware model.
    pub oracle_ok: bool,
    /// Engine-side faults delivered, by [`FaultKind`] index.
    pub injected: [u64; NUM_KINDS],
    /// Storm-run cycles over clean-run cycles (recovery overhead).
    pub recovery_overhead: f64,
    /// Storm-run translator statistics.
    pub stats: Stats,
}

impl ChaosRun {
    /// All faults delivered: engine-side injections plus OS-side
    /// allocation refusals.
    pub fn total_faults(&self) -> u64 {
        self.injected.iter().sum::<u64>() + self.stats.os_alloc_failures
    }
}

/// The chaos configuration: hot promotion on a short fuse so the storm
/// has hot traces to damage, integrity checking armed, and the hot
/// optimizer under its cycle-budget watchdog.
fn chaos_cfg() -> Config {
    Config {
        heat_threshold: 64,
        hot_candidates: 1,
        verify_on_dispatch: true,
        hot_session_budget: 400_000,
        ..Config::default()
    }
}

/// Final [`RESULT`] checksum of `w` under the reference interpreter
/// with a [`SimOs`] servicing its syscalls — the oracle for kernels
/// with `uses_os` set, which the bare [`run_ia32_hw`] loop cannot run.
/// No signal plan is attached: asynchronous delivery must be
/// transparent to the final state, so the signal-free interpreter run
/// defines correctness for the signal-stormed engine run too.
///
/// # Panics
///
/// Panics if the kernel traps or fails to finish.
pub fn run_sim_oracle(w: &Workload, scale: u32) -> u64 {
    let img = build_image(w, scale);
    let mut mem = GuestMem::new();
    let cpu = img.load(&mut mem);
    let mut interp = Interp::new();
    interp.cpu = cpu;
    let mut os = SimOs::new();
    let mut steps = 0u64;
    loop {
        steps += 1;
        assert!(steps < 500_000_000, "{}: oracle ran away", w.name);
        match interp.step(&mut mem) {
            Ok(Event::Continue) => {}
            Ok(Event::Halt) => break,
            Ok(Event::Syscall { vector }) => {
                assert_eq!(vector, 0x80, "{}: unexpected vector", w.name);
                match os.syscall(&mut interp.cpu, &mut mem) {
                    SyscallOutcome::Continue => {}
                    SyscallOutcome::Exit(_) => break,
                }
            }
            Err(t) => panic!("{}: oracle trapped: {t:?}", w.name),
        }
    }
    mem.read(RESULT as u64, 8).unwrap_or(0)
}

/// The correctness oracle for `w`: the interpreter + [`SimOs`] loop
/// when the kernel needs an OS, the hardware-model run otherwise.
fn oracle_result(w: &Workload, scale: u32) -> u64 {
    if w.uses_os {
        run_sim_oracle(w, scale)
    } else {
        run_ia32_hw(w, scale, ia32::timing::Timing::default()).result
    }
}

/// Runs `w` once clean and once under [`FaultPlan::storm`], checking
/// the storm run's final guest state against the IA-32 hardware model.
pub fn chaos_run(w: &Workload, scale: u32, seed: u64) -> ChaosRun {
    chaos_run_cfg(w, scale, seed, chaos_cfg())
}

/// [`chaos_run`] under an explicit engine configuration — the hot-IR
/// determinism suite runs the same storm with `enable_hot_ir` on and
/// off and demands byte-identical statistics per configuration.
pub fn chaos_run_cfg(w: &Workload, scale: u32, seed: u64, cfg: Config) -> ChaosRun {
    chaos_run_plan(w, scale, FaultPlan::storm(seed), cfg)
}

/// [`chaos_run_cfg`] under an explicit [`FaultPlan`] — targeted fault
/// campaigns (e.g. template-synthesis corruption only) build their own
/// plan instead of the full storm.
pub fn chaos_run_plan(w: &Workload, scale: u32, plan: FaultPlan, cfg: Config) -> ChaosRun {
    let img = build_image(w, scale);
    let oracle = oracle_result(w, scale);

    // Clean baseline for the recovery-overhead ratio.
    let mut clean = Process::launch_with(&img, SimOs::new(), cfg.clone()).expect("launch");
    match clean.run(u64::MAX / 2) {
        Outcome::Halted(_) => {}
        other => panic!("clean {} did not halt: {other:?}", w.name),
    }
    let clean_cycles = clean.engine.machine.cycles.max(1);

    // Storm run: engine-side faults plus OS-side allocation refusals.
    let os = SimOs::with_faults(SimOsFaults {
        fail_allocs: plan.os_alloc_failures,
        fail_syscalls: 0, // the INT workloads issue no mid-run syscalls
    });
    let mut p = Process::launch_with(&img, os, cfg).expect("launch");
    p.engine.chaos = Some(plan);
    let survived = matches!(p.run(u64::MAX / 2), Outcome::Halted(_));
    p.engine.collect_hot_exit_stats();
    p.engine.collect_indirect_stats();
    let result = p.engine.mem.read(RESULT as u64, 8).unwrap_or(0);
    let plan = p.engine.chaos.take().expect("plan stays attached");
    ChaosRun {
        name: w.name,
        survived,
        oracle_ok: result == oracle,
        injected: plan.injected,
        recovery_overhead: p.engine.machine.cycles as f64 / clean_cycles as f64,
        stats: p.engine.stats.clone(),
    }
}

/// A full storm: [`chaos_run`] over the two most translation-heavy INT
/// workloads (gcc's working set churns the cache; mcf's hot loops give
/// the storm hot traces to damage).
#[derive(Clone, Debug)]
pub struct ChaosStorm {
    /// Per-workload trials.
    pub runs: Vec<ChaosRun>,
}

impl ChaosStorm {
    /// Every trial halted cleanly.
    pub fn survived(&self) -> bool {
        self.runs.iter().all(|r| r.survived)
    }

    /// Every trial matched the hardware-model oracle.
    pub fn oracle_ok(&self) -> bool {
        self.runs.iter().all(|r| r.oracle_ok)
    }

    /// Total faults delivered across all trials.
    pub fn total_faults(&self) -> u64 {
        self.runs.iter().map(ChaosRun::total_faults).sum()
    }

    /// Per-kind totals across trials, labelled for display.
    pub fn injected_by_kind(&self) -> [(&'static str, u64); NUM_KINDS] {
        FaultKind::ALL.map(|k| {
            (
                k.name(),
                self.runs.iter().map(|r| r.injected[k as usize]).sum(),
            )
        })
    }

    /// Distinct fault kinds delivered at least once (the five
    /// engine-side kinds plus OS allocation refusal).
    pub fn kinds_hit(&self) -> usize {
        let engine = (0..NUM_KINDS)
            .filter(|&k| self.runs.iter().any(|r| r.injected[k] > 0))
            .count();
        let os = usize::from(self.runs.iter().any(|r| r.stats.os_alloc_failures > 0));
        engine + os
    }
}

/// Runs the storm over gcc and mcf (the two most translation-heavy INT
/// workloads) plus the three hostile kernels, so every storm also
/// exercises asynchronous signals, guest-JIT SMC, and nested handlers.
/// Each workload gets its own plan seeded from `seed` so the trials
/// draw independent streams.
pub fn chaos_storm(scale_div: u32, seed: u64) -> ChaosStorm {
    let mut roster: Vec<Workload> = workloads::spec_int()
        .into_iter()
        .filter(|w| w.name == "gcc" || w.name == "mcf")
        .collect();
    roster.extend(workloads::hostile_kernels());
    let mut runs = Vec::new();
    for (i, w) in roster.iter().enumerate() {
        let scale = (w.scale / scale_div).max(512);
        runs.push(chaos_run(w, scale, seed.wrapping_add(i as u64)));
    }
    ChaosStorm { runs }
}

/// One hostile-guest trial: a kernel under a seeded asynchronous
/// signal plan *and* a full fault storm (whose `AsyncSignal` rolls add
/// immediately-due signals on top of the plan), run twice for the
/// determinism check, against the signal-free interpreter oracle.
#[derive(Clone, Debug)]
pub struct HostileRun {
    /// Kernel name.
    pub name: &'static str,
    /// Plan seed for this trial.
    pub seed: u64,
    /// Iteration scale (the bound for the guest-JIT sublinearity gate:
    /// one SMC write per iteration).
    pub scale: u32,
    /// Both storm runs halted cleanly.
    pub survived: bool,
    /// Final [`RESULT`] matches the signal-free interpreter oracle.
    pub oracle_ok: bool,
    /// The two storm runs produced byte-identical statistics, cycle
    /// counts, and results.
    pub deterministic: bool,
    /// Storm-run cycles over clean-run cycles.
    pub recovery_overhead: f64,
    /// `sigreturn` syscalls the OS serviced (must reconcile with
    /// `stats.signals_delivered` at halt).
    pub sigreturns: u64,
    /// Due deliveries the OS deferred at the nesting-depth cap.
    pub sig_deferrals: u64,
    /// Storm-run translator statistics.
    pub stats: Stats,
}

impl HostileRun {
    /// Every delivered signal's handler ran to its `sigreturn` by halt
    /// (no frame was lost or leaked).
    pub fn sigreturns_reconciled(&self) -> bool {
        self.sigreturns == self.stats.signals_delivered
    }
}

/// The hostile-guest configuration: the chaos config with the typed-IR
/// hot pipeline on, so mid-trace delivery exercises the IR recovery
/// maps.
fn hostile_cfg() -> Config {
    Config {
        enable_hot_ir: true,
        ..chaos_cfg()
    }
}

/// One engine run of the hostile storm: returns (survived, result,
/// cycles, stats, sigreturns, sig_deferrals).
fn hostile_once(w: &Workload, scale: u32, seed: u64) -> (bool, u64, u64, Stats, u64, u64) {
    let img = build_image(w, scale);
    let plan = FaultPlan::storm(seed);
    // Two dozen planned arrivals spread over a window sized to the
    // run; chaos `AsyncSignal` rolls push extra immediately-due ones.
    let signals = SignalPlan::seeded(seed, 24, u64::from(scale) * 32);
    let os = SimOs::with_faults(SimOsFaults {
        fail_allocs: plan.os_alloc_failures,
        fail_syscalls: 0,
    })
    .with_signals(signals);
    let mut p = Process::launch_with(&img, os, hostile_cfg()).expect("launch");
    p.engine.chaos = Some(plan);
    let survived = matches!(p.run(u64::MAX / 2), Outcome::Halted(_));
    let result = p.engine.mem.read(RESULT as u64, 8).unwrap_or(0);
    (
        survived,
        result,
        p.engine.machine.cycles,
        p.engine.stats.clone(),
        p.os.sigreturns,
        p.os.sig_deferrals,
    )
}

/// Runs one hostile trial (twice, for the determinism check).
pub fn hostile_run(w: &Workload, scale: u32, seed: u64) -> HostileRun {
    let oracle = run_sim_oracle(w, scale);
    let (_, clean) = run_el_keep(w, scale, hostile_cfg());
    let clean_cycles = clean.engine.machine.cycles.max(1);
    let a = hostile_once(w, scale, seed);
    let b = hostile_once(w, scale, seed);
    HostileRun {
        name: w.name,
        seed,
        scale,
        survived: a.0 && b.0,
        oracle_ok: a.1 == oracle,
        deterministic: a.1 == b.1 && a.2 == b.2 && a.3 == b.3 && a.4 == b.4 && a.5 == b.5,
        recovery_overhead: a.2 as f64 / clean_cycles as f64,
        sigreturns: a.4,
        sig_deferrals: a.5,
        stats: a.3,
    }
}

/// The full hostile-guest suite: each of the three kernels at three
/// seeds derived from `seed`.
#[derive(Clone, Debug)]
pub struct HostileSuite {
    /// Per-(kernel, seed) trials.
    pub runs: Vec<HostileRun>,
}

impl HostileSuite {
    /// Every trial halted cleanly, twice.
    pub fn survived(&self) -> bool {
        self.runs.iter().all(|r| r.survived)
    }

    /// Every trial matched the signal-free oracle.
    pub fn oracle_ok(&self) -> bool {
        self.runs.iter().all(|r| r.oracle_ok)
    }

    /// Every trial replayed byte-identically.
    pub fn deterministic(&self) -> bool {
        self.runs.iter().all(|r| r.deterministic)
    }

    /// Every trial's delivered signals all `sigreturn`ed.
    pub fn sigreturns_reconciled(&self) -> bool {
        self.runs.iter().all(HostileRun::sigreturns_reconciled)
    }

    /// Signals delivered across the suite (the storms must actually
    /// interrupt something).
    pub fn signals_delivered(&self) -> u64 {
        self.runs.iter().map(|r| r.stats.signals_delivered).sum()
    }

    /// The guest-JIT gates: every `guest_jit` trial tripped the thrash
    /// governor at least once, and its retranslation count stayed
    /// sublinear in the SMC write count (one write per iteration — a
    /// governorless engine retranslates the patched stub every call).
    pub fn guest_jit_bounded(&self) -> bool {
        self.runs.iter().filter(|r| r.name == "guest_jit").all(|r| {
            r.stats.smc_blacklists > 0 && r.stats.cold_blocks < u64::from(r.scale) / 4 + 64
        })
    }
}

/// Runs the hostile suite: three kernels x three seeds derived from
/// `seed`.
pub fn hostile_suite(scale_div: u32, seed: u64) -> HostileSuite {
    let mut runs = Vec::new();
    for w in workloads::hostile_kernels() {
        let scale = (w.scale / scale_div).max(512);
        for i in 0..3u64 {
            runs.push(hostile_run(&w, scale, seed.wrapping_add(i)));
        }
    }
    HostileSuite { runs }
}

/// Result of running gcc with the observability layer fully on: the
/// run itself plus every rendered report surface.
#[derive(Clone, Debug)]
pub struct TraceRun {
    /// The instrumented run.
    pub el: ElRun,
    /// One-line recorder-counters summary.
    pub summary: String,
    /// Top-10 hot-path table (by attributed cycles).
    pub hot_path: String,
    /// Collapsed-stack ("folded") profile for flamegraph tooling.
    pub collapsed: String,
    /// `chrome://tracing` JSON export of the event ring.
    pub chrome_json: String,
    /// Full deterministic event-log rendering.
    pub render: String,
    /// Events held in the ring after the run.
    pub recorded: usize,
    /// Events lost to ring wraparound.
    pub dropped: u64,
}

/// The observability config used by the trace experiments: hot
/// promotion on a short fuse so the trace sees the full lifecycle
/// (translate → promote → evict under pressure).
fn trace_exp_cfg(trace: TraceConfig) -> Config {
    Config {
        heat_threshold: 64,
        hot_candidates: 1,
        max_cache_bundles: 600,
        trace,
        ..Config::default()
    }
}

/// Runs gcc (the INT workload with the largest working set, so the
/// trace sees translation churn, promotion, and eviction) with the
/// given trace config and renders every report surface.
pub fn trace_run(scale_div: u32, trace: TraceConfig) -> TraceRun {
    let all = workloads::spec_int();
    let w = all
        .iter()
        .find(|w| w.name == "gcc")
        .expect("gcc workload exists");
    let scale = (w.scale / scale_div).max(512);
    let (el, p) = run_el_keep(w, scale, trace_exp_cfg(trace));
    let t = p.tracer();
    TraceRun {
        summary: t.summary(),
        hot_path: t.hot_path_table(10),
        collapsed: t.collapsed_stacks(),
        chrome_json: t.chrome_trace_json(),
        render: t.render_text(),
        recorded: t.recorded(),
        dropped: t.dropped(),
        el,
    }
}

/// The `trace_overhead` experiment: the same gcc run three ways —
/// tracing disabled, tracing enabled with an empty event mask
/// (filtering must be free), and tracing fully on.
#[derive(Clone, Copy, Debug)]
pub struct TraceOverhead {
    /// Total cycles with tracing disabled (the baseline).
    pub off_cycles: u64,
    /// Total cycles with tracing enabled but every kind masked out.
    pub masked_cycles: u64,
    /// Total cycles with tracing fully on.
    pub on_cycles: u64,
    /// Events recorded by the fully-on run.
    pub events_recorded: usize,
    /// Mask-passing events offered by the fully-on run.
    pub events_seen: u64,
}

impl TraceOverhead {
    /// Cycle delta between the disabled and masked-out runs — the
    /// zero-cost-when-off contract demands exactly 0.
    pub fn off_delta(&self) -> u64 {
        self.masked_cycles.abs_diff(self.off_cycles)
    }

    /// Fractional cycle overhead of full tracing over the disabled
    /// baseline — the budget is < 2%.
    pub fn overhead(&self) -> f64 {
        (self.on_cycles as f64 - self.off_cycles as f64) / self.off_cycles.max(1) as f64
    }
}

/// Measures the tracing overhead on gcc under a representative
/// configuration (hot promotion on, default unbounded cache). The
/// per-event cost scales with lifecycle *churn*, so a deliberately
/// cache-thrashed run (like [`trace_run`]'s) records orders of
/// magnitude more translate/evict events — the event mask and sampling
/// stride are the knobs for those setups.
pub fn trace_overhead(scale_div: u32) -> TraceOverhead {
    let all = workloads::spec_int();
    let w = all
        .iter()
        .find(|w| w.name == "gcc")
        .expect("gcc workload exists");
    let scale = (w.scale / scale_div).max(512);
    let cfg = |trace| Config {
        heat_threshold: 64,
        hot_candidates: 1,
        trace,
        ..Config::default()
    };
    let off = run_el(w, scale, cfg(TraceConfig::default()));
    let masked = run_el(
        w,
        scale,
        cfg(TraceConfig {
            enabled: true,
            event_mask: EventMask::NONE,
            ..TraceConfig::default()
        }),
    );
    let (on, p) = run_el_keep(w, scale, cfg(TraceConfig::on()));
    TraceOverhead {
        off_cycles: off.cycles,
        masked_cycles: masked.cycles,
        on_cycles: on.cycles,
        events_recorded: p.tracer().recorded(),
        events_seen: p.tracer().seen(),
    }
}

/// The paper's in-text statistics, measured over the INT suite.
#[derive(Clone, Debug, Default)]
pub struct PaperStats {
    /// Fraction of cold blocks that reached the heating threshold
    /// (paper: 5-10%).
    pub heated_fraction: f64,
    /// Average IA-32 instructions per cold block (paper: 4-5).
    pub cold_block_insts: f64,
    /// Average IA-32 instructions per hot trace (paper: ~20).
    pub hot_trace_insts: f64,
    /// Native instructions per commit point in hot code (paper: ~10).
    pub insts_per_commit: f64,
    /// Speculation fix events (TOS+tag+mode+format) per thousand block
    /// entries — the paper reports 99-100% success.
    pub spec_fix_per_kilo_entry: f64,
    /// Cold translation overhead per IA-32 instruction, in native
    /// instructions emitted.
    pub cold_expansion: f64,
    /// Hot side exits taken per thousand hot-trace completions-ish
    /// (paper: ~6% of hot blocks suffer a premature exit).
    pub side_exits: u64,
}

/// Measures the in-text statistics.
pub fn paper_stats(scale_div: u32) -> PaperStats {
    let cfg = Config {
        heat_threshold: 256,
        hot_candidates: 2,
        ..Config::default()
    };
    let mut agg = PaperStats::default();
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    for w in workloads::spec_int() {
        let scale = (w.scale / scale_div).max(512);
        let el = run_el(&w, scale, cfg.clone());
        totals.0 += el.stats.cold_blocks;
        totals.1 += el.stats.hot_traces;
        totals.2 += el.stats.cold_ia32_insts;
        totals.3 += el.stats.hot_ia32_insts;
        totals.4 += el.stats.hot_native_insts;
        totals.5 += el.stats.hot_commit_points;
        totals.6 +=
            el.stats.tos_fixes + el.stats.tag_fixes + el.stats.mmx_fixes + el.stats.xmm_fixes;
        totals.7 += el.stats.cold_native_insts;
        totals.8 += el.stats.hot_side_exits;
    }
    agg.heated_fraction = totals.1 as f64 / totals.0.max(1) as f64;
    agg.cold_block_insts = totals.2 as f64 / totals.0.max(1) as f64;
    agg.hot_trace_insts = totals.3 as f64 / totals.1.max(1) as f64;
    agg.insts_per_commit = totals.4 as f64 / totals.5.max(1) as f64;
    agg.spec_fix_per_kilo_entry = totals.6 as f64; // rare in INT suite
    agg.cold_expansion = totals.7 as f64 / totals.2.max(1) as f64;
    agg.side_exits = totals.8;
    agg
}

/// One kernel's cold-vs-warm start comparison: simulated cycles to
/// execute the first `budget_slots` native instruction slots (the
/// time-to-first-N metric — translation overhead charges cycles but
/// executes no slots, so at a fixed slot budget both runs have made the
/// same guest progress and the cycle gap is pure start-up cost).
#[derive(Clone, Debug)]
pub struct WarmKernel {
    /// Benchmark name.
    pub name: &'static str,
    /// Native-slot budget both runs execute (the start-up window:
    /// 1/128 of the full run, clamped to 1,000..2,500 slots).
    pub budget_slots: u64,
    /// Cycles for the budgeted run starting from an empty cache.
    pub cold_cycles: u64,
    /// Cycles for the budgeted run warm-started from the saved image
    /// (plus static pre-translation).
    pub warm_cycles: u64,
    /// Cold/warm cycle ratio (> 1 means warm start is faster).
    pub ratio: f64,
    /// A warm full run matches the interpreter-oracle checksum.
    pub oracle_ok: bool,
    /// Blocks materialized from the image in the warm run.
    pub blocks_loaded: u64,
    /// Image records rejected in the warm run (should be 0 here).
    pub blocks_rejected: u64,
    /// Blocks added by the static pre-translation pass (measured in
    /// the warm full run, where pre-translation is enabled).
    pub pretranslated: u64,
}

/// One image-corruption leg: a warm run against a deliberately damaged
/// image must still complete with the oracle checksum, degrading per
/// extent (or wholesale for header damage) instead of dying.
#[derive(Clone, Debug)]
pub struct WarmChaosLeg {
    /// Which [`btgeneric::chaos::ImageFaultKind`] was injected.
    pub kind: &'static str,
    /// The run halted cleanly.
    pub completed: bool,
    /// Final checksum matches the interpreter oracle.
    pub oracle_ok: bool,
    /// `Stats::image_rejects` after the run.
    pub wholesale_rejects: u64,
    /// `Stats::image_blocks_rejected` after the run.
    pub blocks_rejected: u64,
    /// `Stats::image_blocks_loaded` after the run.
    pub blocks_loaded: u64,
    /// The counters show the expected degradation shape for this kind.
    pub counters_ok: bool,
}

impl WarmChaosLeg {
    /// Survival + correctness + expected counter shape.
    pub fn ok(&self) -> bool {
        self.completed && self.oracle_ok && self.counters_ok
    }
}

/// Results of the warm-start experiment (see [`warm_start`]).
#[derive(Clone, Debug)]
pub struct WarmStart {
    /// Per-kernel cold-vs-warm comparisons.
    pub kernels: Vec<WarmKernel>,
    /// Image-corruption chaos legs (run on gcc's image).
    pub chaos: Vec<WarmChaosLeg>,
}

impl WarmStart {
    /// Warm start beat cold start on every kernel.
    pub fn all_faster(&self) -> bool {
        self.kernels.iter().all(|k| k.ratio > 1.0)
    }

    /// Every warm full run matched the interpreter oracle.
    pub fn oracle_ok(&self) -> bool {
        self.kernels.iter().all(|k| k.oracle_ok)
    }

    /// Every corruption leg completed correctly with the expected
    /// degradation counters.
    pub fn chaos_ok(&self) -> bool {
        !self.chaos.is_empty() && self.chaos.iter().all(|l| l.ok())
    }

    /// Cold/warm ratio for a kernel by name (0.0 if absent).
    pub fn ratio_of(&self, name: &str) -> f64 {
        self.kernels
            .iter()
            .find(|k| k.name == name)
            .map_or(0.0, |k| k.ratio)
    }
}

/// Engine configuration for the warm-start experiment: defaults, plus
/// verify-on-dispatch so loaded code is integrity-checked like any
/// other translation.
fn warm_cfg() -> Config {
    Config {
        heat_threshold: 256,
        hot_candidates: 2,
        ..Config::default()
    }
}

/// Runs a budgeted leg (cold or warm) and returns the finished process.
/// The run may halt before the budget on small kernels; either way,
/// `machine.cycles` is the time spent reaching that much progress.
fn run_budgeted(w: &Workload, scale: u32, cfg: Config, budget: u64) -> Process<SimOs> {
    let img = build_image(w, scale);
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    match p.run(budget) {
        Outcome::Halted(_) | Outcome::InstLimit => {}
        other => panic!("budgeted {} died: {other:?}", w.name),
    }
    p
}

/// The warm-start experiment (`figures warmstart`): for each SPEC INT
/// kernel, a full cold run saves a warm-start image, then a cold and a
/// warm budgeted run race to the same native-slot budget — the warm
/// run loading the image. A warm *full* run (image plus static
/// pre-translation merged) checks oracle correctness end to end.
/// Finally, gcc's image is
/// deliberately damaged three ways ([`btgeneric::chaos::ImageFaultKind`])
/// and each warm
/// run against a damaged image must complete correctly by degrading to
/// on-demand translation.
pub fn warm_start(scale_div: u32) -> WarmStart {
    use btgeneric::chaos::{corrupt_image, ImageFaultKind};

    let dir = std::env::temp_dir();
    let tag = std::process::id();
    let mut kernels = Vec::new();
    let mut gcc_image: Vec<u8> = Vec::new();
    let mut gcc_scale = 0u32;
    for w in workloads::spec_int() {
        let scale = (w.scale / scale_div).max(512);
        let path = dir.join(format!("ia32el_warm_{tag}_{}.img", w.name));
        let oracle = oracle_result(&w, scale);

        // Full cold run: measures total progress and saves the image.
        let save_cfg = Config {
            save_image: Some(path.clone()),
            ..warm_cfg()
        };
        let img = build_image(&w, scale);
        let mut full = Process::launch_with(&img, SimOs::new(), save_cfg).expect("launch");
        match full.run(u64::MAX / 2) {
            Outcome::Halted(_) => {}
            other => panic!("warm_start {} full run died: {other:?}", w.name),
        }
        assert!(
            full.engine.stats.image_saves > 0,
            "{}: image save failed",
            w.name
        );
        // The start-up window: a fixed number of native slots, never a
        // fraction of the full run. Start-up cost is a constant, so a
        // proportional window would dilute it at large scales —
        // translation amortizes and both runs converge (mcf, nearly
        // all data and almost no code, converges first). Clamping to
        // the 1k..2.5k band keeps every kernel in the cold-start
        // regime the metric is about at any scale_div.
        let budget = (full.engine.machine.inst_count / 128).clamp(1_000, 2_500);

        // Time-to-first-N race: same budget, empty cache vs image. The
        // timed warm leg loads the image only: static pre-translation
        // walks the *static* CFG, which over-approximates what a short
        // run executes, so its front-loaded cost belongs to the
        // full-run leg below, not to the start-up window. Profile
        // restoration is excluded for the same reason: restored heat
        // fires eager hot compiles (a ~20x charge) that can never
        // amortize inside the window — re-heat is a long-run
        // investment, measured in the full-run leg.
        let cold = run_budgeted(&w, scale, warm_cfg(), budget);
        let warm_run_cfg = Config {
            load_image: Some(path.clone()),
            restore_profiles: false,
            ..warm_cfg()
        };
        let warm = run_budgeted(&w, scale, warm_run_cfg, budget);

        // Warm full run: image + static pre-translation merged, checked
        // end to end against the oracle.
        let full_cfg = Config {
            load_image: Some(path.clone()),
            pretranslate: true,
            ..warm_cfg()
        };
        let img = build_image(&w, scale);
        let mut wf = Process::launch_with(&img, SimOs::new(), full_cfg).expect("launch");
        let completed = matches!(wf.run(u64::MAX / 2), Outcome::Halted(_));
        let wf_result = wf.engine.mem.read(RESULT as u64, 8).unwrap_or(0);

        let cold_cycles = cold.engine.machine.cycles.max(1);
        let warm_cycles = warm.engine.machine.cycles.max(1);
        kernels.push(WarmKernel {
            name: w.name,
            budget_slots: budget,
            cold_cycles,
            warm_cycles,
            ratio: cold_cycles as f64 / warm_cycles as f64,
            oracle_ok: completed && wf_result == oracle,
            blocks_loaded: warm.engine.stats.image_blocks_loaded,
            blocks_rejected: warm.engine.stats.image_blocks_rejected,
            pretranslated: wf.engine.stats.pretranslated_blocks,
        });
        if w.name == "gcc" {
            gcc_image = std::fs::read(&path).expect("gcc image readable");
            gcc_scale = scale;
        }
        let _ = std::fs::remove_file(&path);
    }

    // Corruption legs: damage gcc's image three ways; every leg must
    // complete with the oracle checksum and the right counter shape.
    let gcc = workloads::spec_int()
        .into_iter()
        .find(|w| w.name == "gcc")
        .expect("gcc kernel exists");
    let oracle = oracle_result(&gcc, gcc_scale);
    let mut chaos = Vec::new();
    for (kind, name) in [
        (ImageFaultKind::Header, "header"),
        (ImageFaultKind::Truncate, "truncate"),
        (ImageFaultKind::StaleExtent, "stale-extent"),
    ] {
        let mut bytes = gcc_image.clone();
        assert!(
            corrupt_image(&mut bytes, kind, 0xC0FF_EE00 + chaos.len() as u64),
            "corrupt_image({kind:?}) found nothing to damage"
        );
        let path = dir.join(format!("ia32el_warm_{tag}_gcc_{name}.img"));
        std::fs::write(&path, &bytes).expect("write corrupted image");
        let cfg = Config {
            load_image: Some(path.clone()),
            ..warm_cfg()
        };
        let img = build_image(&gcc, gcc_scale);
        let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
        let completed = matches!(p.run(u64::MAX / 2), Outcome::Halted(_));
        let _ = std::fs::remove_file(&path);
        let result = p.engine.mem.read(RESULT as u64, 8).unwrap_or(0);
        let s = &p.engine.stats;
        let counters_ok = match kind {
            // Header damage must reject the whole image and load nothing.
            ImageFaultKind::Header => s.image_rejects > 0 && s.image_blocks_loaded == 0,
            // Truncation drops the tail records but keeps the head.
            ImageFaultKind::Truncate => s.image_blocks_rejected > 0,
            // A stale extent is rejected alone; the rest still loads.
            ImageFaultKind::StaleExtent => {
                s.image_blocks_rejected >= 1 && s.image_blocks_loaded >= 1
            }
        };
        chaos.push(WarmChaosLeg {
            kind: name,
            completed,
            oracle_ok: result == oracle,
            wholesale_rejects: s.image_rejects,
            blocks_rejected: s.image_blocks_rejected,
            blocks_loaded: s.image_blocks_loaded,
            counters_ok,
        });
    }
    WarmStart { kernels, chaos }
}

/// One fleet size's shared-vs-isolated measurement (see [`serving`]).
#[derive(Clone, Debug)]
pub struct ServingPoint {
    /// Concurrent guest sessions in the fleet.
    pub sessions: usize,
    /// Total simulated cycles across the shared-cache fleet.
    pub shared_cycles: u64,
    /// Total native slots executed across the shared-cache fleet.
    pub shared_slots: u64,
    /// Total cycles when every session runs with a private cache.
    pub isolated_cycles: u64,
    /// Total slots for the isolated baseline (same guest work).
    pub isolated_slots: u64,
    /// Organic cold translations across the fleet (dedup numerator).
    pub organic_cold: u64,
    /// Translations imported from the shared namespaces.
    pub shared_installs: u64,
    /// Unique EIPs published across all namespaces (dedup denominator).
    pub unique_eips: u64,
    /// Consults rejected by a stale generation tag or a denied page.
    pub gen_rejects: u64,
    /// Imports rejected by the source-bytes recheck.
    pub stale_rejects: u64,
    /// Shard lock acquisitions that had to block.
    pub lock_contention: u64,
    /// Merged dispatch-latency histogram of the shared fleet.
    pub hist: DispatchHist,
    /// Merged (count-weighted) histogram of the isolated baseline.
    pub iso_hist: DispatchHist,
    /// Every session's final checksum matched its kernel's oracle.
    pub oracle_ok: bool,
    /// Round-robin sweeps the scheduler ran.
    pub rounds: u64,
}

impl ServingPoint {
    /// Aggregate translated-slot throughput of the shared fleet over
    /// the isolated baseline (> 1 means sharing pays).
    pub fn throughput_ratio(&self) -> f64 {
        let shared = self.shared_slots as f64 / self.shared_cycles.max(1) as f64;
        let iso = self.isolated_slots as f64 / self.isolated_cycles.max(1) as f64;
        shared / iso
    }

    /// Cold-translation dedup ratio: organic translations fleet-wide
    /// over unique EIPs published (1.0 = every block translated once).
    pub fn dedup(&self) -> f64 {
        self.organic_cold as f64 / self.unique_eips.max(1) as f64
    }

    /// Shared-fleet slots per simulated megacycle.
    pub fn slots_per_mcycle(&self) -> f64 {
        self.shared_slots as f64 * 1e6 / self.shared_cycles.max(1) as f64
    }

    /// Isolated-baseline slots per simulated megacycle.
    pub fn iso_slots_per_mcycle(&self) -> f64 {
        self.isolated_slots as f64 * 1e6 / self.isolated_cycles.max(1) as f64
    }

    /// Shared p99 dispatch latency over the single-tenant p99.
    pub fn p99_ratio(&self) -> f64 {
        self.hist.percentile(99.0) as f64 / self.iso_hist.percentile(99.0).max(1) as f64
    }
}

/// Results of the multi-tenant serving experiment (see [`serving`]).
#[derive(Clone, Debug)]
pub struct Serving {
    /// One measurement per fleet size.
    pub points: Vec<ServingPoint>,
}

impl Serving {
    /// Every session of every fleet matched its interpreter oracle.
    pub fn oracle_ok(&self) -> bool {
        self.points.iter().all(|p| p.oracle_ok)
    }

    /// Dedup ratio within 1.1 at every fleet size.
    pub fn dedup_ok(&self) -> bool {
        self.points.iter().all(|p| p.dedup() <= 1.1)
    }

    /// Shared p99 dispatch latency within 3x single-tenant everywhere.
    pub fn p99_ok(&self) -> bool {
        self.points.iter().all(|p| p.p99_ratio() <= 3.0)
    }

    /// The headline gate: shared throughput at least 1.5x the isolated
    /// baseline at the 500-session point (or the largest fleet run).
    pub fn throughput_ok(&self) -> bool {
        self.points
            .iter()
            .find(|p| p.sessions >= 500)
            .or_else(|| self.points.last())
            .is_some_and(|p| p.throughput_ratio() >= 1.5)
    }
}

/// The serving configuration: heat instrumentation on (so profile
/// sharing has real counters to merge) but the promotion threshold out
/// of reach — hot translation is a ~20x charge that can never amortize
/// inside one short serving session, with or without sharing. The
/// isolated baseline uses the same config, so the comparison is pure
/// cache economics.
fn serving_cfg() -> Config {
    Config {
        heat_threshold: 1 << 30,
        hot_candidates: 2,
        ..Config::default()
    }
}

/// Per-kernel baseline for the serving experiment: the built image, the
/// oracle checksum, and one isolated run (exact for every isolated
/// session of that kernel, by determinism).
struct ServingKernel {
    img: ia32::asm::Image,
    oracle: u64,
    iso_slots: u64,
    iso_cycles: u64,
    iso_hist: DispatchHist,
}

/// Scheduler quantum for the serving fleets, in native slots.
const SERVING_QUANTUM: u64 = 4_000;
/// Admission-control cap: live engines at any moment (bounds memory —
/// a 2000-session fleet never holds more than this many guest images).
const SERVING_MAX_LIVE: usize = 64;

/// The multi-tenant serving experiment (`figures serving`): N sessions
/// over the 15 INT kernels (session i runs kernel i mod 15), time-sliced
/// by the cooperative scheduler, every same-kernel cohort sharing one
/// [`btgeneric::serving::SharedCache`] namespace. The isolated
/// baseline runs each kernel
/// once privately and scales by cohort size (exact by determinism).
/// Short sessions (high `scale_div`) put the fleet in the start-up
/// regime the experiment is about: cold translation dominates, so
/// sharing translations across the cohort is the whole win.
pub fn serving(scale_div: u32, counts: &[usize]) -> Serving {
    let cfg = serving_cfg();
    let mut kernels = workloads::spec_int();
    kernels.extend(workloads::indirect_kernels());
    let bases: Vec<ServingKernel> = kernels
        .iter()
        .map(|w| {
            // Serverless-style sessions: a far lower floor than the
            // long-run experiments, so each session is start-up
            // dominated — the regime where sharing translations is the
            // whole economics.
            let scale = (w.scale / scale_div).max(16);
            let img = build_image(w, scale);
            let oracle = oracle_result(w, scale);
            let mut p = Process::launch_with(&img, SimOs::new(), cfg.clone()).expect("launch");
            match p.run(u64::MAX / 2) {
                Outcome::Halted(_) => {}
                other => panic!("serving baseline {} died: {other:?}", w.name),
            }
            assert_eq!(
                p.engine.mem.read(RESULT as u64, 8).unwrap_or(0),
                oracle,
                "{}: isolated baseline diverged from the oracle",
                w.name
            );
            ServingKernel {
                img,
                oracle,
                iso_slots: p.engine.machine.inst_count,
                iso_cycles: p.engine.machine.cycles,
                iso_hist: p.engine.stats.dispatch_hist,
            }
        })
        .collect();
    let points = counts
        .iter()
        .map(|&n| serving_point(&bases, n, &cfg))
        .collect();
    Serving { points }
}

/// Runs one shared fleet of `n` sessions and measures it against the
/// precomputed isolated baseline.
fn serving_point(bases: &[ServingKernel], n: usize, cfg: &Config) -> ServingPoint {
    use btgeneric::serving::{namespace_key, SharedCache, DEFAULT_SHARDS};
    use btlib::serve::Scheduler;

    let shared = SharedCache::new(DEFAULT_SHARDS);
    let mut sched: Scheduler<SimOs> = Scheduler::new(SERVING_QUANTUM, SERVING_MAX_LIVE);
    let mut next = 0usize;
    let mut done = 0usize;
    let mut oracle_ok = true;
    let mut shared_slots = 0u64;
    let mut shared_cycles = 0u64;
    let mut organic_cold = 0u64;
    let mut shared_installs = 0u64;
    let mut gen_rejects = 0u64;
    let mut stale_rejects = 0u64;
    let mut lock_contention = 0u64;
    let mut hist = DispatchHist::default();
    loop {
        // Lazy admission: never materialize more than the live cap of
        // guest images, even for a 2000-session fleet.
        while next < n && sched.live() + sched.waiting() < SERVING_MAX_LIVE {
            let k = next % bases.len();
            let mut p =
                Process::launch_with(&bases[k].img, SimOs::new(), cfg.clone()).expect("launch");
            p.engine
                .attach_shared(shared.tenant(namespace_key(cfg, k as u64 + 1)));
            sched.admit(next as u64, p, u64::MAX / 2);
            next += 1;
        }
        let more = sched.tick();
        for (tag, p, out) in sched.take_completed() {
            match out {
                Outcome::Halted(_) => {}
                other => panic!("serving session {tag} died: {other:?}"),
            }
            let k = &bases[tag as usize % bases.len()];
            oracle_ok &= p.engine.mem.read(RESULT as u64, 8).unwrap_or(0) == k.oracle;
            shared_slots += p.engine.machine.inst_count;
            shared_cycles += p.engine.machine.cycles;
            organic_cold += p.engine.stats.cold_blocks;
            shared_installs += p.engine.stats.shared_installs;
            gen_rejects += p.engine.stats.shared_gen_rejects;
            stale_rejects += p.engine.stats.shared_stale_rejects;
            lock_contention += p.engine.stats.shared_lock_contention;
            hist.merge(&p.engine.stats.dispatch_hist);
            done += 1;
        }
        if !more && next >= n {
            break;
        }
    }
    assert_eq!(done, n, "every admitted session must complete");

    let mut isolated_slots = 0u64;
    let mut isolated_cycles = 0u64;
    let mut iso_hist = DispatchHist::default();
    for (k, base) in bases.iter().enumerate() {
        let cohort = n / bases.len() + usize::from(k < n % bases.len());
        isolated_slots += base.iso_slots * cohort as u64;
        isolated_cycles += base.iso_cycles * cohort as u64;
        for _ in 0..cohort {
            iso_hist.merge(&base.iso_hist);
        }
    }
    ServingPoint {
        sessions: n,
        shared_cycles,
        shared_slots,
        isolated_cycles,
        isolated_slots,
        organic_cold,
        shared_installs,
        unique_eips: shared.unique_eips(),
        gen_rejects,
        stale_rejects,
        lock_contention,
        hist,
        iso_hist,
        oracle_ok,
        rounds: sched.rounds(),
    }
}

/// One multi-tenant chaos storm (see [`serving_chaos`]): per-session
/// verdicts folded into fleet-level gates.
#[derive(Clone, Debug)]
pub struct ServingChaos {
    /// Storm seed.
    pub seed: u64,
    /// Sessions in the fleet.
    pub sessions: usize,
    /// Every session halted cleanly (stormy and clean alike).
    pub survived: bool,
    /// Every session matched its kernel's interpreter oracle.
    pub oracle_ok: bool,
    /// Two runs of the same fleet produced byte-identical per-session
    /// results, cycle counts, and statistics.
    pub deterministic: bool,
    /// Shared-namespace generation bumps (cross-tenant invalidations
    /// must actually fire for the storm to mean anything).
    pub gen_bumps: u64,
    /// Consults rejected by generation tags or denied pages.
    pub gen_rejects: u64,
    /// Translations imported from shared namespaces despite the storm.
    pub shared_installs: u64,
    /// Engine-side faults delivered across the fleet.
    pub faults: u64,
}

/// One run of the multi-tenant storm fleet: returns (all halted,
/// per-session records in completion order, faults delivered).
#[allow(clippy::type_complexity)]
fn serving_chaos_once(
    bases: &[(Workload, u32, ia32::asm::Image, u64)],
    seed: u64,
) -> (bool, Vec<(u64, u64, u64, Stats)>, u64) {
    use btgeneric::serving::{namespace_key, SharedCache, DEFAULT_SHARDS};
    use btlib::serve::Scheduler;

    let cfg = chaos_cfg();
    let shared = SharedCache::new(DEFAULT_SHARDS);
    let mut sched: Scheduler<SimOs> = Scheduler::new(SERVING_QUANTUM, 16);
    let n = bases.len() * 3;
    for i in 0..n {
        let k = i % bases.len();
        let (_, _, img, _) = &bases[k];
        // Even tenants get a full fault storm; odd tenants run clean in
        // the same namespaces and must stay correct through their
        // neighbours' invalidations.
        let stormy = i % 2 == 0;
        let plan = FaultPlan::storm(seed.wrapping_add(i as u64));
        let os = if stormy {
            SimOs::with_faults(SimOsFaults {
                fail_allocs: plan.os_alloc_failures,
                fail_syscalls: 0,
            })
        } else {
            SimOs::new()
        };
        let mut p = Process::launch_with(img, os, cfg.clone()).expect("launch");
        if stormy {
            p.engine.chaos = Some(plan);
        }
        p.engine
            .attach_shared(shared.tenant(namespace_key(&cfg, k as u64 + 1)));
        sched.admit(i as u64, p, u64::MAX / 2);
    }
    let mut survived = true;
    let mut records = Vec::new();
    let mut faults = 0u64;
    loop {
        let more = sched.tick();
        for (tag, p, out) in sched.take_completed() {
            survived &= matches!(out, Outcome::Halted(_));
            faults += p
                .engine
                .chaos
                .as_ref()
                .map_or(0, |plan| plan.injected.iter().sum::<u64>());
            records.push((
                tag,
                p.engine.mem.read(RESULT as u64, 8).unwrap_or(0),
                p.engine.machine.cycles,
                p.engine.stats.clone(),
            ));
        }
        if !more {
            break;
        }
    }
    (survived, records, faults)
}

/// The multi-tenant chaos storm: three sessions each of gcc, mcf, and
/// the guest-JIT kernel share per-kernel namespaces while every even
/// tenant runs under a full [`FaultPlan::storm`]. One tenant's SMC
/// invalidations, evictions, and governor blacklists must never hand a
/// neighbour a stale translation: every session (stormy or clean) must
/// halt with its oracle checksum, and the whole fleet must replay
/// byte-identically.
pub fn serving_chaos(scale_div: u32, seed: u64) -> ServingChaos {
    let mut roster: Vec<Workload> = workloads::spec_int()
        .into_iter()
        .filter(|w| w.name == "gcc" || w.name == "mcf")
        .collect();
    roster.extend(
        workloads::hostile_kernels()
            .into_iter()
            .filter(|w| w.name == "guest_jit"),
    );
    let bases: Vec<(Workload, u32, ia32::asm::Image, u64)> = roster
        .into_iter()
        .map(|w| {
            let scale = (w.scale / scale_div).max(512);
            let img = build_image(&w, scale);
            let oracle = oracle_result(&w, scale);
            (w, scale, img, oracle)
        })
        .collect();
    let (survived_a, a, faults) = serving_chaos_once(&bases, seed);
    let (survived_b, b, _) = serving_chaos_once(&bases, seed);
    let oracle_ok = a
        .iter()
        .all(|(tag, result, _, _)| *result == bases[*tag as usize % bases.len()].3);
    let agg = |f: fn(&Stats) -> u64| a.iter().map(|(_, _, _, s)| f(s)).sum::<u64>();
    ServingChaos {
        seed,
        sessions: a.len(),
        survived: survived_a && survived_b,
        oracle_ok,
        deterministic: a == b,
        gen_bumps: agg(|s| s.shared_gen_bumps),
        gen_rejects: agg(|s| s.shared_gen_rejects),
        shared_installs: agg(|s| s.shared_installs),
        faults,
    }
}

// ---------------------------------------------------------------------------
// Learned superinstruction templates (`figures templates`).
// ---------------------------------------------------------------------------

/// One kernel's superinstruction comparison: the same run with
/// `enable_superinst` off and on.
#[derive(Clone, Debug)]
pub struct TemplateRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Member of the 12-kernel SPEC INT roster (the indirect kernels
    /// ride along but are held to the floor only).
    pub spec_int: bool,
    /// Total simulated cycles with fusion off.
    pub off_cycles: u64,
    /// Total simulated cycles with fusion on.
    pub on_cycles: u64,
    /// off/on cycle ratio (> 1 means fusion pays).
    pub ratio: f64,
    /// Idioms the miner installed (post-validation).
    pub mined: u64,
    /// Idioms the differential gate demoted.
    pub blacklists: u64,
    /// Fused template firings.
    pub hits: u64,
    /// IA-32 slots covered by firings.
    pub fused_slots: u64,
    /// IA-32 slots scanned while a table was active.
    pub eligible_slots: u64,
    /// fused/eligible.
    pub hit_rate: f64,
    /// Both legs matched the interpreter/hardware oracle.
    pub oracle_ok: bool,
}

/// The warm-start leg: a persisted idiom table must fuse from the very
/// first translation of a fresh session.
#[derive(Clone, Debug)]
pub struct TemplateWarm {
    /// Idioms the saving session persisted into the image.
    pub idioms_persisted: u64,
    /// Blocks the warm session regenerated from the image. Zero means
    /// the image was rejected — the attribution below would be void.
    pub blocks_loaded: u64,
    /// Fused firings in the warm session. Installing the imported
    /// table marks the cache as mined, so a local mining pass can
    /// never run — every firing is attributable to the imported table.
    pub hits: u64,
    /// Both sessions matched the oracle.
    pub oracle_ok: bool,
}

/// Results of the superinstruction experiment (see [`templates`]).
#[derive(Clone, Debug)]
pub struct Templates {
    /// Per-kernel off/on pairs (12 SPEC INT + 3 indirect kernels).
    pub rows: Vec<TemplateRow>,
    /// The persisted-table warm-start leg (gzip).
    pub warm: TemplateWarm,
}

impl Templates {
    /// Geometric-mean off/on cycle ratio across all kernels.
    pub fn geomean(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        (self.rows.iter().map(|r| r.ratio.ln()).sum::<f64>() / n).exp()
    }

    /// The worst per-kernel ratio (the regression floor input).
    pub fn min_ratio(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.ratio)
            .fold(f64::INFINITY, f64::min)
    }

    /// Every SPEC INT kernel fused at least one idiom.
    pub fn spec_hits_nonzero(&self) -> bool {
        self.rows.iter().filter(|r| r.spec_int).all(|r| r.hits > 0)
    }

    /// Every leg (off, on, save, warm) matched its oracle.
    pub fn oracle_ok(&self) -> bool {
        self.rows.iter().all(|r| r.oracle_ok) && self.warm.oracle_ok
    }
}

/// Engine configuration for the superinstruction experiment: a short
/// hot fuse (mining runs at the first hot session, so the table must
/// exist early enough to matter) with the typed-IR hot pipeline on.
fn templates_cfg(superinst: bool) -> Config {
    Config {
        heat_threshold: 64,
        hot_candidates: 2,
        enable_hot_ir: true,
        enable_superinst: superinst,
        ..Config::default()
    }
}

/// The learned-superinstruction experiment (`figures templates`): all
/// 15 kernels run with `enable_superinst` off and on (identical
/// otherwise), plus the warm-start leg ([`TemplateWarm`]).
pub fn templates(scale_div: u32) -> Templates {
    let spec = workloads::spec_int();
    let n_spec = spec.len();
    let mut kernels = spec;
    kernels.extend(workloads::indirect_kernels());
    let rows = kernels
        .iter()
        .enumerate()
        .map(|(k, w)| {
            let scale = (w.scale / scale_div).max(512);
            let oracle = oracle_result(w, scale);
            let off = run_el(w, scale, templates_cfg(false));
            let on = run_el(w, scale, templates_cfg(true));
            let eligible = on.stats.superinst_eligible_slots;
            TemplateRow {
                name: w.name,
                spec_int: k < n_spec,
                off_cycles: off.cycles,
                on_cycles: on.cycles,
                ratio: off.cycles as f64 / on.cycles.max(1) as f64,
                mined: on.stats.superinst_mined_idioms,
                blacklists: on.stats.superinst_blacklists,
                hits: on.stats.superinst_hits,
                fused_slots: on.stats.superinst_fused_slots,
                eligible_slots: eligible,
                hit_rate: on.stats.superinst_fused_slots as f64 / eligible.max(1) as f64,
                oracle_ok: off.result == oracle && on.result == oracle,
            }
        })
        .collect();
    Templates {
        rows,
        warm: templates_warm_leg(scale_div),
    }
}

/// Runs the warm-start leg: gzip mines and saves, a fresh session
/// loads the image under the *same* fingerprinted config (profiles not
/// restored). Installing the persisted table marks the cache as mined,
/// so local mining can never run in the warm session — every fused
/// firing is attributable to the imported table, and the blocks
/// regenerated at load time fuse before the first guest dispatch.
fn templates_warm_leg(scale_div: u32) -> TemplateWarm {
    let w = workloads::spec_int()
        .into_iter()
        .find(|w| w.name == "gzip")
        .expect("gzip is in the roster");
    let scale = (w.scale / scale_div).max(512);
    let oracle = oracle_result(&w, scale);
    let path = std::env::temp_dir().join(format!(
        "ia32el_templates_{}_{}.img",
        std::process::id(),
        scale
    ));
    let save = run_el(
        &w,
        scale,
        Config {
            save_image: Some(path.clone()),
            ..templates_cfg(true)
        },
    );
    let warm = run_el(
        &w,
        scale,
        Config {
            load_image: Some(path.clone()),
            restore_profiles: false,
            ..templates_cfg(true)
        },
    );
    let _ = std::fs::remove_file(&path);
    TemplateWarm {
        idioms_persisted: save.stats.superinst_mined_idioms,
        blocks_loaded: warm.stats.image_blocks_loaded,
        hits: warm.stats.superinst_hits,
        oracle_ok: save.result == oracle && warm.result == oracle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every workload must compute the same checksum under the EL as on
    /// the IA-32 hardware model (end-to-end correctness at scale).
    #[test]
    fn el_matches_ia32_hw_checksums() {
        let mut all = workloads::spec_int();
        all.extend(workloads::spec_fp());
        all.push(workloads::sysmark());
        all.push(workloads::misalign_heavy());
        let cfg = Config {
            heat_threshold: 64,
            hot_candidates: 1,
            ..Config::default()
        };
        for w in &all {
            let scale = (w.scale / 100).max(300);
            let el = run_el(w, scale, cfg.clone());
            let hw = run_ia32_hw(w, scale, ia32::timing::Timing::default());
            assert_eq!(
                el.result, hw.result,
                "{}: EL and IA-32 hardware disagree",
                w.name
            );
        }
    }

    #[test]
    fn hot_beats_cold() {
        let ratio = hot_vs_cold(40);
        assert!(ratio > 1.2, "hot code must beat cold code, got {ratio:.2}x");
    }

    #[test]
    fn misalignment_avoidance_pays() {
        let (_, _, speedup) = misalign_speedup(40);
        assert!(speedup > 2.0, "avoidance speedup too small: {speedup:.2}x");
    }

    /// The acceptance bar for the fault-injection harness: a storm of
    /// at least 100 faults across at least 4 kinds over gcc and mcf,
    /// every run halting with the oracle-correct result, and the
    /// degradation ladder visibly doing the recovering.
    #[test]
    fn chaos_storm_survives_and_recovers() {
        let s = chaos_storm(200, 0xC0FFEE);
        for r in &s.runs {
            eprintln!(
                "{}: injected {:?}, os denials {}, overhead {:.2}x",
                r.name, r.injected, r.stats.os_alloc_failures, r.recovery_overhead
            );
        }
        assert!(s.survived(), "a storm run failed to halt");
        assert!(s.oracle_ok(), "a storm run diverged from the oracle");
        assert!(
            s.total_faults() >= 100,
            "too few faults delivered: {}",
            s.total_faults()
        );
        assert!(s.kinds_hit() >= 4, "only {} fault kinds hit", s.kinds_hit());
        let agg = |f: fn(&Stats) -> u64| s.runs.iter().map(|r| f(&r.stats)).sum::<u64>();
        assert!(agg(|st| st.ladder_recoveries) > 0, "no ladder recoveries");
        assert!(agg(|st| st.demotions) > 0, "no demotions");
        assert!(agg(|st| st.interp_fallbacks) > 0, "no interp fallbacks");
        assert!(
            agg(|st| st.integrity_evictions) > 0,
            "no integrity evictions"
        );
    }

    /// The observability cost contract: tracing off (or fully masked)
    /// is cycle-identical to an untraced run; fully on stays under the
    /// 2% budget while actually recording the lifecycle.
    #[test]
    fn trace_overhead_within_budget() {
        let o = trace_overhead(400);
        assert_eq!(
            o.off_delta(),
            0,
            "masked tracing must be cycle-identical to disabled: {} vs {}",
            o.masked_cycles,
            o.off_cycles
        );
        assert!(o.events_recorded > 0, "the on-run recorded nothing");
        assert!(
            o.overhead() >= 0.0 && o.overhead() < 0.02,
            "tracing overhead out of budget: {:.4}% ({} -> {} cycles)",
            o.overhead() * 100.0,
            o.off_cycles,
            o.on_cycles
        );
    }

    #[test]
    fn trace_run_produces_reports() {
        let tr = trace_run(400, btgeneric::trace::TraceConfig::on());
        assert!(tr.recorded > 0, "no events recorded");
        assert!(
            tr.collapsed.contains("el;cold;block_"),
            "collapsed stacks missing cold frames:\n{}",
            tr.collapsed
        );
        assert!(tr.chrome_json.starts_with("{\"traceEvents\":["));
        assert!(tr.hot_path.contains("dispatch"), "hot-path table header");
        assert!(
            tr.el.stats.hot_traces > 0,
            "experiment config must promote hot traces"
        );
    }

    /// The indirect-acceleration acceptance bar: both runs stay
    /// oracle-correct, IndirectMiss round-trips drop at least 20%, and
    /// total simulated cycles improve at least 5% geomean across the
    /// call-heavy kernels.
    #[test]
    fn indirect_acceleration_pays() {
        let ip = indirect_pressure(20);
        for r in &ip.rows {
            let w = workloads::indirect_kernels()
                .into_iter()
                .find(|w| w.name == r.name)
                .unwrap();
            let scale = (w.scale / 20).max(512);
            let hw = run_ia32_hw(&w, scale, ia32::timing::Timing::default());
            assert_eq!(r.before.result, hw.result, "{}: accel-off diverged", r.name);
            assert_eq!(r.after.result, hw.result, "{}: accel-on diverged", r.name);
            eprintln!(
                "{}: misses {} -> {}, cycles {} -> {} | {}",
                r.name,
                r.before.stats.indirect_misses,
                r.after.stats.indirect_misses,
                r.before.cycles,
                r.after.cycles,
                r.after.stats.indirect_summary()
            );
        }
        let accel = |f: fn(&Stats) -> u64| ip.rows.iter().map(|r| f(&r.after.stats)).sum::<u64>();
        assert!(accel(|s| s.ic_hits) > 0, "inline caches never hit");
        assert!(accel(|s| s.shadow_hits) > 0, "shadow stack never hit");
        assert!(
            ip.miss_reduction() >= 0.20,
            "IndirectMiss round-trips must drop >= 20%, got {:.1}%",
            ip.miss_reduction() * 100.0
        );
        assert!(
            ip.cycle_geomean() >= 1.05,
            "cycle geomean must improve >= 5%, got {:.3}x",
            ip.cycle_geomean()
        );
    }

    /// The hot-IR acceptance gate (mirrors the engine-level
    /// `chaos::indirect_accel_chaos_is_deterministic_and_oracle_correct`
    /// at workload scale): every kernel — the twelve Figure-5 INT
    /// kernels plus the three call-heavy indirect kernels — under a
    /// seeded fault storm with `enable_hot_ir` on must halt with the
    /// hardware-model result, and two runs of the same (kernel, seed)
    /// pair must produce byte-identical statistics and cycle counts.
    #[test]
    fn hot_ir_chaos_is_deterministic_and_oracle_correct() {
        let mut kernels = workloads::spec_int();
        kernels.extend(workloads::indirect_kernels());
        assert_eq!(kernels.len(), 15, "the suite covers all 15 kernels");
        let cfg = Config {
            enable_hot_ir: true,
            ..chaos_cfg()
        };
        let mut ir_traces = 0u64;
        for w in &kernels {
            let scale = (w.scale / 400).max(512);
            for seed in [11u64, 22, 33] {
                let a = chaos_run_cfg(w, scale, seed, cfg.clone());
                let b = chaos_run_cfg(w, scale, seed, cfg.clone());
                assert!(a.survived, "{} seed {seed}: storm run died", w.name);
                assert!(
                    a.oracle_ok,
                    "{} seed {seed}: diverged from the oracle",
                    w.name
                );
                assert_eq!(
                    a.stats, b.stats,
                    "{} seed {seed}: statistics must be byte-identical",
                    w.name
                );
                assert_eq!(
                    a.injected, b.injected,
                    "{} seed {seed}: fault schedules must replay identically",
                    w.name
                );
                assert_eq!(
                    a.recovery_overhead.to_bits(),
                    b.recovery_overhead.to_bits(),
                    "{} seed {seed}: cycle counts must be byte-identical",
                    w.name
                );
                ir_traces += a.stats.hot_ir_traces;
            }
        }
        assert!(ir_traces > 0, "the IR pipeline never compiled a trace");
    }

    /// The superinstruction acceptance gate: the full 15-kernel suite
    /// under the seeded fault storm with `enable_superinst` on must
    /// stay oracle-correct and replay byte-identically — mining,
    /// validation, and both peepholes are all deterministic functions
    /// of (kernel, seed) — and the idiom tables must actually fire
    /// somewhere in the suite.
    #[test]
    fn superinst_chaos_is_deterministic_and_oracle_correct() {
        let mut kernels = workloads::spec_int();
        kernels.extend(workloads::indirect_kernels());
        assert_eq!(kernels.len(), 15, "the suite covers all 15 kernels");
        let cfg = Config {
            enable_hot_ir: true,
            enable_superinst: true,
            ..chaos_cfg()
        };
        let mut hits = 0u64;
        let mut mined = 0u64;
        for w in &kernels {
            let scale = (w.scale / 400).max(512);
            for seed in [11u64, 22, 33] {
                let a = chaos_run_cfg(w, scale, seed, cfg.clone());
                let b = chaos_run_cfg(w, scale, seed, cfg.clone());
                assert!(a.survived, "{} seed {seed}: storm run died", w.name);
                assert!(
                    a.oracle_ok,
                    "{} seed {seed}: diverged from the oracle",
                    w.name
                );
                assert_eq!(
                    a.stats, b.stats,
                    "{} seed {seed}: statistics must be byte-identical",
                    w.name
                );
                assert_eq!(
                    a.injected, b.injected,
                    "{} seed {seed}: fault schedules must replay identically",
                    w.name
                );
                assert_eq!(
                    a.recovery_overhead.to_bits(),
                    b.recovery_overhead.to_bits(),
                    "{} seed {seed}: cycle counts must be byte-identical",
                    w.name
                );
                hits += a.stats.superinst_hits;
                mined += a.stats.superinst_mined_idioms;
            }
        }
        assert!(mined > 0, "the miner never produced an idiom table");
        assert!(hits > 0, "no fused template ever fired under chaos");
    }

    /// Targeted [`FaultKind::TemplateSynth`] storm: every synthesized
    /// template is corrupted before validation, so the differential
    /// gate must blacklist each one — demotion, never divergence. The
    /// run stays oracle-correct (fused paths that would misexecute are
    /// simply not installed), replays byte-identically, and the
    /// blacklist counter proves the gate actually caught corruption.
    #[test]
    fn template_synth_chaos_is_caught_by_validation_gate() {
        let cfg = Config {
            enable_hot_ir: true,
            enable_superinst: true,
            ..chaos_cfg()
        };
        let suite = workloads::spec_int();
        let mut blacklists = 0u64;
        for seed in [7u64, 19, 42] {
            let w = &suite[seed as usize % suite.len()];
            let scale = (w.scale / 400).max(512);
            let plan = FaultPlan::new(seed).with(FaultKind::TemplateSynth, 1000, 64);
            let a = chaos_run_plan(w, scale, plan.clone(), cfg.clone());
            let b = chaos_run_plan(w, scale, plan, cfg.clone());
            assert!(
                a.survived,
                "{} seed {seed}: corruption storm killed the run",
                w.name
            );
            assert!(
                a.oracle_ok,
                "{} seed {seed}: a corrupted template leaked into execution",
                w.name
            );
            assert_eq!(
                a.stats, b.stats,
                "{} seed {seed}: demotion must replay deterministically",
                w.name
            );
            blacklists += a.stats.superinst_blacklists;
        }
        assert!(
            blacklists > 0,
            "TemplateSynth fired on no template — the gate was never exercised"
        );
    }

    /// The hostile-guest acceptance bar: every (kernel, seed) trial
    /// survives the combined signal + fault storm twice with
    /// byte-identical statistics, matches the signal-free oracle,
    /// actually gets interrupted, reconciles every delivered signal
    /// with a `sigreturn`, and the guest JIT stays bounded.
    #[test]
    fn hostile_suite_survives_and_is_transparent() {
        let hs = hostile_suite(200, 0x51C);
        for r in &hs.runs {
            eprintln!(
                "{} seed {:#x}: ok={}{}{}, overhead {:.2}x, deferrals {}, sigreturns {} | {}",
                r.name,
                r.seed,
                u8::from(r.survived),
                u8::from(r.oracle_ok),
                u8::from(r.deterministic),
                r.recovery_overhead,
                r.sig_deferrals,
                r.sigreturns,
                r.stats.hostile_summary()
            );
        }
        assert!(hs.survived(), "a hostile run died");
        assert!(hs.oracle_ok(), "a hostile run diverged from the oracle");
        assert!(hs.deterministic(), "a hostile run failed to replay");
        assert!(
            hs.signals_delivered() > 0,
            "the storms never delivered a signal"
        );
        assert!(
            hs.sigreturns_reconciled(),
            "a delivered signal never sigreturned"
        );
        assert!(
            hs.guest_jit_bounded(),
            "guest_jit: governor never tripped or retranslations unbounded"
        );
    }

    /// The multi-tenant serving smoke: a small fleet over all 15
    /// kernels must dedup cold translation across same-kernel cohorts,
    /// beat the isolated baseline on aggregate throughput, stay within
    /// the dispatch-latency budget, and keep every tenant
    /// oracle-correct.
    #[test]
    fn serving_shares_translations_and_stays_correct() {
        let sv = serving(2_000, &[45]);
        let p = &sv.points[0];
        eprintln!(
            "serving 45: {:.1} vs {:.1} slots/Mcy ({:.2}x), dedup {:.3} \
             ({} organic / {} unique, {} imported), p99 {} vs {} cy, rounds {}",
            p.slots_per_mcycle(),
            p.iso_slots_per_mcycle(),
            p.throughput_ratio(),
            p.dedup(),
            p.organic_cold,
            p.unique_eips,
            p.shared_installs,
            p.hist.percentile(99.0),
            p.iso_hist.percentile(99.0),
            p.rounds
        );
        assert!(p.oracle_ok, "a tenant diverged from its oracle");
        assert!(
            p.shared_installs > 0,
            "the fleet never imported a shared translation"
        );
        assert!(
            p.dedup() <= 1.1,
            "cold translation not deduplicated: {:.3}",
            p.dedup()
        );
        assert!(
            p.throughput_ratio() > 1.0,
            "sharing must beat isolation even at 45 sessions: {:.3}x",
            p.throughput_ratio()
        );
        assert!(
            p.p99_ratio() <= 3.0,
            "shared p99 dispatch latency blew the 3x budget: {:.2}x",
            p.p99_ratio()
        );
    }

    /// The multi-tenant chaos bar: stormy and clean tenants sharing
    /// namespaces all halt oracle-correct, the cross-tenant
    /// invalidation machinery actually fires, and the whole fleet
    /// replays byte-identically — at three pinned seeds.
    #[test]
    fn serving_chaos_storms_stay_coherent() {
        for seed in [0xA11CE, 0xB0B, 0xCAB1E] {
            let sc = serving_chaos(400, seed);
            eprintln!(
                "serving_chaos seed {seed:#x}: {} sessions, faults {}, gen bumps {}, \
                 gen rejects {}, imports {}",
                sc.sessions, sc.faults, sc.gen_bumps, sc.gen_rejects, sc.shared_installs
            );
            assert!(sc.survived, "seed {seed:#x}: a tenant died");
            assert!(
                sc.oracle_ok,
                "seed {seed:#x}: a tenant diverged from its oracle"
            );
            assert!(
                sc.deterministic,
                "seed {seed:#x}: the fleet failed to replay byte-identically"
            );
            assert!(
                sc.gen_bumps > 0,
                "seed {seed:#x}: no cross-tenant invalidation ever fired"
            );
            assert!(
                sc.shared_installs > 0,
                "seed {seed:#x}: the storm starved all sharing"
            );
        }
    }

    #[test]
    fn eviction_beats_flushing_under_pressure() {
        let cp = cache_pressure(400, 250);
        assert!(cp.evict.stats.evictions > 0, "eviction run must evict");
        assert_eq!(cp.evict.stats.cache_flushes, 0, "no fallback flushes");
        assert!(cp.flush.stats.cache_flushes > 0, "flush run must flush");
        assert!(
            cp.evict.stats.cold_blocks < cp.flush.stats.cold_blocks,
            "eviction must retranslate less: {} vs {}",
            cp.evict.stats.cold_blocks,
            cp.flush.stats.cold_blocks
        );
        assert!(
            cp.evict.cycles < cp.flush.cycles,
            "eviction must cost fewer cycles: {} vs {}",
            cp.evict.cycles,
            cp.flush.cycles
        );
    }
}
