//! The BTOS API — the binary-level interface between the OS-independent
//! translator (BTGeneric, this crate) and the thin OS abstraction layer
//! (BTLib, the `btlib` crate), per §3 of the paper.
//!
//! The protocol is bidirectional: BTGeneric calls *down* for system
//! services (memory, syscalls, logging); BTLib calls *down into*
//! BTGeneric for translation and for IA-32 state reconstruction when the
//! OS delivers an exception. Versioning is negotiated at load time
//! (paper: "IA-32 EL uses its proprietary protocol to ensure that BTLib
//! and BTGeneric versions match each other").

use ia32::cpu::Cpu;
use ia32::mem::{GuestMem, Prot};

/// BTGeneric's BTOS API major version. Major versions must match
/// exactly.
pub const BTOS_MAJOR: u16 = 2;
/// BTGeneric's BTOS API minor version. BTLib may be newer (backward
/// compatible) but not older than the translator requires.
/// Minor 2 added [`BtOs::alloc_pages`] (recoverable translator-side
/// allocation). Minor 3 added the asynchronous-signal surface
/// ([`BtOs::poll_signal`] / [`BtOs::signal_due`] /
/// [`BtOs::signals_pending`] / [`BtOs::raise_signal`]); all four
/// default to "no signals", matching pre-2.3 BTLib behaviour.
pub const BTOS_MINOR: u16 = 3;
/// The oldest BTLib minor version this BTGeneric can work with.
pub const BTOS_MIN_COMPAT_MINOR: u16 = 0;

/// A component's advertised version.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Version {
    /// Major (breaking) version.
    pub major: u16,
    /// Minor (additive) version.
    pub minor: u16,
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

/// Errors from the version handshake.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HandshakeError {
    /// Major versions differ.
    MajorMismatch {
        /// BTGeneric's version.
        btgeneric: Version,
        /// BTLib's version.
        btlib: Version,
    },
    /// BTLib is older than the minimum compatible minor.
    BtlibTooOld {
        /// BTLib's version.
        btlib: Version,
        /// Minimum required minor.
        required_minor: u16,
    },
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::MajorMismatch { btgeneric, btlib } => write!(
                f,
                "BTOS major version mismatch: BTGeneric {btgeneric}, BTLib {btlib}"
            ),
            HandshakeError::BtlibTooOld {
                btlib,
                required_minor,
            } => write!(
                f,
                "BTLib {btlib} older than required minor {required_minor}"
            ),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Performs the BTGeneric-side version check of the handshake.
///
/// # Errors
///
/// [`HandshakeError`] when the BTLib version is incompatible.
pub fn negotiate(btlib: Version) -> Result<Version, HandshakeError> {
    let ours = Version {
        major: BTOS_MAJOR,
        minor: BTOS_MINOR,
    };
    if btlib.major != ours.major {
        return Err(HandshakeError::MajorMismatch {
            btgeneric: ours,
            btlib,
        });
    }
    // The floor is currently 0 (every minor is compatible); the check
    // stays so raising BTOS_MIN_COMPAT_MINOR is a one-line change.
    #[allow(clippy::absurd_extreme_comparisons)]
    if btlib.minor < BTOS_MIN_COMPAT_MINOR {
        return Err(HandshakeError::BtlibTooOld {
            btlib,
            required_minor: BTOS_MIN_COMPAT_MINOR,
        });
    }
    // The effective protocol version is the lower of the two minors.
    Ok(Version {
        major: ours.major,
        minor: ours.minor.min(btlib.minor),
    })
}

/// What the OS layer decided after a system call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyscallOutcome {
    /// Continue executing (result already written to guest state).
    Continue,
    /// The application exited with this status.
    Exit(i32),
}

/// What the OS layer decided after an application-visible exception.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExceptionOutcome {
    /// Deliver to the registered IA-32 handler at this EIP: the engine
    /// builds the guest exception frame and redirects execution.
    DeliverTo(u32),
    /// No handler: terminate the process (what the paper's "escalate to
    /// the OS default action" amounts to for our workloads).
    Terminate,
}

/// An IA-32 exception as presented to the OS layer, already converted
/// from the Itanium-side fault (paper §4: "exception code may be
/// modified by the handler to match the exception that should have
/// occurred in the IA-32 code").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuestException {
    /// `#PF` — page fault at the given linear address.
    PageFault {
        /// Faulting linear address.
        addr: u32,
        /// True for writes.
        write: bool,
    },
    /// `#DE` — divide error.
    DivideError,
    /// `#UD` — invalid opcode.
    InvalidOpcode,
    /// `#MF` — x87 FP error (stack fault).
    FpStackFault,
}

/// The BTOS API: everything BTGeneric needs from the OS.
///
/// One implementation per supported OS personality lives in `btlib`.
pub trait BtOs {
    /// The OS layer's advertised BTOS version.
    fn version(&self) -> Version;

    /// Handles an IA-32 system call (`int 0x80` in the Linux-like
    /// personality). Guest registers carry arguments per the OS ABI;
    /// results are written back into `cpu` (and guest memory).
    fn syscall(&mut self, cpu: &mut Cpu, mem: &mut GuestMem) -> SyscallOutcome;

    /// Asks the OS layer what to do with an application exception.
    /// `cpu` is the precise reconstructed IA-32 state.
    fn exception(&mut self, exc: GuestException, cpu: &Cpu) -> ExceptionOutcome;

    /// Allocates translator-side memory (profile counters, lookup
    /// tables) at a fixed address. Returns false on ENOMEM — a
    /// *recoverable* refusal: the engine degrades (shared overflow
    /// profile slots) instead of aborting. The default implementation
    /// never fails, matching pre-2.2 BTLib behaviour.
    fn alloc_pages(&mut self, mem: &mut GuestMem, addr: u64, len: u64) -> bool {
        mem.map(addr, len, Prot::rw());
        true
    }

    /// Consumes the next deliverable asynchronous signal whose arrival
    /// cycle is at or before `now`, returning the registered handler
    /// EIP. Consuming enters the handler (the OS layer tracks nesting
    /// depth until the matching `sigreturn`); signals at the depth
    /// limit stay queued. Default: no signal facility.
    fn poll_signal(&mut self, now: u64) -> Option<u32> {
        let _ = now;
        None
    }

    /// Non-consuming peek: would [`BtOs::poll_signal`] deliver at
    /// `now`? The engine uses this mid-trace to decide whether a
    /// commit-point hunt is worth starting.
    fn signal_due(&self, now: u64) -> bool {
        let _ = now;
        false
    }

    /// True while any signal is queued (even if not yet due): the
    /// engine then bounds execution bursts to its signal quantum so
    /// arrival cycles are honored promptly.
    fn signals_pending(&self) -> bool {
        false
    }

    /// Enqueues one signal arriving immediately (the chaos harness's
    /// `AsyncSignal` injection point). Returns false if the guest has
    /// no handler registered (the signal is discarded).
    fn raise_signal(&mut self) -> bool {
        false
    }

    /// Diagnostic logging channel.
    fn log(&mut self, msg: &str) {
        let _ = msg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_accepts_matching() {
        let v = negotiate(Version {
            major: BTOS_MAJOR,
            minor: BTOS_MINOR,
        })
        .unwrap();
        assert_eq!(v.major, BTOS_MAJOR);
        assert_eq!(v.minor, BTOS_MINOR);
    }

    #[test]
    fn handshake_negotiates_older_minor() {
        let v = negotiate(Version {
            major: BTOS_MAJOR,
            minor: BTOS_MIN_COMPAT_MINOR,
        })
        .unwrap();
        assert_eq!(v.minor, BTOS_MIN_COMPAT_MINOR);
    }

    #[test]
    fn handshake_accepts_newer_btlib_minor() {
        let v = negotiate(Version {
            major: BTOS_MAJOR,
            minor: BTOS_MINOR + 5,
        })
        .unwrap();
        assert_eq!(v.minor, BTOS_MINOR, "effective version capped at ours");
    }

    #[test]
    fn handshake_rejects_major_mismatch() {
        let e = negotiate(Version {
            major: BTOS_MAJOR + 1,
            minor: 0,
        })
        .unwrap_err();
        assert!(matches!(e, HandshakeError::MajorMismatch { .. }));
    }
}
