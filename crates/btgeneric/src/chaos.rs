//! Deterministic fault injection and the degradation-ladder policy.
//!
//! IA-32 EL was a production translator: the paper's machinery (SMC
//! detection, misalignment retraining, speculation with
//! recovery-and-retranslate, exception filtering) exists so the system
//! survives hostile guest behaviour. This module makes that robustness
//! *testable*: a seeded [`FaultPlan`] names the injection points the
//! engine consults at deterministic moments (dispatch boundaries,
//! translation entry, hot-session start), and the [`Blacklist`] holds
//! the re-promotion backoff policy the engine's degradation ladder
//! applies to repeat-offender blocks.
//!
//! Everything here is driven by the same xorshift64 generator as the
//! in-tree property/fuzz harness — no external dependencies, and a run
//! is byte-for-byte reproducible from its seed.

use crate::btos::BtOs;
use crate::engine::Engine;
use crate::layout::CORRUPT_SENTINEL;
use ipf::bundle::Bundle;
use ipf::inst::{Op, Target};
use ipf::machine::MachFault;
use std::collections::HashMap;

/// xorshift64 step (never yields 0 for a non-zero state) — the same
/// scheme as `tests/properties.rs` and the `hunt` fuzzer.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Number of engine-side fault kinds.
pub const NUM_KINDS: usize = 7;

/// A named injection point the engine consults.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum FaultKind {
    /// Transient translation failure (e.g. the guest code page faulted
    /// under the translator's reader): the block falls back to the
    /// `InterpStep` safety net for this entry.
    Translate = 0,
    /// Misalignment storm against a block: enough back-to-back
    /// misalignment faults to push it over the retrain/demote limit.
    MisalignStorm = 1,
    /// A self-modifying-code write landing on the current page mid-run:
    /// every translation on the page is invalidated.
    SmcInvalidate = 2,
    /// Bit-flip corruption of an installed arena extent (the victim's
    /// entry bundle is clobbered; see [`corrupt_block`]).
    BitFlip = 3,
    /// Hot-session budget exhaustion: the optimization session is
    /// aborted by the watchdog and the cold code kept.
    HotBudget = 4,
    /// An asynchronous signal raised against the guest (delivered
    /// through the OS layer's pending queue; the engine interrupts at
    /// the next commit point or state boundary).
    AsyncSignal = 5,
    /// Corruption of a synthesized superinstruction template's emitted
    /// code *before* differential validation runs: the validation gate
    /// must catch the divergence and demote the idiom to the unfused
    /// path (see [`crate::superinst::corrupt_template`]).
    TemplateSynth = 6,
}

impl FaultKind {
    /// All kinds, indexed by discriminant.
    pub const ALL: [FaultKind; NUM_KINDS] = [
        FaultKind::Translate,
        FaultKind::MisalignStorm,
        FaultKind::SmcInvalidate,
        FaultKind::BitFlip,
        FaultKind::HotBudget,
        FaultKind::AsyncSignal,
        FaultKind::TemplateSynth,
    ];

    /// Short display name (figures output).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Translate => "xlate-fail",
            FaultKind::MisalignStorm => "misalign-storm",
            FaultKind::SmcInvalidate => "smc-write",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::HotBudget => "hot-budget",
            FaultKind::AsyncSignal => "async-signal",
            FaultKind::TemplateSynth => "template-synth",
        }
    }
}

/// A deterministic, seeded fault schedule.
///
/// Each injection point is consulted with [`FaultPlan::roll`] at
/// deterministic moments in the engine's control flow; the roll
/// advances the generator once, so the whole schedule is a pure
/// function of the seed and the (deterministic) consultation sequence.
/// Per-kind budgets bound the total damage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed this plan was built from (reporting).
    pub seed: u64,
    state: u64,
    /// Injection probability per consultation, in per-mille.
    rate: [u16; NUM_KINDS],
    /// Remaining injections per kind (decremented on injection).
    budget: [u32; NUM_KINDS],
    /// Injections delivered per kind.
    pub injected: [u64; NUM_KINDS],
    /// SimOs translator-allocation failures to arm (ENOMEM); consumed
    /// by the OS layer, not the engine.
    pub os_alloc_failures: u32,
    /// SimOs transient syscall failures to arm (EAGAIN); consumed by
    /// the OS layer, not the engine.
    pub os_syscall_failures: u32,
}

impl FaultPlan {
    /// An empty plan (no faults) over the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            rate: [0; NUM_KINDS],
            budget: [0; NUM_KINDS],
            injected: [0; NUM_KINDS],
            os_alloc_failures: 0,
            os_syscall_failures: 0,
        }
    }

    /// Arms one fault kind with a per-mille rate and an injection
    /// budget (builder style).
    #[must_use]
    pub fn with(mut self, kind: FaultKind, per_mille: u16, budget: u32) -> FaultPlan {
        self.rate[kind as usize] = per_mille;
        self.budget[kind as usize] = budget;
        self
    }

    /// Arms the SimOs-side failure counters (builder style).
    #[must_use]
    pub fn with_os_faults(mut self, allocs: u32, syscalls: u32) -> FaultPlan {
        self.os_alloc_failures = allocs;
        self.os_syscall_failures = syscalls;
        self
    }

    /// The full storm: every engine-side kind armed, plus SimOs
    /// allocation/syscall failures. The preset behind the `chaos` bench
    /// experiment and the CI fault-injection job.
    pub fn storm(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with(FaultKind::Translate, 150, 60)
            .with(FaultKind::MisalignStorm, 120, 45)
            .with(FaultKind::SmcInvalidate, 70, 25)
            .with(FaultKind::BitFlip, 50, 20)
            .with(FaultKind::HotBudget, 400, 8)
            .with(FaultKind::AsyncSignal, 40, 16)
            .with_os_faults(8, 4)
    }

    /// Consults one injection point: returns true when a fault should
    /// be injected here. Advances the generator once per armed
    /// consultation (unarmed kinds are free, keeping disjoint plans
    /// independent).
    pub fn roll(&mut self, kind: FaultKind) -> bool {
        let k = kind as usize;
        if self.rate[k] == 0 || self.budget[k] == 0 {
            return false;
        }
        if xorshift(&mut self.state) % 1000 < self.rate[k] as u64 {
            self.budget[k] -= 1;
            self.injected[k] += 1;
            return true;
        }
        false
    }

    /// Deterministically picks an index in `0..n` (victim selection).
    pub fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (xorshift(&mut self.state) % n as u64) as usize
    }

    /// Total injections delivered across all engine-side kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Number of kinds that delivered at least one injection.
    pub fn kinds_hit(&self) -> usize {
        self.injected.iter().filter(|&&n| n > 0).count()
    }
}

/// One blacklist record: strikes so far and the cycle until which
/// re-promotion is blocked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Strike {
    count: u32,
    until: u64,
}

/// The re-promotion blacklist with exponential backoff.
///
/// When the degradation ladder demotes a hot block (repeated faults,
/// failed speculation, corruption), its guest EIP is struck: the block
/// may not be re-promoted until `base_backoff << (strikes - 1)` cycles
/// of simulated time have passed (capped at `max_exponent` doublings).
/// The time base is the machine's deterministic cycle counter, so the
/// policy is exactly reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Blacklist {
    base_backoff: u64,
    max_exponent: u32,
    entries: HashMap<u32, Strike>,
}

impl Blacklist {
    /// A blacklist with the given base backoff (simulated cycles).
    pub fn new(base_backoff: u64) -> Blacklist {
        Blacklist {
            base_backoff: base_backoff.max(1),
            max_exponent: 10,
            entries: HashMap::new(),
        }
    }

    /// Records a demotion strike against `eip` at time `now`; returns
    /// the cycle until which the EIP is blocked. Each strike doubles
    /// the backoff (capped).
    pub fn strike(&mut self, eip: u32, now: u64) -> u64 {
        let e = self.entries.entry(eip).or_default();
        e.count += 1;
        let exp = (e.count - 1).min(self.max_exponent);
        e.until = now.saturating_add(self.base_backoff << exp);
        e.until
    }

    /// Is `eip` blocked from re-promotion at time `now`?
    pub fn is_blocked(&self, eip: u32, now: u64) -> bool {
        self.entries.get(&eip).is_some_and(|e| now < e.until)
    }

    /// Strikes recorded against `eip`.
    pub fn strikes(&self, eip: u32) -> u32 {
        self.entries.get(&eip).map_or(0, |e| e.count)
    }

    /// Number of EIPs ever struck.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no EIP was ever struck.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Corrupts the latest generation of a block in place: its entry
/// bundle's first slot is clobbered into a branch to
/// [`CORRUPT_SENTINEL`] (an address that is neither arena nor stub).
///
/// This models a flipped cache line at block granularity. Detection has
/// two independent paths: verify-on-dispatch catches the checksum
/// mismatch before execution, and without it the corrupt entry exits to
/// a non-stub address, which the degradation ladder converts into
/// evict-and-retranslate instead of executing garbage.
///
/// Returns false when the block does not exist or is already evicted.
pub fn corrupt_block(engine: &mut Engine, id: u32) -> bool {
    let Some(b) = engine.blocks().get(id as usize) else {
        return false;
    };
    if b.evicted {
        return false;
    }
    let entry = b.range.0;
    engine.machine.arena.patch_slot(
        entry,
        0,
        Op::Br {
            target: Target::Abs(CORRUPT_SENTINEL),
        },
    );
    true
}

/// Delivers a synthetic misalignment fault against a non-memory slot of
/// block `id` — the arena-corruption case behind
/// `EngineError::MisalignResidue`. A real misalignment fault always
/// names a memory op (the machine raised it from one), so the residue
/// arm of the handler is reachable only when the arena was damaged
/// between fault and emulation; this probe is how the regression test
/// drives it without threads.
///
/// Returns true when the engine absorbed the fault through the
/// degradation ladder (no panic, recovery counted).
pub fn misalign_residue_probe(engine: &mut Engine, os: &mut dyn BtOs, id: u32) -> bool {
    let Some(b) = engine.blocks().get(id as usize) else {
        return false;
    };
    if b.evicted {
        return false;
    }
    let (start, end) = b.range;
    // Find an installed slot holding neither a memory op nor a branch.
    let mut site = None;
    let mut addr = start;
    'scan: while addr < end {
        if let Some(bu) = engine.machine.arena.bundle_at(addr) {
            for (s, slot) in bu.slots.iter().enumerate() {
                if !slot.op.is_mem() && !slot.op.is_branch() {
                    site = Some((addr, s as u8));
                    break 'scan;
                }
            }
        }
        addr += Bundle::SIZE;
    }
    let Some((ip, slot)) = site else {
        return false;
    };
    let before = engine.stats.ladder_recoveries;
    let _ = engine.handle_fault(
        os,
        MachFault::Misalign {
            addr: 1,
            size: 4,
            write: false,
        },
        ip,
        slot,
    );
    engine.stats.ladder_recoveries > before
}

/// How to damage an encoded warm-start image (see [`corrupt_image`]).
///
/// Deliberately *not* a [`FaultKind`]: images are corrupted offline,
/// between runs, not injected mid-run from a `FaultPlan` — and adding a
/// seventh in-run kind would perturb every seeded storm's fault
/// sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ImageFaultKind {
    /// Flip one byte inside the header: the image must be rejected
    /// wholesale (`Stats::image_rejects`), falling back to a fully
    /// cold run.
    Header,
    /// Cut the record stream short (always leaving a partial body):
    /// records past the cut are rejected individually and retranslated
    /// on demand.
    Truncate,
    /// Flip one record's stored *source* checksum, re-sealing the
    /// record trailer so it still parses: load-time source validation
    /// rejects just that extent while the rest of the image loads.
    StaleExtent,
}

/// Damages an encoded warm-start image in place, deterministically from
/// `seed` — the offline counterpart of the in-run fault plan, covering
/// the persistence layer's validation ladder. Returns `false` when the
/// buffer is too small to damage meaningfully (no header, or no
/// records to truncate/stale).
pub fn corrupt_image(bytes: &mut Vec<u8>, kind: ImageFaultKind, seed: u64) -> bool {
    let mut s = if seed == 0 { 0x9E37_79B9 } else { seed };
    let hdr = crate::persist::HEADER_LEN;
    match kind {
        ImageFaultKind::Header => {
            if bytes.len() < hdr {
                return false;
            }
            let at = (xorshift(&mut s) as usize) % hdr;
            bytes[at] ^= 1 << (xorshift(&mut s) % 8);
            true
        }
        ImageFaultKind::Truncate => {
            if bytes.len() <= hdr + 1 {
                return false;
            }
            // Keep the header plus a nonempty partial body, so the
            // damage exercises per-record rejection, not the wholesale
            // header path.
            let body = bytes.len() - hdr - 1;
            let keep = hdr + 1 + (xorshift(&mut s) as usize) % body;
            bytes.truncate(keep);
            true
        }
        ImageFaultKind::StaleExtent => {
            let nth = xorshift(&mut s) as usize;
            crate::persist::flip_extent_checksum(bytes, nth)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic() {
        let mut a = FaultPlan::storm(42);
        let mut b = FaultPlan::storm(42);
        for _ in 0..5000 {
            for k in FaultKind::ALL {
                assert_eq!(a.roll(k), b.roll(k));
            }
        }
        assert_eq!(a.injected, b.injected);
        assert!(a.total_injected() > 0, "storm must inject something");
    }

    #[test]
    fn budgets_bound_injections() {
        let mut p = FaultPlan::new(7).with(FaultKind::BitFlip, 1000, 3);
        let mut hits = 0;
        for _ in 0..100 {
            if p.roll(FaultKind::BitFlip) {
                hits += 1;
            }
        }
        assert_eq!(hits, 3, "budget caps injections");
        assert_eq!(p.injected[FaultKind::BitFlip as usize], 3);
    }

    #[test]
    fn blacklist_blocks_until_backoff_expires() {
        let mut bl = Blacklist::new(1000);
        let until = bl.strike(0x40_0000, 10_000);
        assert_eq!(until, 11_000);
        assert!(bl.is_blocked(0x40_0000, 10_000));
        assert!(bl.is_blocked(0x40_0000, 10_999));
        assert!(
            !bl.is_blocked(0x40_0000, 11_000),
            "re-promotion allowed once the backoff expires"
        );
        assert!(!bl.is_blocked(0x50_0000, 10_500), "other EIPs unaffected");
    }

    #[test]
    fn blacklist_backoff_is_exponential_and_capped() {
        let mut bl = Blacklist::new(100);
        assert_eq!(bl.strike(1, 0), 100);
        assert_eq!(bl.strike(1, 0), 200);
        assert_eq!(bl.strike(1, 0), 400);
        assert_eq!(bl.strikes(1), 3);
        for _ in 0..40 {
            bl.strike(1, 0);
        }
        assert_eq!(bl.strike(1, 0), 100 << 10, "backoff growth is capped");
    }
}
