//! Local code discovery (paper §2, Figure 1): starting from the current
//! IP, decode and build a flow graph over 1-20 neighbouring basic
//! blocks. The analysis feeds EFlags liveness and FP-stack tracking;
//! only the requested block is generated ("unexecuted blocks are never
//! generated").

use ia32::decode::decode;
use ia32::inst::Inst;
use ia32::mem::GuestMem;
use std::collections::HashMap;

/// Default discovery limits (the paper: 1-20 basic blocks).
pub const MAX_BLOCKS: usize = 20;
/// Instruction budget across the region.
pub const MAX_INSTS: usize = 160;
/// Instruction budget per block (cold blocks average 4-5 IA-32 insts).
pub const MAX_BLOCK_INSTS: usize = 32;

/// How a discovered block ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockEnd {
    /// Falls through into the next instruction (block-size limit hit).
    FallThrough,
    /// Direct jump.
    Jump,
    /// Conditional branch (two direct successors).
    Cond,
    /// Call (successor = target; return address pushed).
    Call,
    /// Indirect transfer / return: successors unknown.
    Indirect,
    /// Halt, syscall, UD, or undecodable: no translated successor.
    Stop,
}

/// One discovered basic block.
#[derive(Clone, Debug)]
pub struct DiscBlock {
    /// Start address.
    pub start: u32,
    /// Decoded instructions: `(ip, inst, length)`.
    pub insts: Vec<(u32, Inst, u8)>,
    /// Terminator class.
    pub end: BlockEnd,
    /// Direct successor EIPs (for analysis only).
    pub succs: Vec<u32>,
    /// True if some successor is unknown (indirect/stop): flag analysis
    /// must assume everything live.
    pub unknown_succ: bool,
}

impl DiscBlock {
    /// The address one past the last instruction.
    pub fn end_ip(&self) -> u32 {
        self.insts
            .last()
            .map(|(ip, _, len)| ip + *len as u32)
            .unwrap_or(self.start)
    }
}

/// A discovered region: blocks keyed by start address.
#[derive(Clone, Debug, Default)]
pub struct Region {
    /// Blocks in discovery order.
    pub blocks: Vec<DiscBlock>,
    /// Map from start EIP to index in `blocks`.
    pub by_start: HashMap<u32, usize>,
}

impl Region {
    /// The block starting at `eip`, if discovered.
    pub fn block_at(&self, eip: u32) -> Option<&DiscBlock> {
        self.by_start.get(&eip).map(|&i| &self.blocks[i])
    }
}

/// Discovers the region reachable from `entry` through direct edges.
pub fn discover(mem: &GuestMem, entry: u32) -> Region {
    let mut region = Region::default();
    let mut work = vec![entry];
    let mut total = 0usize;
    while let Some(start) = work.pop() {
        if region.by_start.contains_key(&start)
            || region.blocks.len() >= MAX_BLOCKS
            || total >= MAX_INSTS
        {
            continue;
        }
        let mut blk = DiscBlock {
            start,
            insts: Vec::new(),
            end: BlockEnd::Stop,
            succs: Vec::new(),
            unknown_succ: false,
        };
        let mut ip = start;
        loop {
            if blk.insts.len() >= MAX_BLOCK_INSTS || total >= MAX_INSTS {
                blk.end = BlockEnd::FallThrough;
                blk.succs.push(ip);
                break;
            }
            let bytes = match mem.fetch(ip as u64, 16) {
                Ok(b) => b,
                Err(_) => {
                    blk.end = BlockEnd::Stop;
                    blk.unknown_succ = true;
                    break;
                }
            };
            let (inst, len) = match decode(&bytes, ip) {
                Ok(v) => v,
                Err(_) => {
                    // Undecodable: the generator emits a #UD exit here.
                    blk.end = BlockEnd::Stop;
                    blk.unknown_succ = true;
                    break;
                }
            };
            let next = ip.wrapping_add(len as u32);
            blk.insts.push((ip, inst, len as u8));
            total += 1;
            if inst.ends_block() {
                match inst {
                    Inst::Jmp { target } => {
                        blk.end = BlockEnd::Jump;
                        blk.succs.push(target);
                    }
                    Inst::Jcc { target, .. } => {
                        blk.end = BlockEnd::Cond;
                        blk.succs.push(target);
                        blk.succs.push(next);
                    }
                    Inst::Call { target } => {
                        blk.end = BlockEnd::Call;
                        blk.succs.push(target);
                        // The return path is reached via RET (indirect).
                        blk.unknown_succ = true;
                    }
                    Inst::JmpInd { .. } | Inst::CallInd { .. } | Inst::Ret { .. } => {
                        blk.end = BlockEnd::Indirect;
                        blk.unknown_succ = true;
                    }
                    _ => {
                        blk.end = BlockEnd::Stop;
                        blk.unknown_succ = true;
                    }
                }
                break;
            }
            // A known block boundary splits here.
            if region.by_start.contains_key(&next) {
                blk.end = BlockEnd::FallThrough;
                blk.succs.push(next);
                break;
            }
            ip = next;
        }
        for s in &blk.succs {
            work.push(*s);
        }
        region.by_start.insert(start, region.blocks.len());
        region.blocks.push(blk);
    }
    region
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia32::asm::Asm;
    use ia32::inst::AluOp;
    use ia32::mem::Prot;
    use ia32::regs::{EAX, ECX};

    fn setup(f: impl FnOnce(&mut Asm)) -> GuestMem {
        let mut a = Asm::new(0x1000);
        f(&mut a);
        let code = a.assemble();
        let mut mem = GuestMem::new();
        mem.map(0x1000, code.len().max(1) as u64, Prot::rx());
        mem.write_forced(0x1000, &code);
        mem
    }

    #[test]
    fn discovers_loop_structure() {
        let mem = setup(|a| {
            a.mov_ri(EAX, 0);
            a.mov_ri(ECX, 10);
            let top = a.label();
            a.bind(top);
            a.alu_rr(AluOp::Add, EAX, ECX);
            a.dec(ECX);
            a.jcc(ia32::Cond::Ne, top);
            a.hlt();
        });
        let r = discover(&mem, 0x1000);
        // Entry block ends at the jcc; successors: loop head + hlt block.
        assert!(r.blocks.len() >= 2);
        let entry = r.block_at(0x1000).unwrap();
        assert_eq!(entry.end, BlockEnd::Cond);
        assert_eq!(entry.succs.len(), 2);
        assert!(!entry.unknown_succ);
    }

    #[test]
    fn stops_at_indirect() {
        let mem = setup(|a| {
            a.mov_ri(EAX, 0x2000);
            a.jmp_r(EAX);
        });
        let r = discover(&mem, 0x1000);
        let b = r.block_at(0x1000).unwrap();
        assert_eq!(b.end, BlockEnd::Indirect);
        assert!(b.unknown_succ);
    }

    #[test]
    fn block_limit_respected() {
        let mem = setup(|a| {
            // Long chain of tiny blocks via jumps.
            let mut labels: Vec<_> = (0..40).map(|_| a.label()).collect();
            for i in 0..40 {
                a.bind(labels[i]);
                a.inc(EAX);
                if i + 1 < 40 {
                    a.jmp(labels[i + 1]);
                }
            }
            a.hlt();
            labels.clear();
        });
        let r = discover(&mem, 0x1000);
        assert!(r.blocks.len() <= MAX_BLOCKS);
    }

    #[test]
    fn undecodable_is_stop() {
        let mut mem = GuestMem::new();
        mem.map(0x1000, 0x100, Prot::rx());
        mem.write_forced(0x1000, &[0xCC]); // int3: unsupported
        let r = discover(&mem, 0x1000);
        let b = r.block_at(0x1000).unwrap();
        assert_eq!(b.end, BlockEnd::Stop);
        assert!(b.insts.is_empty());
    }
}
