//! Cold-code generation (paper §2, Figure 1): basic-block granularity,
//! template-driven, with instrumentation for later hot translation —
//! a use counter with a heating check, edge counters on conditional
//! branches, misalignment probes, speculation head-checks, and the
//! IA-32 state register updates that make cold exceptions precise.

use super::discover::{BlockEnd, DiscBlock, Region};
use super::liveness::Liveness;
use super::lower::{lower, LowerError};
use crate::layout::{self, StubKind};
use crate::state::{GR_PAYLOAD0, GR_PAYLOAD1, GR_STATE};
use crate::templates::{
    self, emit_spec_checks, AlignCache, EmitCtx, FpCtx, IndKind, MisalignPlan, Sink, Term, XmmCtx,
};
use ia32::inst::Inst as I32;
use ipf::asm::CodeBuilder;
use ipf::bundle::Bundle;
use ipf::inst::{CmpRel, Op, Target};
use ipf::regs::{Br, R0};

/// Runtime speculation seeds, sampled by the engine at translation time
/// (the block is about to be entered, so "speculate what is true right
/// now").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpecSeed {
    /// Current x87 TOS.
    pub tos: u8,
    /// Current FP/MMX mode.
    pub mmx_mode: bool,
    /// Current XMM format word.
    pub xmm_fmt: u8,
}

/// Inputs to cold generation of one block.
pub struct ColdGenInput<'a> {
    /// The discovered region containing the block.
    pub region: &'a Region,
    /// Flag liveness over the region.
    pub liveness: &'a Liveness,
    /// The block to generate.
    pub entry: u32,
    /// Block id (payload for instrumentation exits).
    pub block_id: u32,
    /// Address of this block's 8-byte use counter.
    pub counter_addr: u64,
    /// Addresses of the taken/fallthrough edge counters.
    pub edge_counters: (u64, u64),
    /// Heating threshold (power of two; 0 disables the check).
    pub heat_threshold: u64,
    /// Misalignment strategy for this version of the block.
    pub misalign: MisalignPlan,
    /// Speculation seeds.
    pub spec: SpecSeed,
    /// Enable EFlags liveness (off = materialize everything).
    pub flag_liveness: bool,
    /// Enable compare+branch fusion.
    pub fuse: bool,
    /// Emit inline (per-access) FP tag checks — the post-TagFix variant.
    pub inline_fp_checks: bool,
    /// Self-modifying-code prologue: compare 8 code bytes at `addr`
    /// against `expected`.
    pub smc_check: Option<(u64, u64)>,
    /// Per-site inline-cache slot `(pred_eip, pred_entry, hit_count)`
    /// used when the block ends in an indirect jmp/call.
    pub ic_slot: u64,
    /// Enable the indirect-transfer acceleration layer (inline cache,
    /// shadow stack, 2-way mixed-hash table). Off reproduces the
    /// pre-acceleration direct-mapped lookup exactly.
    pub accel: bool,
    /// Demoted variant of the acceleration layer: the block was
    /// observed to mispredict chronically (megamorphic call site or
    /// shadow-stack-hostile ret), so emit only the plain 2-way table
    /// probe — no inline cache, no shadow push/pop. Meaningless when
    /// `accel` is off.
    pub plain: bool,
    /// Mined superinstruction idiom table: enables the learned-template
    /// peephole over this block (see [`crate::superinst`]). `None`
    /// disables the layer entirely — generation is bit-for-bit what it
    /// was before the table existed.
    pub superinst: Option<&'a crate::superinst::IdiomTable>,
    /// Address the block will be assembled at.
    pub base: u64,
}

/// A generated cold block.
#[derive(Debug)]
pub struct ColdBlock {
    /// The code.
    pub bundles: Vec<Bundle>,
    /// Untranslated-target exits: `(target_eip, trampoline_addr)`. The
    /// trampoline's branch slot is patched once the target exists.
    pub exits: Vec<(u32, u64)>,
    /// IA-32 instructions translated.
    pub ia32_insts: usize,
    /// Guest memory accesses indexed (for misalignment profiling).
    pub accesses: u16,
    /// Speculated entry TOS (for engine-side TosFix).
    pub spec: SpecSeed,
    /// Speculated FP/MMX entry mode (engine-side MmxFix target).
    pub entry_mmx: bool,
    /// Native instructions emitted (pre-bundling count).
    pub native_insts: usize,
    /// Learned-superinstruction idioms fired in this block.
    pub superinst_hits: u64,
    /// IA-32 instruction slots covered by fired idioms (the fused
    /// compare+branch counts once the mined table activates it).
    pub superinst_fused_slots: u64,
    /// IA-32 slots scanned while an idiom table was active.
    pub superinst_eligible_slots: u64,
    /// Slots absorbed past an idiom head by superinst-only fusion
    /// (CmpJcc excluded: it fuses with the table off too, so it earns
    /// no translation-charge discount).
    pub superinst_absorbed_slots: u64,
}

/// Generation failure.
#[derive(Debug)]
pub enum ColdGenError {
    /// The entry block was not in the region (discovery failed).
    NoBlock,
    /// Scratch exhaustion during lowering.
    Lower(LowerError),
}

impl std::fmt::Display for ColdGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColdGenError::NoBlock => write!(f, "entry block not discovered"),
            ColdGenError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ColdGenError {}

/// Pre-scan: does the block touch x87 / MMX, and what mode does its
/// first FP-class instruction need?
fn prescan_fp(blk: &DiscBlock) -> (bool, bool, bool) {
    let mut uses_fp = false;
    let mut uses_mmx = false;
    let mut first_mmx: Option<bool> = None;
    for (_, inst, _) in &blk.insts {
        let is_mmx = matches!(
            inst,
            I32::Movd { .. } | I32::Movq { .. } | I32::PAlu { .. } | I32::Emms
        );
        let is_fp = matches!(
            inst,
            I32::Fld { .. }
                | I32::Fst { .. }
                | I32::Fild { .. }
                | I32::Fistp { .. }
                | I32::Farith { .. }
                | I32::Fchs
                | I32::Fabs
                | I32::Fsqrt
                | I32::Fxch { .. }
                | I32::Fld1
                | I32::Fldz
                | I32::Fcomi { .. }
        );
        if is_mmx {
            uses_mmx = true;
            first_mmx.get_or_insert(true);
        }
        if is_fp {
            uses_fp = true;
            first_mmx.get_or_insert(false);
        }
    }
    (uses_fp, uses_mmx, first_mmx.unwrap_or(false))
}

/// Emits a counter increment `[addr] += 1`, optionally under `qp`,
/// returning the incremented value's register.
pub(crate) fn emit_counter_inc(
    sink: &mut Sink,
    qp: Option<ipf::regs::Pr>,
    addr: u64,
) -> ipf::regs::Gr {
    let qp = qp.unwrap_or(ipf::regs::P0);
    let a = sink.vg();
    sink.emit_pred(qp, Op::Movl { d: a, imm: addr });
    let c = sink.vg();
    sink.emit_pred(
        qp,
        Op::Ld {
            sz: 8,
            d: c,
            addr: a,
            spec: false,
        },
    );
    sink.emit_pred(qp, Op::AddImm { d: c, imm: 1, a: c });
    sink.emit_pred(
        qp,
        Op::St {
            sz: 8,
            addr: a,
            val: c,
        },
    );
    c
}

/// Pushes a `(ret_eip, predicted_entry)` pair onto the simulated
/// return-address shadow stack ring. The predicted translated entry is
/// seeded from the shared lookup table at the call's translation-time
/// constant return slot; when the table has no entry yet the pair is
/// pushed empty, the matching `ret` underflows once, the dispatcher
/// fills the table, and later pushes predict.
pub(crate) fn emit_shadow_push(sink: &mut Sink, ret: u32) {
    let sb = sink.vg();
    sink.emit(Op::Movl {
        d: sb,
        imm: layout::SHADOW_TOS,
    });
    let tos = sink.vg();
    sink.emit(Op::Ld {
        sz: 8,
        d: tos,
        addr: sb,
        spec: false,
    });
    let shb = sink.vg();
    sink.emit(Op::Movl {
        d: shb,
        imm: layout::SHADOW_BASE,
    });
    let off = sink.vg();
    sink.emit(Op::ShlImm {
        d: off,
        a: tos,
        count: 4,
    });
    let ea = sink.vg();
    sink.emit(Op::Add {
        d: ea,
        a: shb,
        b: off,
    });
    let t2 = sink.vg();
    sink.emit(Op::AddImm {
        d: t2,
        imm: 1,
        a: tos,
    });
    sink.emit(Op::AndImm {
        d: t2,
        imm: (layout::SHADOW_ENTRIES - 1) as i64,
        a: t2,
    });
    sink.emit(Op::St {
        sz: 8,
        addr: sb,
        val: t2,
    });
    // Probe both ways of the return EIP's lookup set for a prediction.
    let s0 = sink.vg();
    sink.emit(Op::Movl {
        d: s0,
        imm: layout::lookup_slot(ret),
    });
    let rr = sink.vg();
    sink.mov_imm(rr, ret as u64);
    let k0 = sink.vg();
    sink.emit(Op::Ld {
        sz: 8,
        d: k0,
        addr: s0,
        spec: false,
    });
    let (p0, _n0) = (sink.vp(), sink.vp());
    sink.emit(Op::Cmp {
        rel: CmpRel::Eq,
        pt: p0,
        pf: _n0,
        a: k0,
        b: rr,
    });
    let s1 = sink.vg();
    sink.emit(Op::AddImm {
        d: s1,
        imm: layout::LOOKUP_ENTRY_SIZE as i64,
        a: s0,
    });
    let k1 = sink.vg();
    sink.emit(Op::Ld {
        sz: 8,
        d: k1,
        addr: s1,
        spec: false,
    });
    let (p1, _n1) = (sink.vp(), sink.vp());
    sink.emit(Op::Cmp {
        rel: CmpRel::Eq,
        pt: p1,
        pf: _n1,
        a: k1,
        b: rr,
    });
    // Default: empty pair; a way hit overwrites both halves.
    let key = sink.vg();
    sink.emit(Op::Movl {
        d: key,
        imm: layout::LOOKUP_EMPTY_KEY,
    });
    let tg = sink.vg();
    sink.emit(Op::AddImm {
        d: tg,
        imm: 0,
        a: R0,
    });
    let t0 = sink.vg();
    sink.emit_pred(
        p0,
        Op::AddImm {
            d: t0,
            imm: 8,
            a: s0,
        },
    );
    sink.emit_pred(
        p0,
        Op::Ld {
            sz: 8,
            d: tg,
            addr: t0,
            spec: false,
        },
    );
    sink.emit_pred(
        p0,
        Op::AddImm {
            d: key,
            imm: 0,
            a: rr,
        },
    );
    let t1 = sink.vg();
    sink.emit_pred(
        p1,
        Op::AddImm {
            d: t1,
            imm: 8,
            a: s1,
        },
    );
    sink.emit_pred(
        p1,
        Op::Ld {
            sz: 8,
            d: tg,
            addr: t1,
            spec: false,
        },
    );
    sink.emit_pred(
        p1,
        Op::AddImm {
            d: key,
            imm: 0,
            a: rr,
        },
    );
    sink.emit(Op::St {
        sz: 8,
        addr: ea,
        val: key,
    });
    let ea8 = sink.vg();
    sink.emit(Op::AddImm {
        d: ea8,
        imm: 8,
        a: ea,
    });
    sink.emit(Op::St {
        sz: 8,
        addr: ea8,
        val: tg,
    });
}

/// Pops the shadow stack and guard-compares the recorded return EIP
/// against the actual one in `eip`; a hit branches straight to the
/// recorded translated entry. The popped entry is consumed (emptied)
/// either way so an evicted target can never be re-entered through a
/// stale slot. A miss bumps the underflow/mispredict cells and drains
/// to the `IndirectMiss` stub with a `RET_MISS_TAG`-tagged block id, so
/// the dispatcher can count per-block pop misses and demote the block.
pub(crate) fn emit_shadow_pop(sink: &mut Sink, eip: ipf::regs::Gr, block_id: u32) {
    let sb = sink.vg();
    sink.emit(Op::Movl {
        d: sb,
        imm: layout::SHADOW_TOS,
    });
    let tos = sink.vg();
    sink.emit(Op::Ld {
        sz: 8,
        d: tos,
        addr: sb,
        spec: false,
    });
    let t2 = sink.vg();
    sink.emit(Op::AddImm {
        d: t2,
        imm: layout::SHADOW_ENTRIES as i64 - 1,
        a: tos,
    });
    sink.emit(Op::AndImm {
        d: t2,
        imm: (layout::SHADOW_ENTRIES - 1) as i64,
        a: t2,
    });
    sink.emit(Op::St {
        sz: 8,
        addr: sb,
        val: t2,
    });
    let shb = sink.vg();
    sink.emit(Op::Movl {
        d: shb,
        imm: layout::SHADOW_BASE,
    });
    let off = sink.vg();
    sink.emit(Op::ShlImm {
        d: off,
        a: t2,
        count: 4,
    });
    let ea = sink.vg();
    sink.emit(Op::Add {
        d: ea,
        a: shb,
        b: off,
    });
    let k = sink.vg();
    sink.emit(Op::Ld {
        sz: 8,
        d: k,
        addr: ea,
        spec: false,
    });
    let emp = sink.vg();
    sink.emit(Op::Movl {
        d: emp,
        imm: layout::LOOKUP_EMPTY_KEY,
    });
    sink.emit(Op::St {
        sz: 8,
        addr: ea,
        val: emp,
    });
    let (p_hit, _p_miss) = (sink.vp(), sink.vp());
    sink.emit(Op::Cmp {
        rel: CmpRel::Eq,
        pt: p_hit,
        pf: _p_miss,
        a: k,
        b: eip,
    });
    emit_counter_inc(sink, Some(p_hit), layout::CELL_SHADOW_HITS);
    let ea8 = sink.vg();
    sink.emit(Op::AddImm {
        d: ea8,
        imm: 8,
        a: ea,
    });
    let tg = sink.vg();
    sink.emit_pred(
        p_hit,
        Op::Ld {
            sz: 8,
            d: tg,
            addr: ea8,
            spec: false,
        },
    );
    sink.emit_pred(p_hit, Op::MovToBr { b: Br(1), r: tg });
    sink.emit_pred(p_hit, Op::BrRet { b: Br(1) });
    // Only reached on a miss: attribute it.
    let (p_u, p_mp) = (sink.vp(), sink.vp());
    sink.emit(Op::Cmp {
        rel: CmpRel::Eq,
        pt: p_u,
        pf: p_mp,
        a: k,
        b: emp,
    });
    emit_counter_inc(sink, Some(p_u), layout::CELL_SHADOW_UNDERFLOWS);
    emit_counter_inc(sink, Some(p_mp), layout::CELL_SHADOW_MISPREDICTS);
    sink.emit(Op::AddImm {
        d: GR_PAYLOAD0,
        imm: 0,
        a: eip,
    });
    sink.emit(Op::Movl {
        d: GR_PAYLOAD1,
        imm: layout::RET_MISS_TAG | block_id as u64,
    });
    sink.emit(Op::Br {
        target: Target::Abs(StubKind::IndirectMiss.addr()),
    });
}

/// Per-site monomorphic inline cache: guard-compare the site's last
/// observed target EIP and branch straight to its translated entry on
/// a hit (also bumping the site's hit counter, which hot-phase
/// devirtualization reads as a stability signal). Falls through to the
/// shared table on miss.
pub(crate) fn emit_ic_probe(sink: &mut Sink, eip: ipf::regs::Gr, ic_slot: u64) {
    let s = sink.vg();
    sink.emit(Op::Movl { d: s, imm: ic_slot });
    let pk = sink.vg();
    sink.emit(Op::Ld {
        sz: 8,
        d: pk,
        addr: s,
        spec: false,
    });
    let (p_ic, _p_icm) = (sink.vp(), sink.vp());
    sink.emit(Op::Cmp {
        rel: CmpRel::Eq,
        pt: p_ic,
        pf: _p_icm,
        a: pk,
        b: eip,
    });
    let s3 = sink.vg();
    sink.emit(Op::AddImm {
        d: s3,
        imm: 16,
        a: s,
    });
    let hc = sink.vg();
    sink.emit_pred(
        p_ic,
        Op::Ld {
            sz: 8,
            d: hc,
            addr: s3,
            spec: false,
        },
    );
    sink.emit_pred(
        p_ic,
        Op::AddImm {
            d: hc,
            imm: 1,
            a: hc,
        },
    );
    sink.emit_pred(
        p_ic,
        Op::St {
            sz: 8,
            addr: s3,
            val: hc,
        },
    );
    let s2 = sink.vg();
    sink.emit(Op::AddImm {
        d: s2,
        imm: 8,
        a: s,
    });
    let pe = sink.vg();
    sink.emit_pred(
        p_ic,
        Op::Ld {
            sz: 8,
            d: pe,
            addr: s2,
            spec: false,
        },
    );
    sink.emit_pred(p_ic, Op::MovToBr { b: Br(1), r: pe });
    sink.emit_pred(p_ic, Op::BrRet { b: Br(1) });
    // Only reached on a miss.
    emit_counter_inc(sink, None, layout::CELL_IC_MISSES);
}

/// 2-way set-associative probe of the shared lookup table with the
/// mixed hash from `layout::lookup_hash`, then the `IndirectMiss`
/// stub. `ic_slot` (0 for rets) rides in payload1 so the dispatcher
/// can retrain the site's inline cache.
pub(crate) fn emit_table_probe2(sink: &mut Sink, eip: ipf::regs::Gr, ic_slot: u64) {
    let hs = sink.vg();
    sink.emit(Op::ShrImm {
        d: hs,
        a: eip,
        count: 12,
        signed: false,
    });
    let h = sink.vg();
    sink.emit(Op::Xor {
        d: h,
        a: eip,
        b: hs,
    });
    sink.emit(Op::AndImm {
        d: h,
        imm: (layout::LOOKUP_SETS - 1) as i64,
        a: h,
    });
    let off = sink.vg();
    sink.emit(Op::ShlImm {
        d: off,
        a: h,
        count: 5,
    });
    let base = sink.vg();
    sink.emit(Op::Movl {
        d: base,
        imm: layout::LOOKUP_BASE,
    });
    let sl = sink.vg();
    sink.emit(Op::Add {
        d: sl,
        a: base,
        b: off,
    });
    // A table hit is also a teaching moment for the site's inline
    // cache: without this, a site whose target entered the table via
    // *another* site would miss its IC forever (the dispatcher, the
    // only other retrainer, is never reached on a table hit).
    let ics = if ic_slot != 0 {
        let r = sink.vg();
        sink.emit(Op::Movl { d: r, imm: ic_slot });
        Some(r)
    } else {
        None
    };
    for way in 0..layout::LOOKUP_WAYS {
        let slw = if way == 0 {
            sl
        } else {
            let s = sink.vg();
            sink.emit(Op::AddImm {
                d: s,
                imm: (way * layout::LOOKUP_ENTRY_SIZE) as i64,
                a: sl,
            });
            s
        };
        let k = sink.vg();
        sink.emit(Op::Ld {
            sz: 8,
            d: k,
            addr: slw,
            spec: false,
        });
        let (p_hit, _p_miss) = (sink.vp(), sink.vp());
        sink.emit(Op::Cmp {
            rel: CmpRel::Eq,
            pt: p_hit,
            pf: _p_miss,
            a: k,
            b: eip,
        });
        let s2 = sink.vg();
        sink.emit_pred(
            p_hit,
            Op::AddImm {
                d: s2,
                imm: 8,
                a: slw,
            },
        );
        let tg = sink.vg();
        sink.emit_pred(
            p_hit,
            Op::Ld {
                sz: 8,
                d: tg,
                addr: s2,
                spec: false,
            },
        );
        if let Some(ics) = ics {
            sink.emit_pred(
                p_hit,
                Op::St {
                    sz: 8,
                    addr: ics,
                    val: eip,
                },
            );
            let ics8 = sink.vg();
            sink.emit_pred(
                p_hit,
                Op::AddImm {
                    d: ics8,
                    imm: 8,
                    a: ics,
                },
            );
            sink.emit_pred(
                p_hit,
                Op::St {
                    sz: 8,
                    addr: ics8,
                    val: tg,
                },
            );
        }
        sink.emit_pred(p_hit, Op::MovToBr { b: Br(1), r: tg });
        sink.emit_pred(p_hit, Op::BrRet { b: Br(1) });
    }
    sink.emit(Op::AddImm {
        d: GR_PAYLOAD0,
        imm: 0,
        a: eip,
    });
    if ic_slot != 0 {
        sink.emit(Op::Movl {
            d: GR_PAYLOAD1,
            imm: ic_slot,
        });
    } else {
        sink.emit(Op::AddImm {
            d: GR_PAYLOAD1,
            imm: 0,
            a: R0,
        });
    }
    sink.emit(Op::Br {
        target: Target::Abs(StubKind::IndirectMiss.addr()),
    });
}

/// Generates the cold translation of one basic block.
///
/// # Errors
///
/// [`ColdGenError`] when the block is undiscoverable or lowering runs
/// out of scratch registers (the engine falls back to single-stepping).
pub fn generate(input: &ColdGenInput<'_>) -> Result<ColdBlock, ColdGenError> {
    let blk = input
        .region
        .block_at(input.entry)
        .ok_or(ColdGenError::NoBlock)?;

    let (uses_fp, uses_mmx, entry_mmx) = prescan_fp(blk);
    let mut fp = FpCtx::new(input.spec.tos, false);
    fp.entry_mmx = entry_mmx;
    fp.cur_mmx = entry_mmx;
    fp.inline_checks = input.inline_fp_checks;
    let mut xmm = XmmCtx::new(input.spec.xmm_fmt);
    let mut align = AlignCache::default();

    let mut body = Sink::new();
    let mut term: Option<Term> = None;
    let mut term_ip = input.entry;
    let mut term_inst_ip = input.entry;
    let mut interp_bail: Option<u32> = None;
    let mut last_state_ip: Option<u32> = None;
    let mut ia32_count = 0usize;
    let mut si_hits = 0u64;
    let mut si_fused = 0u64;
    let mut si_eligible = 0u64;
    let mut si_absorbed = 0u64;

    let mut i = 0;
    while i < blk.insts.len() {
        let (ip, inst, len) = blk.insts[i];
        let next_ip = ip + len as u32;
        term_ip = next_ip;
        let live_flags = if input.flag_liveness {
            input.liveness.live_after(blk.start, i)
        } else {
            ia32::flags::STATUS | ia32::flags::DF
        };

        // Update the IA-32 state register before faulting instructions.
        if inst.can_fault() {
            match last_state_ip {
                None => body.emit(Op::Movl {
                    d: GR_STATE,
                    imm: ip as u64,
                }),
                Some(prev) if prev != ip => body.emit(Op::AddImm {
                    d: GR_STATE,
                    imm: ip as i64 - prev as i64,
                    a: GR_STATE,
                }),
                _ => {}
            }
            last_state_ip = Some(ip);
        }

        // Learned superinstruction fusion: match the mined idiom
        // table at `i` and emit one fused template for the window.
        // The emission is tagged with the head IP, and GR_STATE (set
        // above when the head can fault — every faulting idiom has a
        // faulting head) also names the head; all guest writebacks sit
        // after the last faulting op, so a fault anywhere inside
        // re-interprets the idiom from its first instruction
        // idempotently.
        if let Some(table) = input.superinst {
            si_eligible += 1;
            let mut live_after = |j: usize| {
                if input.flag_liveness {
                    input.liveness.live_after(blk.start, j)
                } else {
                    ia32::flags::STATUS | ia32::flags::DF
                }
            };
            match crate::superinst::match_at(table, &blk.insts, i, &mut live_after) {
                // CmpJcc is the terminal compare+branch fusion below —
                // it fires (and is counted) there.
                None | Some((crate::superinst::IdiomKind::CmpJcc, _)) => {}
                Some((kind, n)) => {
                    let last = i + n - 1;
                    let idiom_end = blk.insts[last].0 + blk.insts[last].2 as u32;
                    let live_idiom = live_after(last);
                    let mut ctx = EmitCtx {
                        ip,
                        next_ip: idiom_end,
                        live_flags: live_idiom,
                        fp: &mut fp,
                        xmm: &mut xmm,
                        misalign: &input.misalign,
                        align: &mut align,
                    };
                    match crate::superinst::emit_idiom(
                        &mut body,
                        &mut ctx,
                        kind,
                        &blk.insts[i..i + n],
                    ) {
                        crate::superinst::FusedEmit::Plain => {
                            si_hits += 1;
                            si_fused += n as u64;
                            si_eligible += (n - 1) as u64;
                            si_absorbed += (n - 1) as u64;
                            ia32_count += n;
                            term_ip = idiom_end;
                            i += n;
                            continue;
                        }
                        crate::superinst::FusedEmit::Branch(pt) => {
                            let (_, I32::Jcc { target, .. }, _) = blk.insts[last] else {
                                unreachable!("matcher guarantees a jcc terminator");
                            };
                            si_hits += 1;
                            si_fused += n as u64;
                            si_eligible += (n - 1) as u64;
                            si_absorbed += (n - 1) as u64;
                            ia32_count += n;
                            term = Some(Term::CondJump {
                                taken_pred: pt,
                                taken: target,
                                fallthrough: idiom_end,
                            });
                            term_ip = idiom_end;
                            break;
                        }
                        crate::superinst::FusedEmit::Refused => {}
                    }
                }
            }
        }

        // Compare+branch fusion (paper: EFlags elimination).
        if input.fuse && i + 1 < blk.insts.len() {
            if let (_, I32::Jcc { cond, target }, jlen) = blk.insts[i + 1] {
                let reads = cond.flags_read();
                if inst.flags_written() & reads == reads {
                    let jcc_ip = blk.insts[i + 1].0;
                    let j_next = jcc_ip + jlen as u32;
                    let live_after_jcc = if input.flag_liveness {
                        input.liveness.live_after(blk.start, i + 1)
                    } else {
                        ia32::flags::STATUS | ia32::flags::DF
                    };
                    let mut ctx = EmitCtx {
                        ip,
                        next_ip,
                        live_flags: live_after_jcc,
                        fp: &mut fp,
                        xmm: &mut xmm,
                        misalign: &input.misalign,
                        align: &mut align,
                    };
                    if let Some(pt) =
                        templates::emit_fused_cmp_jcc(&mut body, &inst, cond, &mut ctx)
                    {
                        // Once the mined table activates CmpJcc, this
                        // firing counts as a superinstruction hit (the
                        // jcc slot never gets its own iteration).
                        if input
                            .superinst
                            .is_some_and(|t| t.active(crate::superinst::IdiomKind::CmpJcc))
                        {
                            si_hits += 1;
                            si_fused += 2;
                            si_eligible += 1;
                        }
                        ia32_count += 2;
                        term = Some(Term::CondJump {
                            taken_pred: pt,
                            taken: target,
                            fallthrough: j_next,
                        });
                        term_ip = j_next;
                        break;
                    }
                }
            }
        }

        let mut ctx = EmitCtx {
            ip,
            next_ip,
            live_flags,
            fp: &mut fp,
            xmm: &mut xmm,
            misalign: &input.misalign,
            align: &mut align,
        };
        match templates::emit(&mut body, &inst, &mut ctx) {
            Ok(t) => {
                ia32_count += 1;
                if let Some(t) = t {
                    term = Some(t);
                    term_inst_ip = ip;
                    break;
                }
            }
            Err(_) => {
                // Fall back to single-step interpretation of this
                // instruction; the block ends here.
                interp_bail = Some(ip);
                break;
            }
        }
        i += 1;
    }

    // Head: SMC check, speculation checks, instrumentation.
    let mut head = Sink::new();
    head.set_ip(input.entry);
    if let Some((addr, expected)) = input.smc_check {
        let a = head.vg();
        head.emit(Op::Movl { d: a, imm: addr });
        let cur = head.vg();
        head.emit(Op::Ld {
            sz: 8,
            d: cur,
            addr: a,
            spec: false,
        });
        let exp = head.vg();
        head.emit(Op::Movl {
            d: exp,
            imm: expected,
        });
        let (pne, _pe) = (head.vp(), head.vp());
        head.emit(Op::Cmp {
            rel: CmpRel::Ne,
            pt: pne,
            pf: _pe,
            a: cur,
            b: exp,
        });
        head.mov_imm(GR_PAYLOAD0, input.block_id as u64);
        head.emit_pred(
            pne,
            Op::Br {
                target: Target::Abs(StubKind::SmcFail.addr()),
            },
        );
    }
    let _ = (uses_fp, uses_mmx);
    emit_spec_checks(&mut head, &fp, &xmm, input.block_id);
    // Use counter + heating trigger at every multiple of the threshold
    // (gives the paper's "registered twice" signal for free).
    if input.heat_threshold > 0 {
        let c = emit_counter_inc(&mut head, None, input.counter_addr);
        let masked = head.vg();
        head.emit(Op::AndImm {
            d: masked,
            imm: (input.heat_threshold - 1) as i64,
            a: c,
        });
        let (p_hot, _pc) = (head.vp(), head.vp());
        head.emit(Op::CmpImm {
            rel: CmpRel::Eq,
            pt: p_hot,
            pf: _pc,
            imm: 0,
            b: masked,
        });
        head.emit_pred(
            p_hot,
            Op::AddImm {
                d: GR_PAYLOAD0,
                imm: input.block_id as i64,
                a: R0,
            },
        );
        head.emit_pred(
            p_hot,
            Op::Br {
                target: Target::Abs(StubKind::Heat.addr()),
            },
        );
    }

    let accesses = body.access_count();
    // Tail: FP epilogue + terminator. Emitted into the SAME sink as the
    // body: terminator payloads (indirect-target registers, branch
    // predicates) are virtual registers from the body and must be
    // allocated in the same lowering pass.
    let mut tail = body;
    tail.set_ip(term_ip);
    templates::emit_fp_epilogue(&mut tail, &fp, &xmm);
    // Trampolines for untranslated targets, emitted after the main exit.
    let mut tramp_reqs: Vec<(u32, u32)> = Vec::new(); // (eip, local label)
    let branch_to = |tail: &mut Sink, eip: u32, tramp_reqs: &mut Vec<(u32, u32)>| {
        let l = tail.local_label();
        tramp_reqs.push((eip, l));
        Target::Label(l)
    };
    match (term, interp_bail) {
        (_, Some(ip)) => {
            // Single-step escape: state register points at the
            // instruction; the engine interprets it and re-dispatches.
            match last_state_ip {
                None => tail.emit(Op::Movl {
                    d: GR_STATE,
                    imm: ip as u64,
                }),
                Some(prev) if prev != ip => tail.emit(Op::AddImm {
                    d: GR_STATE,
                    imm: ip as i64 - prev as i64,
                    a: GR_STATE,
                }),
                _ => {}
            }
            tail.emit(Op::Br {
                target: Target::Abs(StubKind::InterpStep.addr()),
            });
        }
        (Some(Term::Jump { target }), _) => {
            let t = branch_to(&mut tail, target, &mut tramp_reqs);
            tail.emit(Op::Br { target: t });
        }
        (Some(Term::Call { target, ret }), _) => {
            if input.accel && !input.plain {
                emit_shadow_push(&mut tail, ret);
            }
            let t = branch_to(&mut tail, target, &mut tramp_reqs);
            tail.emit(Op::Br { target: t });
        }
        (
            Some(Term::CondJump {
                taken_pred,
                taken,
                fallthrough,
            }),
            _,
        ) => {
            // Edge counters (paper: "an edge counter for blocks ending
            // with conditional or indirect branches").
            emit_counter_inc(&mut tail, Some(taken_pred), input.edge_counters.0);
            let tt = branch_to(&mut tail, taken, &mut tramp_reqs);
            tail.emit_pred(taken_pred, Op::Br { target: tt });
            emit_counter_inc(&mut tail, None, input.edge_counters.1);
            let ft = branch_to(&mut tail, fallthrough, &mut tramp_reqs);
            tail.emit(Op::Br { target: ft });
        }
        (Some(Term::Indirect { eip, kind }), _) if input.accel => {
            if input.plain {
                // Demoted site: straight to the shared 2-way table (the
                // table layout is process-wide, so a demoted block still
                // uses the mixed hash), no per-site machinery.
                emit_table_probe2(&mut tail, eip, 0);
            } else {
                // Acceleration layer: calls seed the shadow stack, rets
                // pop it, jmp/call sites probe their inline cache, and
                // everyone falls back to the 2-way shared table then
                // the dispatcher.
                if let IndKind::Call { ret } = kind {
                    emit_shadow_push(&mut tail, ret);
                }
                match kind {
                    IndKind::Ret => {
                        // A pop miss drains to the dispatcher (not the
                        // inline table): the round-trip is what lets the
                        // engine count chronic mispredictions and demote
                        // this ret block to the plain probe above.
                        emit_shadow_pop(&mut tail, eip, input.block_id);
                    }
                    IndKind::Jump | IndKind::Call { .. } => {
                        emit_ic_probe(&mut tail, eip, input.ic_slot);
                        emit_table_probe2(&mut tail, eip, input.ic_slot);
                    }
                }
            }
        }
        (Some(Term::Indirect { eip, .. }), _) => {
            // Inline lookup table (paper: "blocks ending with indirect
            // branches ... use a fast lookup table").
            let base = tail.vg();
            tail.emit(Op::Movl {
                d: base,
                imm: crate::layout::LOOKUP_BASE,
            });
            let h = tail.vg();
            tail.emit(Op::Extr {
                d: h,
                a: eip,
                pos: 2,
                len: 12,
                signed: false,
            });
            let off = tail.vg();
            tail.emit(Op::ShlImm {
                d: off,
                a: h,
                count: 4,
            });
            let slot = tail.vg();
            tail.emit(Op::Add {
                d: slot,
                a: base,
                b: off,
            });
            let key = tail.vg();
            tail.emit(Op::Ld {
                sz: 8,
                d: key,
                addr: slot,
                spec: false,
            });
            let (p_hit, p_miss) = (tail.vp(), tail.vp());
            tail.emit(Op::Cmp {
                rel: CmpRel::Eq,
                pt: p_hit,
                pf: p_miss,
                a: key,
                b: eip,
            });
            let slot2 = tail.vg();
            tail.emit_pred(
                p_hit,
                Op::AddImm {
                    d: slot2,
                    imm: 8,
                    a: slot,
                },
            );
            let tgt = tail.vg();
            tail.emit_pred(
                p_hit,
                Op::Ld {
                    sz: 8,
                    d: tgt,
                    addr: slot2,
                    spec: false,
                },
            );
            tail.emit_pred(p_hit, Op::MovToBr { b: Br(1), r: tgt });
            tail.emit_pred(p_hit, Op::BrRet { b: Br(1) });
            tail.emit(Op::AddImm {
                d: GR_PAYLOAD0,
                imm: 0,
                a: eip,
            });
            tail.emit(Op::Br {
                target: Target::Abs(StubKind::IndirectMiss.addr()),
            });
        }
        (Some(Term::Halt), _) => {
            tail.emit(Op::Br {
                target: Target::Abs(StubKind::Exit.addr()),
            });
        }
        (Some(Term::Syscall { vector }), _) => {
            // State register := EIP after the INT (where execution
            // resumes); payload := vector.
            tail.emit(Op::Movl {
                d: GR_STATE,
                imm: term_ip as u64,
            });
            tail.mov_imm(GR_PAYLOAD0, vector as u64);
            tail.emit(Op::Br {
                target: Target::Abs(StubKind::Syscall.addr()),
            });
        }
        (Some(Term::InvalidOp), _) | (None, None) => {
            // UD2, undecodable tail, or a fallthrough block: for
            // fallthrough jump to the next address, otherwise raise #UD.
            if matches!(blk.end, BlockEnd::FallThrough) {
                let t = branch_to(&mut tail, blk.end_ip(), &mut tramp_reqs);
                tail.emit(Op::Br { target: t });
            } else if term == Some(Term::InvalidOp) || blk.end == BlockEnd::Stop {
                // #UD reports the invalid instruction's own address.
                let ud_ip = if term == Some(Term::InvalidOp) {
                    term_inst_ip
                } else {
                    term_ip
                };
                tail.emit(Op::Movl {
                    d: GR_STATE,
                    imm: ud_ip as u64,
                });
                tail.emit(Op::Br {
                    target: Target::Abs(StubKind::InvalidOp.addr()),
                });
            } else {
                let t = branch_to(&mut tail, term_ip, &mut tramp_reqs);
                tail.emit(Op::Br { target: t });
            }
        }
    }
    // Trampolines.
    let mut tramp_labels: Vec<(u32, u32)> = Vec::new();
    for (eip, l) in &tramp_reqs {
        tail.bind(*l);
        tail.emit(Op::Movl {
            d: GR_PAYLOAD0,
            imm: *eip as u64,
        });
        tail.emit(Op::Br {
            target: Target::Abs(StubKind::Untranslated.addr()),
        });
        tramp_labels.push((*eip, *l));
    }

    // Stitch head + (body + tail). Local labels are per-sink, so lower
    // each sink into the same CodeBuilder in order; the trampoline
    // labels come from the combined body/tail lowering.
    let mut cb = CodeBuilder::new();
    lower(&head, &mut cb).map_err(ColdGenError::Lower)?;
    let tail_labels = lower(&tail, &mut cb).map_err(ColdGenError::Lower)?;
    let native_insts = cb.len();
    let (bundles, label_addrs) = cb.assemble(input.base);
    let exits = tramp_labels
        .iter()
        .map(|(eip, l)| (*eip, label_addrs[&tail_labels[*l as usize]]))
        .collect();

    Ok(ColdBlock {
        bundles,
        exits,
        ia32_insts: ia32_count,
        accesses,
        spec: input.spec,
        entry_mmx,
        native_insts,
        superinst_hits: si_hits,
        superinst_fused_slots: si_fused,
        superinst_eligible_slots: si_eligible,
        superinst_absorbed_slots: si_absorbed,
    })
}

#[cfg(test)]
mod tests {
    use super::super::discover::discover;
    use super::super::liveness::analyze;
    use super::*;
    use crate::templates::AccessMode;
    use ia32::asm::Asm;
    use ia32::inst::AluOp;
    use ia32::mem::{GuestMem, Prot};
    use ia32::regs::{EAX, ECX};

    fn gen_block(f: impl FnOnce(&mut Asm)) -> ColdBlock {
        let mut a = Asm::new(0x1000);
        f(&mut a);
        let code = a.assemble();
        let mut mem = GuestMem::new();
        mem.map(0x1000, code.len().max(1) as u64, Prot::rx());
        mem.write_forced(0x1000, &code);
        let region = discover(&mem, 0x1000);
        let liveness = analyze(&region);
        let input = ColdGenInput {
            region: &region,
            liveness: &liveness,
            entry: 0x1000,
            block_id: 1,
            counter_addr: crate::layout::COUNTERS_BASE,
            edge_counters: (
                crate::layout::COUNTERS_BASE + 8,
                crate::layout::COUNTERS_BASE + 16,
            ),
            heat_threshold: 1024,
            misalign: MisalignPlan::uniform(AccessMode::Probe, 1),
            spec: SpecSeed::default(),
            flag_liveness: true,
            fuse: true,
            inline_fp_checks: false,
            smc_check: None,
            ic_slot: crate::layout::COUNTERS_BASE + 24,
            accel: true,
            plain: false,
            superinst: None,
            base: crate::layout::TC_BASE,
        };
        generate(&input).expect("generates")
    }

    #[test]
    fn simple_block_generates() {
        let b = gen_block(|a| {
            a.mov_ri(EAX, 5);
            a.alu_ri(AluOp::Add, EAX, 7);
            a.hlt();
        });
        assert_eq!(b.ia32_insts, 3);
        assert!(!b.bundles.is_empty());
        assert!(b.exits.is_empty(), "halt needs no trampoline");
    }

    #[test]
    fn cond_branch_has_two_exits() {
        let b = gen_block(|a| {
            let l = a.label();
            a.cmp_ri(EAX, 3);
            a.jcc(ia32::Cond::E, l);
            a.bind(l);
            a.hlt();
        });
        assert_eq!(b.exits.len(), 2, "taken + fallthrough trampolines");
        let eips: Vec<u32> = b.exits.iter().map(|(e, _)| *e).collect();
        assert!(eips.contains(&0x1009));
    }

    #[test]
    fn fused_cmp_jcc_has_no_flag_code() {
        let fused = gen_block(|a| {
            let l = a.label();
            a.cmp_ri(ECX, 3);
            a.jcc(ia32::Cond::L, l);
            a.bind(l);
            a.hlt();
        });
        // The same block without fusion materializes flags.
        let mut a = Asm::new(0x1000);
        let l = a.label();
        a.cmp_ri(ECX, 3);
        a.jcc(ia32::Cond::L, l);
        a.bind(l);
        a.hlt();
        let code = a.assemble();
        let mut mem = GuestMem::new();
        mem.map(0x1000, code.len() as u64, Prot::rx());
        mem.write_forced(0x1000, &code);
        let region = discover(&mem, 0x1000);
        let liveness = analyze(&region);
        let input = ColdGenInput {
            region: &region,
            liveness: &liveness,
            entry: 0x1000,
            block_id: 1,
            counter_addr: crate::layout::COUNTERS_BASE,
            edge_counters: (
                crate::layout::COUNTERS_BASE + 8,
                crate::layout::COUNTERS_BASE + 16,
            ),
            heat_threshold: 1024,
            misalign: MisalignPlan::uniform(AccessMode::Probe, 1),
            spec: SpecSeed::default(),
            flag_liveness: true,
            fuse: false,
            inline_fp_checks: false,
            smc_check: None,
            ic_slot: crate::layout::COUNTERS_BASE + 24,
            accel: true,
            plain: false,
            superinst: None,
            base: crate::layout::TC_BASE,
        };
        let unfused = generate(&input).unwrap();
        assert!(
            fused.native_insts < unfused.native_insts,
            "fusion saves instructions: {} vs {}",
            fused.native_insts,
            unfused.native_insts
        );
    }

    #[test]
    fn indirect_emits_lookup() {
        let b = gen_block(|a| {
            a.mov_ri(EAX, 0x2000);
            a.jmp_r(EAX);
        });
        // Lookup sequence present: a load from the lookup region plus
        // an indirect branch.
        let has_brret = b
            .bundles
            .iter()
            .flat_map(|bu| bu.slots.iter())
            .any(|s| matches!(s.op, Op::BrRet { .. }));
        assert!(has_brret);
    }

    #[test]
    fn smc_prologue_emitted() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(EAX, 1);
        a.hlt();
        let code = a.assemble();
        let mut mem = GuestMem::new();
        mem.map(0x1000, code.len() as u64, Prot::rx());
        mem.write_forced(0x1000, &code);
        let region = discover(&mem, 0x1000);
        let liveness = analyze(&region);
        let mk = |smc: Option<(u64, u64)>| ColdGenInput {
            region: &region,
            liveness: &liveness,
            entry: 0x1000,
            block_id: 1,
            counter_addr: crate::layout::COUNTERS_BASE,
            edge_counters: (0, 0),
            heat_threshold: 0,
            misalign: MisalignPlan::uniform(AccessMode::Fast, 1),
            spec: SpecSeed::default(),
            flag_liveness: true,
            fuse: true,
            inline_fp_checks: false,
            smc_check: smc,
            ic_slot: crate::layout::COUNTERS_BASE + 24,
            accel: true,
            plain: false,
            superinst: None,
            base: crate::layout::TC_BASE,
        };
        let plain = generate(&mk(None)).unwrap();
        let checked = generate(&mk(Some((0x1000, 0xDEAD)))).unwrap();
        assert!(checked.native_insts > plain.native_insts);
    }
}
