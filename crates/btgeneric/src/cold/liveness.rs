//! EFlags liveness over a discovered region (paper §2: "computing the
//! liveness of IA-32 EFlags bits ... enables the translator to eliminate
//! redundant IA-32 EFlags updates").
//!
//! Backward dataflow: a flag is live at a point if some path reaches a
//! reader before a writer. Unknown successors (indirect branches,
//! syscalls, region exits) conservatively treat all status flags as
//! live.

use super::discover::Region;
use ia32::flags::{DF, STATUS};
use std::collections::HashMap;

/// All bits treated as conservatively live at unknown edges.
const ALL: u32 = STATUS | DF;

/// Per-block, per-instruction live-out flag masks.
#[derive(Clone, Debug, Default)]
pub struct Liveness {
    /// `live[block_start][i]` = flags live *after* instruction `i`.
    live: HashMap<u32, Vec<u32>>,
}

impl Liveness {
    /// Flags live immediately after instruction `i` of the block at
    /// `start` (i.e. the bits instruction `i` must materialize).
    pub fn live_after(&self, start: u32, i: usize) -> u32 {
        self.live
            .get(&start)
            .and_then(|v| v.get(i))
            .copied()
            .unwrap_or(ALL)
    }
}

/// Computes flag liveness for every instruction in the region.
pub fn analyze(region: &Region) -> Liveness {
    // live-in per block, iterated to a fixpoint.
    let mut live_in: HashMap<u32, u32> = HashMap::new();
    for b in &region.blocks {
        live_in.insert(b.start, ALL);
    }
    // Backward transfer through one block given live-out.
    let transfer = |b: &super::discover::DiscBlock, live_out: u32| -> u32 {
        let mut live = live_out;
        for (_, inst, _) in b.insts.iter().rev() {
            live = (live & !inst.flags_written()) | inst.flags_read();
        }
        live
    };
    // Fixpoint (region is tiny; a few iterations suffice).
    for _ in 0..region.blocks.len() + 2 {
        let mut changed = false;
        for b in region.blocks.iter().rev() {
            let mut out = if b.unknown_succ { ALL } else { 0 };
            for s in &b.succs {
                out |= live_in.get(s).copied().unwrap_or(ALL);
            }
            let inn = transfer(b, out);
            let slot = live_in.get_mut(&b.start).expect("pre-seeded");
            if *slot != inn {
                *slot = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Record live-after per instruction.
    let mut result = Liveness::default();
    for b in &region.blocks {
        let mut out = if b.unknown_succ { ALL } else { 0 };
        for s in &b.succs {
            out |= live_in.get(s).copied().unwrap_or(ALL);
        }
        let mut after = vec![0u32; b.insts.len()];
        let mut live = out;
        for (i, (_, inst, _)) in b.insts.iter().enumerate().rev() {
            after[i] = live;
            live = (live & !inst.flags_written()) | inst.flags_read();
        }
        result.live.insert(b.start, after);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::super::discover::discover;
    use super::*;
    use ia32::asm::Asm;
    use ia32::flags;
    use ia32::inst::AluOp;
    use ia32::mem::{GuestMem, Prot};
    use ia32::regs::{EAX, EBX, ECX};

    fn region_of(f: impl FnOnce(&mut Asm)) -> Region {
        let mut a = Asm::new(0x1000);
        f(&mut a);
        let code = a.assemble();
        let mut mem = GuestMem::new();
        mem.map(0x1000, code.len().max(1) as u64, Prot::rx());
        mem.write_forced(0x1000, &code);
        discover(&mem, 0x1000)
    }

    #[test]
    fn dead_flags_between_writers() {
        // add; add; hlt — the first add's flags are overwritten by the
        // second and never read before the hlt... but hlt is an unknown
        // edge so the *second* add's flags stay live.
        let r = region_of(|a| {
            a.alu_rr(AluOp::Add, EAX, EBX);
            a.alu_rr(AluOp::Add, EAX, ECX);
            a.hlt();
        });
        let l = analyze(&r);
        assert_eq!(
            l.live_after(0x1000, 0) & flags::STATUS,
            0,
            "first add's flags are dead"
        );
        assert_eq!(
            l.live_after(0x1000, 1) & flags::STATUS,
            flags::STATUS,
            "second add's flags reach the unknown edge"
        );
    }

    #[test]
    fn branch_keeps_only_read_bits_live_on_loop() {
        // Loop: add / dec / jne back — inside the loop, add's flags are
        // always clobbered by dec before any read, so they are dead;
        // dec's ZF is read by jne.
        let r = region_of(|a| {
            let top = a.label();
            a.bind(top);
            a.alu_rr(AluOp::Add, EAX, ECX);
            a.dec(ECX);
            a.jcc(ia32::Cond::Ne, top);
            a.hlt();
        });
        let l = analyze(&r);
        // After `add` (idx 0): dec writes everything except CF; jne
        // reads ZF. CF survives from add only if something reads it: the
        // hlt edge is unknown-live, so CF is live-out of the jcc and
        // flows back.
        let after_add = l.live_after(0x1000, 0);
        assert_eq!(
            after_add & (flags::ZF | flags::SF | flags::OF | flags::PF | flags::AF),
            0,
            "bits rewritten by dec are dead after add"
        );
        assert_ne!(after_add & flags::CF, 0, "CF escapes through the exit");
        let after_dec = l.live_after(0x1000, 1);
        assert_ne!(after_dec & flags::ZF, 0);
    }

    #[test]
    fn unknown_block_defaults_to_all() {
        let l = Liveness::default();
        assert_eq!(l.live_after(0x9999, 0), ALL);
    }
}
