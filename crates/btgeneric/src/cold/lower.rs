//! The cold backend: lowers template IL to machine code immediately —
//! a linear-scan allocation of virtual registers onto the template
//! scratch banks, dependence-driven stop bits, and bundling. This is
//! the "fast, with minimal optimizations" phase of the paper.

use crate::state;
use crate::templates::{IlItem, Sink};
use ipf::asm::{CodeBuilder, Label};
use ipf::inst::{Reg, Target};
use ipf::regs::{Br, Fr, Gr, Pr, VIRT_BASE};
use std::collections::HashMap;

/// Lowering failure (template exceeded a scratch bank — falls back to
/// single-step interpretation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LowerError(pub &'static str);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cold lowering failed: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

struct Bank {
    free: Vec<u16>,
    map: HashMap<u16, u16>, // virtual -> physical
}

impl Bank {
    fn new(base: u16, count: u16) -> Bank {
        Bank {
            free: (base..base + count).collect(),
            map: HashMap::new(),
        }
    }

    fn get(&mut self, v: u16, what: &'static str) -> Result<u16, LowerError> {
        if let Some(&p) = self.map.get(&v) {
            return Ok(p);
        }
        if self.free.is_empty() {
            return Err(LowerError(what));
        }
        // FIFO reuse: recently-freed registers go to the back so fresh
        // allocations avoid false WAW dependences (fewer stop bits).
        let p = self.free.remove(0);
        self.map.insert(v, p);
        Ok(p)
    }

    fn release(&mut self, v: u16) {
        if let Some(p) = self.map.remove(&v) {
            self.free.push(p);
        }
    }
}

/// Lowers the sink's items into `cb`, mapping template-local labels to
/// fresh `CodeBuilder` labels (returned so callers can reference them).
///
/// # Errors
///
/// [`LowerError`] if a template needs more live virtual registers than a
/// scratch bank holds.
pub fn lower(sink: &Sink, cb: &mut CodeBuilder) -> Result<Vec<Label>, LowerError> {
    // Pre-create labels for template-local control flow.
    let labels: Vec<Label> = (0..sink.label_count()).map(|_| cb.label()).collect();

    // Last reference index of every virtual register.
    let mut last_ref: HashMap<(u8, u16), usize> = HashMap::new();
    for (idx, item) in sink.items.iter().enumerate() {
        if let IlItem::Inst(e) = item {
            let mut note = |reg: Reg| {
                let key = match reg {
                    Reg::G(r) if r.is_virtual() => (0u8, r.0),
                    Reg::F(r) if r.is_virtual() => (1, r.0),
                    Reg::P(r) if r.is_virtual() => (2, r.0),
                    _ => return,
                };
                last_ref.insert(key, idx);
            };
            if e.inst.qp.is_virtual() {
                note(Reg::P(e.inst.qp));
            }
            e.inst.op.visit_regs(&mut |r, _| note(r));
        }
    }

    let mut grs = Bank::new(state::GR_SCRATCH, state::NUM_SCRATCH);
    let mut frs = Bank::new(state::FR_SCRATCH, state::NUM_FR_SCRATCH);
    let mut prs = Bank::new(state::PR_SCRATCH, state::NUM_PR_SCRATCH);

    // Registers defined since the last stop (for dependence stops).
    let mut group_defs: Vec<Reg> = Vec::new();

    for (idx, item) in sink.items.iter().enumerate() {
        match item {
            IlItem::Bind(l) => {
                cb.bind(labels[*l as usize]);
                group_defs.clear();
            }
            IlItem::Inst(e) => {
                let mut inst = e.inst;
                // Allocate virtuals.
                let mut err: Option<LowerError> = None;
                if inst.qp.is_virtual() {
                    match prs.get(inst.qp.0, "predicate scratch exhausted") {
                        Ok(p) => inst.qp = Pr(p),
                        Err(e) => err = Some(e),
                    }
                }
                inst.op.map_regs(&mut |r, _is_def| match r {
                    Reg::G(g) if g.is_virtual() => match grs.get(g.0, "GR scratch exhausted") {
                        Ok(p) => Reg::G(Gr(p)),
                        Err(e) => {
                            err = Some(e);
                            Reg::G(Gr(state::GR_SCRATCH))
                        }
                    },
                    Reg::F(f) if f.is_virtual() => match frs.get(f.0, "FR scratch exhausted") {
                        Ok(p) => Reg::F(Fr(p)),
                        Err(e) => {
                            err = Some(e);
                            Reg::F(Fr(state::FR_SCRATCH))
                        }
                    },
                    Reg::P(p) if p.is_virtual() => {
                        match prs.get(p.0, "predicate scratch exhausted") {
                            Ok(ph) => Reg::P(Pr(ph)),
                            Err(e) => {
                                err = Some(e);
                                Reg::P(Pr(state::PR_SCRATCH))
                            }
                        }
                    }
                    other => other,
                });
                if let Some(e) = err {
                    return Err(e);
                }
                // Remap template-local label targets.
                if let Some(Target::Label(l)) = inst.op.target() {
                    inst.op.set_target(Target::Label(labels[l as usize].0));
                }

                // Stop-bit decision: this instruction conflicts with the
                // current group if it reads or writes a register defined
                // in the group.
                let mut conflict = false;
                let qp = inst.qp;
                inst.op.visit_regs(&mut |r, _| {
                    if group_defs.contains(&r) {
                        conflict = true;
                    }
                });
                if group_defs.contains(&Reg::P(qp)) {
                    conflict = true;
                }
                if conflict {
                    cb.stop();
                    group_defs.clear();
                }
                // Branches end the group (targets start fresh).
                let is_branch = inst.op.is_branch();
                inst.op.visit_regs(&mut |r, is_def| {
                    if is_def {
                        group_defs.push(r);
                    }
                });
                let _ = Br(0);
                cb.push_inst(inst);
                if is_branch {
                    cb.stop();
                    group_defs.clear();
                }

                // Release virtuals whose last reference this was.
                let original = e.inst;
                let mut dead: Vec<(u8, u16)> = Vec::new();
                let mut note = |r: Reg| {
                    let key = match r {
                        Reg::G(g) if g.is_virtual() => (0u8, g.0),
                        Reg::F(f) if f.is_virtual() => (1, f.0),
                        Reg::P(p) if p.is_virtual() => (2, p.0),
                        _ => return,
                    };
                    if last_ref.get(&key) == Some(&idx) {
                        dead.push(key);
                    }
                };
                if original.qp.is_virtual() {
                    note(Reg::P(original.qp));
                }
                original.op.visit_regs(&mut |r, _| note(r));
                for (kind, v) in dead {
                    match kind {
                        0 => grs.release(v),
                        1 => frs.release(v),
                        _ => prs.release(v),
                    }
                }
            }
        }
    }
    let _ = VIRT_BASE;
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::Sink;
    use ipf::inst::{CmpRel, Op};
    use ipf::regs::R0;

    #[test]
    fn lowers_and_reuses_scratch() {
        let mut sink = Sink::new();
        // Create more virtuals than the scratch bank, but with short
        // lifetimes so reuse covers them.
        for i in 0..40 {
            let v = sink.vg();
            sink.emit(Op::AddImm {
                d: v,
                imm: i,
                a: R0,
            });
            sink.emit(Op::AddImm {
                d: state::guest_gpr(0),
                imm: 0,
                a: v,
            });
        }
        let mut cb = CodeBuilder::new();
        lower(&sink, &mut cb).expect("fits");
        assert!(cb.len() >= 80);
    }

    #[test]
    fn stop_inserted_on_dependence() {
        let mut sink = Sink::new();
        let v = sink.vg();
        sink.emit(Op::AddImm {
            d: v,
            imm: 1,
            a: R0,
        });
        sink.emit(Op::AddImm {
            d: state::guest_gpr(0),
            imm: 0,
            a: v,
        });
        let mut cb = CodeBuilder::new();
        lower(&sink, &mut cb).unwrap();
        let (bundles, _) = cb.assemble(0);
        let stops: usize = bundles
            .iter()
            .map(|b| b.stops.iter().filter(|s| **s).count())
            .sum();
        assert!(stops >= 1, "dependence requires a stop");
    }

    #[test]
    fn predicate_pairs_release() {
        let mut sink = Sink::new();
        // Many compares; each pair dies immediately.
        for _ in 0..40 {
            let (pt, pf) = (sink.vp(), sink.vp());
            sink.emit(Op::CmpImm {
                rel: CmpRel::Eq,
                pt,
                pf,
                imm: 0,
                b: R0,
            });
            sink.emit_pred(
                pt,
                Op::AddImm {
                    d: state::guest_gpr(0),
                    imm: 1,
                    a: R0,
                },
            );
        }
        let mut cb = CodeBuilder::new();
        lower(&sink, &mut cb).expect("predicates recycle");
    }

    #[test]
    fn local_labels_map() {
        let mut sink = Sink::new();
        let l = sink.local_label();
        sink.bind(l);
        sink.emit(Op::AddImm {
            d: state::guest_gpr(0),
            imm: 1,
            a: R0,
        });
        sink.emit(Op::Br {
            target: Target::Label(l),
        });
        let mut cb = CodeBuilder::new();
        lower(&sink, &mut cb).unwrap();
        let (bundles, _) = cb.assemble(0x1000);
        // The backward branch resolves inside the emitted code.
        let target = bundles
            .iter()
            .flat_map(|b| b.slots.iter())
            .find_map(|s| s.op.target());
        assert_eq!(target, Some(Target::Abs(0x1000)));
    }
}
