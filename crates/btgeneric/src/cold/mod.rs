//! Cold-code translation (paper §2, Figure 1): fast template-based
//! generation at basic-block granularity with local (1-20 block)
//! analysis and instrumentation in the translated code.

pub mod discover;
pub mod gen;
pub mod liveness;
pub mod lower;
