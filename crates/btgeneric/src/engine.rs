//! The translation engine: the dispatch loop tying the translation
//! cache, the Itanium machine, the OS layer, and the two translation
//! phases together (paper Figure 2).

use crate::btos::{BtOs, ExceptionOutcome, GuestException, SyscallOutcome};
use crate::chaos::{Blacklist, FaultKind, FaultPlan};
use crate::cold::discover::discover;
use crate::cold::gen::{generate, ColdGenInput, SpecSeed};
use crate::cold::liveness::analyze;
use crate::layout::{self, region, StubKind};
use crate::state::{self, GR_PAYLOAD0, GR_STATE};
use crate::stats::Stats;
use crate::templates::{AccessMode, MisalignPlan};
use crate::trace::{EventData, EventKind, Phase, Rung, SpanToken, TraceConfig, Tracer};
use ia32::cpu::Cpu;
use ia32::interp::{Event, Interp};
use ia32::mem::{GuestMem, MemFaultKind, Prot};
use ipf::inst::{FFmt, FXfer, Op, Target};
use ipf::machine::{Bus, BusError, CodeArena, MachFault, Machine, StopReason};
use std::collections::{HashMap, HashSet};

/// Engine configuration — the knobs the benchmarks and ablations turn.
///
/// No longer `Copy`: the warm-start fields (`save_image`,
/// `load_image`) carry heap-allocated paths, so pass clones where a
/// config is reused.
#[derive(Clone, Debug)]
pub struct Config {
    /// Heating threshold (power of two). 0 disables hot translation.
    pub heat_threshold: u64,
    /// Optimization session trigger: this many registered candidates
    /// (or one block registering twice) starts hot translation.
    pub hot_candidates: usize,
    /// Master switch for the hot phase.
    pub enable_hot: bool,
    /// EFlags liveness analysis (ablation knob).
    pub enable_flag_liveness: bool,
    /// Compare+branch fusion (ablation knob).
    pub enable_fusion: bool,
    /// Learned superinstruction templates: mine recurring adjacent
    /// idioms from the block profiles, synthesize fused templates for
    /// the winners (differentially validated against the interpreter
    /// oracle), and fire them from a peephole window in both phases.
    /// Off (the default) leaves the pipeline bit-for-bit unchanged.
    pub enable_superinst: bool,
    /// Misalignment detection and avoidance (ablation knob; off = every
    /// misaligned access takes the OS-handled fault).
    pub enable_misalign_avoidance: bool,
    /// FP TOS/tag/mode/format speculation (off = inline checks).
    pub enable_fp_spec: bool,
    /// Synthetic translation cost charged per IA-32 instruction of cold
    /// translation (simulated cycles).
    pub cold_xlate_cycles: u64,
    /// Hot translation costs this factor more per instruction (paper:
    /// "about 20 times more").
    pub hot_xlate_factor: u64,
    /// Engine dispatch round-trip cost (simulated cycles) when the
    /// target must be translated or looked up the slow way.
    pub dispatch_cycles: u64,
    /// Dispatch round-trip cost when the target block is already
    /// translated (registry hit, no translation, minimal state
    /// spill/fill): the chained-dispatch fast path.
    pub dispatch_fast_cycles: u64,
    /// OS-handled misalignment fault cost (paper: "on the order of
    /// several thousand cycles").
    pub misalign_fault_cycles: u64,
    /// Engine-side speculation fix-up cost.
    pub fix_cycles: u64,
    /// Cost of single-stepping one instruction in the engine.
    pub interp_step_cycles: u64,
    /// Machine timing parameters.
    pub timing: ipf::Timing,
    /// Maximum IA-32 instructions in a hot trace (paper: ~20).
    pub max_trace_insts: usize,
    /// Misalignment faults tolerated in a hot block before it is
    /// discarded and regenerated with avoidance.
    pub hot_misalign_tolerance: u32,
    /// Translation-cache capacity in bundles. 0 = unbounded. Exceeding
    /// it evicts cold, low-use blocks incrementally (see
    /// `enable_eviction`), falling back to a full flush when nothing is
    /// evictable.
    pub max_cache_bundles: usize,
    /// Incremental, generation-aware eviction under cache pressure.
    /// Off = the paper's wholesale garbage collection (every capacity
    /// overflow discards the entire cache, FX!32-style).
    pub enable_eviction: bool,
    /// Verify each block's arena checksum before dispatching into it;
    /// a mismatch (corrupted cache line) evicts and retranslates
    /// instead of executing garbage. Opt-in: costs
    /// `integrity_check_cycles` per dispatch.
    pub verify_on_dispatch: bool,
    /// Simulated cost of one verify-on-dispatch checksum check.
    pub integrity_check_cycles: u64,
    /// Cycle budget (OVERHEAD region) for one hot optimization session;
    /// the watchdog aborts the session past it and keeps the cold
    /// code. 0 = unbounded.
    pub hot_session_budget: u64,
    /// Indirect control-transfer acceleration: per-site inline caches,
    /// the return-address shadow stack, hot-trace devirtualization, and
    /// the 2-way mixed-hash lookup table. Off reproduces the original
    /// shared direct-mapped table exactly (the before/after baseline
    /// for `figures indirect`).
    pub enable_indirect_accel: bool,
    /// Hot-phase typed-IR pipeline: traces are lowered to the explicit
    /// IR (`hot/ir.rs`) and run through const/copy propagation,
    /// cross-block EFlags elimination, liveness, and constraint-driven
    /// register allocation. Also lets traces end *through* an
    /// unpredictable indirect terminator with inline dispatch instead
    /// of failing promotion. Off = the original template-stitching
    /// path (the degradation ladder's demote rung).
    pub enable_hot_ir: bool,
    /// Inline-cache hit count at which a site is considered stable
    /// enough for hot-trace devirtualization.
    pub devirt_threshold: u64,
    /// Executions after which a block whose inline cache hit on fewer
    /// than half of them is declared megamorphic and demoted to the
    /// plain table probe (checked when its promotion fails).
    pub megamorphic_demote_uses: u64,
    /// Shadow-stack pop misses (dispatcher round-trips) tolerated per
    /// ret block before it is demoted to the plain table probe.
    pub shadow_demote_misses: u32,
    /// Degradation-ladder failures tolerated per block before it is
    /// demoted (hot) or evicted (cold) and its EIP blacklisted.
    pub block_failure_cap: u32,
    /// Speculation (NaT-consumption) failures tolerated in a hot trace
    /// before its retries are exhausted and it is rebuilt with inline
    /// checks.
    pub spec_retry_cap: u32,
    /// Base re-promotion backoff (simulated cycles) after a demotion;
    /// doubles per strike.
    pub blacklist_backoff_cycles: u64,
    /// Native-instruction quantum used while asynchronous signals are
    /// pending: the machine runs at most this many slots before the
    /// engine re-checks the signal queue. Has no effect (and no cost)
    /// when the OS layer reports no pending signals.
    pub signal_quantum: u64,
    /// Single-step budget for hunting the next recovery-mapped commit
    /// point after a quantum expires inside a hot trace. Exhausting it
    /// defers delivery to the next dispatch boundary.
    pub signal_step_cap: u32,
    /// Simulated cost of delivering one asynchronous signal (frame
    /// push + state spill).
    pub signal_deliver_cycles: u64,
    /// SMC-thrash governor: invalidation events tolerated per guest
    /// code page within `smc_thrash_window` cycles before the page is
    /// blacklisted to interpret-only execution. 0 disables the
    /// governor.
    pub smc_thrash_threshold: u32,
    /// Sliding window (simulated cycles) for the SMC-thrash counter.
    pub smc_thrash_window: u64,
    /// Base un-blacklist backoff (simulated cycles) for an SMC-thrashed
    /// page; doubles per strike like the block blacklist.
    pub smc_backoff_cycles: u64,
    /// Hard floor for re-entrant recovery: when failures nest this deep
    /// (an `EngineError` raised while already recovering), the ladder
    /// stops retrying/demoting and single-steps through the
    /// interpreter instead.
    pub max_recovery_depth: u32,
    /// Observability knobs: lifecycle tracing and per-block profiling
    /// (off by default — zero cost when disabled).
    pub trace: TraceConfig,
    /// Serialize the translation cache into a warm-start image at this
    /// path on a clean exit (`Halted`/`Exited`). See
    /// [`crate::persist`].
    pub save_image: Option<std::path::PathBuf>,
    /// Load a warm-start image from this path before the first
    /// dispatch. A stale or damaged image degrades (per extent or
    /// wholesale) to ordinary on-demand translation — it never aborts
    /// the run.
    pub load_image: Option<std::path::PathBuf>,
    /// Statically pre-translate the guest CFG reachable from the entry
    /// point before the first dispatch, merging with any loaded image
    /// (already-installed blocks are skipped).
    pub pretranslate: bool,
    /// Simulated cost of validating and installing one block from a
    /// warm-start image (replaces the per-instruction
    /// `cold_xlate_cycles` charge — the whole point of warm start).
    pub image_load_cycles: u64,
    /// Restore persisted hot-phase profiles (heat/edge counters,
    /// inline-cache hints) when loading a warm-start image or
    /// importing from a shared namespace. On (the default), a warm
    /// boot resumes hot promotion where the saved profile left off —
    /// the right policy for long-lived processes, where the promotion
    /// investment amortizes. Off, translations still load but profile
    /// from zero: the right policy for short-lived processes whose
    /// start-up window can never amortize an eager hot compile.
    pub restore_profiles: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            heat_threshold: 1024,
            hot_candidates: 4,
            enable_hot: true,
            enable_flag_liveness: true,
            enable_fusion: true,
            enable_superinst: false,
            enable_misalign_avoidance: true,
            enable_fp_spec: true,
            cold_xlate_cycles: 120,
            hot_xlate_factor: 20,
            dispatch_cycles: 60,
            dispatch_fast_cycles: 18,
            misalign_fault_cycles: 2500,
            fix_cycles: 120,
            interp_step_cycles: 150,
            timing: ipf::Timing::default(),
            max_trace_insts: 24,
            hot_misalign_tolerance: 8,
            max_cache_bundles: 0,
            enable_eviction: true,
            verify_on_dispatch: false,
            integrity_check_cycles: 35,
            hot_session_budget: 0,
            enable_indirect_accel: true,
            enable_hot_ir: true,
            devirt_threshold: 16,
            megamorphic_demote_uses: 32,
            shadow_demote_misses: 8,
            block_failure_cap: 3,
            spec_retry_cap: 32,
            blacklist_backoff_cycles: 100_000,
            signal_quantum: 4096,
            signal_step_cap: 512,
            signal_deliver_cycles: 400,
            smc_thrash_threshold: 8,
            smc_thrash_window: 250_000,
            smc_backoff_cycles: 150_000,
            max_recovery_depth: 3,
            trace: TraceConfig::default(),
            save_image: None,
            load_image: None,
            pretranslate: false,
            image_load_cycles: 30,
            restore_profiles: true,
        }
    }
}

/// Whether an indirect site whose inline cache hit `hits` times over
/// `uses` executions counts as monomorphic. The single shared predicate
/// for both the devirtualization gate (hot selection) and the
/// megamorphic demotion check, so the boundary `hits * 2 == uses`
/// (exactly 50%) belongs to exactly one side: it *is* monomorphic —
/// promoted by the gate, never demoted.
pub(crate) fn site_is_monomorphic(hits: u64, uses: u64) -> bool {
    hits.saturating_mul(2) >= uses
}

/// A translator-internal failure (organic or injected) that the
/// degradation ladder recovers from instead of panicking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// Translated code branched out of the arena to a non-stub address
    /// (corrupted or mispatched code).
    NonStubBranch {
        /// The bad branch target.
        target: u64,
        /// Arena address of the branching bundle.
        from: u64,
    },
    /// A NaT-flagged value was consumed (failed control/data
    /// speculation that escaped its `chk.s`).
    NatConsumption {
        /// Faulting arena address.
        ip: u64,
        /// Faulting slot.
        slot: u8,
    },
    /// A misalignment fault was taken on a bundle the engine cannot
    /// emulate (clobbered code or a non-memory op).
    MisalignResidue {
        /// Faulting arena address.
        ip: u64,
        /// Faulting slot.
        slot: u8,
    },
}

/// Why the engine returned.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Guest executed `HLT`.
    Halted(Box<Cpu>),
    /// Guest exited via a syscall.
    Exited(i32),
    /// An unhandled guest exception terminated the process.
    Terminated {
        /// The exception.
        exc: GuestException,
        /// Precise IA-32 state at the exception.
        cpu: Box<Cpu>,
    },
    /// The guest-instruction budget ran out.
    InstLimit,
}

/// Block translation phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockKind {
    /// Cold, misalignment stage 1 (probes).
    ColdV1,
    /// Cold, misalignment stage 2 (detect + avoid + record).
    ColdV2,
    /// Hot trace.
    Hot,
}

/// Per-block bookkeeping.
#[derive(Debug)]
pub struct BlockInfo {
    /// Block id (index).
    pub id: u32,
    /// Guest entry address.
    pub eip: u32,
    /// Current entry in the translation cache.
    pub entry: u64,
    /// Arena range `[start, end)` of the *latest* version.
    pub range: (u64, u64),
    /// Arena extents of *every* generation of this block (oldest first,
    /// latest last). Superseded generations stay allocated — their entry
    /// bundles forward to the latest — until the block is evicted, when
    /// all of them are reclaimed together.
    pub extents: Vec<(u64, u64)>,
    /// True once the block has been evicted from the cache: its extents
    /// are on the arena free list and it must not be executed.
    pub evicted: bool,
    /// Kind/stage.
    pub kind: BlockKind,
    /// Profile slots.
    pub counter_addr: u64,
    /// Taken/fallthrough edge counters.
    pub edge_counters: (u64, u64),
    /// Per-access misalignment-info slots.
    pub misinfo_base: u64,
    /// Per-site inline-cache slot `(pred_eip, pred_entry, hit_count)`
    /// for an indirect jmp/call terminator.
    pub ic_slot: u64,
    /// Demoted to the plain table probe: the block's inline cache or
    /// shadow pop proved chronically wrong, so its translations carry
    /// no per-site acceleration (see `Config::megamorphic_demote_uses`
    /// and `Config::shadow_demote_misses`).
    pub indirect_plain: bool,
    /// Shadow-stack pop misses observed by the dispatcher for this
    /// (ret-terminated) block.
    pub pop_misses: u32,
    /// Number of indexed accesses.
    pub accesses: u16,
    /// Speculation seeds used at translation time.
    pub spec: SpecSeed,
    /// Speculated FP/MMX entry mode.
    pub entry_mmx: bool,
    /// Inline FP checks variant (post-TagFix).
    pub inline_fp: bool,
    /// IA-32 instructions covered.
    pub ia32_insts: usize,
    /// Learned per-access misalignment modes.
    pub misalign_overrides: HashMap<u16, AccessMode>,
    /// Misalignment faults taken inside this block since (re)generation.
    pub misalign_faults: u32,
    /// Heat registrations (for the "registered twice" trigger).
    pub registrations: u32,
    /// Degradation-ladder failures charged to this generation.
    pub failures: u32,
    /// Speculation (NaT) failures charged to this generation.
    pub spec_failures: u32,
    /// FNV-1a checksum of the latest generation's bundles (maintained
    /// only under `Config::verify_on_dispatch`).
    pub checksum: u64,
    /// Guest source byte span `[start, end)` this block was translated
    /// from (per-extent SMC invalidation checks it).
    pub src_range: (u32, u32),
    /// FNV-1a checksum of the source bytes at translation time. A store
    /// to the block's page orphans the block only when this changes.
    pub src_fnv: u64,
    /// Hot recovery data (commit maps), if this is a hot block.
    pub hot: Option<crate::hot::HotData>,
}

/// FNV-1a over guest source bytes (the per-extent SMC invalidation
/// key; same construction as the arena's bundle checksum).
pub(crate) fn src_checksum(mem: &GuestMem, range: (u32, u32)) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for addr in range.0..range.1 {
        let byte = mem.fetch(addr as u64, 1).map(|b| b[0]).unwrap_or(0);
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a cold translation is happening — decides what the block is
/// charged and which speculation seed it is generated under.
#[derive(Clone, Copy, Debug)]
pub(crate) enum XlateOrigin {
    /// Ordinary on-demand translation at dispatch time.
    Demand,
    /// Static pre-translation pass before first dispatch (full cold
    /// cost, paid up front).
    Pretranslate,
    /// Materialization of a validated warm-start image record: reuse
    /// the saved FP speculation seed and indirect-dispatch shape, and
    /// charge only the flat `Config::image_load_cycles`.
    Image {
        /// FP speculation seed the block was originally generated under.
        spec: SpecSeed,
        /// Saved `indirect_plain` (demoted-to-plain indirect dispatch).
        plain: bool,
    },
    /// Materialization of a record imported from the shared
    /// multi-tenant namespace ([`crate::serving`]): mechanically the
    /// image path (saved seed and shape reused, flat
    /// `Config::image_load_cycles` charge) — the record was published
    /// by a peer tenant instead of loaded from disk.
    Shared {
        /// FP speculation seed the block was originally generated under.
        spec: SpecSeed,
        /// Saved `indirect_plain` (demoted-to-plain indirect dispatch).
        plain: bool,
    },
}

/// Adapts [`GuestMem`] to the machine's bus.
pub struct MemBus<'a>(pub &'a mut GuestMem);

impl Bus for MemBus<'_> {
    fn read(&mut self, addr: u64, size: u32) -> Result<u64, BusError> {
        self.0.read(addr, size).map_err(|f| match f.kind {
            MemFaultKind::Unmapped => BusError::Unmapped,
            MemFaultKind::NoRead | MemFaultKind::NoExec => BusError::NoRead,
            MemFaultKind::NoWrite => BusError::NoWrite,
            MemFaultKind::SmcWrite => BusError::Smc,
        })
    }

    fn write(&mut self, addr: u64, size: u32, val: u64) -> Result<(), BusError> {
        self.0.write(addr, size, val).map_err(|f| match f.kind {
            MemFaultKind::SmcWrite => BusError::Smc,
            MemFaultKind::Unmapped => BusError::Unmapped,
            MemFaultKind::NoWrite => BusError::NoWrite,
            _ => BusError::NoRead,
        })
    }
}

/// The shareable code-cache half of an engine: every registry and
/// bookkeeping structure that describes *translations* rather than the
/// guest running through them. This is the state the multi-tenant
/// serving layer shares across sessions (at the generation-metadata
/// level, through [`crate::serving::SharedCache`]): translated extents,
/// the EIP registry, chain links, profile/heat allocation, and the SMC
/// governor. Pulling it out of [`Engine`] makes the per-guest /
/// shareable boundary explicit and gives invalidation paths a single
/// seam to notify the shared namespace from.
#[derive(Debug)]
pub(crate) struct CodeCache {
    /// The degradation ladder's re-promotion blacklist.
    pub(crate) blacklist: Blacklist,
    /// Every block ever translated, by id (including evicted ones).
    pub(crate) blocks: Vec<BlockInfo>,
    /// Live registry: guest EIP -> current block id.
    pub(crate) by_eip: HashMap<u32, u32>,
    /// Next free per-block profile slot.
    pub(crate) profile_cursor: u64,
    /// Blocks registered for hot promotion (never eviction victims).
    pub(crate) candidates: Vec<u32>,
    /// Guest page -> block ids with code on that page (SMC scoping).
    pub(crate) blocks_by_page: HashMap<u32, Vec<u32>>,
    /// Pages that have modified translated code at least once
    /// (translations get an explicit snapshot-check prologue).
    pub(crate) smc_pages: HashSet<u32>,
    /// SMC-thrash governor state: page -> (window start, invalidation
    /// events inside the window).
    pub(crate) smc_window: HashMap<u32, (u64, u32)>,
    /// Pages blacklisted to interpret-only by the SMC-thrash governor
    /// (exponential un-blacklist backoff, keyed by page number).
    pub(crate) smc_blacklist: Blacklist,
    /// Cached interpreter stubs by guest EIP (interpret-only pages
    /// re-enter the same EIPs on every step; cleared on flush).
    pub(crate) interp_stubs: HashMap<u32, u64>,
    /// Pages holding translated code (write-protected until SMC fires).
    pub(crate) protected_pages: Vec<u32>,
    /// Profile slot per guest EIP, persistent across retranslation and
    /// eviction so re-heated blocks promote quickly.
    pub(crate) profile_of: HashMap<u32, u64>,
    /// Untranslated-exit trampolines waiting for a target, from the cold
    /// generator's exit records: `target_eip -> trampoline addresses`.
    /// Drained (patched into direct chained branches) when the target is
    /// translated.
    pub(crate) pending_exits: HashMap<u32, Vec<u64>>,
    /// Reverse chain index: block id -> bundle addresses whose branch
    /// was patched to point at (a generation of) that block. Used to
    /// surgically un-link a victim's inbound edges on eviction.
    pub(crate) links_into: HashMap<u32, Vec<u64>>,
    /// End of the currently mapped prefix of the profile region (grown
    /// on demand through `BtOs::alloc_pages`).
    pub(crate) profile_mapped: u64,
    /// Every allocated inline-cache slot address (one per profile slot,
    /// shared overflow slot included once). Eviction, SMC invalidation,
    /// and flushing scan this list to purge stale predictions;
    /// `collect_indirect_stats` sums the per-site hit counters over it.
    pub(crate) ic_slots: Vec<u64>,
    /// Learned superinstruction state: the mined idiom table and its
    /// lifecycle flags (see [`crate::superinst`]). Lives in the code
    /// cache because it describes translations, like them it is
    /// shareable across tenants and persistable.
    pub(crate) superinst: crate::superinst::SuperinstState,
}

/// The per-guest half of an engine: session-scoped state that must
/// never be shared between tenants. The IA-32 register file, EFLAGS
/// home, shadow return stack, and inline-cache training state live in
/// the session's own `Machine`/`GuestMem` (fixed translator addresses
/// inside per-guest memory); this struct carries the per-session
/// scalars alongside them plus the session's attachment to a shared
/// translation namespace.
#[derive(Debug)]
pub(crate) struct GuestContext {
    /// Dynamic nesting depth of recovery operations (degradation
    /// ladder, SMC invalidation). > 0 while already recovering; a
    /// failure at depth >= 1 is re-entrant.
    pub(crate) recovery_depth: u32,
    /// Block whose code the engine may still patch or resume in the
    /// current exit handling — never an eviction victim.
    pub(crate) pinned_block: Option<u32>,
    /// Whether the warm-boot sequence (image load + pre-translation)
    /// has already run; `run` performs it exactly once, before the
    /// first dispatch.
    pub(crate) warm_booted: bool,
    /// This session's handle into a shared, sharded translation-cache
    /// namespace (None = single-tenant).
    pub(crate) shared: Option<crate::serving::SharedTenant>,
}

/// The IA-32 Execution Layer engine: one guest session
/// (`GuestContext` + its `GuestMem`/`Machine`) over a code cache
/// (`CodeCache`) that may be backed by a shared namespace.
pub struct Engine {
    /// Guest memory (application + translator data).
    pub mem: GuestMem,
    /// The Itanium machine (owns the translation cache arena).
    pub machine: Machine,
    /// Configuration.
    pub cfg: Config,
    /// Execution statistics.
    pub stats: Stats,
    /// Attached fault-injection schedule (None = no chaos).
    pub chaos: Option<FaultPlan>,
    /// The lifecycle tracer / flight recorder (inert unless
    /// `Config::trace.enabled`).
    pub tracer: Tracer,
    /// The shareable code-cache state.
    pub(crate) cache: CodeCache,
    /// The per-guest session state.
    pub(crate) ctx: GuestContext,
}

/// Per-block profile slot: 8-byte use counter, two 8-byte edge
/// counters, 64 misalignment-info words, then the 24-byte inline-cache
/// slot `(pred_eip, pred_entry, hit_count)`.
const IC_OFFSET: u64 = 24 + 64 * 8;

const PROFILE_STRIDE: u64 = IC_OFFSET + 24;

/// Granularity of on-demand profile-region mapping (page-aligned).
const PROFILE_CHUNK: u64 = 0x1_0000;

impl Engine {
    /// Creates an engine over the given guest memory.
    pub fn new(mut mem: GuestMem, cfg: Config) -> Engine {
        // Map only the lookup table plus one reserved overflow profile
        // slot up front; per-block profile slots are allocated on
        // demand through `BtOs::alloc_pages` so the OS can refuse them.
        let head = (layout::COUNTERS_BASE + PROFILE_STRIDE - layout::PROFILE_BASE)
            .next_multiple_of(PROFILE_CHUNK);
        mem.map(layout::PROFILE_BASE, head, Prot::rw());
        // Empty-key the shadow stack and the shared overflow inline
        // cache so freshly mapped (zeroed) slots can never match a
        // guest EIP.
        for i in 0..layout::SHADOW_ENTRIES {
            let _ = mem.write(
                layout::SHADOW_BASE + i * layout::SHADOW_ENTRY_SIZE,
                8,
                layout::LOOKUP_EMPTY_KEY,
            );
        }
        let _ = mem.write(
            layout::COUNTERS_BASE + IC_OFFSET,
            8,
            layout::LOOKUP_EMPTY_KEY,
        );
        let arena = CodeArena::new(layout::TC_BASE);
        let machine = Machine::new(arena, cfg.timing);
        let tracer = Tracer::new(cfg.trace);
        Engine {
            mem,
            machine,
            stats: Stats::default(),
            chaos: None,
            tracer,
            cache: CodeCache {
                blacklist: Blacklist::new(cfg.blacklist_backoff_cycles),
                blocks: Vec::new(),
                by_eip: HashMap::new(),
                profile_cursor: layout::COUNTERS_BASE + PROFILE_STRIDE,
                candidates: Vec::new(),
                blocks_by_page: HashMap::new(),
                smc_pages: HashSet::new(),
                smc_window: HashMap::new(),
                smc_blacklist: Blacklist::new(cfg.smc_backoff_cycles),
                interp_stubs: HashMap::new(),
                protected_pages: Vec::new(),
                profile_of: HashMap::new(),
                pending_exits: HashMap::new(),
                links_into: HashMap::new(),
                profile_mapped: layout::PROFILE_BASE + head,
                ic_slots: vec![layout::COUNTERS_BASE + IC_OFFSET],
                superinst: Default::default(),
            },
            ctx: GuestContext {
                recovery_depth: 0,
                pinned_block: None,
                warm_booted: false,
                shared: None,
            },
            cfg,
        }
    }

    /// Every allocated inline-cache slot (coherence tests scan these).
    pub fn ic_slots(&self) -> &[u64] {
        &self.cache.ic_slots
    }

    /// The re-promotion blacklist (inspection for tests/figures).
    pub fn blacklist(&self) -> &Blacklist {
        &self.cache.blacklist
    }

    /// Mutable blacklist access (tests drive the policy directly).
    pub fn blacklist_mut(&mut self) -> &mut Blacklist {
        &mut self.cache.blacklist
    }

    /// Block info by id.
    pub fn block(&self, id: u32) -> &BlockInfo {
        &self.cache.blocks[id as usize]
    }

    /// All blocks (stats/tests).
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.cache.blocks
    }

    fn current_spec(&self) -> SpecSeed {
        SpecSeed {
            tos: (self.machine.gr[state::GR_FPTOP.0 as usize] & 7) as u8,
            mmx_mode: self.machine.gr[state::GR_FPMODE.0 as usize] & 1 != 0,
            xmm_fmt: self.machine.gr[state::GR_XMMFMT.0 as usize] as u8,
        }
    }

    /// Allocates one per-block profile slot, growing the mapped profile
    /// region through the OS on demand. When the region is exhausted or
    /// the OS refuses the mapping (ENOMEM), degrades to the shared
    /// overflow slot at `COUNTERS_BASE` — colliding use counters cost
    /// profile quality, never correctness.
    fn alloc_profile(&mut self, os: &mut dyn BtOs) -> u64 {
        let p = self.cache.profile_cursor;
        let end = p + PROFILE_STRIDE;
        if end > layout::PROFILE_BASE + layout::PROFILE_SIZE {
            self.stats.os_alloc_failures += 1;
            return layout::COUNTERS_BASE;
        }
        while end > self.cache.profile_mapped {
            if !os.alloc_pages(&mut self.mem, self.cache.profile_mapped, PROFILE_CHUNK) {
                self.stats.os_alloc_failures += 1;
                return layout::COUNTERS_BASE;
            }
            self.cache.profile_mapped += PROFILE_CHUNK;
        }
        self.cache.profile_cursor = end;
        let _ = self.mem.write(p + IC_OFFSET, 8, layout::LOOKUP_EMPTY_KEY);
        self.cache.ic_slots.push(p + IC_OFFSET);
        p
    }

    /// Renders the translated code of a block as annotated assembly
    /// (bundles, stop bits, and templates) — the debugging view a
    /// translator developer lives in.
    pub fn disassemble_block(&self, id: u32) -> String {
        use std::fmt::Write;
        let Some(b) = self.cache.blocks.get(id as usize) else {
            return String::from("<no such block>");
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "block {} @ guest {:#x} ({:?}, {} IA-32 insts)",
            b.id, b.eip, b.kind, b.ia32_insts
        );
        let mut addr = b.range.0;
        while addr < b.range.1 {
            if let Some(bundle) = self.machine.arena.bundle_at(addr) {
                let _ = writeln!(out, "  {addr:#x}: {bundle}");
            }
            addr += ipf::Bundle::SIZE;
        }
        out
    }

    /// Flushes the entire translation cache (the paper's garbage
    /// collection: "cold blocks may be recycled due to
    /// garbage-collection"): every block is discarded, the lookup table
    /// cleared, and code pages un-protected; translation restarts on
    /// demand. Profile counters persist, so re-heated blocks promote
    /// quickly.
    pub fn flush_cache(&mut self) {
        self.stats.cache_flushes += 1;
        self.machine.arena.truncate(layout::TC_BASE);
        self.cache.blocks.clear();
        self.cache.by_eip.clear();
        self.cache.candidates.clear();
        self.cache.blocks_by_page.clear();
        self.cache.pending_exits.clear();
        self.cache.links_into.clear();
        self.cache.interp_stubs.clear();
        self.ctx.pinned_block = None;
        for page in self.cache.protected_pages.drain(..) {
            self.mem.set_code_protect((page as u64) << 12, false);
        }
        // Clear the indirect-branch lookup table.
        for i in 0..layout::LOOKUP_ENTRIES {
            let _ = self.mem.write(
                layout::LOOKUP_BASE + i * layout::LOOKUP_ENTRY_SIZE,
                8,
                layout::LOOKUP_EMPTY_KEY,
            );
        }
        // All translated code is gone: no shadow-stack prediction or
        // inline-cache entry may survive (their targets are arena
        // addresses). Hit counters persist like use counters do.
        for i in 0..layout::SHADOW_ENTRIES {
            let _ = self.mem.write(
                layout::SHADOW_BASE + i * layout::SHADOW_ENTRY_SIZE,
                8,
                layout::LOOKUP_EMPTY_KEY,
            );
        }
        let _ = self.mem.write(layout::SHADOW_TOS, 8, 0);
        for i in 0..self.cache.ic_slots.len() {
            let _ = self
                .mem
                .write(self.cache.ic_slots[i], 8, layout::LOOKUP_EMPTY_KEY);
        }
        // A flush drops every local translation at once: bump every
        // shard generation so peers re-validate (conservatively) and
        // this tenant's re-publishes re-seed the namespace.
        self.shared_bump_all();
    }

    /// Harvests the indirect-acceleration memory cells into the
    /// statistics. Idempotent like [`Engine::collect_hot_exit_stats`]:
    /// every counter is *assigned* from its cell, and the inline-cache
    /// hit total is an order-independent sum over all site slots.
    pub fn collect_indirect_stats(&mut self) {
        let cell = |mem: &GuestMem, a: u64| mem.read(a, 8).unwrap_or(0);
        let mut ic_hits = 0;
        for &s in &self.cache.ic_slots {
            ic_hits += cell(&self.mem, s + 16);
        }
        self.stats.ic_hits = ic_hits;
        self.stats.ic_misses = cell(&self.mem, layout::CELL_IC_MISSES);
        self.stats.shadow_hits = cell(&self.mem, layout::CELL_SHADOW_HITS);
        self.stats.shadow_underflows = cell(&self.mem, layout::CELL_SHADOW_UNDERFLOWS);
        self.stats.shadow_mispredicts = cell(&self.mem, layout::CELL_SHADOW_MISPREDICTS);
        self.stats.devirt_guard_fails = cell(&self.mem, layout::CELL_DEVIRT_FAILS);
    }

    /// Harvests the hot side-exit counters into the statistics (call
    /// after a run; the counters live in translator memory).
    ///
    /// Idempotent: the counters are *assigned*, not accumulated, so the
    /// bench harness may call this any number of times without
    /// double-counting `hot_side_exits`.
    pub fn collect_hot_exit_stats(&mut self) {
        let mut side = 0;
        for b in &self.cache.blocks {
            if b.kind == BlockKind::Hot && !b.evicted {
                side += self.mem.read(b.edge_counters.0, 8).unwrap_or(0);
            }
        }
        self.stats.hot_side_exits = side;
    }

    /// Every live hot trace's recovery map, keyed by the trace's guest
    /// EIP — the surface the exhaustive commit-point sweep test walks
    /// to round-trip `reconstruct_at` against the interpreter oracle.
    pub fn hot_recovery_maps(&self) -> Vec<(u32, &crate::hot::HotData)> {
        self.cache
            .blocks
            .iter()
            .filter(|b| !b.evicted && b.kind == BlockKind::Hot)
            .filter_map(|b| b.hot.as_ref().map(|h| (b.eip, h)))
            .collect()
    }

    /// Entry address for `eip` if already translated (no translation).
    pub fn entry_of_existing(&self, eip: u32) -> Option<u64> {
        self.cache
            .by_eip
            .get(&eip)
            .map(|&id| self.cache.blocks[id as usize].entry)
    }

    /// Offers one lifecycle event to the tracer, charging
    /// [`TraceConfig::event_cycles`] to the `OTHER` region iff the event
    /// was actually recorded — the honest, visible cost of a trace
    /// write. With tracing disabled this is a single branch and charges
    /// nothing, so an untraced run is cycle-identical to a build that
    /// never had tracing (the zero-cost-when-off contract).
    pub(crate) fn trace_emit(&mut self, data: EventData) {
        if !self.cfg.trace.enabled {
            return;
        }
        if self.tracer.offer(self.machine.cycles, data) {
            self.machine
                .charge(region::OTHER, self.cfg.trace.event_cycles);
        }
    }

    /// Opens a traced phase span (`None` when tracing is off).
    fn trace_phase_enter(&mut self, phase: Phase) -> Option<SpanToken> {
        if !self.cfg.trace.enabled {
            return None;
        }
        let (token, recorded) = self.tracer.phase_enter(self.machine.cycles, phase);
        if recorded {
            self.machine
                .charge(region::OTHER, self.cfg.trace.event_cycles);
        }
        Some(token)
    }

    /// Closes a traced phase span opened by [`Engine::trace_phase_enter`].
    fn trace_phase_exit(&mut self, token: Option<SpanToken>) {
        let Some(token) = token else {
            return;
        };
        if self.tracer.phase_exit(self.machine.cycles, token) {
            self.machine
                .charge(region::OTHER, self.cfg.trace.event_cycles);
        }
    }

    /// Feeds the profile table (free: profiles are engine bookkeeping,
    /// only ring writes are charged).
    fn trace_profile(&mut self, f: impl FnOnce(&mut Tracer)) {
        if self.cfg.trace.enabled {
            f(&mut self.tracer);
        }
    }

    /// Cycles accumulated so far in machine region `r`.
    fn region_cycle(&self, r: u32) -> u64 {
        self.machine.region_cycles.get(&r).copied().unwrap_or(0)
    }

    /// Renders the tracer's human-readable report: recorder counters,
    /// per-kind observed counts, and the top-10 hot-path table.
    pub fn trace_summary(&self) -> String {
        let mut s = self.tracer.summary();
        s.push('\n');
        s.push_str(&self.tracer.hot_path_table(10));
        s
    }

    /// Installs a hot trace as the new version of `block_id` (forwarding
    /// the cold entry to it).
    pub(crate) fn install_hot(
        &mut self,
        block_id: u32,
        entry: u64,
        range: (u64, u64),
        hot: crate::hot::HotData,
        ia32_insts: usize,
    ) {
        let prev = self.cache.blocks[block_id as usize].entry;
        self.forward(prev, entry);
        let commit_points = hot.recovery.len() as u64;
        let b = &mut self.cache.blocks[block_id as usize];
        b.entry = entry;
        b.range = range;
        b.extents.push(range);
        b.kind = BlockKind::Hot;
        b.hot = Some(hot);
        b.ia32_insts = ia32_insts;
        b.misalign_faults = 0;
        b.failures = 0;
        b.spec_failures = 0;
        let eip = b.eip;
        // The promoted candidate may be a stale generation whose cold
        // registration was already swept (an SMC orphan between the
        // heat event and this promotion). The trace itself is fresh —
        // selection decoded current guest bytes — but it must be
        // re-registered, or page invalidation sweeps will never find
        // it and a later rewrite of its source would leave it running
        // stale (reachable through the dispatch lookup table).
        let page = eip >> 12;
        let by_page = self.cache.blocks_by_page.entry(page).or_default();
        if !by_page.contains(&block_id) {
            by_page.push(block_id);
        }
        self.cache.by_eip.insert(eip, block_id);
        if self.cfg.verify_on_dispatch {
            self.cache.blocks[block_id as usize].checksum =
                self.machine.arena.checksum_range(range.0, range.1);
        }
        // Refresh the indirect-branch lookup entry (and, under
        // acceleration, any inline cache predicting this EIP) if it
        // pointed at the old version — the forward keeps stale entries
        // correct, but direct is faster.
        if self.cfg.enable_indirect_accel {
            let s0 = layout::lookup_slot(eip);
            for w in 0..layout::LOOKUP_WAYS {
                let s = s0 + w * layout::LOOKUP_ENTRY_SIZE;
                if self.mem.read(s, 8) == Ok(eip as u64) {
                    let _ = self.mem.write(s + 8, 8, entry);
                }
            }
            for i in 0..self.cache.ic_slots.len() {
                let s = self.cache.ic_slots[i];
                if self.mem.read(s, 8) == Ok(eip as u64) {
                    let _ = self.mem.write(s + 8, 8, entry);
                }
            }
        } else {
            let slot = layout::lookup_slot_legacy(eip);
            if self.mem.read(slot, 8) == Ok(eip as u64) {
                let _ = self.mem.write(slot + 8, 8, entry);
            }
        }
        self.trace_emit(EventData::BlockPromoted {
            id: block_id,
            eip,
            commit_points,
        });
        self.trace_profile(|t| t.profile_lifecycle(eip, EventKind::BlockPromoted));
    }

    /// Returns the entry address for `eip`, translating a cold block if
    /// necessary.
    pub fn entry_of(&mut self, os: &mut dyn BtOs, eip: u32) -> Result<u64, GuestException> {
        if let Some(&id) = self.cache.by_eip.get(&eip) {
            return Ok(self.cache.blocks[id as usize].entry);
        }
        // SMC-thrashed pages are interpret-only until their backoff
        // expires: retranslating code the guest is busy rewriting is
        // pure churn (the thrash governor's bound on retranslation
        // storms).
        if self
            .cache
            .smc_blacklist
            .is_blocked(eip >> 12, self.machine.cycles)
        {
            self.stats.smc_interp_blocks += 1;
            return Ok(self.interp_stub_for(eip));
        }
        // Injected transient translation failure (the guest code page
        // faulted under the translator's reader): single-step this
        // entry through the safety net; the next dispatch retries.
        if self
            .chaos
            .as_mut()
            .is_some_and(|p| p.roll(FaultKind::Translate))
        {
            self.stats.faults_injected += 1;
            self.stats.interp_fallbacks += 1;
            self.stats.ladder_recoveries += 1;
            self.trace_emit(EventData::FaultInjected {
                kind: FaultKind::Translate,
            });
            self.trace_emit(EventData::LadderRung {
                rung: Rung::Interpret,
                eip,
            });
            self.trace_emit(EventData::InterpFallback { eip });
            return Ok(self.emit_interp_stub(eip));
        }
        if self.cfg.max_cache_bundles > 0
            && self.machine.arena.live_len() >= self.cfg.max_cache_bundles
        {
            if self.cfg.enable_eviction {
                self.make_room();
            } else {
                self.flush_cache();
            }
        }
        // A local translation miss is the one place the shared
        // multi-tenant namespace is consulted — the read-only dispatch
        // fast path above never touches a shard lock.
        if let Some(entry) = self.shared_consult(os, eip) {
            return Ok(entry);
        }
        self.translate_cold(os, eip, BlockKind::ColdV1, false, HashMap::new())
    }

    /// Frees cache space by evicting cold, low-use blocks until live
    /// usage drops to ¾ of capacity (incremental garbage collection).
    /// Registered heat candidates and the pinned block are never
    /// victims; hot blocks are spared by the first pass and evicted
    /// only as a last resort (their use counters persist, so they
    /// re-heat quickly). If even that leaves the cache full, falls back
    /// to a full flush (the emergency path in `Stats::cache_flushes`).
    fn make_room(&mut self) {
        let cap = self.cfg.max_cache_bundles;
        let target = cap - cap / 4;
        self.evict_pass(target, false);
        if self.machine.arena.live_len() > target {
            self.evict_pass(target, true);
        }
        if self.machine.arena.live_len() >= cap {
            self.flush_cache();
        }
    }

    /// One eviction sweep toward `target` live bundles, over cold
    /// blocks only or (`include_hot`) hot blocks too.
    fn evict_pass(&mut self, target: usize, include_hot: bool) {
        // Victims coldest-first: blocks orphaned by SMC invalidation (no
        // longer in the registry) count as use 0; live blocks sort by
        // their profile use counter.
        let mut victims: Vec<(u64, u32)> = self
            .cache
            .blocks
            .iter()
            .filter(|b| {
                !b.evicted
                    && (include_hot == (b.kind == BlockKind::Hot))
                    && Some(b.id) != self.ctx.pinned_block
                    && !self.cache.candidates.contains(&b.id)
            })
            .map(|b| {
                let uses = if self.cache.by_eip.get(&b.eip) == Some(&b.id) {
                    self.mem.read(b.counter_addr, 8).unwrap_or(0)
                } else {
                    0
                };
                (uses, b.id)
            })
            .collect();
        victims.sort_unstable();
        for (_, id) in victims {
            if self.machine.arena.live_len() <= target {
                break;
            }
            self.evict_block(id);
        }
    }

    /// Surgically removes one block from the translation cache:
    /// re-points inbound chained branches at the Untranslated stub,
    /// purges its indirect-branch lookup entry, scrubs bookkeeping that
    /// references its code, and returns every generation's extent to
    /// the arena free list.
    fn evict_block(&mut self, id: u32) {
        let (eip, extents) = {
            let b = &self.cache.blocks[id as usize];
            (b.eip, b.extents.clone())
        };
        let in_extents =
            |addr: u64, ex: &[(u64, u64)]| ex.iter().any(|&(s, e)| addr >= s && addr < e);
        // Un-link inbound edges. The chaining bundle's trampoline movl
        // (payload = target EIP) is still upstream of the branch, so
        // re-pointing the branch at the stub restores the original
        // dispatch semantics exactly.
        for from in self.cache.links_into.remove(&id).unwrap_or_default() {
            if in_extents(from, &extents) {
                continue; // self-link inside the victim: reclaimed anyway
            }
            self.unlink_branch(from, &extents);
        }
        // Purge lookup entries — only where the slot both keys on this
        // EIP and still targets the victim's code; a colliding or newer
        // entry in the same set must survive.
        let (base_slot, ways) = if self.cfg.enable_indirect_accel {
            (layout::lookup_slot(eip), layout::LOOKUP_WAYS)
        } else {
            (layout::lookup_slot_legacy(eip), 1)
        };
        for w in 0..ways {
            let slot = base_slot + w * layout::LOOKUP_ENTRY_SIZE;
            if self.mem.read(slot, 8) == Ok(eip as u64) {
                let tgt = self.mem.read(slot + 8, 8).unwrap_or(0);
                if in_extents(tgt, &extents) {
                    let _ = self.mem.write(slot, 8, layout::LOOKUP_EMPTY_KEY);
                    self.stats.lookup_purges += 1;
                }
            }
        }
        if self.cfg.enable_indirect_accel {
            // The victim's code must be unreachable through every
            // acceleration path: null shadow-stack predictions and
            // inline-cache entries that name it. (Forwarded old
            // generations are kept alive until eviction precisely so
            // this is the only purge point.)
            for i in 0..layout::SHADOW_ENTRIES {
                let ea = layout::SHADOW_BASE + i * layout::SHADOW_ENTRY_SIZE;
                let tgt = self.mem.read(ea + 8, 8).unwrap_or(0);
                if in_extents(tgt, &extents) {
                    let _ = self.mem.write(ea, 8, layout::LOOKUP_EMPTY_KEY);
                }
            }
            for i in 0..self.cache.ic_slots.len() {
                let s = self.cache.ic_slots[i];
                let k = self.mem.read(s, 8).unwrap_or(layout::LOOKUP_EMPTY_KEY);
                let tgt = self.mem.read(s + 8, 8).unwrap_or(0);
                if k == eip as u64 || in_extents(tgt, &extents) {
                    let _ = self.mem.write(s, 8, layout::LOOKUP_EMPTY_KEY);
                }
            }
        }
        // Patch sites inside the reclaimed extents may be reused for
        // unrelated code: drop them from both side tables.
        for v in self.cache.pending_exits.values_mut() {
            v.retain(|&a| !in_extents(a, &extents));
        }
        self.cache.pending_exits.retain(|_, v| !v.is_empty());
        for v in self.cache.links_into.values_mut() {
            v.retain(|&a| !in_extents(a, &extents));
        }
        self.cache.links_into.retain(|_, v| !v.is_empty());
        let mut freed = 0;
        for &(s, e) in &extents {
            freed += (e - s) / ipf::Bundle::SIZE;
            self.machine.arena.release(s, e);
        }
        if self.cache.by_eip.get(&eip) == Some(&id) {
            self.cache.by_eip.remove(&eip);
        }
        self.cache
            .blocks_by_page
            .entry(eip >> 12)
            .or_default()
            .retain(|&b| b != id);
        self.cache.candidates.retain(|&c| c != id);
        let b = &mut self.cache.blocks[id as usize];
        b.evicted = true;
        b.range = (0, 0);
        b.extents.clear();
        b.entry = StubKind::Untranslated.addr();
        b.hot = None;
        self.stats.evictions += 1;
        self.stats.evicted_bundles += freed;
        // Tell the shared namespace: peers must never import a record
        // whose publisher has reclaimed the backing extents (gen bump).
        self.shared_invalidate(eip);
        self.trace_emit(EventData::BlockEvicted {
            id,
            eip,
            bundles: freed,
        });
        self.trace_profile(|t| t.profile_lifecycle(eip, EventKind::BlockEvicted));
    }

    /// Scans the freshly installed code in `[start, end)` for branches
    /// chained straight to another live block's entry and records each
    /// as an inbound edge of its target, so eviction can un-link it.
    /// Cold translation registers its trampolines one by one as it
    /// patches them; hot installation chains exits at emission time and
    /// registers them all here in one pass. An unregistered chain is a
    /// use-after-free in waiting: evicting the target releases — and
    /// eventually reuses — the arena space the branch still lands in.
    pub(crate) fn register_inbound_links(&mut self, start: u64, end: u64, skip: u32) {
        let entry_to_id: HashMap<u64, u32> = self
            .cache
            .blocks
            .iter()
            .filter(|b| !b.evicted && b.id != skip)
            .map(|b| (b.entry, b.id))
            .collect();
        let mut addr = start;
        while addr < end {
            if let Some(b) = self.machine.arena.bundle_at(addr) {
                for s in &b.slots {
                    if let Some(Target::Abs(t)) = s.op.target() {
                        if let Some(&tid) = entry_to_id.get(&t) {
                            self.cache.links_into.entry(tid).or_default().push(addr);
                        }
                    }
                }
            }
            addr += ipf::Bundle::SIZE;
        }
    }

    /// Re-points every branch slot in the bundle at `addr` that targets
    /// one of `extents` back at the Untranslated stub.
    fn unlink_branch(&mut self, addr: u64, extents: &[(u64, u64)]) {
        let Some(b) = self.machine.arena.bundle_at(addr) else {
            return;
        };
        let mut patches = Vec::new();
        for (i, s) in b.slots.iter().enumerate() {
            if let Some(Target::Abs(t)) = s.op.target() {
                if extents.iter().any(|&(st, en)| t >= st && t < en) {
                    patches.push(i);
                }
            }
        }
        for i in patches {
            self.machine.arena.patch_slot(
                addr,
                i,
                Op::Br {
                    target: Target::Abs(StubKind::Untranslated.addr()),
                },
            );
            self.stats.chain_unlinks += 1;
        }
        self.note_patched(addr);
    }

    /// Inserts `eip -> entry` into the 2-way lookup table: a matching
    /// way is updated in place, an empty way is filled, and a full set
    /// demotes way 0 into way 1 and claims way 0 (newest-first
    /// pseudo-LRU). `lookup_collisions` counts inserts into a set
    /// already holding a live foreign key; `lookup_way_conflicts`
    /// counts the displacements of a live entry.
    pub(crate) fn lookup_insert(&mut self, eip: u32, entry: u64) {
        let s0 = layout::lookup_slot(eip);
        let s1 = s0 + layout::LOOKUP_ENTRY_SIZE;
        let k0 = self.mem.read(s0, 8).unwrap_or(layout::LOOKUP_EMPTY_KEY);
        let k1 = self.mem.read(s1, 8).unwrap_or(layout::LOOKUP_EMPTY_KEY);
        // Zero keys are freshly mapped, never-written entries.
        let is_empty = |k: u64| k == layout::LOOKUP_EMPTY_KEY || k == 0;
        let slot = if k0 == eip as u64 {
            s0
        } else if k1 == eip as u64 {
            s1
        } else if is_empty(k0) {
            if !is_empty(k1) {
                self.stats.lookup_collisions += 1;
            }
            s0
        } else if is_empty(k1) {
            self.stats.lookup_collisions += 1;
            s1
        } else {
            self.stats.lookup_collisions += 1;
            self.stats.lookup_way_conflicts += 1;
            let t0 = self.mem.read(s0 + 8, 8).unwrap_or(0);
            let _ = self.mem.write(s1, 8, k0);
            let _ = self.mem.write(s1 + 8, 8, t0);
            s0
        };
        let _ = self.mem.write(slot, 8, eip as u64);
        let _ = self.mem.write(slot + 8, 8, entry);
    }

    /// Purges every lookup way keyed on `eip` (SMC invalidation), and
    /// under acceleration also empties inline caches predicting it so
    /// the next transfer retrains through the dispatcher.
    fn lookup_purge_eip(&mut self, eip: u32) {
        if self.cfg.enable_indirect_accel {
            let s0 = layout::lookup_slot(eip);
            for w in 0..layout::LOOKUP_WAYS {
                let s = s0 + w * layout::LOOKUP_ENTRY_SIZE;
                if self.mem.read(s, 8) == Ok(eip as u64) {
                    let _ = self.mem.write(s, 8, layout::LOOKUP_EMPTY_KEY);
                }
            }
            for i in 0..self.cache.ic_slots.len() {
                let s = self.cache.ic_slots[i];
                if self.mem.read(s, 8) == Ok(eip as u64) {
                    let _ = self.mem.write(s, 8, layout::LOOKUP_EMPTY_KEY);
                }
            }
        } else {
            let slot = layout::lookup_slot_legacy(eip);
            let _ = self.mem.write(slot, 8, layout::LOOKUP_EMPTY_KEY);
        }
    }

    /// Cold-translates the block at `eip` (a specific version), updating
    /// the registry and patching pending links via the forwarding rule.
    /// Bracketed by a [`Phase::ColdTranslate`] trace span.
    fn translate_cold(
        &mut self,
        os: &mut dyn BtOs,
        eip: u32,
        kind: BlockKind,
        inline_fp: bool,
        overrides: HashMap<u16, AccessMode>,
    ) -> Result<u64, GuestException> {
        let span = self.trace_phase_enter(Phase::ColdTranslate);
        let r = self.translate_cold_inner(os, eip, kind, inline_fp, overrides, XlateOrigin::Demand);
        self.trace_phase_exit(span);
        r
    }

    /// Cold-translates `eip` ahead of first dispatch (static
    /// pre-translation pass). Pays the full cold translation charge up
    /// front; counts toward `pretranslated_blocks`.
    pub(crate) fn translate_pre(
        &mut self,
        os: &mut dyn BtOs,
        eip: u32,
        kind: BlockKind,
    ) -> Result<u64, GuestException> {
        let span = self.trace_phase_enter(Phase::ColdTranslate);
        let r = self.translate_cold_inner(
            os,
            eip,
            kind,
            false,
            HashMap::new(),
            XlateOrigin::Pretranslate,
        );
        self.trace_phase_exit(span);
        r
    }

    /// Installs a block from a validated warm-start image record: the
    /// deterministic cold generator is re-run at the current arena
    /// position (this is the relocation mechanism — arena offsets, exit
    /// trampolines, and chain links all re-derive from the new base),
    /// the saved FP speculation seed and indirect-dispatch shape are
    /// reused, and only `Config::image_load_cycles` is charged instead
    /// of the full per-instruction translation cost.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn translate_image(
        &mut self,
        os: &mut dyn BtOs,
        eip: u32,
        kind: BlockKind,
        inline_fp: bool,
        overrides: HashMap<u16, AccessMode>,
        spec: SpecSeed,
        plain: bool,
    ) -> Result<u64, GuestException> {
        let span = self.trace_phase_enter(Phase::ColdTranslate);
        let r = self.translate_cold_inner(
            os,
            eip,
            kind,
            inline_fp,
            overrides,
            XlateOrigin::Image { spec, plain },
        );
        self.trace_phase_exit(span);
        r
    }

    fn translate_cold_inner(
        &mut self,
        os: &mut dyn BtOs,
        eip: u32,
        kind: BlockKind,
        inline_fp: bool,
        overrides: HashMap<u16, AccessMode>,
        origin: XlateOrigin,
    ) -> Result<u64, GuestException> {
        // Early superinstruction mining: once enough blocks have been
        // translated and profiled, mine before translating this one so
        // the bulk of cold translation — which happens well before the
        // first hot session — already fuses. Skipped for pretranslation
        // and image loads (no execution weight behind those blocks).
        if self.cfg.enable_superinst
            && !self.cache.superinst.cold_mined
            && !self.cache.superinst.mined
            && matches!(origin, XlateOrigin::Demand)
            && self.stats.cold_blocks >= crate::superinst::COLD_MINE_TRIGGER
        {
            self.cache.superinst.cold_mined = true;
            self.mine_superinst();
        }
        let region_g = discover(&self.mem, eip);
        let Some(disc) = region_g.block_at(eip) else {
            return Err(GuestException::PageFault {
                addr: eip,
                write: false,
            });
        };
        let src_range = (eip, disc.end_ip());
        let src_fnv = src_checksum(&self.mem, src_range);
        let liveness = analyze(&region_g);
        let (id, profile, prev_entry, indirect_plain, pop_misses) =
            match self.cache.by_eip.get(&eip) {
                Some(&id) => {
                    let b = &self.cache.blocks[id as usize];
                    (
                        id,
                        b.counter_addr,
                        Some(b.entry),
                        b.indirect_plain,
                        b.pop_misses,
                    )
                }
                None => {
                    let id = self.cache.blocks.len() as u32;
                    // Profile slots are keyed by guest EIP and survive both
                    // eviction and flushing, so a re-translated block keeps
                    // its use counter and re-heats quickly.
                    let profile = match self.cache.profile_of.get(&eip) {
                        Some(&p) => p,
                        None => {
                            let p = self.alloc_profile(os);
                            self.cache.profile_of.insert(eip, p);
                            p
                        }
                    };
                    let plain = match origin {
                        XlateOrigin::Image { plain, .. } | XlateOrigin::Shared { plain, .. } => {
                            plain
                        }
                        _ => false,
                    };
                    (id, profile, None, plain, 0)
                }
            };
        let spec = match origin {
            // Image and shared records carry the FP speculation seed
            // the block was generated under — reusing it keeps the
            // regenerated code byte-identical in shape to what was
            // validated and saved/published.
            XlateOrigin::Image { spec, .. } | XlateOrigin::Shared { spec, .. } => spec,
            _ if self.cfg.enable_fp_spec => self.current_spec(),
            _ => SpecSeed::default(),
        };
        let default_mode = match kind {
            BlockKind::ColdV1 if self.cfg.enable_misalign_avoidance => AccessMode::Probe,
            BlockKind::ColdV2 => AccessMode::DetectAvoid,
            _ => AccessMode::Fast,
        };
        let misalign = MisalignPlan {
            default: default_mode,
            overrides: overrides.clone(),
            info_base: profile + 24,
            block_id: id,
        };
        // SMC-aware prologue for pages that have already modified code.
        let page = eip >> 12;
        let smc_check = if self.cache.smc_pages.contains(&page) {
            let snapshot = self.mem.read(eip as u64, 8).unwrap_or(0);
            Some((eip as u64, snapshot))
        } else {
            None
        };
        // Clone the (tiny) mined idiom table out of the cache so the
        // generator input carries no self-borrows.
        let superinst_table = if self.cfg.enable_superinst {
            self.cache.superinst.table.clone()
        } else {
            None
        };
        let input = ColdGenInput {
            region: &region_g,
            liveness: &liveness,
            entry: eip,
            block_id: id,
            counter_addr: profile,
            edge_counters: (profile + 8, profile + 16),
            heat_threshold: if self.cfg.enable_hot {
                self.cfg.heat_threshold
            } else {
                0
            },
            misalign,
            spec,
            flag_liveness: self.cfg.enable_flag_liveness,
            fuse: self.cfg.enable_fusion,
            inline_fp_checks: inline_fp || !self.cfg.enable_fp_spec,
            smc_check,
            ic_slot: profile + IC_OFFSET,
            accel: self.cfg.enable_indirect_accel,
            plain: indirect_plain,
            superinst: superinst_table.as_ref(),
            base: self.machine.arena.end(),
        };
        let gen0 = match generate(&input) {
            Ok(g) => g,
            Err(_) => {
                // Unlowerable block: a stub that single-steps from here
                // (the bottom rung of the degradation ladder).
                self.stats.interp_fallbacks += 1;
                self.trace_emit(EventData::LadderRung {
                    rung: Rung::Interpret,
                    eip,
                });
                self.trace_emit(EventData::InterpFallback { eip });
                return Ok(self.emit_interp_stub(eip));
            }
        };
        // Charge translation overhead (once — the free-list placement
        // below re-bases the same deterministic generation). Blocks
        // materialized from a warm-start image pay only the flat
        // validate-and-install cost, not the per-instruction
        // translation cost — that asymmetry is the entire warm-start
        // speedup.
        match origin {
            XlateOrigin::Image { .. } => {
                self.machine
                    .charge(region::OVERHEAD, self.cfg.image_load_cycles);
                self.stats.image_blocks_loaded += 1;
            }
            XlateOrigin::Shared { .. } => {
                // An import from the shared namespace pays the same
                // flat validate-and-install cost as an image record —
                // this asymmetry vs the per-instruction cold charge is
                // the multi-tenant dedup win.
                self.machine
                    .charge(region::OVERHEAD, self.cfg.image_load_cycles);
                self.stats.shared_installs += 1;
            }
            _ => {
                // Instructions absorbed into a fused superinstruction
                // template (everything past the idiom head) skip the
                // per-instruction template selection — the head's single
                // dispatch covers them — but still pay decode, so they
                // are charged half the per-instruction cold walk.
                let absorbed = gen0.superinst_absorbed_slots;
                let full = self.cfg.cold_xlate_cycles;
                self.machine.charge(
                    region::OVERHEAD,
                    ((gen0.ia32_insts as u64).max(1) * full).saturating_sub(absorbed * full / 2),
                );
                self.stats.cold_blocks += 1;
                self.stats.cold_ia32_insts += gen0.ia32_insts as u64;
                self.stats.cold_native_insts += gen0.native_insts as u64;
                if matches!(origin, XlateOrigin::Pretranslate) {
                    self.stats.pretranslated_blocks += 1;
                }
            }
        }
        let n_bundles = gen0.bundles.len() as u64;
        // Prefer filling an eviction hole over growing the arena. Code
        // addresses are position-dependent, so re-generate at the hole's
        // base — same shape, new addresses.
        let (mut gen, entry) = match self.machine.arena.alloc(gen0.bundles.len()) {
            Some(hole) => {
                let rebased = ColdGenInput {
                    base: hole,
                    ..input
                };
                let g = generate(&rebased).expect("cold generation is deterministic");
                debug_assert_eq!(g.bundles.len() as u64, n_bundles);
                (g, hole)
            }
            None => {
                let end = self.machine.arena.end();
                (gen0, end)
            }
        };
        let bundles = std::mem::take(&mut gen.bundles);
        self.stats.superinst_hits += gen.superinst_hits;
        self.stats.superinst_fused_slots += gen.superinst_fused_slots;
        self.stats.superinst_eligible_slots += gen.superinst_eligible_slots;
        let entry = if entry == self.machine.arena.end() {
            self.machine.arena.append(bundles, region::COLD)
        } else {
            self.machine.arena.place(entry, bundles, region::COLD)
        };
        let range = (entry, entry + n_bundles * ipf::Bundle::SIZE);

        // Write-protect the source page for SMC detection (unless it is
        // already in explicit-check mode).
        if self.mem.prot_of(eip as u64).map(|p| p.write) == Some(true)
            && !self.cache.smc_pages.contains(&page)
        {
            self.mem.set_code_protect(eip as u64, true);
            self.cache.protected_pages.push(page);
        }
        self.cache.blocks_by_page.entry(page).or_default().push(id);

        // Superseded generations stay allocated (their entries forward
        // here); eviction reclaims the whole list at once.
        let mut extents = match prev_entry {
            Some(_) => std::mem::take(&mut self.cache.blocks[id as usize].extents),
            None => Vec::new(),
        };
        extents.push(range);
        let info = BlockInfo {
            id,
            eip,
            entry,
            range,
            extents,
            evicted: false,
            kind,
            counter_addr: profile,
            edge_counters: (profile + 8, profile + 16),
            misinfo_base: profile + 24,
            ic_slot: profile + IC_OFFSET,
            indirect_plain,
            pop_misses,
            accesses: gen.accesses,
            spec,
            entry_mmx: gen.entry_mmx,
            inline_fp,
            ia32_insts: gen.ia32_insts,
            misalign_overrides: overrides,
            misalign_faults: 0,
            registrations: 0,
            failures: 0,
            spec_failures: 0,
            checksum: 0,
            src_range,
            src_fnv,
            hot: None,
        };
        if let Some(prev) = prev_entry {
            // Forward the old entry to the new version.
            self.forward(prev, entry);
            self.cache.blocks[id as usize] = info;
        } else {
            self.cache.blocks.push(info);
            self.cache.by_eip.insert(eip, id);
        }
        if self.cfg.verify_on_dispatch {
            self.cache.blocks[id as usize].checksum =
                self.machine.arena.checksum_range(range.0, range.1);
        }
        // Register this block's untranslated-target trampolines and
        // proactively chain the ones whose target already exists, so
        // the block never round-trips through the dispatcher for them
        // and eviction can find every inbound edge later.
        for &(texit, tramp) in &gen.exits {
            let Some(br) = self.exit_branch_bundle(tramp, range.1) else {
                continue;
            };
            match self.cache.by_eip.get(&texit).copied() {
                Some(tid) => {
                    let tentry = self.cache.blocks[tid as usize].entry;
                    self.patch_branch(br, StubKind::Untranslated.addr(), tentry);
                    self.cache.links_into.entry(tid).or_default().push(br);
                }
                None => {
                    self.cache.pending_exits.entry(texit).or_default().push(br);
                }
            }
        }
        // Chain every trampoline that was already waiting for this EIP.
        if let Some(waiting) = self.cache.pending_exits.remove(&eip) {
            for br in waiting {
                self.patch_branch(br, StubKind::Untranslated.addr(), entry);
                self.cache.links_into.entry(id).or_default().push(br);
            }
        }
        self.trace_emit(EventData::BlockTranslated {
            id,
            eip,
            stage2: kind == BlockKind::ColdV2,
            bundles: n_bundles,
        });
        self.trace_profile(|t| t.profile_lifecycle(eip, EventKind::BlockTranslated));
        // Export the freshly validated generation metadata to the
        // shared namespace so peer tenants skip this translation.
        // Imports themselves are not re-published (their record is
        // already current); organic retranslation after a generation
        // bump is exactly how invalidated entries become current again.
        if !matches!(origin, XlateOrigin::Shared { .. }) {
            self.shared_publish(eip);
        }
        Ok(entry)
    }

    /// Materializes a block imported from the shared multi-tenant
    /// namespace: identical mechanics to [`Engine::translate_image`]
    /// (deterministic regeneration at this tenant's arena position,
    /// saved seed/shape reused, flat `Config::image_load_cycles`
    /// charge), with the record coming from a peer tenant's publish.
    #[allow(clippy::too_many_arguments)]
    fn translate_shared(
        &mut self,
        os: &mut dyn BtOs,
        eip: u32,
        kind: BlockKind,
        inline_fp: bool,
        overrides: HashMap<u16, AccessMode>,
        spec: SpecSeed,
        plain: bool,
    ) -> Result<u64, GuestException> {
        let span = self.trace_phase_enter(Phase::ColdTranslate);
        let r = self.translate_cold_inner(
            os,
            eip,
            kind,
            inline_fp,
            overrides,
            XlateOrigin::Shared { spec, plain },
        );
        self.trace_phase_exit(span);
        r
    }

    /// Attaches this session to a shared multi-tenant translation
    /// namespace (see [`crate::serving`]). From now on, translation
    /// misses consult the namespace before paying the cold-translation
    /// cost, fresh translations are published to it, and every local
    /// invalidation path (SMC, eviction, governor blacklist, flush)
    /// notifies it. Attach before the first dispatch; tenants of the
    /// same namespace must run the same binary under the same config
    /// (the namespace key — [`crate::serving::namespace_key`] — encodes
    /// both, and the per-record source checksums enforce it).
    pub fn attach_shared(&mut self, tenant: crate::serving::SharedTenant) {
        self.ctx.shared = Some(tenant);
    }

    /// Consults the shared namespace for `eip` on a local translation
    /// miss. A current entry is validated against *this* tenant's guest
    /// bytes (the true correctness gate — the generation tag is only
    /// the sharing-profitability gate) and materialized through the
    /// image mechanics at this tenant's arena position, profile hints
    /// included. Returns the installed entry, or `None` to fall through
    /// to ordinary cold translation.
    fn shared_consult(&mut self, os: &mut dyn BtOs, eip: u32) -> Option<u64> {
        let tenant = self.ctx.shared.clone()?;
        let mut contention = 0;
        let consult = tenant.ns.consult(eip, &mut contention);
        self.stats.shared_lock_contention += contention;
        match consult {
            crate::serving::Consult::Hit(e) => {
                let b = e.block;
                if src_checksum(&self.mem, b.src_range) != b.src_fnv {
                    // Published under different guest bytes than ours
                    // (or our copy has since been rewritten): never
                    // materialize, regardless of what the tag says.
                    self.stats.shared_stale_rejects += 1;
                    return None;
                }
                let kind = if b.stage2 {
                    BlockKind::ColdV2
                } else {
                    BlockKind::ColdV1
                };
                let overrides: HashMap<u16, AccessMode> = b.overrides.iter().copied().collect();
                match self.translate_shared(
                    os,
                    eip,
                    kind,
                    b.inline_fp,
                    overrides,
                    b.spec,
                    b.indirect_plain,
                ) {
                    Ok(entry) => {
                        if self.cfg.enable_indirect_accel {
                            self.lookup_insert(eip, entry);
                        }
                        if self.cfg.restore_profiles {
                            if b.heat != 0 || b.edges != (0, 0) {
                                self.restore_profile(eip, b.heat, b.edges);
                            }
                            if b.ic_pred != 0 {
                                self.restore_ic_hint(eip, b.ic_pred, b.ic_hits);
                            }
                        }
                        Some(entry)
                    }
                    Err(_) => {
                        self.stats.shared_stale_rejects += 1;
                        None
                    }
                }
            }
            crate::serving::Consult::GenStale | crate::serving::Consult::Denied => {
                self.stats.shared_gen_rejects += 1;
                None
            }
            crate::serving::Consult::Miss => None,
        }
    }

    /// Publishes the current translation of `eip` (its generation
    /// metadata + profile hints) to the shared namespace, if attached.
    /// Hot traces are not published — like warm-start images, the
    /// shared record is always the cold base a peer re-heats from.
    fn shared_publish(&mut self, eip: u32) {
        let Some(tenant) = self.ctx.shared.clone() else {
            return;
        };
        let Some(&id) = self.cache.by_eip.get(&eip) else {
            return;
        };
        let b = &self.cache.blocks[id as usize];
        if b.evicted || b.kind == BlockKind::Hot {
            return;
        }
        if src_checksum(&self.mem, b.src_range) != b.src_fnv {
            // Already stale against our own memory: exporting it would
            // only hand peers a guaranteed reject.
            return;
        }
        let rec = crate::persist::record_of(self, b);
        let mut contention = 0;
        if tenant.ns.publish(rec, &mut contention) {
            self.stats.shared_publishes += 1;
        }
        self.stats.shared_lock_contention += contention;
    }

    /// End-of-slice profile sync: pushes this tenant's current heat /
    /// edge / inline-cache observations into the shared namespace
    /// (max-merge, so sync order between tenants cannot flap the stored
    /// profile). The scheduler calls this when a session is harvested,
    /// so later tenants start with the hottest profile any peer earned.
    pub fn shared_sync(&mut self) {
        let Some(tenant) = self.ctx.shared.clone() else {
            return;
        };
        let mut contention = 0;
        for (&eip, &id) in &self.cache.by_eip {
            let b = &self.cache.blocks[id as usize];
            if b.evicted {
                continue;
            }
            let heat = self.mem.read(b.counter_addr, 8).unwrap_or(0);
            let taken = self.mem.read(b.edge_counters.0, 8).unwrap_or(0);
            let fall = self.mem.read(b.edge_counters.1, 8).unwrap_or(0);
            let pred = self
                .mem
                .read(b.ic_slot, 8)
                .unwrap_or(layout::LOOKUP_EMPTY_KEY);
            let hits = self.mem.read(b.ic_slot + 16, 8).unwrap_or(0);
            let ic =
                if pred != layout::LOOKUP_EMPTY_KEY && pred != 0 && site_is_monomorphic(hits, heat)
                {
                    (pred as u32, hits.min(u32::MAX as u64) as u32)
                } else {
                    (0, 0)
                };
            tenant.ns.refresh_profile(
                eip,
                heat,
                (
                    taken.min(u32::MAX as u64) as u32,
                    fall.min(u32::MAX as u64) as u32,
                ),
                ic,
                &mut contention,
            );
        }
        self.stats.shared_lock_contention += contention;
    }

    /// Notifies the shared namespace that `eip`'s published record is
    /// dead (eviction, ladder blacklist): entry pulled, shard
    /// generation bumped.
    fn shared_invalidate(&mut self, eip: u32) {
        let Some(tenant) = self.ctx.shared.clone() else {
            return;
        };
        let mut contention = 0;
        if tenant.ns.invalidate(eip, &mut contention) {
            self.stats.shared_gen_bumps += 1;
        }
        self.stats.shared_lock_contention += contention;
    }

    /// Notifies the shared namespace of an SMC invalidation of `page`:
    /// every published record on the page is pulled and the affected
    /// shard generations bumped.
    fn shared_invalidate_page(&mut self, page: u32) {
        let Some(tenant) = self.ctx.shared.clone() else {
            return;
        };
        let mut contention = 0;
        self.stats.shared_gen_bumps += tenant.ns.invalidate_page(page, &mut contention);
        self.stats.shared_lock_contention += contention;
    }

    /// Notifies the shared namespace that the SMC-thrash governor
    /// blacklisted `page`: publishing and importing for the page stop
    /// until the namespace is rebuilt.
    fn shared_deny_page(&mut self, page: u32) {
        let Some(tenant) = self.ctx.shared.clone() else {
            return;
        };
        let mut contention = 0;
        self.stats.shared_gen_bumps += tenant.ns.deny_page(page, &mut contention);
        self.stats.shared_lock_contention += contention;
    }

    /// Notifies the shared namespace of a full local cache flush: every
    /// shard generation is bumped.
    fn shared_bump_all(&mut self) {
        let Some(tenant) = self.ctx.shared.clone() else {
            return;
        };
        let mut contention = 0;
        self.stats.shared_gen_bumps += tenant.ns.bump_all(&mut contention);
        self.stats.shared_lock_contention += contention;
    }

    /// Restores persisted profile heat into `eip`'s live profile slots
    /// (max-merge with whatever is already there), so a warm boot or a
    /// shared-namespace import resumes hot-phase promotion where the
    /// saved profile left off instead of re-profiling from zero.
    pub(crate) fn restore_profile(&mut self, eip: u32, heat: u64, edges: (u32, u32)) -> bool {
        let Some(&id) = self.cache.by_eip.get(&eip) else {
            return false;
        };
        let b = &self.cache.blocks[id as usize];
        if b.evicted {
            return false;
        }
        let (counter, ec) = (b.counter_addr, b.edge_counters);
        let cur = self.mem.read(counter, 8).unwrap_or(0);
        let _ = self.mem.write(counter, 8, cur.max(heat));
        let t = self.mem.read(ec.0, 8).unwrap_or(0);
        let _ = self.mem.write(ec.0, 8, t.max(edges.0 as u64));
        let f = self.mem.read(ec.1, 8).unwrap_or(0);
        let _ = self.mem.write(ec.1, 8, f.max(edges.1 as u64));
        self.stats.profile_heat_restored += 1;
        true
    }

    /// Re-trains `eip`'s inline cache from a persisted monomorphic
    /// target hint: the predicted EIP must already resolve to a
    /// translated entry (callers install hints in a second pass, after
    /// all records have had their chance to install). The hit count is
    /// restored too, so the hot phase's devirtualization gate sees the
    /// earned confidence instead of a cold counter.
    pub(crate) fn restore_ic_hint(&mut self, eip: u32, pred: u32, hits: u32) -> bool {
        if !self.cfg.enable_indirect_accel || pred == 0 {
            return false;
        }
        let Some(target_entry) = self.entry_of_existing(pred) else {
            return false;
        };
        let Some(&id) = self.cache.by_eip.get(&eip) else {
            return false;
        };
        let b = &self.cache.blocks[id as usize];
        if b.evicted || b.indirect_plain {
            return false;
        }
        let slot = b.ic_slot;
        let cur_hits = self.mem.read(slot + 16, 8).unwrap_or(0);
        let _ = self.mem.write(slot, 8, pred as u64);
        let _ = self.mem.write(slot + 8, 8, target_entry);
        let _ = self.mem.write(slot + 16, 8, cur_hits.max(hits as u64));
        self.stats.profile_ic_restored += 1;
        true
    }

    /// Finds the bundle holding a trampoline's branch to the
    /// Untranslated stub: trampoline labels are bundle-aligned, so the
    /// first stub-targeting branch at or after `tramp` (bounded by the
    /// block's end) belongs to that trampoline.
    fn exit_branch_bundle(&self, tramp: u64, end: u64) -> Option<u64> {
        let stub = StubKind::Untranslated.addr();
        let mut addr = tramp;
        while addr < end {
            if let Some(b) = self.machine.arena.bundle_at(addr) {
                if b.slots
                    .iter()
                    .any(|s| s.op.target() == Some(Target::Abs(stub)))
                {
                    return Some(addr);
                }
            }
            addr += ipf::Bundle::SIZE;
        }
        None
    }

    /// Returns (emitting on first use) the interpreter stub for `eip`.
    /// Interpret-only pages re-dispatch the same EIPs on every single
    /// step, so stubs are cached per EIP (cleared on cache flush).
    fn interp_stub_for(&mut self, eip: u32) -> u64 {
        if let Some(&addr) = self.cache.interp_stubs.get(&eip) {
            return addr;
        }
        let addr = self.emit_interp_stub(eip);
        self.cache.interp_stubs.insert(eip, addr);
        addr
    }

    /// Emits a tiny stub that single-steps the instruction at `eip`.
    fn emit_interp_stub(&mut self, eip: u32) -> u64 {
        let mut cb = ipf::asm::CodeBuilder::new();
        cb.push(Op::Movl {
            d: GR_STATE,
            imm: eip as u64,
        });
        cb.stop();
        cb.push(Op::Br {
            target: Target::Abs(StubKind::InterpStep.addr()),
        });
        let (bundles, _) = cb.assemble(self.machine.arena.end());
        self.machine.arena.append(bundles, region::OTHER)
    }

    /// Patches the entry bundle of an old block version to branch to the
    /// new version ("block forwarding").
    fn forward(&mut self, old_entry: u64, new_entry: u64) {
        let mut cb = ipf::asm::CodeBuilder::new();
        cb.push(Op::Br {
            target: Target::Abs(new_entry),
        });
        let (bundles, _) = cb.assemble(old_entry);
        let b = bundles.into_iter().next().expect("one bundle");
        if let Some(idx) = self.machine.arena.index_of(old_entry) {
            let _ = idx;
            // Replace all three slots.
            for (slot, inst) in b.slots.iter().enumerate() {
                self.machine.arena.patch_slot(old_entry, slot, inst.op);
            }
        }
        self.note_patched(old_entry);
    }

    /// Maps an arena address back to the owning block.
    fn block_at_addr(&self, addr: u64) -> Option<u32> {
        self.cache
            .blocks
            .iter()
            .find(|b| addr >= b.range.0 && addr < b.range.1)
            .map(|b| b.id)
    }

    /// Maps an arena address back to the owning block, searching every
    /// live generation (the degradation ladder must attribute failures
    /// in superseded extents too — live extents are disjoint).
    fn block_at_addr_any(&self, addr: u64) -> Option<u32> {
        self.cache
            .blocks
            .iter()
            .find(|b| !b.evicted && b.extents.iter().any(|&(s, e)| addr >= s && addr < e))
            .map(|b| b.id)
    }

    /// Re-records the owning block's checksum after a *legitimate* code
    /// patch (chaining, unlinking, forwarding), so verify-on-dispatch
    /// flags only unsanctioned modifications.
    fn note_patched(&mut self, addr: u64) {
        if !self.cfg.verify_on_dispatch {
            return;
        }
        if let Some(id) = self.block_at_addr(addr) {
            let (s, e) = self.cache.blocks[id as usize].range;
            self.cache.blocks[id as usize].checksum = self.machine.arena.checksum_range(s, e);
        }
    }

    /// Verify-on-dispatch: checks the target block's checksum before
    /// entering it. On a mismatch the corrupted block is evicted (the
    /// caller falls back to the slow path, which retranslates) and
    /// false is returned.
    fn verify_dispatch(&mut self, eip: u32) -> bool {
        let Some(&id) = self.cache.by_eip.get(&eip) else {
            return true;
        };
        self.machine
            .charge(region::OTHER, self.cfg.integrity_check_cycles);
        let b = &self.cache.blocks[id as usize];
        if self.machine.arena.checksum_range(b.range.0, b.range.1) == b.checksum {
            return true;
        }
        self.stats.integrity_evictions += 1;
        self.stats.ladder_recoveries += 1;
        self.evict_block(id);
        false
    }

    /// Reconstructs the precise IA-32 state at a fault (paper §4).
    pub fn reconstruct(&self, ip: u64, slot: u8) -> Cpu {
        if let Some(id) = self.block_at_addr(ip) {
            let b = &self.cache.blocks[id as usize];
            if let Some(hot) = &b.hot {
                if let Some(cpu) = hot.reconstruct(&self.machine, ip, slot) {
                    return cpu;
                }
            }
        }
        // Cold code: the IA-32 state register holds the faulting EIP and
        // all state is in its canonical home.
        let eip = self.machine.gr[GR_STATE.0 as usize] as u32;
        state::machine_to_cpu(&self.machine, eip)
    }

    /// Runs the guest from `cpu` until exit/trap/limit.
    ///
    /// On the first call this performs the warm-boot sequence: load a
    /// warm-start image if [`Config::load_image`] is set (a stale or
    /// damaged image degrades to on-demand translation, it never aborts
    /// the run), then statically pre-translate the CFG reachable from
    /// the entry point if [`Config::pretranslate`] is set. On a clean
    /// exit (`Halted`/`Exited`), the translation cache is serialized to
    /// [`Config::save_image`] if set.
    pub fn run(&mut self, os: &mut dyn BtOs, cpu: Cpu, max_slots: u64) -> Outcome {
        if !self.ctx.warm_booted {
            self.ctx.warm_booted = true;
            // Install the entry state first so pre-translation sees the
            // same FP speculation seeds the first dispatch would.
            state::cpu_to_machine(&cpu, &mut self.machine);
            if let Some(path) = self.cfg.load_image.clone() {
                match std::fs::read(&path) {
                    Ok(bytes) => {
                        crate::persist::load(self, os, &bytes);
                    }
                    Err(_) => {
                        // Missing/unreadable image: a warm start that
                        // cannot happen, not an error — run cold.
                        self.stats.image_rejects += 1;
                    }
                }
            }
            // A shared namespace may already hold a mined idiom
            // table (a co-tenant's mining run): install it now so this
            // tenant fuses from its very first translation.
            if self.cfg.enable_superinst && self.cache.superinst.table.is_none() {
                if let Some(tenant) = self.ctx.shared.clone() {
                    if let Some(bytes) = tenant.ns.idioms() {
                        if let Some(t) = crate::superinst::IdiomTable::deserialize(&bytes) {
                            self.install_idiom_table(t);
                        }
                    }
                }
            }
            if self.cfg.pretranslate {
                crate::persist::pretranslate(self, os, cpu.eip);
            }
        }
        let out = self.run_inner(os, cpu, max_slots);
        self.autosave(&out);
        out
    }

    /// Serializes the translation cache to [`Config::save_image`] on a
    /// clean exit (shared by [`Engine::run`] and [`Engine::resume`] —
    /// a time-sliced session saves when its final slice exits).
    fn autosave(&mut self, out: &Outcome) {
        if matches!(out, Outcome::Halted(_) | Outcome::Exited(_)) {
            if let Some(path) = self.cfg.save_image.clone() {
                let image = crate::persist::snapshot(self);
                let blocks = image.blocks.len() as u64;
                if std::fs::write(&path, crate::persist::encode(&image)).is_ok() {
                    self.stats.image_saves += 1;
                    self.stats.image_blocks_saved += blocks;
                }
            }
        }
    }

    fn run_inner(&mut self, os: &mut dyn BtOs, cpu: Cpu, max_slots: u64) -> Outcome {
        self.run_loop(os, Some(cpu), max_slots)
    }

    /// Continues a run that stopped on [`Outcome::InstLimit`] without
    /// resetting machine state: the machine picks up at the exact next
    /// unexecuted slot, mid-block, with no dispatch-boundary work (the
    /// same mechanism the signal quantum already relies on). This is
    /// what lets a cooperative scheduler (`btlib`'s serving layer)
    /// time-slice thousands of sessions over shared translations.
    /// Calling it before [`Engine::run`] has established machine state
    /// is a caller bug; the guest would dispatch from EIP 0.
    pub fn resume(&mut self, os: &mut dyn BtOs, max_slots: u64) -> Outcome {
        let out = self.run_loop(os, None, max_slots);
        self.autosave(&out);
        out
    }

    fn run_loop(&mut self, os: &mut dyn BtOs, start: Option<Cpu>, max_slots: u64) -> Outcome {
        // Resuming (start == None): machine state is live from the
        // previous slice — re-importing the CPU or re-dispatching would
        // clobber a mid-block stop. Skip the boundary section once and
        // let the machine continue at its next unexecuted slot.
        let mut resuming = start.is_none();
        let mut eip = match start {
            Some(cpu) => {
                state::cpu_to_machine(&cpu, &mut self.machine);
                cpu.eip
            }
            // Attribution EIP for traces until the next real dispatch:
            // the state register holds the current block's guest EIP.
            None => self.machine.gr[GR_STATE.0 as usize] as u32,
        };
        let mut remaining = max_slots;
        'dispatch: loop {
            if resuming {
                resuming = false;
            } else {
                self.trace_profile(|t| t.profile_dispatch(eip));
                // Dispatch latency: cycles from this boundary to the
                // resolved translated entry, translation work included.
                let boundary_cycles = self.machine.cycles;
                // Fault injection is consulted at the dispatch boundary:
                // the precise EIP is known and all guest state is in its
                // canonical home, so every injected failure is recoverable.
                if self.chaos.is_some() {
                    self.inject_faults(os, eip);
                }
                // Asynchronous signal delivery at the dispatch boundary: all
                // guest state is canonical and EIP is precise, so a pending
                // signal can be delivered without any reconstruction.
                if let Some(handler) = os.poll_signal(self.machine.cycles) {
                    let cpu = state::machine_to_cpu(&self.machine, eip);
                    match self.deliver_signal(handler, cpu) {
                        ExitAction::Dispatch(e) => {
                            eip = e;
                            continue 'dispatch;
                        }
                        ExitAction::Done(out) => return out,
                        ExitAction::Continue(_) => unreachable!("signal delivery never resumes"),
                    }
                }
                // Chained-dispatch fast path: a registry hit needs no
                // translation work and only minimal state traffic, so it is
                // charged a reduced round-trip cost. Under
                // verify-on-dispatch a checksum mismatch evicts the target
                // and falls back to the slow path (retranslation).
                let fast = match self.entry_of_existing(eip) {
                    Some(e) if !self.cfg.verify_on_dispatch || self.verify_dispatch(eip) => Some(e),
                    _ => None,
                };
                let entry = if let Some(e) = fast {
                    self.machine
                        .charge(region::OTHER, self.cfg.dispatch_fast_cycles);
                    self.stats.dispatch_fast_hits += 1;
                    e
                } else {
                    self.machine.charge(region::OTHER, self.cfg.dispatch_cycles);
                    match self.entry_of(os, eip) {
                        Ok(e) => e,
                        Err(exc) => match self.deliver(os, exc, None) {
                            Ok(new_eip) => {
                                eip = new_eip;
                                continue 'dispatch;
                            }
                            Err(out) => return out,
                        },
                    }
                };
                self.stats
                    .dispatch_hist
                    .record(self.machine.cycles - boundary_cycles);
                self.machine.set_ip(entry, 0);
            }
            loop {
                let before = self.machine.inst_count;
                // Profiled runs attribute executed COLD/HOT region
                // cycles to the current dispatch target (chained
                // successors included — a documented approximation).
                let exec0 = if self.cfg.trace.enabled {
                    (
                        self.region_cycle(region::COLD),
                        self.region_cycle(region::HOT),
                    )
                } else {
                    (0, 0)
                };
                // With signals pending, bound the burst to the signal
                // quantum so a long-running hot trace reaches a stop
                // near the arrival cycle instead of at the next natural
                // exit (which a tight loop may never take).
                let step = if os.signals_pending() {
                    remaining.min(self.cfg.signal_quantum)
                } else {
                    remaining
                };
                let stop = {
                    let mut bus = MemBus(&mut self.mem);
                    self.machine.run(&mut bus, step)
                };
                if self.cfg.trace.enabled {
                    let dc = self.region_cycle(region::COLD) - exec0.0;
                    let dh = self.region_cycle(region::HOT) - exec0.1;
                    if dc | dh != 0 {
                        self.tracer.profile_exec(eip, dc, dh);
                    }
                }
                let used = self.machine.inst_count - before;
                remaining = remaining.saturating_sub(used);
                match stop {
                    StopReason::InstLimit => {
                        if remaining == 0 {
                            return Outcome::InstLimit;
                        }
                        // Signal-quantum expiry mid-trace. If a signal
                        // is due, hunt forward to the next commit point
                        // (or state boundary) and deliver there;
                        // otherwise just resume — the machine restarts
                        // at the exact next unexecuted slot.
                        if os.signal_due(self.machine.cycles) {
                            match self.hunt_commit_point(os, &mut remaining) {
                                Some(ExitAction::Dispatch(new_eip)) => {
                                    eip = new_eip;
                                    continue 'dispatch;
                                }
                                Some(ExitAction::Done(out)) => return out,
                                Some(ExitAction::Continue(_)) | None => {
                                    // Keep hunting next quantum.
                                }
                            }
                        }
                    }
                    StopReason::ExternalBranch { target, from } => {
                        match self.handle_exit(os, target, from) {
                            ExitAction::Continue(addr) => {
                                self.machine.set_ip(addr, 0);
                            }
                            ExitAction::Dispatch(new_eip) => {
                                eip = new_eip;
                                continue 'dispatch;
                            }
                            ExitAction::Done(out) => return out,
                        }
                    }
                    StopReason::Fault { fault, ip, slot } => {
                        match self.handle_fault(os, fault, ip, slot) {
                            ExitAction::Continue(_) => { /* resumed in place */ }
                            ExitAction::Dispatch(new_eip) => {
                                eip = new_eip;
                                continue 'dispatch;
                            }
                            ExitAction::Done(out) => return out,
                        }
                    }
                }
            }
        }
    }

    fn handle_exit(&mut self, os: &mut dyn BtOs, target: u64, from: u64) -> ExitAction {
        // Pin the block owning `from`: its bundles may be patched or
        // resumed below and must survive any eviction that entry_of
        // triggers while handling this exit.
        self.ctx.pinned_block = self.block_at_addr(from);
        let act = self.handle_exit_stub(os, target, from);
        self.ctx.pinned_block = None;
        act
    }

    fn handle_exit_stub(&mut self, os: &mut dyn BtOs, target: u64, from: u64) -> ExitAction {
        let Some(kind) = StubKind::from_addr(target) else {
            // A branch left the arena to a non-stub address: corrupted
            // or mispatched code. Walk the degradation ladder instead
            // of executing garbage (or dying).
            return self.degrade(os, EngineError::NonStubBranch { target, from });
        };
        let payload = self.machine.gr[GR_PAYLOAD0.0 as usize];
        match kind {
            StubKind::Exit => {
                let eip = self.machine.gr[GR_STATE.0 as usize] as u32;
                ExitAction::Done(Outcome::Halted(Box::new(state::machine_to_cpu(
                    &self.machine,
                    eip,
                ))))
            }
            StubKind::Syscall => {
                let next_eip = self.machine.gr[GR_STATE.0 as usize] as u32;
                let vector = payload as u8;
                let mut cpu = state::machine_to_cpu(&self.machine, next_eip);
                if vector != 0x80 {
                    return self.deliver_action(os, GuestException::InvalidOpcode, cpu);
                }
                self.stats.syscalls += 1;
                match os.syscall(&mut cpu, &mut self.mem) {
                    SyscallOutcome::Continue => {
                        state::cpu_to_machine(&cpu, &mut self.machine);
                        ExitAction::Dispatch(cpu.eip)
                    }
                    SyscallOutcome::Exit(code) => ExitAction::Done(Outcome::Exited(code)),
                }
            }
            StubKind::Untranslated => {
                let eip = payload as u32;
                match self.entry_of(os, eip) {
                    Ok(entry) => {
                        // Patch the trampoline's branch (the bundle that
                        // exited) to go straight to the new block, and
                        // record the edge so eviction can un-link it.
                        self.patch_branch(from, StubKind::Untranslated.addr(), entry);
                        if let Some(&tid) = self.cache.by_eip.get(&eip) {
                            self.cache.links_into.entry(tid).or_default().push(from);
                        }
                        ExitAction::Continue(entry)
                    }
                    Err(exc) => {
                        let cpu = state::machine_to_cpu(&self.machine, eip);
                        self.deliver_action(os, exc, cpu)
                    }
                }
            }
            StubKind::IndirectMiss => {
                let eip = payload as u32;
                self.stats.indirect_misses += 1;
                // Under acceleration, payload1 carries the missing
                // site's inline-cache slot (0 for devirt guard exits
                // without a site), or a `RET_MISS_TAG`-tagged block id
                // for shadow-stack pop misses.
                let mut site = if self.cfg.enable_indirect_accel {
                    self.machine.gr[state::GR_PAYLOAD1.0 as usize]
                } else {
                    0
                };
                if site & layout::RET_MISS_TAG != 0 {
                    // A ret block's shadow pop missed. Count it; a
                    // chronically mispredicting ret block is demoted to
                    // the plain table probe so it stops paying (and
                    // re-missing) the pop on every execution.
                    let id = (site & 0xFFFF_FFFF) as u32;
                    site = 0;
                    if (id as usize) < self.cache.blocks.len() {
                        self.cache.blocks[id as usize].pop_misses += 1;
                        if self.cache.blocks[id as usize].pop_misses
                            >= self.cfg.shadow_demote_misses
                            && !self.cache.blocks[id as usize].indirect_plain
                        {
                            self.demote_indirect(os, id);
                        }
                    }
                }
                match self.entry_of(os, eip) {
                    Ok(entry) => {
                        if self.cfg.enable_indirect_accel {
                            self.lookup_insert(eip, entry);
                            if site != 0 {
                                // Retrain the site's inline cache to
                                // its newest observed target.
                                let _ = self.mem.write(site, 8, eip as u64);
                                let _ = self.mem.write(site + 8, 8, entry);
                                self.stats.ic_retrains += 1;
                                self.trace_emit(EventData::IndirectRetrain { eip, site });
                                self.trace_profile(|t| {
                                    t.profile_lifecycle(eip, EventKind::IndirectRetrain)
                                });
                            }
                        } else {
                            // Fill the direct-mapped table.
                            let slot = layout::lookup_slot_legacy(eip);
                            let _ = self.mem.write(slot, 8, eip as u64);
                            let _ = self.mem.write(slot + 8, 8, entry);
                        }
                        ExitAction::Continue(entry)
                    }
                    Err(exc) => {
                        let cpu = state::machine_to_cpu(&self.machine, eip);
                        self.deliver_action(os, exc, cpu)
                    }
                }
            }
            StubKind::Heat => {
                let id = payload as u32;
                self.stats.heat_events += 1;
                let b = &mut self.cache.blocks[id as usize];
                b.registrations += 1;
                let twice = b.registrations >= 2;
                let eip = b.eip;
                // Demoted blocks sit out their re-promotion backoff:
                // no candidacy until the blacklist releases them.
                if self.cache.blacklist.is_blocked(eip, self.machine.cycles) {
                    self.stats.blacklist_hits += 1;
                    return ExitAction::Dispatch(eip);
                }
                if !self.cache.candidates.contains(&id) {
                    self.cache.candidates.push(id);
                }
                if self.cache.candidates.len() >= self.cfg.hot_candidates || twice {
                    self.run_hot_session(os);
                }
                ExitAction::Dispatch(eip)
            }
            StubKind::MisalignRetrain => {
                let id = payload as u32;
                self.stats.misalign_retrains += 1;
                let eip = self.cache.blocks[id as usize].eip;
                let overrides = self.cache.blocks[id as usize].misalign_overrides.clone();
                let _ = self.translate_cold(os, eip, BlockKind::ColdV2, false, overrides);
                // Continue at the interrupted instruction.
                let cur = self.machine.gr[GR_STATE.0 as usize] as u32;
                ExitAction::Dispatch(cur)
            }
            StubKind::SmcFail => {
                let id = payload as u32;
                self.stats.smc_events += 1;
                let eip = self.cache.blocks[id as usize].eip;
                // Snapshot-mode pages are unprotected, so their writes
                // never reach `handle_smc_store` — the prologue
                // detection is their governor feed. A thrashing page
                // goes back to interpret-only instead of retranslating.
                if self.note_smc_disturbance(eip >> 12) {
                    return ExitAction::Dispatch(eip);
                }
                let _ = self.translate_cold(os, eip, BlockKind::ColdV1, false, HashMap::new());
                ExitAction::Dispatch(eip)
            }
            StubKind::TosFix => {
                let id = payload as u32;
                self.stats.tos_fixes += 1;
                self.machine.charge(region::OTHER, self.cfg.fix_cycles);
                self.fix_tos(id);
                ExitAction::Continue(self.cache.blocks[id as usize].entry)
            }
            StubKind::TagFix => {
                let id = payload as u32;
                self.stats.tag_fixes += 1;
                self.machine.charge(region::OTHER, self.cfg.fix_cycles);
                // Rebuild the "special block" with inline checks.
                let eip = self.cache.blocks[id as usize].eip;
                let overrides = self.cache.blocks[id as usize].misalign_overrides.clone();
                let kind = self.cache.blocks[id as usize].kind;
                let _ = self.translate_cold(os, eip, kind, true, overrides);
                ExitAction::Dispatch(eip)
            }
            StubKind::MmxFix => {
                let id = payload as u32;
                self.stats.mmx_fixes += 1;
                self.machine.charge(region::OTHER, self.cfg.fix_cycles);
                self.fix_mmx_mode(self.cache.blocks[id as usize].entry_mmx);
                ExitAction::Continue(self.cache.blocks[id as usize].entry)
            }
            StubKind::XmmFix => {
                let id = payload as u32;
                self.stats.xmm_fixes += 1;
                self.machine.charge(region::OTHER, self.cfg.fix_cycles);
                self.fix_xmm_formats(id);
                ExitAction::Continue(self.cache.blocks[id as usize].entry)
            }
            StubKind::DivZero => {
                let eip = self.machine.gr[GR_STATE.0 as usize] as u32;
                let cpu = state::machine_to_cpu(&self.machine, eip);
                self.deliver_action(os, GuestException::DivideError, cpu)
            }
            StubKind::FpStackFault => {
                let eip = self.machine.gr[GR_STATE.0 as usize] as u32;
                let mut cpu = state::machine_to_cpu(&self.machine, eip);
                // Set the stack-fault status bits like the oracle does.
                cpu.fpu.status |= ia32::fpu::status::SF | ia32::fpu::status::IE;
                self.deliver_action(os, GuestException::FpStackFault, cpu)
            }
            StubKind::Deopt => {
                let id = payload as u32;
                let rec = self.machine.gr[state::GR_PAYLOAD1.0 as usize] as u32;
                self.stats.deopts += 1;
                self.trace_emit(EventData::CommitPointTaken { id, recovery: rec });
                let cpu = match &self.cache.blocks[id as usize].hot {
                    Some(h) => h.reconstruct_at(&self.machine, rec),
                    None => None,
                };
                match cpu {
                    Some(c) => {
                        state::cpu_to_machine(&c, &mut self.machine);
                        ExitAction::Dispatch(c.eip)
                    }
                    None => {
                        let eip = self.machine.gr[GR_STATE.0 as usize] as u32;
                        ExitAction::Dispatch(eip)
                    }
                }
            }
            StubKind::InterpStep => {
                let eip = self.machine.gr[GR_STATE.0 as usize] as u32;
                self.interp_one(os, eip)
            }
            StubKind::Reenter => match self.block_at_addr(from) {
                Some(id) => ExitAction::Dispatch(self.cache.blocks[id as usize].eip),
                None => {
                    let eip = self.machine.gr[GR_STATE.0 as usize] as u32;
                    ExitAction::Dispatch(eip)
                }
            },
            StubKind::InvalidOp => {
                let eip = self.machine.gr[GR_STATE.0 as usize] as u32;
                let cpu = state::machine_to_cpu(&self.machine, eip);
                self.deliver_action(os, GuestException::InvalidOpcode, cpu)
            }
        }
    }

    /// Single-steps one instruction with the reference interpreter (the
    /// rare-case escape hatch: 64/32-bit divides, pop-to-memory, …).
    fn interp_one(&mut self, os: &mut dyn BtOs, eip: u32) -> ExitAction {
        self.stats.interp_steps += 1;
        self.stats.interp_cycles += self.cfg.interp_step_cycles;
        self.machine
            .charge(region::OTHER, self.cfg.interp_step_cycles);
        let step_cycles = self.cfg.interp_step_cycles;
        self.trace_profile(|t| t.profile_interp(eip, step_cycles));
        let cpu = state::machine_to_cpu(&self.machine, eip);
        let mut interp = Interp::new();
        interp.cpu = cpu;
        match interp.step(&mut self.mem) {
            Ok(Event::Continue) => {
                state::cpu_to_machine(&interp.cpu, &mut self.machine);
                ExitAction::Dispatch(interp.cpu.eip)
            }
            Ok(Event::Halt) => ExitAction::Done(Outcome::Halted(Box::new(interp.cpu))),
            Ok(Event::Syscall { vector }) => {
                let mut cpu = interp.cpu;
                if vector != 0x80 {
                    return self.deliver_action(os, GuestException::InvalidOpcode, cpu);
                }
                // Count the syscall exactly like the Syscall-stub path
                // does, so single-stepped syscalls don't under-report.
                self.stats.syscalls += 1;
                match os.syscall(&mut cpu, &mut self.mem) {
                    SyscallOutcome::Continue => {
                        state::cpu_to_machine(&cpu, &mut self.machine);
                        ExitAction::Dispatch(cpu.eip)
                    }
                    SyscallOutcome::Exit(code) => ExitAction::Done(Outcome::Exited(code)),
                }
            }
            Err(trap) => {
                // A store onto a write-protected code page is translator
                // housekeeping, not a guest-visible exception: the guest
                // mapped this page writable. Delivering it as a page
                // fault would run the guest's handler for a fault that
                // does not exist architecturally (and its `sigreturn`
                // would pop a frame nobody pushed).
                if let ia32::Fault::Mem(m) = trap.fault {
                    if m.kind == MemFaultKind::SmcWrite {
                        return self.smc_from_interp(os, eip, m.addr);
                    }
                }
                let exc = match trap.fault {
                    ia32::Fault::Mem(m) => GuestException::PageFault {
                        addr: m.addr as u32,
                        write: m.write,
                    },
                    ia32::Fault::Divide => GuestException::DivideError,
                    ia32::Fault::FpStack(_) => GuestException::FpStackFault,
                    ia32::Fault::InvalidOpcode => GuestException::InvalidOpcode,
                };
                self.deliver_action(os, exc, interp.cpu)
            }
        }
    }

    pub(crate) fn handle_fault(
        &mut self,
        os: &mut dyn BtOs,
        fault: MachFault,
        ip: u64,
        slot: u8,
    ) -> ExitAction {
        match fault {
            MachFault::Misalign { .. } => {
                self.stats.misalign_faults += 1;
                self.machine
                    .charge(region::OTHER, self.cfg.misalign_fault_cycles);
                if let Some(id) = self.block_at_addr(ip) {
                    let b = &mut self.cache.blocks[id as usize];
                    b.misalign_faults += 1;
                    if b.kind == BlockKind::Hot
                        && b.misalign_faults > self.cfg.hot_misalign_tolerance
                    {
                        // Discard the hot block; regenerate everything
                        // with detection and avoidance (paper §5 stage 3
                        // final paragraph) and blacklist re-promotion
                        // until the backoff expires.
                        let cpu = self.reconstruct(ip, slot);
                        self.demote_block(os, id);
                        state::cpu_to_machine(&cpu, &mut self.machine);
                        return ExitAction::Dispatch(cpu.eip);
                    }
                }
                match self.emulate_misaligned(ip, slot) {
                    Ok(()) => {
                        self.machine.skip_slot();
                        ExitAction::Continue(self.machine.ip)
                    }
                    Err(MisEmu::Guest(exc)) => {
                        let cpu = self.reconstruct(ip, slot);
                        self.deliver_action(os, exc, cpu)
                    }
                    // A misaligned self-modifying store: the part-writes
                    // already landed are idempotent (the interpreter
                    // re-executes the whole store from unchanged
                    // register state), so the ordinary SMC recovery
                    // applies as if the store had not run at all.
                    Err(MisEmu::Smc(addr)) => self.handle_smc_store(os, ip, slot, addr),
                    Err(MisEmu::Residue) => {
                        self.degrade(os, EngineError::MisalignResidue { ip, slot })
                    }
                }
            }
            MachFault::Bus { err, addr, write } => match err {
                BusError::Smc => self.handle_smc_store(os, ip, slot, addr),
                _ => {
                    let cpu = self.reconstruct(ip, slot);
                    // A split-store probe reads before writing; report
                    // the fault with the IA-32 instruction's intent.
                    let write = write || self.inst_writes_mem(cpu.eip);
                    let exc = GuestException::PageFault {
                        addr: addr as u32,
                        write,
                    };
                    self.deliver_action(os, exc, cpu)
                }
            },
            MachFault::NatConsumption => {
                // Failed speculation escaped its chk.s (or the code was
                // corrupted): recover through the ladder.
                self.degrade(os, EngineError::NatConsumption { ip, slot })
            }
        }
    }

    fn inst_writes_mem(&self, eip: u32) -> bool {
        let Ok(bytes) = self.mem.fetch(eip as u64, 16) else {
            return false;
        };
        let Ok((inst, _)) = ia32::decode::decode(&bytes, eip) else {
            return false;
        };
        use ia32::inst::Inst as I;
        matches!(
            inst,
            I::Mov {
                dst: ia32::inst::Rm::Mem(_),
                ..
            } | I::Alu {
                dst: ia32::inst::Rm::Mem(_),
                ..
            } | I::Push { .. }
                | I::Call { .. }
                | I::CallInd { .. }
                | I::Movs { .. }
                | I::Stos { .. }
                | I::Fst { .. }
                | I::Fistp { .. }
                | I::IncDec {
                    dst: ia32::inst::Rm::Mem(_),
                    ..
                }
                | I::Neg {
                    dst: ia32::inst::Rm::Mem(_),
                    ..
                }
                | I::Not {
                    dst: ia32::inst::Rm::Mem(_),
                    ..
                }
                | I::Shift {
                    dst: ia32::inst::Rm::Mem(_),
                    ..
                }
                | I::Setcc {
                    dst: ia32::inst::Rm::Mem(_),
                    ..
                }
                | I::Xchg {
                    rm: ia32::inst::Rm::Mem(_),
                    ..
                }
        )
    }

    /// Emulates a misaligned access in parts (the "OS handler" path).
    fn emulate_misaligned(&mut self, ip: u64, slot: u8) -> Result<(), MisEmu> {
        let Some(bundle) = self.machine.arena.bundle_at(ip) else {
            return Err(MisEmu::Residue);
        };
        let op = bundle.slots[slot as usize].op;
        let read_parts = |mem: &GuestMem, addr: u64, size: u32| -> Result<u64, MisEmu> {
            let mut v = 0u64;
            for i in 0..size as u64 {
                let b = mem.read(addr + i, 1).map_err(|f| {
                    MisEmu::Guest(GuestException::PageFault {
                        addr: f.addr as u32,
                        write: false,
                    })
                })?;
                v |= b << (i * 8);
            }
            Ok(v)
        };
        match op {
            Op::Ld { sz, d, addr, .. } => {
                let a = self.machine.gr[addr.phys()];
                let v = read_parts(&self.mem, a, sz as u32)?;
                if d.phys() != 0 {
                    self.machine.gr[d.phys()] = v;
                    self.machine.gr_nat[d.phys()] = false;
                }
            }
            Op::St { sz, addr, val } => {
                let a = self.machine.gr[addr.phys()];
                let v = self.machine.gr[val.phys()];
                for i in 0..sz as u64 {
                    self.mem
                        .write(a + i, 1, (v >> (i * 8)) & 0xFF)
                        .map_err(|f| match f.kind {
                            MemFaultKind::SmcWrite => MisEmu::Smc(f.addr),
                            _ => MisEmu::Guest(GuestException::PageFault {
                                addr: f.addr as u32,
                                write: true,
                            }),
                        })?;
                }
            }
            Op::Ldf { fmt, f, addr, .. } => {
                let a = self.machine.gr[addr.phys()];
                let raw = read_parts(&self.mem, a, fmt.bytes())?;
                let bits = match fmt {
                    FFmt::S => (f32::from_bits(raw as u32) as f64).to_bits(),
                    _ => raw,
                };
                self.machine.fr[f.phys()] = bits;
            }
            Op::Stf { fmt, f, addr } => {
                let a = self.machine.gr[addr.phys()];
                let raw = self.machine.fr[f.phys()];
                let (v, n) = match fmt {
                    FFmt::S => ((f64::from_bits(raw) as f32).to_bits() as u64, 4),
                    _ => (raw, 8),
                };
                for i in 0..n {
                    self.mem
                        .write(a + i, 1, (v >> (i * 8)) & 0xFF)
                        .map_err(|f| match f.kind {
                            MemFaultKind::SmcWrite => MisEmu::Smc(f.addr),
                            _ => MisEmu::Guest(GuestException::PageFault {
                                addr: f.addr as u32,
                                write: true,
                            }),
                        })?;
                }
            }
            // A misalignment fault on a non-memory op means the code at
            // `ip` is not what the translator emitted: residue for the
            // degradation ladder.
            _ => return Err(MisEmu::Residue),
        }
        let _ = FXfer::Sig;
        Ok(())
    }

    /// A store hit a write-protected translated-code page. The store has
    /// NOT executed. Reconstruct the precise state at the storing
    /// instruction, single-step it in the reference interpreter with
    /// protection lifted (full IA-32 semantics, e.g. for `xchg`/`push`),
    /// then invalidate *per extent*: only blocks whose source bytes
    /// actually changed (FNV recheck against the translation-time
    /// checksum) are orphaned — a guest JIT patching one function does
    /// not throw away its neighbors on the same page. Hot traces span
    /// guest blocks beyond their recorded source range, so they are
    /// orphaned unconditionally. A thrash governor counts disturbances
    /// per page and demotes chronically rewritten pages to
    /// interpret-only with exponential backoff.
    ///
    /// Runs under the re-entrant recovery guard: an SMC fault taken
    /// while already recovering (e.g. on the handler's own page during
    /// signal delivery) descends rather than recursing unboundedly.
    fn handle_smc_store(&mut self, os: &mut dyn BtOs, ip: u64, slot: u8, addr: u64) -> ExitAction {
        self.recovery_enter();
        self.stats.smc_events += 1;
        let cpu = self.reconstruct(ip, slot);
        let page = (addr >> 12) as u32;
        self.mem.set_code_protect(addr, false);
        state::cpu_to_machine(&cpu, &mut self.machine);
        let act = self.interp_one(os, cpu.eip);
        self.smc_invalidate_extents(page);
        // The governor may blacklist the page (leaving it unprotected
        // and interpret-only); otherwise re-arm write protection.
        if !self.note_smc_disturbance(page) {
            self.mem.set_code_protect(addr, true);
        }
        self.recovery_exit();
        act
    }

    /// An SMC store reached the interpreter escape hatch directly (the
    /// ladder's interpret floor, or the interpret-only gate of a page
    /// whose neighbor is still protected) and tripped write protection
    /// there instead of in translated code. Same recipe as
    /// [`Self::handle_smc_store`] minus the machine-state
    /// reconstruction: the interpreter already had precise state.
    fn smc_from_interp(&mut self, os: &mut dyn BtOs, eip: u32, addr: u64) -> ExitAction {
        self.recovery_enter();
        self.stats.smc_events += 1;
        let page = (addr >> 12) as u32;
        self.mem.set_code_protect(addr, false);
        let act = self.interp_one(os, eip);
        self.smc_invalidate_extents(page);
        if !self.note_smc_disturbance(page) {
            self.mem.set_code_protect(addr, true);
        }
        self.recovery_exit();
        act
    }

    /// Post-store, compares each registered block's source bytes
    /// against its translation-time checksum. Unchanged cold blocks
    /// keep their translations (and their registration); changed blocks
    /// and hot traces (whose source span exceeds their recorded range)
    /// are orphaned.
    fn smc_invalidate_extents(&mut self, page: u32) {
        // The guest rewrote this page: whatever any tenant published
        // for it is stale. Sweep the namespace first so a peer racing
        // this invalidation sees the generation bump.
        self.shared_invalidate_page(page);
        let ids = self.cache.blocks_by_page.remove(&page).unwrap_or_default();
        let mut kept = Vec::new();
        for id in ids {
            let b = &self.cache.blocks[id as usize];
            let stale =
                b.kind == BlockKind::Hot || src_checksum(&self.mem, b.src_range) != b.src_fnv;
            if !stale {
                self.stats.smc_extent_keeps += 1;
                kept.push(id);
                continue;
            }
            self.stats.smc_extent_orphans += 1;
            let entry = self.cache.blocks[id as usize].entry;
            self.forward(entry, StubKind::Reenter.addr());
            let eip = self.cache.blocks[id as usize].eip;
            // Guarded: an older orphaned generation must not clobber
            // the mapping of a fresher block at the same EIP.
            if self.cache.by_eip.get(&eip) == Some(&id) {
                self.cache.by_eip.remove(&eip);
            }
            // Purge lookup + inline-cache entries keyed on this EIP.
            self.lookup_purge_eip(eip);
        }
        if !kept.is_empty() {
            self.cache.blocks_by_page.insert(page, kept);
        }
    }

    /// True when `eip` lives on a page the SMC governor has seen
    /// thrash (blacklisted now, or in snapshot-check mode after the
    /// backoff). Cold blocks on such pages carry a snapshot-check
    /// prologue; hot traces have no per-entry staleness check, so the
    /// selector must not walk onto these pages.
    pub(crate) fn smc_churn_page(&self, eip: u32) -> bool {
        self.cache.smc_pages.contains(&(eip >> 12))
    }

    /// Counts one SMC disturbance against `page` for the thrash
    /// governor. Over the threshold within the window, the page is
    /// blacklisted to interpret-only with exponential backoff (all its
    /// surviving translations orphaned, write protection dropped) and
    /// `true` is returned. After the backoff expires, fresh translations
    /// are built in snapshot-check mode (`smc_pages`), so the page never
    /// pays the protection-fault storm again.
    fn note_smc_disturbance(&mut self, page: u32) -> bool {
        if self.cfg.smc_thrash_threshold == 0 {
            return false;
        }
        let now = self.machine.cycles;
        let w = self.cache.smc_window.entry(page).or_insert((now, 0));
        if now.saturating_sub(w.0) > self.cfg.smc_thrash_window {
            *w = (now, 0);
        }
        w.1 += 1;
        if w.1 < self.cfg.smc_thrash_threshold {
            return false;
        }
        self.cache.smc_window.remove(&page);
        let _until = self.cache.smc_blacklist.strike(page, now);
        let strikes = self.cache.smc_blacklist.strikes(page);
        self.stats.smc_blacklists += 1;
        self.trace_emit(EventData::SmcBlacklist { page, strikes });
        // Orphan every surviving translation on the page: dispatches
        // must miss `by_eip` so they reach the interpret-only gate.
        let ids = self.cache.blocks_by_page.remove(&page).unwrap_or_default();
        for id in ids {
            let entry = self.cache.blocks[id as usize].entry;
            self.forward(entry, StubKind::Reenter.addr());
            let eip = self.cache.blocks[id as usize].eip;
            if self.cache.by_eip.get(&eip) == Some(&id) {
                self.cache.by_eip.remove(&eip);
            }
            self.lookup_purge_eip(eip);
        }
        // Snapshot-check mode for post-backoff retranslations; writes
        // to the unprotected page are then caught by the SmcFail
        // prologue instead of protection faults.
        self.cache.smc_pages.insert(page);
        self.mem.set_code_protect((page as u64) << 12, false);
        // Deny the page in the shared namespace: peers must not import
        // translations of code this guest is busy rewriting.
        self.shared_deny_page(page);
        true
    }

    fn fix_tos(&mut self, id: u32) {
        let b = &self.cache.blocks[id as usize];
        let want = b.spec.tos;
        let cur = (self.machine.gr[state::GR_FPTOP.0 as usize] & 7) as u8;
        if want == cur {
            return;
        }
        // Rotate values so the block's static ST(k) -> FR mapping holds.
        let tags = self.machine.gr[state::GR_FPTAG.0 as usize] as u8;
        let mut new_fr = [0u64; 8];
        let mut new_tags = 0u8;
        for p in 0..8u8 {
            // Value at logical position k = (p - cur) mod 8 moves to
            // physical (want + k) mod 8.
            let k = p.wrapping_sub(cur) & 7;
            let np = (want + k) & 7;
            new_fr[np as usize] = self.machine.fr[(state::FR_X87 + p as u16) as usize];
            if tags & (1 << p) != 0 {
                new_tags |= 1 << np;
            }
        }
        for p in 0..8u8 {
            self.machine.fr[(state::FR_X87 + p as u16) as usize] = new_fr[p as usize];
        }
        self.machine.gr[state::GR_FPTAG.0 as usize] = new_tags as u64;
        self.machine.gr[state::GR_FPTOP.0 as usize] = want as u64;
    }

    fn fix_mmx_mode(&mut self, want_mmx: bool) {
        let cur = self.machine.gr[state::GR_FPMODE.0 as usize] & 1 != 0;
        if cur == want_mmx {
            return;
        }
        if want_mmx {
            for i in 0..8u16 {
                self.machine.gr[(state::GR_MMX + i) as usize] =
                    self.machine.fr[(state::FR_X87 + i) as usize];
            }
            self.machine.gr[state::GR_FPTOP.0 as usize] = 0;
            self.machine.gr[state::GR_FPMODE.0 as usize] = 1;
        } else {
            for i in 0..8u16 {
                // MMX values are invisible to FP reads (NaN view).
                self.machine.fr[(state::FR_X87 + i) as usize] = f64::NAN.to_bits();
            }
            self.machine.gr[state::GR_FPMODE.0 as usize] = 0;
        }
    }

    fn fix_xmm_formats(&mut self, id: u32) {
        let want = self.cache.blocks[id as usize].spec.xmm_fmt;
        let cur = self.machine.gr[state::GR_XMMFMT.0 as usize] as u8;
        for n in 0..8u8 {
            let w = want & (1 << n) != 0;
            let c = cur & (1 << n) != 0;
            if w == c {
                continue;
            }
            self.stats.xmm_conversions += 1;
            if w {
                // packed -> scalar
                let lo = self.machine.fr[state::xmm_lo_fr(n).0 as usize];
                let lane0 = f32::from_bits(lo as u32) as f64;
                self.machine.fr[state::xmm_scalar_fr(n).0 as usize] = lane0.to_bits();
            } else {
                // scalar -> packed
                let sc = f64::from_bits(self.machine.fr[state::xmm_scalar_fr(n).0 as usize]);
                let lane0 = (sc as f32).to_bits() as u64;
                let lo = self.machine.fr[state::xmm_lo_fr(n).0 as usize];
                self.machine.fr[state::xmm_lo_fr(n).0 as usize] = (lo & !0xFFFF_FFFF) | lane0;
            }
        }
        self.machine.gr[state::GR_XMMFMT.0 as usize] = want as u64;
    }

    fn patch_branch(&mut self, bundle_addr: u64, old_target: u64, new_target: u64) {
        if let Some(b) = self.machine.arena.bundle_at(bundle_addr) {
            let mut patches = Vec::new();
            for (i, s) in b.slots.iter().enumerate() {
                if s.op.target() == Some(Target::Abs(old_target)) {
                    patches.push(i);
                }
            }
            for i in patches {
                self.machine.arena.patch_slot(
                    bundle_addr,
                    i,
                    Op::Br {
                        target: Target::Abs(new_target),
                    },
                );
            }
        }
        self.note_patched(bundle_addr);
    }

    fn run_hot_session(&mut self, os: &mut dyn BtOs) {
        let span = self.trace_phase_enter(Phase::HotSession);
        // Injected budget exhaustion: the watchdog kills the whole
        // session before it starts; every candidate keeps its cold code.
        if self
            .chaos
            .as_mut()
            .is_some_and(|p| p.roll(FaultKind::HotBudget))
        {
            self.stats.faults_injected += 1;
            self.stats.watchdog_aborts += 1;
            self.stats.ladder_recoveries += 1;
            self.trace_emit(EventData::FaultInjected {
                kind: FaultKind::HotBudget,
            });
            self.cache.candidates.clear();
            self.trace_phase_exit(span);
            return;
        }
        // Second mining pass at the first hot session: by now the
        // profile counters carry real weight, so kinds the early
        // cold-phase pass had not surfaced merge into the table, and
        // this session's hot traces fuse immediately.
        if self.cfg.enable_superinst && !self.cache.superinst.mined {
            self.cache.superinst.mined = true;
            self.mine_superinst();
        }
        let budget = self.cfg.hot_session_budget;
        let start = self.overhead_cycles();
        let candidates = std::mem::take(&mut self.cache.candidates);
        for id in candidates {
            let eip = self.cache.blocks[id as usize].eip;
            if self.cache.blacklist.is_blocked(eip, self.machine.cycles) {
                self.stats.blacklist_hits += 1;
                continue;
            }
            let built = crate::hot::promote(self, id);
            if !built && self.cfg.enable_indirect_accel {
                self.maybe_demote_megamorphic(os, id);
            }
            if budget > 0 && self.overhead_cycles() - start > budget {
                // The session blew its cycle budget: abort the rest,
                // keeping their cold code (they can re-register later).
                self.stats.watchdog_aborts += 1;
                break;
            }
        }
        self.trace_phase_exit(span);
        let _ = os;
    }

    /// Mines the learned superinstruction idiom table (see
    /// [`crate::superinst`]): deterministic sample collection over the
    /// profiled blocks in EIP order, idiom ranking by dynamic weight,
    /// then the differential validation gate — every fuseable kind
    /// must match the interpreter oracle on its exemplar before it may
    /// fire, and a mismatch demotes the kind to the unfused path (a
    /// blacklist, never a death). Mining and validation costs are
    /// charged to the OVERHEAD region.
    fn mine_superinst(&mut self) {
        let mut profiled: Vec<(u32, u64)> = self
            .cache
            .profile_of
            .iter()
            .map(|(&eip, &slot)| (eip, slot))
            .collect();
        profiled.sort_unstable_by_key(|&(eip, _)| eip);
        let mut samples = Vec::new();
        for (eip, slot) in profiled {
            self.machine
                .charge(region::OVERHEAD, crate::superinst::MINE_CYCLES_PER_BLOCK);
            // Weight = the persistent per-block use counter, plus the
            // tracer's dispatch count when lifecycle tracing is on.
            let mut weight = self.mem.read(slot, 8).unwrap_or(0);
            if let Some(prof) = self.tracer.profiles().get(eip) {
                weight += prof.dispatches;
            }
            if weight == 0 {
                continue;
            }
            let insts = crate::superinst::decode_block(&self.mem, eip);
            if insts.len() >= 2 {
                samples.push(crate::superinst::BlockSample { eip, weight, insts });
            }
        }
        let mined = crate::superinst::mine(&samples);
        // Merge into the table the early pass produced (if any): kinds
        // already mined keep their validated/demoted state untouched,
        // and only newly surfaced kinds pay the validation gate.
        let mut table = self
            .cache
            .superinst
            .table
            .clone()
            .unwrap_or_else(|| crate::superinst::IdiomTable::new(Vec::new()));
        for idiom in mined.idioms().to_vec() {
            if table.contains(idiom.kind) {
                continue;
            }
            table.insert(idiom);
            if !idiom.kind.fuseable() {
                continue;
            }
            self.machine.charge(
                region::OVERHEAD,
                crate::superinst::VALIDATE_CYCLES_PER_IDIOM,
            );
            // Injected synthesis corruption: the validation gate must
            // catch it and demote the idiom — never install it.
            let corrupt = self
                .chaos
                .as_mut()
                .is_some_and(|p| p.roll(FaultKind::TemplateSynth));
            if corrupt {
                self.stats.faults_injected += 1;
                self.trace_emit(EventData::FaultInjected {
                    kind: FaultKind::TemplateSynth,
                });
            }
            if !crate::superinst::validate(&self.mem, self.cfg.timing, &idiom, corrupt) {
                table.disable(idiom.kind);
                self.stats.superinst_blacklists += 1;
            }
        }
        self.stats.superinst_mined_idioms = table.len() as u64;
        if table.is_empty() {
            return;
        }
        // Publish to the shared namespace so co-tenants skip mining
        // and fuse from their first dispatch.
        if let Some(tenant) = self.ctx.shared.clone() {
            tenant.ns.publish_idioms(table.serialize());
        }
        self.cache.superinst.table = Some(table);
    }

    /// Installs an idiom table arriving from a warm-start image or the
    /// shared namespace: trusted as-is (it passed the differential
    /// gate in the session that mined it), and marked imported so the
    /// local mining pass is skipped — the whole point is fusing from
    /// the first dispatch without paying the mining cost.
    pub(crate) fn install_idiom_table(&mut self, table: crate::superinst::IdiomTable) {
        self.stats.superinst_mined_idioms = table.len() as u64;
        self.cache.superinst.table = Some(table);
        self.cache.superinst.mined = true;
        self.cache.superinst.cold_mined = true;
        self.cache.superinst.imported = true;
    }

    fn overhead_cycles(&self) -> u64 {
        self.machine
            .region_cycles
            .get(&region::OVERHEAD)
            .copied()
            .unwrap_or(0)
    }

    /// Opens a recovery scope. Depth is tracked so a failure raised
    /// *while already recovering* (re-entrant SMC, fault during a
    /// rebuild, injected translation death inside a demotion) is
    /// visible to the ladder instead of recursing blind.
    fn recovery_enter(&mut self) {
        self.ctx.recovery_depth += 1;
        if self.ctx.recovery_depth > 1 {
            self.stats.reentrant_recoveries += 1;
        }
        self.stats.recovery_depth_max = self
            .stats
            .recovery_depth_max
            .max(self.ctx.recovery_depth as u64);
    }

    fn recovery_exit(&mut self) {
        self.ctx.recovery_depth -= 1;
    }

    /// The degradation ladder entry point, re-entrancy-guarded: at
    /// `max_recovery_depth` nested failures the engine stops trusting
    /// translated code entirely and takes the interpret-only floor —
    /// one precisely reconstructed instruction through the safety net,
    /// which cannot itself raise an `EngineError`.
    fn degrade(&mut self, os: &mut dyn BtOs, err: EngineError) -> ExitAction {
        self.recovery_enter();
        let act = if self.ctx.recovery_depth >= self.cfg.max_recovery_depth {
            self.stats.ladder_recoveries += 1;
            self.stats.interp_fallbacks += 1;
            let (site, slot) = match err {
                EngineError::NonStubBranch { from, .. } => (from, 0),
                EngineError::NatConsumption { ip, slot }
                | EngineError::MisalignResidue { ip, slot } => (ip, slot),
            };
            let cpu = self.reconstruct(site, slot);
            self.trace_emit(EventData::LadderRung {
                rung: Rung::Interpret,
                eip: cpu.eip,
            });
            self.trace_emit(EventData::InterpFallback { eip: cpu.eip });
            state::cpu_to_machine(&cpu, &mut self.machine);
            self.interp_one(os, cpu.eip)
        } else {
            self.degrade_inner(os, err)
        };
        self.recovery_exit();
        act
    }

    /// The degradation ladder: maps a translator-internal failure to a
    /// precise guest state and a bounded recovery action (retry ->
    /// demote/evict + blacklist -> retranslate) — never a panic.
    fn degrade_inner(&mut self, os: &mut dyn BtOs, err: EngineError) -> ExitAction {
        self.stats.ladder_recoveries += 1;
        let (site, slot) = match err {
            EngineError::NonStubBranch { from, .. } => (from, 0),
            EngineError::NatConsumption { ip, slot }
            | EngineError::MisalignResidue { ip, slot } => (ip, slot),
        };
        let id = self.block_at_addr_any(site);
        // Precise state: a block entry is a state boundary (everything
        // in its canonical home, EIP = the block's EIP); inside a block
        // the recovery maps / state register reconstruct it.
        let cpu = match id {
            Some(id) => {
                let b = &self.cache.blocks[id as usize];
                if b.extents.iter().any(|&(s, _)| s == site) {
                    state::machine_to_cpu(&self.machine, b.eip)
                } else {
                    self.reconstruct(site, slot)
                }
            }
            None => self.reconstruct(site, slot),
        };
        let rung = if let Some(id) = id {
            let is_spec = matches!(err, EngineError::NatConsumption { .. });
            if is_spec && self.cache.blocks[id as usize].kind == BlockKind::Hot {
                // Failed speculation: bounded retries, then rebuild
                // without the speculative assumptions (inline checks).
                let b = &mut self.cache.blocks[id as usize];
                b.spec_failures += 1;
                if b.spec_failures > self.cfg.spec_retry_cap {
                    b.inline_fp = true;
                    self.stats.spec_retry_exhaustions += 1;
                    self.demote_block(os, id);
                    Rung::Demote
                } else {
                    Rung::Retry
                }
            } else {
                self.note_failure(os, id)
            }
        } else {
            Rung::Retry
        };
        self.trace_emit(EventData::LadderRung { rung, eip: cpu.eip });
        state::cpu_to_machine(&cpu, &mut self.machine);
        ExitAction::Dispatch(cpu.eip)
    }

    /// Charges one ladder failure to a block. Below the cap the block
    /// is simply retried (a transient fault may clear); past it the
    /// block is demoted (hot) or evicted (cold), its EIP blacklisted,
    /// and the next dispatch rebuilds fresh code from the unchanged
    /// guest bytes. Returns the rung taken (for the trace).
    fn note_failure(&mut self, os: &mut dyn BtOs, id: u32) -> Rung {
        let b = &mut self.cache.blocks[id as usize];
        if b.evicted {
            return Rung::Retry;
        }
        b.failures += 1;
        if b.failures <= self.cfg.block_failure_cap {
            return Rung::Retry;
        }
        if b.kind == BlockKind::Hot {
            self.demote_block(os, id);
            Rung::Demote
        } else {
            let eip = self.cache.blocks[id as usize].eip;
            let until = self.cache.blacklist.strike(eip, self.machine.cycles);
            self.trace_emit(EventData::Blacklisted { eip, until });
            self.evict_block(id);
            Rung::Evict
        }
    }

    /// Demotes a hot (or repeatedly failing) block back to stage-2 cold
    /// code and blacklists its EIP from re-promotion with exponential
    /// backoff.
    fn demote_block(&mut self, os: &mut dyn BtOs, id: u32) {
        let eip = self.cache.blocks[id as usize].eip;
        self.stats.demotions += 1;
        let until = self.cache.blacklist.strike(eip, self.machine.cycles);
        let strikes = self.cache.blacklist.strikes(eip);
        // A ladder strike means this EIP's published record is suspect
        // (repeated faults under it): pull it and bump the generation
        // until a clean retranslation re-publishes.
        self.shared_invalidate(eip);
        self.trace_emit(EventData::BlockDemoted { id, eip, strikes });
        self.trace_emit(EventData::Blacklisted { eip, until });
        self.trace_profile(|t| t.profile_lifecycle(eip, EventKind::BlockDemoted));
        if self.cache.by_eip.get(&eip) == Some(&id) {
            // Injected translation death *during the demotion rebuild*:
            // a failure inside a recovery action. Descend re-entrantly
            // — evict and blacklist rather than loop demote→rebuild —
            // under the depth guard so the descent is visible in
            // `recovery_depth_max` / `reentrant_recoveries`.
            if self
                .chaos
                .as_mut()
                .is_some_and(|p| p.roll(FaultKind::Translate))
            {
                self.recovery_enter();
                self.stats.faults_injected += 1;
                self.stats.ladder_recoveries += 1;
                self.trace_emit(EventData::FaultInjected {
                    kind: FaultKind::Translate,
                });
                self.trace_emit(EventData::LadderRung {
                    rung: Rung::Evict,
                    eip,
                });
                self.evict_block(id);
                self.recovery_exit();
                return;
            }
            let inline_fp = self.cache.blocks[id as usize].inline_fp;
            let overrides = self.cache.blocks[id as usize].misalign_overrides.clone();
            let _ = self.translate_cold(os, eip, BlockKind::ColdV2, inline_fp, overrides);
        } else {
            // An orphaned generation (superseded via SMC): nothing to
            // rebuild, just reclaim it.
            self.evict_block(id);
        }
    }

    /// A failed promotion is the checkpoint for megamorphic-site
    /// demotion: if the block's inline cache has been trained (pred
    /// set) but hit on fewer than half of a meaningful number of
    /// executions, the site is polymorphic and the IC/shadow machinery
    /// is pure per-execution overhead — demote to the plain probe.
    fn maybe_demote_megamorphic(&mut self, os: &mut dyn BtOs, id: u32) {
        let b = &self.cache.blocks[id as usize];
        if b.indirect_plain || b.evicted || b.kind == BlockKind::Hot {
            return;
        }
        let slot = b.ic_slot;
        let counter = b.counter_addr;
        let pred = self.mem.read(slot, 8).unwrap_or(layout::LOOKUP_EMPTY_KEY);
        if pred == layout::LOOKUP_EMPTY_KEY {
            // Not an inline-cache-probing terminator (or never ran).
            return;
        }
        let uses = self.mem.read(counter, 8).unwrap_or(0);
        let hits = self.mem.read(slot + 16, 8).unwrap_or(0);
        if uses >= self.cfg.megamorphic_demote_uses && !site_is_monomorphic(hits, uses) {
            self.demote_indirect(os, id);
        }
    }

    /// Demotes a block whose per-site acceleration keeps mispredicting
    /// (megamorphic inline cache, or a ret whose shadow pops chronically
    /// miss) to the plain 2-way table probe and retranslates it in
    /// place. One-way: the block keeps its kind and profile slots; only
    /// the accel emission changes. The stale prediction is emptied so
    /// hot selection can never devirtualize through a site that no
    /// longer maintains it.
    fn demote_indirect(&mut self, os: &mut dyn BtOs, id: u32) {
        let b = &self.cache.blocks[id as usize];
        if b.indirect_plain || b.evicted || b.kind == BlockKind::Hot {
            return;
        }
        let eip = b.eip;
        let kind = b.kind;
        let inline_fp = b.inline_fp;
        let overrides = b.misalign_overrides.clone();
        let slot = b.ic_slot;
        self.cache.blocks[id as usize].indirect_plain = true;
        let _ = self.mem.write(slot, 8, layout::LOOKUP_EMPTY_KEY);
        let _ = self.mem.write(slot + 16, 8, 0);
        self.stats.indirect_demotions += 1;
        self.trace_emit(EventData::IndirectDemote { eip, id });
        self.trace_profile(|t| t.profile_lifecycle(eip, EventKind::IndirectDemote));
        if self.cache.by_eip.get(&eip) == Some(&id) {
            let _ = self.translate_cold(os, eip, kind, inline_fp, overrides);
        }
    }

    /// Consults the attached `FaultPlan` at a dispatch boundary and
    /// applies any injected faults. Every injection damages only
    /// *translations*, which the ladder rebuilds from unchanged guest
    /// code — guest-visible semantics are preserved by construction
    /// (the differential oracle in the chaos bench checks this).
    fn inject_faults(&mut self, os: &mut dyn BtOs, eip: u32) {
        let Some(mut plan) = self.chaos.take() else {
            return;
        };
        // Misalignment storm: push a victim over its fault tolerance.
        if plan.roll(FaultKind::MisalignStorm) {
            if let Some(victim) = self.pick_victim(&mut plan, true) {
                self.stats.faults_injected += 1;
                self.stats.ladder_recoveries += 1;
                self.trace_emit(EventData::FaultInjected {
                    kind: FaultKind::MisalignStorm,
                });
                let n = self.cfg.hot_misalign_tolerance + 1;
                self.stats.misalign_faults += n as u64;
                self.machine
                    .charge(region::OTHER, self.cfg.misalign_fault_cycles * n as u64);
                self.cache.blocks[victim as usize].misalign_faults += n;
                if self.cache.blocks[victim as usize].kind == BlockKind::Hot {
                    self.demote_block(os, victim);
                } else {
                    // Retrain: regenerate with detection and avoidance.
                    self.stats.misalign_retrains += 1;
                    let veip = self.cache.blocks[victim as usize].eip;
                    let overrides = self.cache.blocks[victim as usize]
                        .misalign_overrides
                        .clone();
                    let _ = self.translate_cold(os, veip, BlockKind::ColdV2, false, overrides);
                }
            }
        }
        // SMC write landing on the current page: invalidate all of its
        // translations. Guest bytes are unchanged, so the retranslation
        // is identical — only the recovery machinery is exercised.
        if plan.roll(FaultKind::SmcInvalidate) {
            self.stats.faults_injected += 1;
            self.stats.smc_events += 1;
            self.trace_emit(EventData::FaultInjected {
                kind: FaultKind::SmcInvalidate,
            });
            self.machine.charge(region::OTHER, self.cfg.fix_cycles);
            let ids = self
                .cache
                .blocks_by_page
                .remove(&(eip >> 12))
                .unwrap_or_default();
            for id in ids {
                let entry = self.cache.blocks[id as usize].entry;
                self.forward(entry, StubKind::Reenter.addr());
                let beip = self.cache.blocks[id as usize].eip;
                if self.cache.by_eip.get(&beip) == Some(&id) {
                    self.cache.by_eip.remove(&beip);
                }
                self.lookup_purge_eip(beip);
            }
        }
        // Bit-flip: clobber a victim's entry bundle. Detected by the
        // checksum (verify-on-dispatch) or, without it, by the
        // non-stub-branch rung of the ladder — never executed as-is
        // beyond the clobbered slot.
        if plan.roll(FaultKind::BitFlip) {
            if let Some(victim) = self.pick_victim(&mut plan, false) {
                self.stats.faults_injected += 1;
                self.trace_emit(EventData::FaultInjected {
                    kind: FaultKind::BitFlip,
                });
                let entry = self.cache.blocks[victim as usize].range.0;
                self.machine.arena.patch_slot(
                    entry,
                    0,
                    Op::Br {
                        target: Target::Abs(layout::CORRUPT_SENTINEL),
                    },
                );
                // No note_patched(): this modification is unsanctioned,
                // exactly what the checksum must catch.
            }
        }
        // Asynchronous signal: enqueue one at the current cycle. The
        // boundary poll right after injection (or a mid-trace commit
        // point, if the guest is already executing) delivers it.
        // Guests with no handler registered ignore the roll.
        if plan.roll(FaultKind::AsyncSignal) && os.raise_signal() {
            self.stats.faults_injected += 1;
            self.trace_emit(EventData::FaultInjected {
                kind: FaultKind::AsyncSignal,
            });
        }
        self.chaos = Some(plan);
    }

    /// Picks a live, registered injection victim — preferring hot
    /// blocks when asked (so storms exercise demotion).
    fn pick_victim(&mut self, plan: &mut FaultPlan, prefer_hot: bool) -> Option<u32> {
        let live = |b: &&BlockInfo| !b.evicted && self.cache.by_eip.get(&b.eip) == Some(&b.id);
        let hot: Vec<u32> = self
            .cache
            .blocks
            .iter()
            .filter(live)
            .filter(|b| b.kind == BlockKind::Hot)
            .map(|b| b.id)
            .collect();
        let pool: Vec<u32> = if prefer_hot && !hot.is_empty() {
            hot
        } else {
            self.cache
                .blocks
                .iter()
                .filter(live)
                .map(|b| b.id)
                .collect()
        };
        if pool.is_empty() {
            None
        } else {
            Some(pool[plan.pick(pool.len())])
        }
    }

    /// Delivers an asynchronous signal to `handler` from the precise
    /// interrupted state `cpu`. The frame is three words — `[esp]` =
    /// interrupted EIP, `[esp+4]` = EFLAGS, `[esp+8]` = EAX — popped by
    /// the guest's SIGRETURN syscall; the synchronous-trap frame (one
    /// word, popped by `ret`) is unchanged. EFLAGS/EAX ride in the frame
    /// because an async handler interrupts *between* instructions of
    /// arbitrary code, so the handler prologue cannot know what is live.
    fn deliver_signal(&mut self, handler: u32, mut cpu: Cpu) -> ExitAction {
        self.machine
            .charge(region::OTHER, self.cfg.signal_deliver_cycles);
        let esp = cpu.esp().wrapping_sub(12);
        let ok = self.mem.write(esp as u64, 4, cpu.eip as u64).is_ok()
            && self.mem.write(esp as u64 + 4, 4, cpu.eflags as u64).is_ok()
            && self.mem.write(esp as u64 + 8, 4, cpu.gpr[0] as u64).is_ok();
        if !ok {
            // Unwritable stack: the guest cannot take the signal.
            return ExitAction::Done(Outcome::Terminated {
                exc: GuestException::PageFault {
                    addr: esp,
                    write: true,
                },
                cpu: Box::new(cpu),
            });
        }
        self.stats.signals_delivered += 1;
        self.trace_emit(EventData::SignalDelivered {
            eip: cpu.eip,
            handler,
        });
        cpu.set_esp(esp);
        cpu.eip = handler;
        state::cpu_to_machine(&cpu, &mut self.machine);
        ExitAction::Dispatch(handler)
    }

    /// Precise IA-32 state if the machine currently sits exactly on a
    /// hot-trace commit point — the (bundle, slot) sites the recovery
    /// maps already prove reconstructible for precise faults.
    fn commit_point_state(&self) -> Option<Cpu> {
        let id = self.block_at_addr(self.machine.ip)?;
        let hot = self.cache.blocks[id as usize].hot.as_ref()?;
        hot.reconstruct(&self.machine, self.machine.ip, self.machine.slot)
    }

    /// Precise IA-32 state if `addr` is the entry of a live block: a
    /// block entry is a state boundary (everything in its canonical
    /// home, EIP = the block's EIP) — the same argument the degradation
    /// ladder relies on.
    fn entry_boundary_state(&self, addr: u64) -> Option<Cpu> {
        let id = self.block_at_addr(addr)?;
        let b = &self.cache.blocks[id as usize];
        if b.entry == addr && !b.evicted {
            Some(state::machine_to_cpu(&self.machine, b.eip))
        } else {
            None
        }
    }

    /// The signal quantum expired mid-trace with a signal due. Single-
    /// step the machine (bounded by `signal_step_cap`) until it reaches
    /// a site where precise IA-32 state exists — a hot-trace commit
    /// point, a chained block entry, or any dispatcher exit — and
    /// deliver there. Returns `None` if the cap ran out first (the
    /// caller resumes and hunts again next quantum) and `Some(action)`
    /// once the signal was delivered or execution left the trace.
    fn hunt_commit_point(&mut self, os: &mut dyn BtOs, remaining: &mut u64) -> Option<ExitAction> {
        for _ in 0..self.cfg.signal_step_cap {
            if let Some(cpu) = self.commit_point_state() {
                let handler = os.poll_signal(self.machine.cycles)?;
                return Some(self.deliver_signal(handler, cpu));
            }
            if *remaining == 0 {
                return Some(ExitAction::Done(Outcome::InstLimit));
            }
            let before = self.machine.inst_count;
            let stop = {
                let mut bus = MemBus(&mut self.mem);
                self.machine.run(&mut bus, 1)
            };
            *remaining = remaining.saturating_sub(self.machine.inst_count - before);
            match stop {
                StopReason::InstLimit => {}
                StopReason::ExternalBranch { target, from } => {
                    match self.handle_exit(os, target, from) {
                        ExitAction::Continue(addr) => {
                            self.machine.set_ip(addr, 0);
                            if let Some(cpu) = self.entry_boundary_state(addr) {
                                let handler = os.poll_signal(self.machine.cycles)?;
                                return Some(self.deliver_signal(handler, cpu));
                            }
                        }
                        // A dispatch lands back at the loop top, where
                        // the boundary poll delivers the signal.
                        act @ (ExitAction::Dispatch(_) | ExitAction::Done(_)) => return Some(act),
                    }
                }
                StopReason::Fault { fault, ip, slot } => {
                    match self.handle_fault(os, fault, ip, slot) {
                        ExitAction::Continue(_) => {}
                        act @ (ExitAction::Dispatch(_) | ExitAction::Done(_)) => return Some(act),
                    }
                }
            }
        }
        None
    }

    fn deliver(
        &mut self,
        os: &mut dyn BtOs,
        exc: GuestException,
        cpu: Option<Cpu>,
    ) -> Result<u32, Outcome> {
        let eip = self.machine.gr[GR_STATE.0 as usize] as u32;
        let cpu = cpu.unwrap_or_else(|| state::machine_to_cpu(&self.machine, eip));
        match self.deliver_action(os, exc, cpu) {
            ExitAction::Dispatch(e) => Ok(e),
            ExitAction::Done(o) => Err(o),
            ExitAction::Continue(_) => unreachable!("deliver never resumes in place"),
        }
    }

    /// Converts the Itanium-side condition into an IA-32 exception and
    /// lets the OS layer decide (paper Figure 3 D).
    fn deliver_action(
        &mut self,
        os: &mut dyn BtOs,
        exc: GuestException,
        mut cpu: Cpu,
    ) -> ExitAction {
        self.stats.exceptions += 1;
        match os.exception(exc, &cpu) {
            ExceptionOutcome::DeliverTo(handler) => {
                // SimOs signal ABI: push the faulting EIP like a call,
                // then enter the handler.
                let new_esp = cpu.esp().wrapping_sub(4);
                if self.mem.write(new_esp as u64, 4, cpu.eip as u64).is_err() {
                    return ExitAction::Done(Outcome::Terminated {
                        exc,
                        cpu: Box::new(cpu),
                    });
                }
                cpu.set_esp(new_esp);
                cpu.eip = handler;
                state::cpu_to_machine(&cpu, &mut self.machine);
                ExitAction::Dispatch(handler)
            }
            ExceptionOutcome::Terminate => ExitAction::Done(Outcome::Terminated {
                exc,
                cpu: Box::new(cpu),
            }),
        }
    }
}

pub(crate) enum ExitAction {
    /// Resume the machine at this arena address.
    Continue(u64),
    /// Re-dispatch at this guest EIP.
    Dispatch(u32),
    /// Return to the caller.
    Done(Outcome),
}

/// Outcome of part-wise misaligned-access emulation.
enum MisEmu {
    /// A real guest exception surfaced (unmapped page, …).
    Guest(GuestException),
    /// A part-write hit a write-protected translated-code page: a
    /// misaligned self-modifying store. Must take the SMC recovery
    /// path, not a guest fault (the protection is ours, not the
    /// guest's). Carries the faulting address.
    Smc(u64),
    /// The faulting bundle is not an emulable memory op — the code is
    /// not what the translator emitted; residue for the ladder.
    Residue,
}

#[cfg(test)]
mod tests {
    use super::site_is_monomorphic;

    /// Regression test for the gate/demotion boundary: the devirt gate
    /// used `hits*2 > uses` while megamorphic demotion used
    /// `hits*2 < uses`, so a site at exactly 50% was neither promoted
    /// nor demoted and re-attempted promotion forever. The shared
    /// predicate assigns the boundary to the monomorphic side.
    #[test]
    fn monomorphic_boundary_is_promoted_not_demoted() {
        // Exactly 50%: monomorphic (promoted by the devirt gate, and
        // `maybe_demote_megamorphic` must leave it alone).
        assert!(site_is_monomorphic(8, 16));
        assert!(site_is_monomorphic(1, 2));
        // Strictly above and below.
        assert!(site_is_monomorphic(9, 16));
        assert!(!site_is_monomorphic(7, 16));
        // A site never probed (cold call site warming up) counts as
        // monomorphic: no evidence of polymorphism yet.
        assert!(site_is_monomorphic(0, 0));
        // The multiply saturates instead of wrapping to a false
        // "megamorphic" verdict.
        assert!(site_is_monomorphic(u64::MAX, u64::MAX));
    }

    use super::*;
    use crate::btos::{Version, BTOS_MAJOR, BTOS_MINOR};

    /// An OS layer that offers nothing: degradation must never need
    /// cooperation from the personality to reach its floor.
    struct NullOs;
    impl BtOs for NullOs {
        fn version(&self) -> Version {
            Version {
                major: BTOS_MAJOR,
                minor: BTOS_MINOR,
            }
        }
        fn syscall(&mut self, _: &mut Cpu, _: &mut GuestMem) -> SyscallOutcome {
            SyscallOutcome::Exit(0)
        }
        fn exception(&mut self, _: GuestException, _: &Cpu) -> ExceptionOutcome {
            ExceptionOutcome::Terminate
        }
    }

    fn halt_engine() -> Engine {
        let mut a = ia32::asm::Asm::new(0x40_0000);
        a.hlt();
        let image = ia32::asm::Image::from_asm(&a);
        let mut mem = ia32::mem::GuestMem::new();
        let cpu = image.load(&mut mem);
        let mut engine = Engine::new(mem, Config::default());
        state::cpu_to_machine(&cpu, &mut engine.machine);
        engine
    }

    /// Below the depth cap the ladder hands back a dispatch (retry /
    /// demote); *at* the cap it stops trusting translated code and
    /// takes the interpret-only floor, counting the re-entrancy.
    #[test]
    fn ladder_floor_is_interpret_only_and_counts_reentrancy() {
        let mut os = NullOs;

        // First failure at depth 0: an ordinary ladder rung, not the
        // floor. The unknown site reconstructs from the state register.
        let mut engine = halt_engine();
        let err = EngineError::NonStubBranch {
            target: 0xdead,
            from: 0xbeef,
        };
        match engine.degrade(&mut os, err) {
            ExitAction::Dispatch(eip) => assert_eq!(eip, 0x40_0000),
            _ => panic!("shallow failure must re-dispatch, not halt"),
        }
        assert_eq!(engine.stats.ladder_recoveries, 1);
        assert_eq!(engine.stats.interp_fallbacks, 0, "floor not reached");
        assert_eq!(engine.stats.reentrant_recoveries, 0);
        assert_eq!(engine.stats.recovery_depth_max, 1);

        // A failure raised while already max_recovery_depth-1 deep in
        // recovery scopes: the ladder must not recurse into another
        // rebuild; it interprets exactly one instruction (the hlt).
        let mut engine = halt_engine();
        engine.ctx.recovery_depth = engine.cfg.max_recovery_depth - 1;
        let err = EngineError::NonStubBranch {
            target: 0xdead,
            from: 0xbeef,
        };
        match engine.degrade(&mut os, err) {
            // The interpreter retires the hlt, so EIP sits past it.
            ExitAction::Done(Outcome::Halted(cpu)) => assert_eq!(cpu.eip, 0x40_0001),
            _ => panic!("floor must step the interpreter through the hlt"),
        }
        assert_eq!(
            engine.stats.interp_fallbacks, 1,
            "interpret-only floor taken"
        );
        assert!(engine.stats.reentrant_recoveries > 0);
        assert_eq!(
            engine.stats.recovery_depth_max,
            u64::from(engine.cfg.max_recovery_depth)
        );
        // The scope unwound: the faked outer depth is all that remains.
        assert_eq!(engine.ctx.recovery_depth, engine.cfg.max_recovery_depth - 1);
    }

    /// A fused `mov`+`alu` idiom whose ALU result flags are consumed
    /// *after* a block boundary: the loop computes `3 + 0xffff_ffff`
    /// (CF=1) and only tests CF in the next block, so the fused
    /// emitter must write EFlags back even though no instruction in
    /// its own window reads them. An over-eager "elide dead flag
    /// writeback" template would leave stale CF and undercount ESI.
    #[test]
    fn fused_idiom_preserves_flags_across_block_boundary() {
        use ia32::flags::Cond;
        use ia32::inst::AluOp;
        use ia32::regs::{EAX, EBX, ECX, EDX, ESI};

        const ITERS: i32 = 50;
        let mut a = ia32::asm::Asm::new(0x40_0000);
        a.mov_ri(EBX, 3);
        a.mov_ri(EDX, -1);
        a.mov_ri(ESI, 0);
        a.mov_ri(ECX, ITERS);
        let top = a.label();
        a.bind(top);
        // The fusable pair: mov eax, ebx ; add eax, edx (carries).
        let fuse_ip = a.here();
        a.mov_rr(EAX, EBX);
        a.alu_rr(AluOp::Add, EAX, EDX);
        // Block boundary between the producer and the consumer: the
        // peephole's own window never sees the flag read.
        let mid = a.label();
        a.jmp(mid);
        a.bind(mid);
        let carry = a.label();
        let done = a.label();
        a.jcc(Cond::B, carry); // consumes CF from the fused add
        a.jmp(done);
        a.bind(carry);
        a.inc(ESI); // inc preserves CF
        a.bind(done);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.hlt();

        let image = ia32::asm::Image::from_asm(&a);
        let mut mem = ia32::mem::GuestMem::new();
        let cpu = image.load(&mut mem);
        let cfg = Config {
            enable_superinst: true,
            ..Config::default()
        };
        let mut engine = Engine::new(mem, cfg);
        state::cpu_to_machine(&cpu, &mut engine.machine);
        engine.install_idiom_table(crate::superinst::IdiomTable::new(vec![
            crate::superinst::MinedIdiom {
                kind: crate::superinst::IdiomKind::MovAlu,
                weight: 100,
                exemplar: fuse_ip,
            },
        ]));
        let mut os = NullOs;
        match engine.run(&mut os, cpu, 1_000_000) {
            Outcome::Halted(c) => {
                assert_eq!(
                    c.gpr[ESI.num() as usize],
                    ITERS as u32,
                    "CF lost at boundary"
                );
                assert_eq!(c.gpr[ECX.num() as usize], 0);
                assert_eq!(c.gpr[EAX.num() as usize], 2);
            }
            other => panic!("expected halt, got {other:?}"),
        }
        assert!(
            engine.stats.superinst_hits > 0,
            "the installed idiom never fused — the test exercised nothing"
        );
    }
}
