//! Commit points and recovery maps for precise exceptions in hot code
//! (paper §4).

use crate::state;
use ia32::cpu::Cpu;
use ia32::fpu::FpReg;
use ipf::machine::Machine;
use std::collections::HashMap;

/// One recovery point: the IA-32 instruction a faulty micro-op belongs
/// to, plus the FXCHG-elimination permutation in effect there.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecEntry {
    /// IA-32 IP to report.
    pub ia32_ip: u32,
    /// `perm[p]` = FR offset holding x87 physical register `p`.
    pub perm: [u8; 8],
}

/// Recovery data for one hot block.
#[derive(Clone, Debug, Default)]
pub struct HotData {
    /// Recovery entries.
    pub recovery: Vec<RecEntry>,
    /// Faulty micro-op location -> recovery index.
    pub by_slot: HashMap<(u64, u8), u32>,
}

impl HotData {
    /// Reconstructs the IA-32 state for a fault at `(ip, slot)`.
    pub fn reconstruct(&self, m: &Machine, ip: u64, slot: u8) -> Option<Cpu> {
        let idx = *self.by_slot.get(&(ip, slot))?;
        self.reconstruct_at(m, idx)
    }

    /// Reconstructs at a known recovery index (deopt path).
    pub fn reconstruct_at(&self, m: &Machine, idx: u32) -> Option<Cpu> {
        let e = self.recovery.get(idx as usize)?;
        let mut cpu = state::machine_to_cpu(m, e.ia32_ip);
        if e.perm != [0, 1, 2, 3, 4, 5, 6, 7] && !cpu.fpu.mmx_mode {
            for p in 0..8usize {
                let fr = state::x87_fr(e.perm[p]).0 as usize;
                cpu.fpu.regs[p] = FpReg::F(f64::from_bits(m.fr[fr]));
            }
        }
        Some(cpu)
    }
}
