//! The hot-phase typed trace IR.
//!
//! Template emission produces a flat list of micro-ops whose meaning —
//! which guest registers they touch, whether they observe or define
//! EFLAGS, whether they can fault — is implicit in the register
//! numbering conventions of `state.rs`. The typed IR makes those
//! effects explicit per op ([`Effects`]), which is what lets the
//! generic passes in `opt.rs`, `liveness.rs`, and `regalloc.rs` reason
//! about traces (including devirtualized call/ret-folded ones and
//! traces ending *through* an indirect terminator) without pattern
//! matching on template shapes.

use super::trace::HotIl;
use crate::layout::StubKind;
use crate::state::{self, GR_EFLAGS, GR_GUEST, GR_STATE};
use crate::templates::{IlItem, Sink};
use ipf::inst::{Op, Reg, Target};
use std::collections::HashSet;

/// Guest-memory effect of one op.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(super) enum MemEffect {
    /// No memory access.
    None,
    /// Reads memory.
    Load,
    /// Writes memory.
    Store,
}

/// The explicit effect summary of one micro-op: guest-register,
/// EFlags, and memory effects plus the control/fault bits the
/// commit-point discipline cares about.
#[derive(Clone, Copy, Debug)]
pub(super) struct Effects {
    /// Bitmask of guest GPRs (EAX..EDI) read.
    pub guest_reads: u8,
    /// Bitmask of guest GPRs written.
    pub guest_writes: u8,
    /// Reads the lazy EFLAGS home (including merge-writes into it).
    pub reads_eflags: bool,
    /// Defines the lazy EFLAGS home.
    pub writes_eflags: bool,
    /// Memory effect.
    pub mem: MemEffect,
    /// Is a branch (side exit, inline-dispatch hit, or stub exit).
    pub is_branch: bool,
    /// May fault at run time (commit point).
    pub can_fault: bool,
    /// Defines architectural state (anything outside the renaming
    /// pools and scratch banks).
    pub writes_state: bool,
}

impl Effects {
    /// Classifies one instruction.
    pub fn of(inst: &ipf::Inst) -> Effects {
        let op = &inst.op;
        let mut fx = Effects {
            guest_reads: 0,
            guest_writes: 0,
            reads_eflags: false,
            writes_eflags: false,
            mem: MemEffect::None,
            is_branch: op.is_branch(),
            can_fault: op.can_fault(),
            writes_state: false,
        };
        op.visit_regs(&mut |r, is_def| {
            if let Reg::G(g) = r {
                if (GR_GUEST..GR_GUEST + 8).contains(&g.0) {
                    let bit = 1u8 << (g.0 - GR_GUEST);
                    if is_def {
                        fx.guest_writes |= bit;
                    } else {
                        fx.guest_reads |= bit;
                    }
                }
                if g == GR_EFLAGS {
                    if is_def {
                        fx.writes_eflags = true;
                    } else {
                        fx.reads_eflags = true;
                    }
                }
            }
            if is_def && is_state_phys(r) {
                fx.writes_state = true;
            }
        });
        if op.is_mem() {
            fx.mem = if op.is_store() {
                MemEffect::Store
            } else {
                MemEffect::Load
            };
        }
        fx
    }
}

/// One typed-IR op: the micro-op plus provenance and its explicit
/// effects.
#[derive(Clone, Debug)]
pub(super) struct IrInst {
    /// The micro-op (virtual registers allowed until allocation).
    pub inst: ipf::Inst,
    /// Originating IA-32 instruction.
    pub ia32_ip: u32,
    /// Recovery index (assigned to faulty ops before allocation).
    pub rec: Option<u32>,
    /// Explicit effect summary (recomputed after rewriting passes).
    pub fx: Effects,
}

impl IrInst {
    /// Drops the effect annotation (for passes shared with the
    /// template path, which operate on [`HotIl`]).
    pub fn into_hotil(self) -> HotIl {
        HotIl {
            inst: self.inst,
            ia32_ip: self.ia32_ip,
            rec: self.rec,
        }
    }
}

/// Whether a *physical* register is architectural state. Unlike the
/// pre-allocation classifier (any non-virtual register), this exempts
/// the renaming pools and scratch banks by range, so a backend pass
/// over allocated IR does not treat every pool register as a
/// commit-barrier-pinned state write.
pub(super) fn is_state_phys(r: Reg) -> bool {
    match r {
        Reg::G(g) => {
            !g.is_virtual()
                && g.0 != 0
                && !(state::GR_SCRATCH..state::GR_POOL + state::NUM_POOL).contains(&g.0)
        }
        Reg::F(f) => {
            !f.is_virtual()
                && f.0 > 1
                && !(state::FR_SCRATCH..state::FR_SCRATCH + state::NUM_FR_SCRATCH).contains(&f.0)
        }
        // Predicates below the pool (template scratch) are treated as
        // state conservatively; hot bodies only ever use virtuals.
        Reg::P(p) => {
            !p.is_virtual()
                && p.0 != 0
                && !(state::PR_POOL..state::PR_POOL + state::NUM_PR_POOL).contains(&p.0)
        }
        Reg::B(_) => true,
    }
}

/// Collects a trace body's sink items into the flat IL list both
/// compilation paths start from: rejects shapes the trace compiler
/// cannot handle (in-body label binds, branches to unknown labels) and
/// injects the IA-32 state register before fault-raising stub branches.
pub(super) fn collect(body: &Sink, exit_labels: &HashSet<u32>) -> Option<Vec<HotIl>> {
    let mut ils: Vec<HotIl> = Vec::new();
    for item in &body.items {
        match item {
            IlItem::Bind(_) => return None,
            IlItem::Inst(e) => {
                if let Some(Target::Label(l)) = e.inst.op.target() {
                    if !exit_labels.contains(&l) {
                        return None;
                    }
                }
                ils.push(HotIl {
                    inst: e.inst,
                    ia32_ip: e.meta.ia32_ip,
                    rec: None,
                });
            }
        }
    }
    // Fault-raising stub branches need the state register set.
    let fault_stubs = [
        StubKind::DivZero.addr(),
        StubKind::FpStackFault.addr(),
        StubKind::InterpStep.addr(),
    ];
    let mut with_state: Vec<HotIl> = Vec::with_capacity(ils.len() + 4);
    for il in ils {
        if let Op::Br {
            target: Target::Abs(t),
        } = il.inst.op
        {
            if fault_stubs.contains(&t) {
                with_state.push(HotIl {
                    inst: ipf::Inst::pred(
                        il.inst.qp,
                        Op::Movl {
                            d: GR_STATE,
                            imm: il.ia32_ip as u64,
                        },
                    ),
                    ia32_ip: il.ia32_ip,
                    rec: None,
                });
            }
        }
        with_state.push(il);
    }
    Some(with_state)
}

/// Lifts flat ILs into the typed IR, computing each op's effects.
pub(super) fn annotate(ils: &[HotIl]) -> Vec<IrInst> {
    ils.iter()
        .map(|il| IrInst {
            inst: il.inst,
            ia32_ip: il.ia32_ip,
            rec: il.rec,
            fx: Effects::of(&il.inst),
        })
        .collect()
}

/// Re-lifts ILs that came back from a shared (template-path) pass.
pub(super) fn annotate_owned(ils: Vec<HotIl>) -> Vec<IrInst> {
    annotate(&ils)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipf::regs::{Gr, R0};

    #[test]
    fn effects_classify_guest_and_eflags() {
        let g0 = state::guest_gpr(0);
        let fx = Effects::of(&ipf::Inst::new(Op::AddImm {
            d: g0,
            imm: 1,
            a: g0,
        }));
        assert_eq!(fx.guest_reads, 1);
        assert_eq!(fx.guest_writes, 1);
        assert!(fx.writes_state);
        assert!(!fx.writes_eflags);

        let fx = Effects::of(&ipf::Inst::new(Op::Dep {
            d: GR_EFLAGS,
            src: g0,
            target: GR_EFLAGS,
            pos: 0,
            len: 1,
        }));
        assert!(fx.writes_eflags, "dep into the EFLAGS home defines it");
        assert!(fx.reads_eflags, "merge-write also reads the old value");

        let fx = Effects::of(&ipf::Inst::new(Op::St {
            sz: 4,
            addr: g0,
            val: g0,
        }));
        assert_eq!(fx.mem, MemEffect::Store);
        assert!(fx.can_fault);
    }

    #[test]
    fn pool_registers_are_not_state() {
        assert!(!is_state_phys(Reg::G(Gr(state::GR_POOL))));
        assert!(!is_state_phys(Reg::G(Gr(state::GR_SCRATCH))));
        assert!(is_state_phys(Reg::G(state::GR_EFLAGS)));
        assert!(is_state_phys(Reg::G(state::guest_gpr(4))));
        assert!(!is_state_phys(Reg::G(R0)));
        assert!(!is_state_phys(Reg::F(ipf::regs::Fr(state::FR_SCRATCH))));
        assert!(is_state_phys(Reg::F(ipf::regs::Fr(state::FR_X87))));
        assert!(!is_state_phys(Reg::P(ipf::regs::Pr(state::PR_POOL))));
    }

    #[test]
    fn collect_rejects_binds_and_unknown_labels() {
        let mut s = Sink::new();
        s.emit(Op::AddImm {
            d: state::guest_gpr(0),
            imm: 1,
            a: R0,
        });
        let known = s.local_label();
        s.emit(Op::Br {
            target: Target::Label(known),
        });
        let labels: HashSet<u32> = [known].into_iter().collect();
        assert!(collect(&s, &labels).is_some());

        let unknown = s.local_label();
        s.emit(Op::Br {
            target: Target::Label(unknown),
        });
        assert!(collect(&s, &labels).is_none(), "unknown label rejected");

        let mut s2 = Sink::new();
        s2.bind(7);
        assert!(collect(&s2, &labels).is_none(), "in-body bind rejected");
    }

    #[test]
    fn collect_injects_state_before_fault_stubs() {
        let mut s = Sink::new();
        s.set_ip(0x40_1234);
        s.emit(Op::Br {
            target: Target::Abs(StubKind::DivZero.addr()),
        });
        let ils = collect(&s, &HashSet::new()).unwrap();
        assert_eq!(ils.len(), 2);
        assert!(matches!(
            ils[0].inst.op,
            Op::Movl {
                d: GR_STATE,
                imm: 0x40_1234
            }
        ));
    }
}
