//! Per-op liveness analysis over the typed trace IR.
//!
//! A trace body is straight-line code with embedded side exits: a
//! predicated branch's not-taken path *is* the continuation, so
//! virtual-register liveness is an ordinary backward scan. Side exits
//! still matter for EFLAGS: every branch (and every op that can fault)
//! is an observation point where the architectural EFLAGS home must
//! hold the committed value, because the exit path — or the fault
//! recovery walk — reads all guest state.

use super::ir::IrInst;
use ipf::inst::Reg;
use ipf::regs::P0;
use std::collections::{BTreeSet, HashMap};

/// A virtual register key: `(class, number)` with class 0 = general,
/// 1 = floating, 2 = predicate. Branch registers are never virtual.
pub(super) type VirtKey = (u8, u16);

/// Maps a register to its virtual key, if virtual.
pub(super) fn virt_key(r: Reg) -> Option<VirtKey> {
    match r {
        Reg::G(g) if g.is_virtual() => Some((0, g.0)),
        Reg::F(f) if f.is_virtual() => Some((1, f.0)),
        Reg::P(p) if p.is_virtual() => Some((2, p.0)),
        _ => None,
    }
}

/// The result of one liveness pass.
pub(super) struct Liveness {
    /// Virtual registers live *after* each op, sorted (deterministic).
    pub live_out: Vec<Vec<VirtKey>>,
    /// Whether the EFLAGS home is observable *after* each op.
    pub eflags_out: Vec<bool>,
    /// Every position referencing each virtual (qp, uses, and defs),
    /// ascending.
    pub refs: HashMap<VirtKey, Vec<usize>>,
}

impl Liveness {
    /// Whether `key` is live after op `i`.
    pub fn live_after(&self, i: usize, key: VirtKey) -> bool {
        self.live_out[i].binary_search(&key).is_ok()
    }

    /// The first reference to `key` strictly after position `i`.
    pub fn next_ref_after(&self, key: VirtKey, i: usize) -> Option<usize> {
        let v = self.refs.get(&key)?;
        let p = v.partition_point(|&x| x <= i);
        v.get(p).copied()
    }
}

/// Computes per-op live sets backward over the trace.
pub(super) fn analyze(ir: &[IrInst]) -> Liveness {
    let n = ir.len();
    let mut live_out: Vec<Vec<VirtKey>> = vec![Vec::new(); n];
    let mut eflags_out = vec![false; n];
    let mut live: BTreeSet<VirtKey> = BTreeSet::new();
    // The trace's main exit (or inline dispatch) observes all state.
    let mut ef = true;
    for i in (0..n).rev() {
        live_out[i] = live.iter().copied().collect();
        eflags_out[i] = ef;
        let x = &ir[i];
        // Unpredicated defs kill; predicated defs merge (value live
        // through).
        if x.inst.qp == P0 {
            x.inst.op.visit_regs(&mut |r, is_def| {
                if is_def {
                    if let Some(k) = virt_key(r) {
                        live.remove(&k);
                    }
                }
            });
            if x.fx.writes_eflags && !x.fx.reads_eflags {
                ef = false;
            }
        }
        if let Some(k) = virt_key(Reg::P(x.inst.qp)) {
            live.insert(k);
        }
        x.inst.op.visit_regs(&mut |r, is_def| {
            if !is_def {
                if let Some(k) = virt_key(r) {
                    live.insert(k);
                }
            }
        });
        if x.fx.reads_eflags || x.fx.is_branch || x.fx.can_fault {
            ef = true;
        }
    }

    let mut refs: HashMap<VirtKey, Vec<usize>> = HashMap::new();
    for (i, x) in ir.iter().enumerate() {
        let note = |r: Reg, refs: &mut HashMap<VirtKey, Vec<usize>>| {
            if let Some(k) = virt_key(r) {
                let v = refs.entry(k).or_default();
                if v.last() != Some(&i) {
                    v.push(i);
                }
            }
        };
        note(Reg::P(x.inst.qp), &mut refs);
        x.inst.op.visit_regs(&mut |r, _| note(r, &mut refs));
    }

    Liveness {
        live_out,
        eflags_out,
        refs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hot::ir;
    use crate::hot::trace::HotIl;
    use crate::layout::StubKind;
    use crate::state::{guest_gpr, GR_EFLAGS};
    use ipf::inst::{Op, Target};
    use ipf::regs::{Gr, Pr, R0};

    fn ils_to_ir(ops: Vec<ipf::Inst>) -> Vec<super::super::ir::IrInst> {
        ir::annotate(
            &ops.into_iter()
                .map(|inst| HotIl {
                    inst,
                    ia32_ip: 0,
                    rec: None,
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn virtual_dies_after_last_use_across_side_exit() {
        let v = Gr(300);
        let p = Pr(400);
        let ir = ils_to_ir(vec![
            // v = guest0 + 1
            ipf::Inst::new(Op::AddImm {
                d: v,
                imm: 1,
                a: guest_gpr(0),
            }),
            // p = (v == 0); side exit if p
            ipf::Inst::new(Op::Cmp {
                rel: ipf::inst::CmpRel::Eq,
                pt: p,
                pf: ipf::regs::P0,
                a: v,
                b: R0,
            }),
            ipf::Inst::pred(
                p,
                Op::Br {
                    target: Target::Abs(StubKind::Untranslated.addr()),
                },
            ),
            // guest1 = v (last use of v)
            ipf::Inst::new(Op::AddImm {
                d: guest_gpr(1),
                imm: 0,
                a: v,
            }),
            ipf::Inst::new(Op::AddImm {
                d: guest_gpr(2),
                imm: 7,
                a: R0,
            }),
        ]);
        let lv = analyze(&ir);
        let vk = (0u8, 300u16);
        assert!(lv.live_after(0, vk), "v live across the side exit");
        assert!(lv.live_after(2, vk), "v still live after the branch");
        assert!(!lv.live_after(3, vk), "v dead after its last use");
        assert!(!lv.live_after(4, vk));
        assert_eq!(lv.refs[&vk], vec![0, 1, 3]);
        assert_eq!(lv.next_ref_after(vk, 1), Some(3));
        assert_eq!(
            lv.refs[&(2, 400)].last(),
            Some(&2),
            "qp counts as a reference"
        );
    }

    #[test]
    fn eflags_live_before_branch_and_fault_points() {
        let g0 = guest_gpr(0);
        let ir = ils_to_ir(vec![
            // EFLAGS def #0: dead (overwritten before any observer).
            ipf::Inst::new(Op::AddImm {
                d: GR_EFLAGS,
                imm: 1,
                a: R0,
            }),
            // EFLAGS def #1: live (the load below can fault).
            ipf::Inst::new(Op::AddImm {
                d: GR_EFLAGS,
                imm: 2,
                a: R0,
            }),
            ipf::Inst::new(Op::Ld {
                sz: 4,
                d: g0,
                addr: g0,
                spec: false,
            }),
            // EFLAGS def #2: live (trace exit observes).
            ipf::Inst::new(Op::AddImm {
                d: GR_EFLAGS,
                imm: 3,
                a: R0,
            }),
        ]);
        let lv = analyze(&ir);
        assert!(!lv.eflags_out[0], "first def is dead before the second");
        assert!(lv.eflags_out[1], "faulting load observes EFLAGS");
        assert!(!lv.eflags_out[2], "dead again before the final rewrite");
        assert!(lv.eflags_out[3], "trace end observes EFLAGS");
    }
}
