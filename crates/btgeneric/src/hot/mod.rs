//! Hot-code translation (paper §2, Figure 2 right side): trace
//! selection over the profile counters, IL generation from the shared
//! templates, IA-32-specific optimizations, dependency-graph scheduling
//! with renaming and commit points, and recovery maps for precise
//! exceptions.

mod commit;
mod opt;
mod sched;
mod trace;

pub use commit::HotData;

use crate::engine::Engine;

/// Promotes a heated block into a hot trace. On any internal limitation
/// the block simply stays cold (correctness is never at stake). Returns
/// whether a trace was actually installed — the engine uses a failed
/// promotion as the checkpoint for megamorphic-site demotion.
pub fn promote(engine: &mut Engine, block_id: u32) -> bool {
    trace::promote(engine, block_id)
}
