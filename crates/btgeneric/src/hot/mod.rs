//! Hot-code translation (paper §2, Figure 2 right side): trace
//! selection over the profile counters, IL generation from the shared
//! templates, IA-32-specific optimizations, dependency-graph scheduling
//! with renaming and commit points, and recovery maps for precise
//! exceptions.
//!
//! With `Config::enable_hot_ir` (the default) selected traces compile
//! through a typed IR (`ir`) with explicit per-op effects, per-op
//! liveness (`liveness`), constraint-driven register allocation with
//! spilling (`regalloc`), and a backend scheduling pass over the
//! allocated code; the original template-stitching pipeline remains as
//! the off-state and in-promotion fallback.

mod commit;
mod ir;
mod liveness;
mod opt;
mod regalloc;
mod sched;
mod trace;

pub use commit::HotData;

use crate::engine::Engine;

/// Promotes a heated block into a hot trace. On any internal limitation
/// the block simply stays cold (correctness is never at stake). Returns
/// whether a trace was actually installed — the engine uses a failed
/// promotion as the checkpoint for megamorphic-site demotion.
pub fn promote(engine: &mut Engine, block_id: u32) -> bool {
    trace::promote(engine, block_id)
}
