//! Hot IL optimizations (paper §2 hot-phase list): local value
//! numbering (covering compound-address CSE, register-value tracking,
//! copy propagation, and redundant-load elimination) and dead-code
//! elimination.

use super::trace::HotIl;
use ipf::inst::{Op, Reg, Target};
use ipf::regs::{Gr, P0};
use std::collections::HashMap;

fn is_state_reg(r: Reg) -> bool {
    match r {
        Reg::G(g) => !g.is_virtual() && g.0 != 0,
        Reg::F(f) => !f.is_virtual() && f.0 > 1,
        Reg::P(p) => !p.is_virtual() && p.0 != 0,
        Reg::B(_) => true,
    }
}

/// Local value numbering over the trace. Pure integer ops (and loads,
/// versioned by the store count) with identical canonicalized operands
/// are deduplicated; uses are rewritten through a substitution map.
pub(super) fn lvn(ils: &mut Vec<HotIl>) {
    // Only virtuals with a single definition participate (deleting one
    // of several defs, or replacing uses with a later-redefined holder,
    // would be wrong).
    let mut def_count: HashMap<u16, u32> = HashMap::new();
    for il in ils.iter() {
        il.inst.op.visit_regs(&mut |r, is_def| {
            if is_def {
                if let Reg::G(g) = r {
                    if g.is_virtual() {
                        *def_count.entry(g.0).or_default() += 1;
                    }
                }
            }
        });
    }
    let mut subst: HashMap<u16, Gr> = HashMap::new(); // virtual -> replacement
                                                      // Copy propagation: virtual v is a copy of physical p taken at
                                                      // version n; uses of v read p directly while p is unmodified.
    let mut copy_of: HashMap<u16, (u16, u64)> = HashMap::new();
    let mut versions: HashMap<(u8, u16), u64> = HashMap::new();
    let mut mem_version: u64 = 0;
    let mut table: HashMap<String, Gr> = HashMap::new();
    let mut keep: Vec<bool> = vec![true; ils.len()];

    for (i, il) in ils.iter_mut().enumerate() {
        // Rewrite uses through the substitution and copy maps.
        il.inst.op.map_regs(&mut |r, is_def| match r {
            Reg::G(g) if !is_def && g.is_virtual() => {
                if let Some(&h) = subst.get(&g.0) {
                    return Reg::G(h);
                }
                if let Some(&(p, ver)) = copy_of.get(&g.0) {
                    if versions.get(&(0, p)).copied().unwrap_or(0) == ver {
                        return Reg::G(Gr(p));
                    }
                }
                Reg::G(g)
            }
            other => other,
        });

        let op = il.inst.op;
        if op.is_store() {
            mem_version += 1;
        }
        if op.is_branch() {
            // Conservatively cut value numbering at control flow.
            table.clear();
            continue;
        }
        // Bump versions of defined non-virtual registers.
        op.visit_regs(&mut |r, is_def| {
            if is_def {
                let key = match r {
                    Reg::G(g) if !g.is_virtual() => Some((0u8, g.0)),
                    Reg::F(f) if !f.is_virtual() => Some((1, f.0)),
                    Reg::P(p) if !p.is_virtual() => Some((2, p.0)),
                    _ => None,
                };
                if let Some(k) = key {
                    *versions.entry(k).or_default() += 1;
                }
            }
        });

        if il.inst.qp != P0 {
            continue; // predicated ops are not LVN candidates
        }
        let (lvn_ok, dest) = lvn_candidate(&op);
        let Some(dest) = dest else { continue };
        if !lvn_ok || !dest.is_virtual() || def_count.get(&dest.0).copied().unwrap_or(0) != 1 {
            continue;
        }
        // Build the canonical key: the op with its destination zeroed
        // and physical operands tagged with their version.
        let mut key_op = op;
        key_op.map_regs(&mut |r, is_def| {
            if is_def {
                return match r {
                    Reg::G(_) => Reg::G(Gr(0)),
                    other => other,
                };
            }
            r
        });
        let mut key = format!("{key_op:?}");
        op.visit_regs(&mut |r, is_def| {
            if !is_def {
                let vkey = match r {
                    Reg::G(g) if !g.is_virtual() => Some((0u8, g.0)),
                    Reg::F(f) if !f.is_virtual() => Some((1, f.0)),
                    Reg::P(p) if !p.is_virtual() => Some((2, p.0)),
                    _ => None,
                };
                if let Some(k) = vkey {
                    key.push_str(&format!(
                        "|v{}:{}",
                        k.1,
                        versions.get(&k).copied().unwrap_or(0)
                    ));
                }
            }
        });
        if matches!(op, Op::Ld { .. }) {
            key.push_str(&format!("|mem{mem_version}"));
        }
        match table.get(&key) {
            Some(&holder) => {
                subst.insert(dest.0, holder);
                keep[i] = false;
            }
            None => {
                table.insert(key, dest);
                // Record pure copies of physical registers for
                // copy propagation (the op stays; DCE removes it once
                // every use has been redirected).
                if let Op::AddImm { d, imm: 0, a } = op {
                    if d.is_virtual() && !a.is_virtual() && a.0 != 0 {
                        let ver = versions.get(&(0, a.0)).copied().unwrap_or(0);
                        copy_of.insert(d.0, (a.0, ver));
                    }
                }
            }
        }
    }
    let mut idx = 0;
    ils.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

/// Whether an op is a pure, deduplicable computation; returns its single
/// GR destination.
fn lvn_candidate(op: &Op) -> (bool, Option<Gr>) {
    use Op::*;
    match *op {
        Add { d, .. }
        | Sub { d, .. }
        | AddImm { d, .. }
        | SubImm { d, .. }
        | And { d, .. }
        | Or { d, .. }
        | Xor { d, .. }
        | AndCm { d, .. }
        | AndImm { d, .. }
        | OrImm { d, .. }
        | XorImm { d, .. }
        | Shladd { d, .. }
        | ShlImm { d, .. }
        | ShlVar { d, .. }
        | ShrImm { d, .. }
        | ShrVar { d, .. }
        | Extr { d, .. }
        | Dep { d, .. }
        | DepZ { d, .. }
        | Sxt { d, .. }
        | Zxt { d, .. }
        | Popcnt { d, .. }
        | Movl { d, .. } => (true, Some(d)),
        // Non-speculative loads are value-numbered against the store
        // counter (redundant-load elimination).
        Ld { d, spec: false, .. } => (true, Some(d)),
        _ => (false, None),
    }
}

/// Dead-code elimination: drops ops whose only effects are writes to
/// virtual registers that nothing reads.
pub(super) fn dce(ils: &mut Vec<HotIl>) {
    let n = ils.len();
    let mut keep = vec![false; n];
    let mut live: std::collections::HashSet<(u8, u16)> = std::collections::HashSet::new();
    for i in (0..n).rev() {
        let il = &ils[i];
        let op = &il.inst.op;
        let mut side_effect = op.is_store()
            || op.is_branch()
            || op.can_fault()
            || il.inst.qp != P0
            || matches!(op, Op::Mf | Op::MovToBr { .. });
        // Writes to non-virtual (architectural) registers are effects.
        let mut defines_live_virtual = false;
        op.visit_regs(&mut |r, is_def| {
            if is_def {
                if is_state_reg(r) {
                    side_effect = true;
                }
                let key = reg_key(r);
                if let Some(k) = key {
                    if live.contains(&k) {
                        defines_live_virtual = true;
                    }
                }
            }
        });
        if side_effect || defines_live_virtual {
            keep[i] = true;
            // Defs are satisfied; kill them (only unconditional defs
            // fully cover the register), then mark uses live.
            if il.inst.qp == P0 {
                op.visit_regs(&mut |r, is_def| {
                    if is_def {
                        if let Some(k) = reg_key(r) {
                            live.remove(&k);
                        }
                    }
                });
            }
            if let Some(k) = reg_key(Reg::P(il.inst.qp)) {
                live.insert(k);
            }
            op.visit_regs(&mut |r, is_def| {
                if !is_def {
                    if let Some(k) = reg_key(r) {
                        live.insert(k);
                    }
                }
            });
        }
    }
    let mut idx = 0;
    ils.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    // Labels in targets are unaffected.
    let _ = Target::Abs(0);
}

fn reg_key(r: Reg) -> Option<(u8, u16)> {
    match r {
        Reg::G(g) if g.is_virtual() => Some((0, g.0)),
        Reg::F(f) if f.is_virtual() => Some((1, f.0)),
        Reg::P(p) if p.is_virtual() => Some((2, p.0)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::Sink;
    use ipf::regs::R0;

    fn il(inst: ipf::Inst) -> HotIl {
        HotIl {
            inst,
            ia32_ip: 0,
            rec: None,
        }
    }

    #[test]
    fn lvn_dedups_identical_computation() {
        let mut s = Sink::new();
        let (v1, v2) = (s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 8,
                a: g,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: v2,
                imm: 8,
                a: g,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: v1,
                val: v2,
            })),
        ];
        lvn(&mut ils);
        assert_eq!(ils.len(), 2, "duplicate EA computation removed");
        // The store now uses v1 twice.
        if let Op::St { addr, val, .. } = ils[1].inst.op {
            assert_eq!(addr, val);
        } else {
            panic!("store expected");
        }
    }

    #[test]
    fn lvn_respects_guest_register_versions() {
        let mut s = Sink::new();
        let (v1, v2) = (s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 8,
                a: g,
            })),
            il(ipf::Inst::new(Op::AddImm { d: g, imm: 1, a: g })), // g changes
            il(ipf::Inst::new(Op::AddImm {
                d: v2,
                imm: 8,
                a: g,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: v1,
                val: v2,
            })),
        ];
        lvn(&mut ils);
        assert_eq!(ils.len(), 4, "not redundant after the write");
    }

    #[test]
    fn lvn_load_killed_by_store() {
        let mut s = Sink::new();
        let (v1, v2, v3) = (s.vg(), s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut ils = vec![
            il(ipf::Inst::new(Op::Ld {
                sz: 4,
                d: v1,
                addr: g,
                spec: false,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: g,
                val: v1,
            })),
            il(ipf::Inst::new(Op::Ld {
                sz: 4,
                d: v2,
                addr: g,
                spec: false,
            })),
            il(ipf::Inst::new(Op::Add {
                d: v3,
                a: v1,
                b: v2,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: g,
                val: v3,
            })),
        ];
        let before = ils.len();
        lvn(&mut ils);
        assert_eq!(ils.len(), before, "load after store must reload");
    }

    #[test]
    fn lvn_redundant_load_removed() {
        let mut s = Sink::new();
        let (v1, v2, v3) = (s.vg(), s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut ils = vec![
            il(ipf::Inst::new(Op::Ld {
                sz: 4,
                d: v1,
                addr: g,
                spec: false,
            })),
            il(ipf::Inst::new(Op::Ld {
                sz: 4,
                d: v2,
                addr: g,
                spec: false,
            })),
            il(ipf::Inst::new(Op::Add {
                d: v3,
                a: v1,
                b: v2,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: g,
                val: v3,
            })),
        ];
        lvn(&mut ils);
        assert_eq!(ils.len(), 3, "second load deduplicated");
    }

    #[test]
    fn dce_removes_unused_virtuals() {
        let mut s = Sink::new();
        let (v1, v2) = (s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 1,
                a: R0,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: v2,
                imm: 2,
                a: R0,
            })), // dead
            il(ipf::Inst::new(Op::AddImm {
                d: g,
                imm: 0,
                a: v1,
            })),
        ];
        dce(&mut ils);
        assert_eq!(ils.len(), 2);
    }

    #[test]
    fn dce_keeps_stores_and_guest_writes() {
        let mut s = Sink::new();
        let v1 = s.vg();
        let g = crate::state::guest_gpr(3);
        let mut ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 1,
                a: R0,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: v1,
                val: g,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: g,
                imm: 5,
                a: R0,
            })),
        ];
        dce(&mut ils);
        assert_eq!(ils.len(), 3);
    }
}
