//! Hot IL optimizations (paper §2 hot-phase list): local value
//! numbering (covering compound-address CSE, register-value tracking,
//! copy propagation, and redundant-load elimination) and dead-code
//! elimination.

use super::trace::HotIl;
use ipf::inst::{Op, Reg, Target};
use ipf::regs::{Gr, P0};
use std::collections::HashMap;

fn is_state_reg(r: Reg) -> bool {
    match r {
        Reg::G(g) => !g.is_virtual() && g.0 != 0,
        Reg::F(f) => !f.is_virtual() && f.0 > 1,
        Reg::P(p) => !p.is_virtual() && p.0 != 0,
        Reg::B(_) => true,
    }
}

/// Local value numbering over the trace. Pure integer ops (and loads,
/// versioned by the store count) with identical canonicalized operands
/// are deduplicated; uses are rewritten through a substitution map.
pub(super) fn lvn(ils: &mut Vec<HotIl>) {
    // Only virtuals with a single definition participate (deleting one
    // of several defs, or replacing uses with a later-redefined holder,
    // would be wrong).
    let mut def_count: HashMap<u16, u32> = HashMap::new();
    for il in ils.iter() {
        il.inst.op.visit_regs(&mut |r, is_def| {
            if is_def {
                if let Reg::G(g) = r {
                    if g.is_virtual() {
                        *def_count.entry(g.0).or_default() += 1;
                    }
                }
            }
        });
    }
    let mut subst: HashMap<u16, Gr> = HashMap::new(); // virtual -> replacement
                                                      // Copy propagation: virtual v is a copy of physical p taken at
                                                      // version n; uses of v read p directly while p is unmodified.
    let mut copy_of: HashMap<u16, (u16, u64)> = HashMap::new();
    let mut versions: HashMap<(u8, u16), u64> = HashMap::new();
    let mut mem_version: u64 = 0;
    let mut table: HashMap<String, Gr> = HashMap::new();
    let mut keep: Vec<bool> = vec![true; ils.len()];

    for (i, il) in ils.iter_mut().enumerate() {
        // Rewrite uses through the substitution and copy maps.
        il.inst.op.map_regs(&mut |r, is_def| match r {
            Reg::G(g) if !is_def && g.is_virtual() => {
                if let Some(&h) = subst.get(&g.0) {
                    return Reg::G(h);
                }
                if let Some(&(p, ver)) = copy_of.get(&g.0) {
                    if versions.get(&(0, p)).copied().unwrap_or(0) == ver {
                        return Reg::G(Gr(p));
                    }
                }
                Reg::G(g)
            }
            other => other,
        });

        let op = il.inst.op;
        if op.is_store() {
            mem_version += 1;
        }
        if op.is_branch() {
            // Conservatively cut value numbering at control flow.
            table.clear();
            continue;
        }
        // Bump versions of defined non-virtual registers.
        op.visit_regs(&mut |r, is_def| {
            if is_def {
                let key = match r {
                    Reg::G(g) if !g.is_virtual() => Some((0u8, g.0)),
                    Reg::F(f) if !f.is_virtual() => Some((1, f.0)),
                    Reg::P(p) if !p.is_virtual() => Some((2, p.0)),
                    _ => None,
                };
                if let Some(k) = key {
                    *versions.entry(k).or_default() += 1;
                }
            }
        });

        if il.inst.qp != P0 {
            continue; // predicated ops are not LVN candidates
        }
        let (lvn_ok, dest) = lvn_candidate(&op);
        let Some(dest) = dest else { continue };
        if !lvn_ok || !dest.is_virtual() || def_count.get(&dest.0).copied().unwrap_or(0) != 1 {
            continue;
        }
        // Build the canonical key: the op with its destination zeroed
        // and physical operands tagged with their version.
        let mut key_op = op;
        key_op.map_regs(&mut |r, is_def| {
            if is_def {
                return match r {
                    Reg::G(_) => Reg::G(Gr(0)),
                    other => other,
                };
            }
            r
        });
        let mut key = format!("{key_op:?}");
        op.visit_regs(&mut |r, is_def| {
            if !is_def {
                let vkey = match r {
                    Reg::G(g) if !g.is_virtual() => Some((0u8, g.0)),
                    Reg::F(f) if !f.is_virtual() => Some((1, f.0)),
                    Reg::P(p) if !p.is_virtual() => Some((2, p.0)),
                    _ => None,
                };
                if let Some(k) = vkey {
                    key.push_str(&format!(
                        "|v{}:{}",
                        k.1,
                        versions.get(&k).copied().unwrap_or(0)
                    ));
                }
            }
        });
        if matches!(op, Op::Ld { .. }) {
            key.push_str(&format!("|mem{mem_version}"));
        }
        match table.get(&key) {
            Some(&holder) => {
                subst.insert(dest.0, holder);
                keep[i] = false;
            }
            None => {
                table.insert(key, dest);
                // Record pure copies of physical registers for
                // copy propagation (the op stays; DCE removes it once
                // every use has been redirected).
                if let Op::AddImm { d, imm: 0, a } = op {
                    if d.is_virtual() && !a.is_virtual() && a.0 != 0 {
                        let ver = versions.get(&(0, a.0)).copied().unwrap_or(0);
                        copy_of.insert(d.0, (a.0, ver));
                    }
                }
            }
        }
    }
    let mut idx = 0;
    ils.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

/// Whether an op is a pure, deduplicable computation; returns its single
/// GR destination.
fn lvn_candidate(op: &Op) -> (bool, Option<Gr>) {
    use Op::*;
    match *op {
        Add { d, .. }
        | Sub { d, .. }
        | AddImm { d, .. }
        | SubImm { d, .. }
        | And { d, .. }
        | Or { d, .. }
        | Xor { d, .. }
        | AndCm { d, .. }
        | AndImm { d, .. }
        | OrImm { d, .. }
        | XorImm { d, .. }
        | Shladd { d, .. }
        | ShlImm { d, .. }
        | ShlVar { d, .. }
        | ShrImm { d, .. }
        | ShrVar { d, .. }
        | Extr { d, .. }
        | Dep { d, .. }
        | DepZ { d, .. }
        | Sxt { d, .. }
        | Zxt { d, .. }
        | Popcnt { d, .. }
        | Movl { d, .. } => (true, Some(d)),
        // Non-speculative loads are value-numbered against the store
        // counter (redundant-load elimination).
        Ld { d, spec: false, .. } => (true, Some(d)),
        _ => (false, None),
    }
}

/// Dead-code elimination: drops ops whose only effects are writes to
/// virtual registers that nothing reads.
pub(super) fn dce(ils: &mut Vec<HotIl>) {
    let n = ils.len();
    let mut keep = vec![false; n];
    let mut live: std::collections::HashSet<(u8, u16)> = std::collections::HashSet::new();
    for i in (0..n).rev() {
        let il = &ils[i];
        let op = &il.inst.op;
        let mut side_effect = op.is_store()
            || op.is_branch()
            || op.can_fault()
            || il.inst.qp != P0
            || matches!(op, Op::Mf | Op::MovToBr { .. });
        // Writes to non-virtual (architectural) registers are effects.
        let mut defines_live_virtual = false;
        op.visit_regs(&mut |r, is_def| {
            if is_def {
                if is_state_reg(r) {
                    side_effect = true;
                }
                let key = reg_key(r);
                if let Some(k) = key {
                    if live.contains(&k) {
                        defines_live_virtual = true;
                    }
                }
            }
        });
        if side_effect || defines_live_virtual {
            keep[i] = true;
            // Defs are satisfied; kill them (only unconditional defs
            // fully cover the register), then mark uses live.
            if il.inst.qp == P0 {
                op.visit_regs(&mut |r, is_def| {
                    if is_def {
                        if let Some(k) = reg_key(r) {
                            live.remove(&k);
                        }
                    }
                });
            }
            if let Some(k) = reg_key(Reg::P(il.inst.qp)) {
                live.insert(k);
            }
            op.visit_regs(&mut |r, is_def| {
                if !is_def {
                    if let Some(k) = reg_key(r) {
                        live.insert(k);
                    }
                }
            });
        }
    }
    let mut idx = 0;
    ils.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    // Labels in targets are unaffected.
    let _ = Target::Abs(0);
}

fn reg_key(r: Reg) -> Option<(u8, u16)> {
    match r {
        Reg::G(g) if g.is_virtual() => Some((0, g.0)),
        Reg::F(f) if f.is_virtual() => Some((1, f.0)),
        Reg::P(p) if p.is_virtual() => Some((2, p.0)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Typed-IR passes (the `enable_hot_ir` pipeline).
// ---------------------------------------------------------------------------

use super::ir::{self, IrInst, MemEffect};
use super::liveness;
use crate::state::GR_EFLAGS;

/// Runs local value numbering on typed IR (shared with the template
/// path); effects are recomputed afterwards.
pub(super) fn lvn_ir(irs: &mut Vec<IrInst>) {
    let mut ils: Vec<HotIl> = irs.drain(..).map(IrInst::into_hotil).collect();
    lvn(&mut ils);
    *irs = ir::annotate_owned(ils);
}

/// Runs dead-code elimination on typed IR (shared with the template
/// path); effects are recomputed afterwards.
pub(super) fn dce_ir(irs: &mut Vec<IrInst>) {
    let mut ils: Vec<HotIl> = irs.drain(..).map(IrInst::into_hotil).collect();
    dce(&mut ils);
    *irs = ir::annotate_owned(ils);
}

/// The `addl` long-immediate range templates use for `mov_imm`; folds
/// outside it materialize through `movl` instead.
fn fits_addl(v: u64) -> bool {
    let s = v as i64;
    (-0x1F_FFFF..=0x1F_FFFF).contains(&s)
}

/// Constant and copy propagation over the typed IR.
///
/// Facts are only learned from unpredicated defs of single-definition
/// virtuals (a predicated def merges, a redefinition invalidates), so a
/// recorded constant or copy source is valid at every later use. Folds
/// are deliberately minimal — the address arithmetic templates emit:
/// `movl`/`addl`-materialized constants, `add` with a constant operand,
/// immediate-add chains, and shifts of constants.
pub(super) fn propagate(irs: &mut [IrInst]) {
    let mut def_count: HashMap<u16, u32> = HashMap::new();
    for x in irs.iter() {
        x.inst.op.visit_regs(&mut |r, is_def| {
            if is_def {
                if let Reg::G(g) = r {
                    if g.is_virtual() {
                        *def_count.entry(g.0).or_default() += 1;
                    }
                }
            }
        });
    }
    let single = |g: Gr, dc: &HashMap<u16, u32>| dc.get(&g.0).copied() == Some(1);

    let mut konst: HashMap<u16, u64> = HashMap::new();
    let mut copy: HashMap<u16, u16> = HashMap::new();
    for x in irs.iter_mut() {
        // Copy-propagate uses first (sources are single-def, so the
        // replacement is valid wherever the original was).
        x.inst.op.map_regs(&mut |r, is_def| match r {
            Reg::G(g) if !is_def && g.is_virtual() => match copy.get(&g.0) {
                Some(&s) => Reg::G(Gr(s)),
                None => r,
            },
            _ => r,
        });

        // Fold constants into the op.
        let kof = |g: Gr, k: &HashMap<u16, u64>| {
            if g.0 == 0 {
                Some(0)
            } else if g.is_virtual() {
                k.get(&g.0).copied()
            } else {
                None
            }
        };
        let mut rewrite: Option<Op> = None;
        match x.inst.op {
            Op::Add { d, a, b } => match (kof(a, &konst), kof(b, &konst)) {
                (Some(va), Some(vb)) => {
                    let v = va.wrapping_add(vb);
                    rewrite = Some(if fits_addl(v) {
                        Op::AddImm {
                            d,
                            imm: v as i64,
                            a: ipf::regs::R0,
                        }
                    } else {
                        Op::Movl { d, imm: v }
                    });
                }
                (Some(va), None) if fits_addl(va) => {
                    rewrite = Some(Op::AddImm {
                        d,
                        imm: va as i64,
                        a: b,
                    });
                }
                (None, Some(vb)) if fits_addl(vb) => {
                    rewrite = Some(Op::AddImm {
                        d,
                        imm: vb as i64,
                        a,
                    });
                }
                _ => {}
            },
            Op::AddImm { d, imm, a } => {
                if let Some(va) = kof(a, &konst) {
                    let v = va.wrapping_add(imm as u64);
                    if a.0 != 0 {
                        rewrite = Some(if fits_addl(v) {
                            Op::AddImm {
                                d,
                                imm: v as i64,
                                a: ipf::regs::R0,
                            }
                        } else {
                            Op::Movl { d, imm: v }
                        });
                    }
                }
            }
            Op::ShlImm { d, a, count } => {
                if let Some(va) = kof(a, &konst) {
                    let v = va.wrapping_shl(count as u32);
                    rewrite = Some(if fits_addl(v) {
                        Op::AddImm {
                            d,
                            imm: v as i64,
                            a: ipf::regs::R0,
                        }
                    } else {
                        Op::Movl { d, imm: v }
                    });
                }
            }
            _ => {}
        }
        if let Some(op) = rewrite {
            x.inst.op = op;
        }

        // Learn facts from this op.
        if x.inst.qp == P0 {
            match x.inst.op {
                Op::Movl { d, imm } if d.is_virtual() && single(d, &def_count) => {
                    konst.insert(d.0, imm);
                }
                Op::AddImm { d, imm, a } if a.0 == 0 && d.is_virtual() && single(d, &def_count) => {
                    konst.insert(d.0, imm as u64);
                }
                Op::AddImm { d, imm: 0, a }
                    if a.is_virtual()
                        && d.is_virtual()
                        && single(d, &def_count)
                        && single(a, &def_count) =>
                {
                    let src = copy.get(&a.0).copied().unwrap_or(a.0);
                    copy.insert(d.0, src);
                }
                _ => {}
            }
        }
    }
    for x in irs.iter_mut() {
        x.fx = ir::Effects::of(&x.inst);
    }
}

/// Cross-block EFLAGS elimination: deletes lazy-flags materializations
/// whose result is overwritten before any observation point. The
/// observation points are branches (side exits, the inline dispatch)
/// and ops that can fault (the recovery walk reads all guest state);
/// between those, only the final write into the EFLAGS home survives.
/// Deleting a write removes its reads, which can cascade through the
/// read-modify-write chains lazy flags build, so the pass iterates to a
/// fixpoint.
pub(super) fn eflags_elim(irs: &mut Vec<IrInst>) {
    loop {
        let lv = liveness::analyze(irs);
        let mut keep = vec![true; irs.len()];
        let mut removed = false;
        for (i, x) in irs.iter().enumerate() {
            if !x.fx.writes_eflags || lv.eflags_out[i] {
                continue;
            }
            if x.fx.is_branch || x.fx.can_fault || x.fx.mem == MemEffect::Store {
                continue;
            }
            // Deletable only if every def is the (dead) EFLAGS home or
            // a virtual nothing reads afterwards.
            let mut only_dead = true;
            x.inst.op.visit_regs(&mut |r, is_def| {
                if !is_def {
                    return;
                }
                let dead = match r {
                    Reg::G(g) if g == GR_EFLAGS => true,
                    _ => match liveness::virt_key(r) {
                        Some(k) => !lv.live_after(i, k),
                        None => false,
                    },
                };
                only_dead &= dead;
            });
            if only_dead {
                keep[i] = false;
                removed = true;
            }
        }
        if !removed {
            return;
        }
        let mut idx = 0;
        irs.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }
}

/// Dead guest-writeback elision: deletes an unpredicated,
/// non-faulting write into a guest GPR home when the register's next
/// event is an unconditional full redefinition, with no intervening
/// read, branch, faulting op, or predicated op — nothing between the
/// two writes can observe the first. Superinstruction fusion makes
/// these common: the fused emitters elide temporaries *inside* an
/// idiom, and this pass catches writebacks that become dead only once
/// adjacent idioms land on the same trace. Only enabled alongside
/// `enable_superinst`, keeping the baseline IR pipeline byte-for-byte
/// unchanged.
pub(super) fn elide_dead_guest_writes(irs: &mut Vec<IrInst>) {
    use crate::state::GR_GUEST;
    // The op's sole def is a physical guest GPR home that the op does
    // not also read (a read-modify-write needs the prior value).
    let guest_def = |x: &IrInst| -> Option<Gr> {
        if x.inst.qp != P0
            || x.fx.is_branch
            || x.fx.can_fault
            || x.fx.writes_eflags
            || x.fx.mem != MemEffect::None
        {
            return None;
        }
        // Two passes: collect defs first, then look for a read of the
        // def register — operand visit order must not hide an RMW.
        let mut def = None;
        let mut ok = true;
        x.inst.op.visit_regs(&mut |r, is_def| {
            if !is_def {
                return;
            }
            match r {
                Reg::G(g) if (GR_GUEST..GR_GUEST + 8).contains(&g.0) && def.is_none() => {
                    def = Some(g);
                }
                _ => ok = false,
            }
        });
        let g = def?;
        if !ok {
            return None;
        }
        let mut reads = false;
        x.inst.op.visit_regs(&mut |r, is_def| {
            if !is_def && r == Reg::G(g) {
                reads = true;
            }
        });
        if reads {
            None
        } else {
            Some(g)
        }
    };
    let mut keep = vec![true; irs.len()];
    for i in 0..irs.len() {
        let Some(g) = guest_def(&irs[i]) else {
            continue;
        };
        // Reads are checked regardless of def order within an op, so a
        // later read-modify-write of `g` counts as an observation.
        let mut deletable = false;
        for x in irs[i + 1..].iter() {
            if x.fx.is_branch || x.fx.can_fault || x.inst.qp != P0 {
                break;
            }
            let mut reads = false;
            let mut redefs = false;
            x.inst.op.visit_regs(&mut |r, is_def| {
                if r == Reg::G(g) {
                    if is_def {
                        redefs = true;
                    } else {
                        reads = true;
                    }
                }
            });
            if reads {
                break;
            }
            if redefs {
                deletable = true;
                break;
            }
        }
        keep[i] = !deletable;
    }
    let mut idx = 0;
    irs.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::Sink;
    use ipf::regs::R0;

    fn il(inst: ipf::Inst) -> HotIl {
        HotIl {
            inst,
            ia32_ip: 0,
            rec: None,
        }
    }

    #[test]
    fn lvn_dedups_identical_computation() {
        let mut s = Sink::new();
        let (v1, v2) = (s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 8,
                a: g,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: v2,
                imm: 8,
                a: g,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: v1,
                val: v2,
            })),
        ];
        lvn(&mut ils);
        assert_eq!(ils.len(), 2, "duplicate EA computation removed");
        // The store now uses v1 twice.
        if let Op::St { addr, val, .. } = ils[1].inst.op {
            assert_eq!(addr, val);
        } else {
            panic!("store expected");
        }
    }

    #[test]
    fn lvn_respects_guest_register_versions() {
        let mut s = Sink::new();
        let (v1, v2) = (s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 8,
                a: g,
            })),
            il(ipf::Inst::new(Op::AddImm { d: g, imm: 1, a: g })), // g changes
            il(ipf::Inst::new(Op::AddImm {
                d: v2,
                imm: 8,
                a: g,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: v1,
                val: v2,
            })),
        ];
        lvn(&mut ils);
        assert_eq!(ils.len(), 4, "not redundant after the write");
    }

    #[test]
    fn lvn_load_killed_by_store() {
        let mut s = Sink::new();
        let (v1, v2, v3) = (s.vg(), s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut ils = vec![
            il(ipf::Inst::new(Op::Ld {
                sz: 4,
                d: v1,
                addr: g,
                spec: false,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: g,
                val: v1,
            })),
            il(ipf::Inst::new(Op::Ld {
                sz: 4,
                d: v2,
                addr: g,
                spec: false,
            })),
            il(ipf::Inst::new(Op::Add {
                d: v3,
                a: v1,
                b: v2,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: g,
                val: v3,
            })),
        ];
        let before = ils.len();
        lvn(&mut ils);
        assert_eq!(ils.len(), before, "load after store must reload");
    }

    #[test]
    fn lvn_redundant_load_removed() {
        let mut s = Sink::new();
        let (v1, v2, v3) = (s.vg(), s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut ils = vec![
            il(ipf::Inst::new(Op::Ld {
                sz: 4,
                d: v1,
                addr: g,
                spec: false,
            })),
            il(ipf::Inst::new(Op::Ld {
                sz: 4,
                d: v2,
                addr: g,
                spec: false,
            })),
            il(ipf::Inst::new(Op::Add {
                d: v3,
                a: v1,
                b: v2,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: g,
                val: v3,
            })),
        ];
        lvn(&mut ils);
        assert_eq!(ils.len(), 3, "second load deduplicated");
    }

    #[test]
    fn dce_removes_unused_virtuals() {
        let mut s = Sink::new();
        let (v1, v2) = (s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 1,
                a: R0,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: v2,
                imm: 2,
                a: R0,
            })), // dead
            il(ipf::Inst::new(Op::AddImm {
                d: g,
                imm: 0,
                a: v1,
            })),
        ];
        dce(&mut ils);
        assert_eq!(ils.len(), 2);
    }

    #[test]
    fn dce_keeps_stores_and_guest_writes() {
        let mut s = Sink::new();
        let v1 = s.vg();
        let g = crate::state::guest_gpr(3);
        let mut ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 1,
                a: R0,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: v1,
                val: g,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: g,
                imm: 5,
                a: R0,
            })),
        ];
        dce(&mut ils);
        assert_eq!(ils.len(), 3);
    }

    #[test]
    fn propagate_folds_constant_address_chains() {
        let mut s = Sink::new();
        let (v1, v2, v3) = (s.vg(), s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut irs = ir::annotate(&[
            il(ipf::Inst::new(Op::Movl { d: v1, imm: 0x1000 })),
            il(ipf::Inst::new(Op::AddImm {
                d: v2,
                imm: 8,
                a: v1,
            })),
            il(ipf::Inst::new(Op::Add { d: v3, a: g, b: v2 })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: v3,
                val: g,
            })),
        ]);
        propagate(&mut irs);
        assert!(
            matches!(irs[2].inst.op, Op::AddImm { imm: 0x1008, a, .. } if a == g),
            "constant chain folded into the add: {:?}",
            irs[2].inst.op
        );
        dce_ir(&mut irs);
        assert_eq!(irs.len(), 2, "dead constant producers cleaned up");
    }

    #[test]
    fn propagate_forwards_copies() {
        let mut s = Sink::new();
        let (v1, v2) = (s.vg(), s.vg());
        let g = crate::state::guest_gpr(0);
        let mut irs = ir::annotate(&[
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 3,
                a: g,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: v2,
                imm: 0,
                a: v1,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: v2,
                val: g,
            })),
        ]);
        propagate(&mut irs);
        assert!(
            matches!(irs[2].inst.op, Op::St { addr, .. } if addr == v1),
            "store reads through the copy"
        );
    }

    #[test]
    fn eflags_elim_drops_overwritten_materializations() {
        use crate::state::GR_EFLAGS;
        let g = crate::state::guest_gpr(0);
        let mut irs = ir::annotate(&[
            // Dead: overwritten before any observer.
            il(ipf::Inst::new(Op::AddImm {
                d: GR_EFLAGS,
                imm: 1,
                a: R0,
            })),
            // Live: the faulting store observes it.
            il(ipf::Inst::new(Op::AddImm {
                d: GR_EFLAGS,
                imm: 2,
                a: R0,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: g,
                val: g,
            })),
            // Live: trace exit observes it.
            il(ipf::Inst::new(Op::AddImm {
                d: GR_EFLAGS,
                imm: 3,
                a: R0,
            })),
        ]);
        eflags_elim(&mut irs);
        assert_eq!(irs.len(), 3, "only the unobserved write is deleted");
        assert!(
            matches!(irs[0].inst.op, Op::AddImm { imm: 2, .. }),
            "the pre-fault write survives"
        );
    }

    #[test]
    fn eflags_elim_cascades_through_rmw_chains() {
        use crate::state::GR_EFLAGS;
        let mut s = Sink::new();
        let v1 = s.vg();
        let g = crate::state::guest_gpr(0);
        let mut irs = ir::annotate(&[
            // A lazy-flags RMW chain: compute a flag bit, merge it in.
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 1,
                a: g,
            })),
            il(ipf::Inst::new(Op::Dep {
                d: GR_EFLAGS,
                src: v1,
                target: GR_EFLAGS,
                pos: 0,
                len: 1,
            })),
            // Full overwrite before any observer kills the chain.
            il(ipf::Inst::new(Op::AddImm {
                d: GR_EFLAGS,
                imm: 0,
                a: R0,
            })),
        ]);
        eflags_elim(&mut irs);
        dce_ir(&mut irs);
        assert_eq!(irs.len(), 1, "merge deleted, then its input is dead");
        assert!(matches!(irs[0].inst.op, Op::AddImm { d, .. } if d == GR_EFLAGS));
    }
}
