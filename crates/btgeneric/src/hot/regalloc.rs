//! Constraint-driven register allocation for the typed trace IR.
//!
//! The allocator walks the trace in program order, renaming virtual
//! registers into the physical pools described by the per-class
//! constraint table. Fixed physical operands (guest GPR homes, the
//! EFLAGS home, payload registers, …) constrain themselves and pass
//! through untouched. Under general-register pressure it spills the
//! active value with the farthest next reference to a small
//! always-mapped slot area ([`crate::layout::SPILL_BASE`]); floating
//! and predicate registers have no spill path, so exhausting those
//! pools fails the allocation and the trace falls back to the template
//! pipeline (and ultimately stays cold).

use super::ir::IrInst;
use super::liveness::{self, virt_key, Liveness, VirtKey};
use crate::layout;
use crate::state;
use ipf::inst::{Op, Reg};
use ipf::regs::{Fr, Gr, Pr, P0};
use std::collections::HashMap;

/// One allocated (fully physical) instruction.
#[derive(Clone, Copy, Debug)]
pub(super) struct AllocInst {
    /// The rewritten instruction.
    pub inst: ipf::Inst,
    /// Index of the originating IR op; `None` for spill traffic.
    pub src: Option<usize>,
}

/// Reserved spill-pointer temporary, excluded from every pool so a
/// spill or reload can always materialize its slot address.
const SPILL_PTR: Gr = Gr(state::GR_SCRATCH);

/// One row of the constraint table.
struct ClassRow {
    /// Allocatable physical register numbers, in preference order.
    free: Vec<u16>,
    /// Whether exhaustion may be resolved by spilling to memory.
    can_spill: bool,
}

/// The per-class constraint table. General registers get the renaming
/// pool plus the scratch bank (minus the reserved spill pointer) and
/// may spill; floating registers get the FP scratch bank minus `f63`
/// (the exit-prologue shuffle temporary); predicates get the predicate
/// pool. Everything outside these pools is architectural state and is
/// never allocated.
fn class_table() -> [ClassRow; 3] {
    [
        ClassRow {
            free: (state::GR_SCRATCH + 1..state::GR_POOL + state::NUM_POOL).collect(),
            can_spill: true,
        },
        ClassRow {
            free: (state::FR_SCRATCH..state::FR_SCRATCH + state::NUM_FR_SCRATCH - 1).collect(),
            can_spill: false,
        },
        ClassRow {
            free: (state::PR_POOL..state::PR_POOL + state::NUM_PR_POOL).collect(),
            can_spill: false,
        },
    ]
}

/// Rebuilds a physical register of class `class`.
fn phys_reg(class: u8, n: u16) -> Reg {
    match class {
        0 => Reg::G(Gr(n)),
        1 => Reg::F(Fr(n)),
        _ => Reg::P(Pr(n)),
    }
}

/// Mutable allocation state threaded through the walk.
struct AllocState {
    map: HashMap<VirtKey, u16>,
    /// Insertion-ordered live assignments (deterministic victim scan).
    active: Vec<VirtKey>,
    spilled: HashMap<VirtKey, u64>,
    slot_free: Vec<u64>,
    pools: [ClassRow; 3],
    out: Vec<AllocInst>,
}

impl AllocState {
    /// Takes a physical register of `class`, spilling a general
    /// register (farthest next reference, excluding `cur`) if the pool
    /// is dry. Returns `None` when the class cannot be satisfied.
    fn take(&mut self, class: u8, cur: &[VirtKey], i: usize, lv: &Liveness) -> Option<u16> {
        let row = &mut self.pools[class as usize];
        if !row.free.is_empty() {
            return Some(row.free.remove(0));
        }
        if !row.can_spill {
            return None;
        }
        // Victim: the active general register whose next reference is
        // farthest away (a value never referenced again would have been
        // released already, but treat it as infinitely far for safety).
        let mut victim: Option<(VirtKey, usize)> = None;
        for &k in &self.active {
            if k.0 != class || cur.contains(&k) {
                continue;
            }
            let next = lv.next_ref_after(k, i).unwrap_or(usize::MAX);
            if victim.is_none_or(|(_, best)| next > best) {
                victim = Some((k, next));
            }
        }
        let (vk, _) = victim?;
        let slot = self.slot_free.pop()?;
        let phys = self.map.remove(&vk).expect("active implies mapped");
        self.active.retain(|&k| k != vk);
        self.spilled.insert(vk, slot);
        self.out.push(AllocInst {
            inst: ipf::Inst::new(Op::Movl {
                d: SPILL_PTR,
                imm: slot,
            }),
            src: None,
        });
        self.out.push(AllocInst {
            inst: ipf::Inst::new(Op::St {
                sz: 8,
                addr: SPILL_PTR,
                val: Gr(phys),
            }),
            src: None,
        });
        Some(phys)
    }

    /// Binds `k` to a fresh physical register.
    fn bind(&mut self, k: VirtKey, cur: &[VirtKey], i: usize, lv: &Liveness) -> Option<u16> {
        let phys = self.take(k.0, cur, i, lv)?;
        self.map.insert(k, phys);
        self.active.push(k);
        Some(phys)
    }

    /// Reloads a spilled general register into a fresh physical one.
    fn reload(&mut self, k: VirtKey, cur: &[VirtKey], i: usize, lv: &Liveness) -> Option<u16> {
        let slot = self.spilled.remove(&k).expect("reload of unspilled value");
        let phys = self.bind(k, cur, i, lv)?;
        self.out.push(AllocInst {
            inst: ipf::Inst::new(Op::Movl {
                d: SPILL_PTR,
                imm: slot,
            }),
            src: None,
        });
        self.out.push(AllocInst {
            inst: ipf::Inst::new(Op::Ld {
                sz: 8,
                d: Gr(phys),
                addr: SPILL_PTR,
                spec: false,
            }),
            src: None,
        });
        self.slot_free.push(slot);
        Some(phys)
    }

    /// Releases every register in `cur` that is dead after op `i`.
    fn release_dead(&mut self, cur: &[VirtKey], i: usize, lv: &Liveness) {
        for &k in cur {
            if lv.live_after(i, k) {
                continue;
            }
            if let Some(phys) = self.map.remove(&k) {
                self.active.retain(|&a| a != k);
                self.pools[k.0 as usize].free.push(phys);
            }
            if let Some(slot) = self.spilled.remove(&k) {
                self.slot_free.push(slot);
            }
        }
    }
}

/// Allocates every virtual register in `ir`, returning the physical
/// instruction stream with spill traffic inserted, or `None` if the
/// constraint table cannot be satisfied.
pub(super) fn allocate(ir: &[IrInst]) -> Option<Vec<AllocInst>> {
    let lv = liveness::analyze(ir);
    let mut st = AllocState {
        map: HashMap::new(),
        active: Vec::new(),
        spilled: HashMap::new(),
        slot_free: (0..layout::SPILL_SLOTS)
            .rev()
            .map(|k| layout::SPILL_BASE + k * 8)
            .collect(),
        pools: class_table(),
        out: Vec::with_capacity(ir.len()),
    };

    for (i, x) in ir.iter().enumerate() {
        // Partition this op's virtual references.
        let mut uses: Vec<VirtKey> = Vec::new();
        let mut defs: Vec<VirtKey> = Vec::new();
        if let Some(k) = virt_key(Reg::P(x.inst.qp)) {
            uses.push(k);
        }
        x.inst.op.visit_regs(&mut |r, is_def| {
            if let Some(k) = virt_key(r) {
                let list = if is_def { &mut defs } else { &mut uses };
                if !list.contains(&k) {
                    list.push(k);
                }
            }
        });
        let mut cur = uses.clone();
        for &k in &defs {
            if !cur.contains(&k) {
                cur.push(k);
            }
        }

        // Every use must be in a register; a predicated def merges, so
        // its old value must be resident too.
        let predicated = x.inst.qp != P0;
        for &k in uses.iter().chain(defs.iter().filter(|_| predicated)) {
            if st.spilled.contains_key(&k) {
                st.reload(k, &cur, i, &lv)?;
            } else if !st.map.contains_key(&k) {
                st.bind(k, &cur, i, &lv)?;
            }
        }
        // Unpredicated defs overwrite: any spilled old value is dead.
        for &k in &defs {
            if !predicated {
                if let Some(slot) = st.spilled.remove(&k) {
                    st.slot_free.push(slot);
                }
            }
            if !st.map.contains_key(&k) {
                st.bind(k, &cur, i, &lv)?;
            }
        }

        // Rewrite and emit.
        let mut inst = x.inst;
        if inst.qp.is_virtual() {
            inst.qp = Pr(st.map[&(2, inst.qp.0)]);
        }
        inst.op.map_regs(&mut |r, _| match virt_key(r) {
            Some(k) => phys_reg(k.0, st.map[&k]),
            None => r,
        });
        st.out.push(AllocInst { inst, src: Some(i) });

        st.release_dead(&cur, i, &lv);
    }

    debug_assert!(st.out.iter().all(|a| {
        let mut clean = !a.inst.qp.is_virtual();
        a.inst
            .op
            .visit_regs(&mut |r, _| clean &= virt_key(r).is_none());
        clean
    }));
    Some(st.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hot::ir;
    use crate::hot::trace::HotIl;
    use crate::state::{guest_gpr, GR_POOL, GR_SCRATCH, NUM_POOL};
    use ipf::regs::R0;
    use std::collections::HashMap;

    fn lift(ops: Vec<ipf::Inst>) -> Vec<IrInst> {
        ir::annotate(
            &ops.into_iter()
                .map(|inst| HotIl {
                    inst,
                    ia32_ip: 0,
                    rec: None,
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Evaluates an allocated instruction stream over a register file
    /// and a sparse memory, checking spill correctness end to end.
    fn run(allocd: &[AllocInst]) -> (HashMap<u16, u64>, HashMap<u64, u64>) {
        let mut regs: HashMap<u16, u64> = HashMap::new();
        let mut mem: HashMap<u64, u64> = HashMap::new();
        for a in allocd {
            match a.inst.op {
                Op::Movl { d, imm } => {
                    regs.insert(d.0, imm);
                }
                Op::AddImm { d, imm, a: s } => {
                    let v = regs.get(&s.0).copied().unwrap_or(0);
                    regs.insert(d.0, v.wrapping_add(imm as u64));
                }
                Op::Add { d, a: s, b } => {
                    let v = regs
                        .get(&s.0)
                        .copied()
                        .unwrap_or(0)
                        .wrapping_add(regs.get(&b.0).copied().unwrap_or(0));
                    regs.insert(d.0, v);
                }
                Op::St { addr, val, .. } => {
                    let p = regs.get(&addr.0).copied().unwrap_or(0);
                    mem.insert(p, regs.get(&val.0).copied().unwrap_or(0));
                }
                Op::Ld { d, addr, .. } => {
                    let p = regs.get(&addr.0).copied().unwrap_or(0);
                    regs.insert(d.0, mem.get(&p).copied().unwrap_or(0));
                }
                ref op => panic!("unexpected op in mini evaluator: {op:?}"),
            }
        }
        (regs, mem)
    }

    #[test]
    fn allocates_within_pool_without_spills() {
        let a = Gr(300);
        let b = Gr(301);
        let ir = lift(vec![
            ipf::Inst::new(Op::AddImm {
                d: a,
                imm: 5,
                a: R0,
            }),
            ipf::Inst::new(Op::AddImm {
                d: b,
                imm: 7,
                a: R0,
            }),
            ipf::Inst::new(Op::Add {
                d: guest_gpr(0),
                a,
                b,
            }),
        ]);
        let allocd = allocate(&ir).expect("allocation succeeds");
        assert_eq!(allocd.len(), 3, "no spill traffic");
        let (regs, _) = run(&allocd);
        assert_eq!(regs[&guest_gpr(0).0], 12);
    }

    #[test]
    fn spills_and_reloads_under_pressure() {
        // Define more simultaneously-live values than the GR pool
        // (pool + scratch bank minus the spill pointer) can hold, then
        // consume them all: the allocator must spill and reload, and
        // the evaluated result must match the unrenamed semantics.
        let pool = (GR_POOL + NUM_POOL - GR_SCRATCH - 1) as usize;
        let n = pool + 4;
        let mut ops: Vec<ipf::Inst> = Vec::new();
        for k in 0..n {
            ops.push(ipf::Inst::new(Op::AddImm {
                d: Gr(300 + k as u16),
                imm: 1 + k as i64,
                a: R0,
            }));
        }
        // Sum them into the guest register in definition order.
        ops.push(ipf::Inst::new(Op::AddImm {
            d: guest_gpr(0),
            imm: 0,
            a: R0,
        }));
        for k in 0..n {
            ops.push(ipf::Inst::new(Op::Add {
                d: guest_gpr(0),
                a: guest_gpr(0),
                b: Gr(300 + k as u16),
            }));
        }
        let ir = lift(ops);
        let allocd = allocate(&ir).expect("spill path succeeds");
        assert!(
            allocd.iter().any(|a| a.src.is_none()),
            "pressure actually forced spill traffic"
        );
        let (regs, mem) = run(&allocd);
        let expect: u64 = (1..=n as u64).sum();
        assert_eq!(regs[&guest_gpr(0).0], expect, "spilled values survive");
        for &addr in mem.keys() {
            assert!(
                (layout::SPILL_BASE..layout::SPILL_BASE + layout::SPILL_SLOTS * 8).contains(&addr),
                "spills stay inside the reserved slot area"
            );
        }
    }

    #[test]
    fn fails_cleanly_when_predicates_exhaust() {
        // More simultaneously-live predicates than the pool: no spill
        // path for the P class, so allocation must fail (template
        // fallback), not panic.
        let n = state::NUM_PR_POOL as usize + 2;
        let mut ops: Vec<ipf::Inst> = Vec::new();
        for k in 0..n {
            ops.push(ipf::Inst::new(Op::Cmp {
                rel: ipf::inst::CmpRel::Eq,
                pt: Pr(500 + k as u16),
                pf: P0,
                a: guest_gpr(0),
                b: R0,
            }));
        }
        for k in 0..n {
            ops.push(ipf::Inst::pred(
                Pr(500 + k as u16),
                Op::AddImm {
                    d: guest_gpr(1),
                    imm: k as i64,
                    a: R0,
                },
            ));
        }
        assert!(allocate(&lift(ops)).is_none());
    }
}
