//! The hot-code scheduler (paper §2: "builds a data-dependency graph
//! ... the scheduler reorders the instructions in the hot block. ILs
//! are ordered and bundled according to architectural and
//! microarchitectural limitations"), plus the post-scheduling register
//! allocator for the renaming pool.
//!
//! Commit-point discipline (§4): faulty micro-ops and branches act as
//! barriers for architectural-state writes — state defined before a
//! barrier stays before it, state defined after stays after — so the
//! recovery maps stay valid under arbitrary reordering of the pure
//! computation in between.

use super::trace::HotIl;
use crate::state;
use ipf::inst::{Op, Reg, Unit};
use ipf::regs::{Fr, Gr, Pr, P0};
use std::collections::HashMap;

fn reg_slot(r: Reg) -> (u8, u16) {
    match r {
        Reg::G(g) => (0, g.0),
        Reg::F(f) => (1, f.0),
        Reg::P(p) => (2, p.0),
        Reg::B(b) => (3, b.0 as u16),
    }
}

fn is_arch_state_def(r: Reg) -> bool {
    match r {
        Reg::G(g) => !g.is_virtual() && g.0 != 0,
        Reg::F(f) => !f.is_virtual() && f.0 > 1,
        Reg::P(p) => !p.is_virtual() && p.0 != 0,
        Reg::B(_) => true,
    }
}

fn latency(op: &Op) -> u32 {
    match op {
        Op::Ld { .. } => 2,
        Op::Ldf { .. } => 6,
        Op::Setf { .. } | Op::Getf { .. } => 5,
        Op::Fma { .. }
        | Op::Fms { .. }
        | Op::Fnma { .. }
        | Op::Fmin { .. }
        | Op::Fmax { .. }
        | Op::FcvtFx { .. }
        | Op::FcvtXf { .. }
        | Op::FmergeS { .. }
        | Op::FmergeNs { .. }
        | Op::Frcpa { .. }
        | Op::Frsqrta { .. }
        | Op::Fsqrt { .. }
        | Op::FnormS { .. }
        | Op::Fpma { .. }
        | Op::Fpms { .. }
        | Op::Fpmin { .. }
        | Op::Fpmax { .. }
        | Op::Fpdiv { .. }
        | Op::Xma { .. } => 4,
        _ => 1,
    }
}

/// Computes a schedule: a permutation of IL indices respecting
/// dependences, with priorities by critical-path height.
pub(super) fn schedule(ils: &[HotIl]) -> Vec<usize> {
    let insts: Vec<ipf::Inst> = ils.iter().map(|il| il.inst).collect();
    build_order(&insts, &is_arch_state_def)
}

/// The dependence-graph construction and list scheduling shared by the
/// virtual-IL frontend ([`schedule`]) and the allocated-IR backend
/// ([`schedule_allocated`]). `is_state` classifies which register defs
/// the commit-barrier discipline pins: before allocation every
/// non-virtual register is architectural state, afterwards the renaming
/// pools are physical but still exempt.
fn build_order(insts: &[ipf::Inst], is_state: &dyn Fn(Reg) -> bool) -> Vec<usize> {
    let n = insts.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut npreds: Vec<u32> = vec![0; n];
    let edge = |from: usize, to: usize, succs: &mut Vec<Vec<usize>>, npreds: &mut Vec<u32>| {
        if from != to && !succs[from].contains(&to) {
            succs[from].push(to);
            npreds[to] += 1;
        }
    };

    let mut last_def: HashMap<(u8, u16), usize> = HashMap::new();
    let mut uses_since_def: HashMap<(u8, u16), Vec<usize>> = HashMap::new();
    let mut last_store: Option<usize> = None;
    let mut loads_since_store: Vec<usize> = Vec::new();
    let mut last_barrier: Option<usize> = None;
    let mut state_writes_since: Vec<usize> = Vec::new();

    for (i, inst) in insts.iter().enumerate() {
        let op = &inst.op;
        // Register dependences (including the qualifying predicate).
        let mut reads: Vec<Reg> = op.uses();
        if inst.qp != P0 {
            reads.push(Reg::P(inst.qp));
        }
        for r in &reads {
            let k = reg_slot(*r);
            if let Some(&d) = last_def.get(&k) {
                edge(d, i, &mut succs, &mut npreds);
            }
            uses_since_def.entry(k).or_default().push(i);
        }
        // Predicated ops merge into their destination: treat their defs
        // as read-modify-write so the prior value orders first.
        if inst.qp != P0 {
            for r in op.defs() {
                let k = reg_slot(r);
                if let Some(&d) = last_def.get(&k) {
                    edge(d, i, &mut succs, &mut npreds);
                }
            }
        }
        for r in op.defs() {
            let k = reg_slot(r);
            if let Some(&d) = last_def.get(&k) {
                edge(d, i, &mut succs, &mut npreds); // WAW
            }
            if let Some(us) = uses_since_def.get(&k) {
                for &u in us {
                    edge(u, i, &mut succs, &mut npreds); // WAR
                }
            }
            last_def.insert(k, i);
            uses_since_def.insert(k, Vec::new());
        }
        // Memory ordering (no alias analysis: stores are ordered, loads
        // ordered against stores both ways).
        if op.is_mem() {
            if op.is_store() {
                if let Some(s) = last_store {
                    edge(s, i, &mut succs, &mut npreds);
                }
                for &l in &loads_since_store {
                    edge(l, i, &mut succs, &mut npreds);
                }
                loads_since_store.clear();
                last_store = Some(i);
            } else {
                if let Some(s) = last_store {
                    edge(s, i, &mut succs, &mut npreds);
                }
                loads_since_store.push(i);
            }
        }
        // Commit barriers: faulty ops and branches pin architectural
        // state around them.
        let is_barrier = op.can_fault() || op.is_branch();
        if is_barrier {
            for &w in &state_writes_since {
                edge(w, i, &mut succs, &mut npreds);
            }
            if let Some(b) = last_barrier {
                edge(b, i, &mut succs, &mut npreds);
            }
            last_barrier = Some(i);
            state_writes_since.clear();
        }
        let writes_state = op.defs().iter().any(|r| is_state(*r));
        if writes_state {
            if let Some(b) = last_barrier {
                edge(b, i, &mut succs, &mut npreds);
            }
            state_writes_since.push(i);
        }
    }
    // Everything sinks before the final instruction if it is a branch.
    if n > 0 && insts[n - 1].op.is_branch() {
        for i in 0..n - 1 {
            if succs[i].is_empty() {
                edge(i, n - 1, &mut succs, &mut npreds);
            }
        }
    }

    // Heights (critical path weights, paper: "computes weights ... to
    // signify the relative importance of scheduling them early").
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        let lat = latency(&insts[i].op);
        for &s in &succs[i] {
            height[i] = height[i].max(height[s] + lat);
        }
    }

    // Cycle-driven list scheduling with rough port limits.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut cycle_of = vec![0u64; n];
    let mut preds_left = npreds;
    let mut earliest = vec![0u64; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| preds_left[i] == 0).collect();
    let mut cycle: u64 = 0;
    while order.len() < n {
        // Pick ops for this cycle.
        let (mut m, mut iu, mut f, mut b, mut total) = (0u32, 0u32, 0u32, 0u32, 0u32);
        let mut picked_any = false;
        loop {
            // Highest-height eligible op whose earliest cycle has come.
            let mut best: Option<(usize, usize)> = None; // (ready idx, il idx)
            for (ri, &i) in ready.iter().enumerate() {
                if earliest[i] > cycle {
                    continue;
                }
                let unit = insts[i].op.unit();
                let fits = match unit {
                    Unit::M => m < 2,
                    Unit::I => iu < 2,
                    Unit::A => m < 2 || iu < 2,
                    Unit::F => f < 2,
                    Unit::B => b < 3,
                    Unit::L => iu < 2 && total < 5,
                };
                if !fits || total >= 6 {
                    continue;
                }
                // Branches schedule only after all non-branch ready work
                // of this cycle (they end the group).
                if best.is_none() || height[i] > height[best.unwrap().1] {
                    best = Some((ri, i));
                }
            }
            let Some((ri, i)) = best else { break };
            ready.swap_remove(ri);
            order.push(i);
            cycle_of[i] = cycle;
            picked_any = true;
            match insts[i].op.unit() {
                Unit::M => m += 1,
                Unit::I | Unit::L => iu += 1,
                Unit::A => {
                    if m <= iu {
                        m += 1;
                    } else {
                        iu += 1;
                    }
                }
                Unit::F => f += 1,
                Unit::B => b += 1,
            }
            total += 1;
            for &s in &succs[i] {
                preds_left[s] -= 1;
                earliest[s] = earliest[s].max(cycle + 1);
                if preds_left[s] == 0 {
                    ready.push(s);
                }
            }
            // A scheduled branch ends the cycle (taken branches skip the
            // rest of the group).
            if insts[i].op.is_branch() {
                break;
            }
        }
        let _ = picked_any;
        cycle += 1;
    }

    // Within each cycle, branches must come last; the order vector is
    // built per cycle so this already holds except when a branch was
    // picked mid-cycle — we ended the cycle there, so it holds.
    order
}

/// Allocates virtual registers of the scheduled ILs onto the hot pools,
/// returning the final instructions with stop bits at cycle boundaries.
/// Returns `None` when a pool is exhausted (the trace stays cold).
pub(super) fn allocate(ils: &[HotIl], order: &[usize]) -> Option<Vec<(ipf::Inst, bool)>> {
    // Last use position per virtual, in scheduled order.
    let mut last_ref: HashMap<(u8, u16), usize> = HashMap::new();
    for (pos, &i) in order.iter().enumerate() {
        let il = &ils[i];
        let mut note = |r: Reg| {
            let (c, n) = reg_slot(r);
            let virt = match r {
                Reg::G(g) => g.is_virtual(),
                Reg::F(f) => f.is_virtual(),
                Reg::P(p) => p.is_virtual(),
                Reg::B(_) => false,
            };
            if virt {
                last_ref.insert((c, n), pos);
            }
        };
        if il.inst.qp.is_virtual() {
            note(Reg::P(il.inst.qp));
        }
        il.inst.op.visit_regs(&mut |r, _| note(r));
    }

    // Pools: scratch + renaming banks; f63 is reserved for exit blocks.
    // FIFO pools: recently-freed registers are reused last, which
    // avoids false WAW dependences between unrelated computations.
    let mut gr_free: Vec<u16> = (state::GR_SCRATCH..state::GR_POOL + state::NUM_POOL).collect();
    let mut fr_free: Vec<u16> =
        (state::FR_SCRATCH..state::FR_SCRATCH + state::NUM_FR_SCRATCH - 1).collect();
    let mut pr_free: Vec<u16> = (state::PR_POOL..state::PR_POOL + state::NUM_PR_POOL).collect();
    let mut map: HashMap<(u8, u16), u16> = HashMap::new();

    // Recompute cycle boundaries by replaying the schedule function's
    // grouping: a stop is needed between dependent instructions; we put
    // one wherever the scheduler advanced the cycle, which it encoded in
    // the order (we re-derive by checking dependences greedily).
    // Simpler and always-correct: insert a stop when the next
    // instruction reads or writes a register defined since the last
    // stop (same rule as the cold backend).
    let mut out: Vec<(ipf::Inst, bool)> = Vec::with_capacity(order.len());
    let mut group_defs: Vec<(u8, u16)> = Vec::new();
    for (pos, &i) in order.iter().enumerate() {
        let mut inst = ils[i].inst;
        let mut failed = false;
        if inst.qp.is_virtual() {
            let k = (2u8, inst.qp.0);
            let p = match map.get(&k) {
                Some(&p) => p,
                None => {
                    if pr_free.is_empty() {
                        return None;
                    }
                    let p = pr_free.remove(0);
                    map.insert(k, p);
                    p
                }
            };
            inst.qp = Pr(p);
        }
        inst.op.map_regs(&mut |r, _| {
            let (c, n) = reg_slot(r);
            let virt = match r {
                Reg::G(g) => g.is_virtual(),
                Reg::F(f) => f.is_virtual(),
                Reg::P(p) => p.is_virtual(),
                Reg::B(_) => false,
            };
            if !virt {
                return r;
            }
            let k = (c, n);
            let p = match map.get(&k) {
                Some(&p) => p,
                None => {
                    let pool = match c {
                        0 => &mut gr_free,
                        1 => &mut fr_free,
                        _ => &mut pr_free,
                    };
                    if pool.is_empty() {
                        failed = true;
                        0
                    } else {
                        let p = pool.remove(0);
                        map.insert(k, p);
                        p
                    }
                }
            };
            match r {
                Reg::G(_) => Reg::G(Gr(p)),
                Reg::F(_) => Reg::F(Fr(p)),
                Reg::P(_) => Reg::P(Pr(p)),
                Reg::B(b) => Reg::B(b),
            }
        });
        if failed {
            return None;
        }
        // Stop-bit insertion (dependence-driven, on physical numbers).
        let mut conflict = false;
        let mut regs: Vec<(u8, u16)> = Vec::new();
        inst.op.visit_regs(&mut |r, _| regs.push(reg_slot(r)));
        regs.push(reg_slot(Reg::P(inst.qp)));
        for k in &regs {
            if group_defs.contains(k) {
                conflict = true;
            }
        }
        if conflict {
            if let Some(prev) = out.last_mut() {
                prev.1 = true;
            }
            group_defs.clear();
        }
        inst.op.visit_regs(&mut |r, is_def| {
            if is_def {
                group_defs.push(reg_slot(r));
            }
        });
        let is_branch = inst.op.is_branch();
        out.push((inst, false));
        if is_branch {
            out.last_mut().expect("pushed").1 = true;
            group_defs.clear();
        }
        // Release virtuals whose last (scheduled) reference this was.
        let original = &ils[i].inst;
        let mut release = |r: Reg| {
            let (c, n) = reg_slot(r);
            let virt = match r {
                Reg::G(g) => g.is_virtual(),
                Reg::F(f) => f.is_virtual(),
                Reg::P(p) => p.is_virtual(),
                Reg::B(_) => false,
            };
            if virt && last_ref.get(&(c, n)) == Some(&pos) {
                if let Some(p) = map.remove(&(c, n)) {
                    match c {
                        0 => gr_free.push(p),
                        1 => fr_free.push(p),
                        _ => pr_free.push(p),
                    }
                }
            }
        };
        if original.qp.is_virtual() {
            release(Reg::P(original.qp));
        }
        original.op.visit_regs(&mut |r, _| release(r));
    }
    // Terminate the final group.
    if let Some(last) = out.last_mut() {
        last.1 = true;
    }
    Some(out)
}

/// Pre-allocation scheduling for the typed-IR pipeline: the same
/// dependence graph and list scheduling as the template frontend, run
/// over still-virtual code. Reordering happens here, where renaming
/// has not yet introduced false WAR/WAW dependences between unrelated
/// computations that happen to share a pool register — the allocator
/// then assigns registers in this order, and the backend pass below
/// only has spill traffic left to place.
pub(super) fn schedule_ir(insts: &[ipf::Inst]) -> Vec<usize> {
    build_order(insts, &is_arch_state_def)
}

/// Backend pass for the typed-IR pipeline: inserts stop bits over
/// fully allocated IR (physical registers, spill traffic included).
/// The instruction order is kept exactly as the allocator produced it
/// — reordering already happened in [`schedule_ir`], before renaming;
/// re-running list scheduling here would only see the false WAR/WAW
/// dependences that register reuse introduces and could unwind the
/// good schedule.
///
/// Returns `(instruction, stop bit, source IR index)` triples; the
/// source index is `None` for spill traffic.
pub(super) fn schedule_allocated(
    alloc: &[super::regalloc::AllocInst],
) -> Vec<(ipf::Inst, bool, Option<usize>)> {
    let mut out: Vec<(ipf::Inst, bool, Option<usize>)> = Vec::with_capacity(alloc.len());
    let mut group_defs: Vec<(u8, u16)> = Vec::new();
    for (i, a) in alloc.iter().enumerate() {
        let inst = a.inst;
        let mut conflict = false;
        let mut regs: Vec<(u8, u16)> = Vec::new();
        inst.op.visit_regs(&mut |r, _| regs.push(reg_slot(r)));
        regs.push(reg_slot(Reg::P(inst.qp)));
        for k in &regs {
            if group_defs.contains(k) {
                conflict = true;
            }
        }
        if conflict {
            if let Some(prev) = out.last_mut() {
                prev.1 = true;
            }
            group_defs.clear();
        }
        inst.op.visit_regs(&mut |r, is_def| {
            if is_def {
                group_defs.push(reg_slot(r));
            }
        });
        let is_branch = inst.op.is_branch();
        out.push((inst, false, alloc[i].src));
        if is_branch {
            out.last_mut().expect("pushed").1 = true;
            group_defs.clear();
        }
    }
    if let Some(last) = out.last_mut() {
        last.1 = true;
    }
    out
}

/// Statically evaluates a stop-bit-delimited instruction stream under
/// the machine's group-issue model: a group issues when all its read
/// operands are ready (`read_ready_max`), occupies `max` of the unit
/// width caps, and its writes become ready `latency` cycles after
/// issue. Used to compare compiled variants of the same trace — the
/// list scheduler's `earliest` is latency-blind, so two correct
/// schedules of equivalent code can differ in real issue stalls that
/// only this walk (or the machine itself) sees.
pub(super) fn static_cost(code: &[(ipf::Inst, bool, Option<usize>)]) -> u64 {
    // Machine latencies (default timing), including the cases the
    // scheduler's height heuristic rounds down to 1.
    fn lat(op: &Op) -> u32 {
        match op {
            Op::MovToBr { .. } | Op::MovFromBr { .. } | Op::Fcmp { .. } => 2,
            _ => latency(op),
        }
    }
    let mut ready: HashMap<(u8, u16), u64> = HashMap::new();
    let mut next_cycle = 0u64;
    let mut k = 0usize;
    while k < code.len() {
        let mut reads_max = 0u64;
        let (mut m, mut iu, mut f, mut b, mut slots) = (0u32, 0u32, 0u32, 0u32, 0u32);
        let mut writes: Vec<((u8, u16), u32)> = Vec::new();
        loop {
            let (inst, stop, _) = &code[k];
            if inst.qp != P0 {
                if let Some(&t) = ready.get(&reg_slot(Reg::P(inst.qp))) {
                    reads_max = reads_max.max(t);
                }
            }
            inst.op.visit_regs(&mut |r, is_def| {
                let key = reg_slot(r);
                if is_def {
                    writes.push((key, lat(&inst.op)));
                } else if let Some(&t) = ready.get(&key) {
                    reads_max = reads_max.max(t);
                }
            });
            match inst.op.unit() {
                Unit::M => m += 1,
                Unit::I | Unit::L => iu += 1,
                Unit::F => f += 1,
                Unit::B => b += 1,
                Unit::A => {
                    if m <= iu {
                        m += 1;
                    } else {
                        iu += 1;
                    }
                }
            }
            slots += 1;
            k += 1;
            if *stop || k >= code.len() {
                break;
            }
        }
        let issue = next_cycle.max(reads_max);
        let width = [
            m.div_ceil(2),
            iu.div_ceil(2),
            f.div_ceil(2),
            b.div_ceil(3),
            slots.div_ceil(6),
            1,
        ]
        .into_iter()
        .max()
        .unwrap() as u64;
        for (key, l) in writes {
            ready.insert(key, issue + l as u64);
        }
        next_cycle = issue + width;
    }
    next_cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::Sink;
    use ipf::regs::R0;

    fn il(inst: ipf::Inst) -> HotIl {
        HotIl {
            inst,
            ia32_ip: 0,
            rec: None,
        }
    }

    #[test]
    fn schedule_respects_raw() {
        let mut s = Sink::new();
        let v1 = s.vg();
        let g = crate::state::guest_gpr(0);
        let ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 1,
                a: R0,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: g,
                imm: 0,
                a: v1,
            })),
        ];
        let order = schedule(&ils);
        let p0 = order.iter().position(|&i| i == 0).unwrap();
        let p1 = order.iter().position(|&i| i == 1).unwrap();
        assert!(p0 < p1);
    }

    #[test]
    fn schedule_interleaves_independent_chains() {
        // Two independent load-use chains should interleave rather than
        // run back-to-back.
        let mut s = Sink::new();
        let (a1, a2) = (s.vg(), s.vg());
        let (v1, v2) = (s.vg(), s.vg());
        let (g0, g1) = (crate::state::guest_gpr(0), crate::state::guest_gpr(1));
        let ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: a1,
                imm: 16,
                a: g0,
            })),
            il(ipf::Inst::new(Op::Ld {
                sz: 4,
                d: v1,
                addr: a1,
                spec: false,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: g0,
                imm: 0,
                a: v1,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: a2,
                imm: 32,
                a: g1,
            })),
            il(ipf::Inst::new(Op::Ld {
                sz: 4,
                d: v2,
                addr: a2,
                spec: false,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: g1,
                imm: 0,
                a: v2,
            })),
        ];
        let order = schedule(&ils);
        // The second chain's address computation should be scheduled
        // before the first chain's final use (cycle overlap).
        let pos_a2 = order.iter().position(|&i| i == 3).unwrap();
        let pos_use1 = order.iter().position(|&i| i == 2).unwrap();
        assert!(
            pos_a2 < pos_use1,
            "independent work hoisted into the stall: {order:?}"
        );
    }

    #[test]
    fn stores_stay_ordered() {
        let mut s = Sink::new();
        let _ = s.vg();
        let g = crate::state::guest_gpr(0);
        let h = crate::state::guest_gpr(1);
        let ils = vec![
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: g,
                val: h,
            })),
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: h,
                val: g,
            })),
        ];
        let order = schedule(&ils);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn state_write_pinned_after_faulty_op() {
        // A guest-register write that follows a store (program order)
        // must not be scheduled before it (commit-point rule).
        let mut s = Sink::new();
        let _ = s.vg();
        let g = crate::state::guest_gpr(0);
        let h = crate::state::guest_gpr(1);
        let ils = vec![
            il(ipf::Inst::new(Op::St {
                sz: 4,
                addr: g,
                val: h,
            })),
            il(ipf::Inst::new(Op::AddImm { d: g, imm: 1, a: g })),
        ];
        let order = schedule(&ils);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn allocate_maps_virtuals_and_emits_stops() {
        let mut s = Sink::new();
        let v1 = s.vg();
        let g = crate::state::guest_gpr(0);
        let ils = vec![
            il(ipf::Inst::new(Op::AddImm {
                d: v1,
                imm: 1,
                a: R0,
            })),
            il(ipf::Inst::new(Op::AddImm {
                d: g,
                imm: 0,
                a: v1,
            })),
        ];
        let order = schedule(&ils);
        let out = allocate(&ils, &order).unwrap();
        assert_eq!(out.len(), 2);
        // No virtual registers remain.
        for (inst, _) in &out {
            inst.op.visit_regs(&mut |r, _| {
                let virt = match r {
                    Reg::G(g) => g.is_virtual(),
                    Reg::F(f) => f.is_virtual(),
                    Reg::P(p) => p.is_virtual(),
                    Reg::B(_) => false,
                };
                assert!(!virt);
            });
        }
        // Dependent pair carries a stop.
        assert!(out[0].1);
    }
}
