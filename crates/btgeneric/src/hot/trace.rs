//! Hot trace selection and promotion (paper §2: "select a trace of
//! IA-32 basic blocks that compose a hyper block — single entry,
//! multiple exits ... based on the use and edge counter information
//! collected during the cold code run").

use super::commit::{HotData, RecEntry};
use super::ir;
use super::opt;
use super::regalloc;
use super::sched;
use crate::cold::discover::{discover, BlockEnd};
use crate::cold::liveness::{analyze, Liveness};
use crate::engine::Engine;
use crate::layout::{self, region, StubKind};
use crate::state::{GR_PAYLOAD0, GR_PAYLOAD1, GR_XMMFMT};
use crate::templates::{
    self, AccessMode, AlignCache, EmitCtx, FpCtx, IlItem, MisalignPlan, Sink, Term, XmmCtx,
};
use crate::trace::EventData;
use ia32::inst::Inst as I32;
use ipf::inst::{CmpRel, Op, Target};
use std::collections::{HashMap, HashSet};

/// One step of a selected trace.
#[derive(Clone, Debug)]
pub(super) enum Step {
    /// A straight-line instruction.
    Inst {
        /// Instruction address.
        ip: u32,
        /// The instruction.
        inst: I32,
        /// Encoded length.
        len: u8,
        /// Start of the containing basic block (liveness lookup).
        block: u32,
        /// Index within the block (liveness lookup).
        idx: usize,
        /// Executes under the preceding [`Step::Guard`]'s predicate.
        guarded: bool,
    },
    /// An if-converted hammock guard: the following `guarded` steps
    /// execute only when `cond` is false (paper: "Predication can be
    /// used to include both sides of if...then... structures").
    Guard {
        /// Condition under which the hammock body is SKIPPED.
        cond: ia32::Cond,
        /// Address of the Jcc.
        ip: u32,
    },
    /// A devirtualized control-transfer terminator the trace continues
    /// through: a direct `call` (static target), or an indirect
    /// `jmp`/`call`/`ret` whose dominant target the per-site profile
    /// predicts. Indirect forms run under a guard comparing the actual
    /// target against `predicted`, with a side exit to the
    /// inline-cache retrain path on mismatch.
    Terminator {
        /// Instruction address.
        ip: u32,
        /// The terminator instruction.
        inst: I32,
        /// Encoded length.
        len: u8,
        /// Start of the containing basic block (liveness lookup).
        block: u32,
        /// Index within the block (liveness lookup).
        idx: usize,
        /// Predicted continuation EIP (exact for direct calls).
        predicted: u32,
        /// Per-site inline-cache slot to retrain on guard failure
        /// (0 for site-less forms: direct call, `ret`).
        ic_slot: u64,
    },
    /// A non-devirtualizable indirect terminator the trace ends
    /// *through* (typed-IR pipeline only): the terminator's target
    /// computation and stack effects run on the trace, followed by an
    /// inline dispatch. A `ret` (and any plain site) goes straight to
    /// the shared 2-way table probe — return addresses are typically
    /// low-degree, so the probe hits at about half the cost of the
    /// shadow-stack push/pop pairing, and matches what cold demotion
    /// converges to. Non-plain `jmp`/`call` sites keep the inline-cache
    /// probe (plus the shadow push for calls, so a still-cold callee
    /// ret finds its entry). Ending through the terminator keeps
    /// promotion successful at rotating (megamorphic) sites, which
    /// otherwise fail the devirt gate, fail promotion, and churn
    /// through demotion.
    IndirectEnd {
        /// Instruction address.
        ip: u32,
        /// The terminator instruction.
        inst: I32,
        /// Encoded length.
        len: u8,
        /// Start of the containing basic block (liveness lookup).
        block: u32,
        /// Index within the block (liveness lookup).
        idx: usize,
        /// Per-site inline-cache slot (0 for `ret`).
        ic_slot: u64,
        /// Site goes straight to the plain 2-way table probe (demoted,
        /// slot-less, or profile-proven megamorphic `jmp`/`call`).
        plain: bool,
    },
    /// A conditional branch leaving the trace when `cond` holds.
    SideExit {
        /// Condition under which execution leaves the trace.
        cond: ia32::Cond,
        /// Off-trace target.
        target: u32,
        /// Containing block (liveness).
        block: u32,
        /// Index of the Jcc within its block.
        idx: usize,
        /// Address of the Jcc.
        ip: u32,
    },
}

/// A selected trace.
pub(super) struct Trace {
    /// Selected steps.
    pub steps: Vec<Step>,
    /// Where execution continues after the last step.
    pub main_exit: u32,
    /// Cold blocks the trace covers, in order (misalignment data).
    pub blocks: Vec<u32>,
    /// Whether a loop back to the head was unrolled once.
    pub unrolled: bool,
}

/// Instructions we refuse to put on a trace (internal control flow or
/// interpreter bail-outs).
fn trace_hostile(inst: &I32) -> bool {
    matches!(
        inst,
        I32::Movs { .. }
            | I32::Stos { .. }
            | I32::Ud2
            | I32::Hlt
            | I32::Int { .. }
            | I32::Pop {
                dst: ia32::inst::Rm::Mem(_)
            }
    ) || matches!(
        inst,
        I32::MulDiv { size, .. } if *size != ia32::Size::D
    )
}

/// Instructions safe to if-convert: their templates never emit
/// predicated micro-ops of their own, so the guard predicate can be
/// applied wholesale.
fn if_convertible(inst: &I32) -> bool {
    matches!(
        inst,
        I32::Alu { .. }
            | I32::AluRM { .. }
            | I32::Mov { .. }
            | I32::MovLoad { .. }
            | I32::Movzx { .. }
            | I32::Movsx { .. }
            | I32::Lea { .. }
            | I32::IncDec { .. }
            | I32::Not { .. }
            | I32::ImulRm { .. }
            | I32::ImulRmImm { .. }
            | I32::Nop
    )
}

/// Decodes the straight-line hammock between `from` and the join point
/// `join`; `None` unless it is short, simple, and lands exactly on the
/// join.
fn decode_hammock(mem: &ia32::GuestMem, from: u32, join: u32) -> Option<Vec<(u32, I32, u8)>> {
    if join <= from || join - from > 64 {
        return None;
    }
    let mut out = Vec::new();
    let mut ip = from;
    while ip < join {
        let bytes = mem.fetch(ip as u64, 16).ok()?;
        let (inst, len) = ia32::decode::decode(&bytes, ip).ok()?;
        if !if_convertible(&inst) || out.len() >= 4 {
            return None;
        }
        out.push((ip, inst, len as u8));
        ip += len as u32;
    }
    (ip == join).then_some(out)
}

/// Selects a trace starting at `block_id`'s EIP.
pub(super) fn select(engine: &Engine, block_id: u32) -> Option<Trace> {
    let start = engine.block(block_id).eip;
    let budget = engine.cfg.max_trace_insts;
    let mut steps = Vec::new();
    let mut blocks = Vec::new();
    let mut visited = HashSet::new();
    let mut cur = start;
    let mut total = 0usize;
    // Selection-time return-address stack: a direct or devirtualized
    // call pushes its return EIP so a later `ret` on the same trace
    // continues through it exactly (still guarded at run time).
    let mut ret_stack: Vec<u32> = Vec::new();
    let main_exit;
    'outer: loop {
        if visited.contains(&cur) || total >= budget {
            main_exit = cur;
            break;
        }
        // A page the SMC governor has flagged rewrites itself under the
        // trace's feet. Cold blocks there are snapshot-checked on every
        // entry; a hot trace would bake the current bytes in with no
        // staleness check, so end the trace at the page boundary (or
        // select nothing if it starts there).
        if engine.smc_churn_page(cur) {
            main_exit = cur;
            break;
        }
        visited.insert(cur);
        // The block must have run cold (we need its counters).
        let Some(info) = engine.blocks().iter().find(|b| b.eip == cur) else {
            main_exit = cur;
            break;
        };
        let region_g = discover(&engine.mem, cur);
        let Some(blk) = region_g.block_at(cur) else {
            main_exit = cur;
            break;
        };
        blocks.push(info.id);
        let n = blk.insts.len();
        for (i, (ip, inst, len)) in blk.insts.iter().enumerate() {
            if total >= budget || trace_hostile(inst) {
                main_exit = *ip;
                break 'outer;
            }
            let is_term = i == n - 1 && inst.ends_block();
            if is_term {
                match inst {
                    I32::Jmp { target } => {
                        cur = *target;
                        continue 'outer;
                    }
                    I32::Jcc { cond, target } => {
                        let taken = engine.mem.read(info.edge_counters.0, 8).unwrap_or(0);
                        let fall = engine.mem.read(info.edge_counters.1, 8).unwrap_or(0);
                        let next = ip + *len as u32;
                        if taken >= 2 * fall + 8 {
                            steps.push(Step::SideExit {
                                cond: cond.negate(),
                                target: next,
                                block: blk.start,
                                idx: i,
                                ip: *ip,
                            });
                            total += 1;
                            cur = *target;
                            continue 'outer;
                        } else if fall >= 2 * taken + 8 {
                            steps.push(Step::SideExit {
                                cond: *cond,
                                target: *target,
                                block: blk.start,
                                idx: i,
                                ip: *ip,
                            });
                            total += 1;
                            cur = next;
                            continue 'outer;
                        }
                        // No clear winner: try if-conversion of the
                        // forward hammock `jcc skip; <short block>; skip:`
                        // (paper: predication for if...then... shapes).
                        if let Some(hammock) = decode_hammock(&engine.mem, next, *target) {
                            if total + hammock.len() < budget {
                                steps.push(Step::Guard {
                                    cond: *cond,
                                    ip: *ip,
                                });
                                total += 1;
                                for (j, (gip, ginst, glen)) in hammock.iter().enumerate() {
                                    steps.push(Step::Inst {
                                        ip: *gip,
                                        inst: *ginst,
                                        len: *glen,
                                        block: next,
                                        idx: j,
                                        guarded: true,
                                    });
                                    total += 1;
                                }
                                cur = *target;
                                continue 'outer;
                            }
                        }
                        // Not convertible. A trace must not die on its
                        // very first instruction (a block starting at an
                        // indecisive Jcc would stay cold forever), so in
                        // that case follow the busier side regardless.
                        if total == 0 {
                            let (cond_away, on_trace) = if taken >= fall {
                                (cond.negate(), *target)
                            } else {
                                (*cond, next)
                            };
                            let away = if on_trace == *target { next } else { *target };
                            steps.push(Step::SideExit {
                                cond: cond_away,
                                target: away,
                                block: blk.start,
                                idx: i,
                                ip: *ip,
                            });
                            total += 1;
                            cur = on_trace;
                            continue 'outer;
                        }
                        // End the trace at this Jcc.
                        main_exit = *ip;
                        break 'outer;
                    }
                    // Calls/returns/indirects: devirtualize through the
                    // dominant target when the profile trusts it,
                    // otherwise end the trace before the terminator (a
                    // cold block starting there runs it).
                    _ => {
                        if engine.cfg.enable_indirect_accel {
                            let next = ip + *len as u32;
                            let devirt = match inst {
                                // Direct call: static target, no guard.
                                I32::Call { target } => {
                                    ret_stack.push(next);
                                    Some((*target, 0u64))
                                }
                                // Indirect jmp/call: trust the per-site
                                // inline cache once it has proven
                                // monomorphic — the IC must have hit on
                                // a majority of the block's executions,
                                // not just an absolute count (a site
                                // rotating over k targets still hits
                                // 1/k of the time and would eventually
                                // cross any absolute threshold).
                                I32::JmpInd { .. } | I32::CallInd { .. } => {
                                    let slot = info.ic_slot;
                                    let pred = engine
                                        .mem
                                        .read(slot, 8)
                                        .unwrap_or(layout::LOOKUP_EMPTY_KEY);
                                    let hits = engine.mem.read(slot + 16, 8).unwrap_or(0);
                                    let uses = engine.mem.read(info.counter_addr, 8).unwrap_or(0);
                                    if pred != layout::LOOKUP_EMPTY_KEY
                                        && hits >= engine.cfg.devirt_threshold
                                        && crate::engine::site_is_monomorphic(hits, uses)
                                    {
                                        if matches!(inst, I32::CallInd { .. }) {
                                            ret_stack.push(next);
                                        }
                                        Some((pred as u32, slot))
                                    } else {
                                        None
                                    }
                                }
                                // Return: exact prediction from the
                                // selection-time stack, if a matching
                                // call is on this trace.
                                I32::Ret { .. } => ret_stack.pop().map(|r| (r, 0u64)),
                                _ => None,
                            };
                            if let Some((predicted, ic_slot)) = devirt {
                                steps.push(Step::Terminator {
                                    ip: *ip,
                                    inst: *inst,
                                    len: *len,
                                    block: blk.start,
                                    idx: i,
                                    predicted,
                                    ic_slot,
                                });
                                total += 1;
                                cur = predicted;
                                continue 'outer;
                            }
                            // Not devirtualizable (megamorphic site or
                            // unmatched ret): with the typed-IR pipeline
                            // the trace ends *through* the terminator —
                            // its work plus the inline dispatch run hot,
                            // and promotion succeeds instead of churning
                            // through megamorphic demotion.
                            if engine.cfg.enable_hot_ir
                                && matches!(
                                    inst,
                                    I32::JmpInd { .. } | I32::CallInd { .. } | I32::Ret { .. }
                                )
                            {
                                // A jmp/call site with no allocated IC
                                // slot dispatches like a demoted one.
                                // A site the profile already proves
                                // megamorphic gets the same treatment
                                // up front: its inline cache would miss
                                // on (k-1)/k of executions, so the
                                // probe is pure overhead — go straight
                                // to the 2-way table.
                                let is_ret = matches!(inst, I32::Ret { .. });
                                let megamorphic = !is_ret && info.ic_slot != 0 && {
                                    let hits = engine.mem.read(info.ic_slot + 16, 8).unwrap_or(0);
                                    let uses = engine.mem.read(info.counter_addr, 8).unwrap_or(0);
                                    uses >= engine.cfg.megamorphic_demote_uses
                                        && !crate::engine::site_is_monomorphic(hits, uses)
                                };
                                let plain = info.indirect_plain
                                    || megamorphic
                                    || (info.ic_slot == 0 && !is_ret);
                                steps.push(Step::IndirectEnd {
                                    ip: *ip,
                                    inst: *inst,
                                    len: *len,
                                    block: blk.start,
                                    idx: i,
                                    ic_slot: info.ic_slot,
                                    plain,
                                });
                                total += 1;
                                main_exit = *ip;
                                break 'outer;
                            }
                        }
                        main_exit = *ip;
                        break 'outer;
                    }
                }
            }
            steps.push(Step::Inst {
                ip: *ip,
                inst: *inst,
                len: *len,
                block: blk.start,
                idx: i,
                guarded: false,
            });
            total += 1;
        }
        match blk.end {
            BlockEnd::FallThrough => cur = blk.end_ip(),
            _ => {
                main_exit = blk.end_ip();
                break;
            }
        }
    }
    // A trace ending through an indirect terminator pays off even when
    // short (a lone `ret` block promotes to an inline shadow pop);
    // anything else needs at least two steps to beat cold chaining.
    let ends_indirect = matches!(steps.last(), Some(Step::IndirectEnd { .. }));
    if total < 2 && !ends_indirect {
        if std::env::var_os("EL_DEBUG_HOT").is_some() {
            eprintln!(
                "select {}: too short ({} steps, stopped at {:#x})",
                block_id, total, main_exit
            );
        }
        return None;
    }
    // Loop unrolling (paper: "If a loop is identified, it may be
    // unrolled"). A trace ending in an inline dispatch has no
    // fallthrough to duplicate into.
    let mut unrolled = false;
    if !ends_indirect && main_exit == start && total * 2 <= budget + 4 {
        let copy = steps.clone();
        let bcopy = blocks.clone();
        steps.extend(copy);
        blocks.extend(bcopy);
        unrolled = true;
    }
    Some(Trace {
        steps,
        main_exit,
        blocks,
        unrolled,
    })
}

/// Builds the misalignment plan from the cold blocks' recorded data
/// (stage 3: "the information from cold code is examined for each of
/// the cold blocks that make up the hot block").
fn misalign_overrides(engine: &Engine, trace: &Trace) -> HashMap<u16, AccessMode> {
    let mut overrides = HashMap::new();
    let mut running: u16 = 0;
    for &bid in &trace.blocks {
        let b = engine.block(bid);
        for j in 0..b.accesses {
            let slot = b.misinfo_base + j as u64 * 8;
            let info = engine.mem.read(slot, 8).unwrap_or(0);
            if info & 0x100 != 0 {
                let low = info & 0xFF;
                let gran = if low & 1 != 0 {
                    1
                } else if low & 2 != 0 {
                    2
                } else {
                    4
                };
                overrides.insert(running + j, AccessMode::AvoidKnown { gran });
            }
        }
        running += b.accesses;
    }
    overrides
}

/// A hot IL: an instruction plus provenance for recovery.
#[derive(Clone, Debug)]
pub(super) struct HotIl {
    /// The micro-op (virtual registers allowed).
    pub inst: ipf::Inst,
    /// Originating IA-32 instruction.
    pub ia32_ip: u32,
    /// Recovery index (assigned to faulty micro-ops).
    pub rec: Option<u32>,
}

struct ExitInfo {
    label: u32,
    target: u32,
    perm: [u8; 8],
    xmm_fmt: u8,
}

/// A devirtualization-guard side exit: restores FP/XMM state, bumps the
/// failure counters, and leaves through the `IndirectMiss` stub so the
/// dispatcher retrains the site's inline cache (`GR_PAYLOAD0`/`1` carry
/// the actual target and the site slot).
struct DevirtExit {
    label: u32,
    perm: [u8; 8],
    xmm_fmt: u8,
}

/// Promotes `block_id` into a hot trace; on any limitation the block
/// simply stays cold.
pub fn promote(engine: &mut Engine, block_id: u32) -> bool {
    let Some(trace) = select(engine, block_id) else {
        if std::env::var_os("EL_DEBUG_HOT").is_some() {
            eprintln!("promote {}: selection failed", block_id);
        }
        return false;
    };
    // A ret-terminated trace only earns its translation charge when the
    // dispatcher still routes returns to this block — which is exactly
    // when its cold code keeps running (callers' traces fold
    // predictable rets inline, starving the cold block). Cold code
    // re-fires the Heat stub every `heat_threshold` executions, so
    // defer to the second registration: blocks folded away never
    // re-register and stay cold for free; live return targets come
    // back one threshold window later and promote then.
    if matches!(
        trace.steps.last(),
        Some(Step::IndirectEnd {
            inst: I32::Ret { .. },
            ..
        })
    ) && engine.block(block_id).registrations < 2
    {
        if std::env::var_os("EL_DEBUG_HOT").is_some() {
            eprintln!("promote {block_id}: ret trace deferred to re-registration");
        }
        return false;
    }
    engine.trace_emit(EventData::TraceSelected {
        id: block_id,
        eip: engine.block(block_id).eip,
        steps: trace.steps.len() as u32,
    });
    let built = build_and_install(engine, block_id, &trace).is_some();
    if !built && std::env::var_os("EL_DEBUG_HOT").is_some() {
        eprintln!(
            "promote {}: build failed ({} steps, exit {:#x})",
            block_id,
            trace.steps.len(),
            trace.main_exit
        );
    }
    built
}

#[allow(clippy::too_many_lines)]
fn build_and_install(engine: &mut Engine, block_id: u32, trace: &Trace) -> Option<()> {
    let spec = engine.block(block_id).spec;
    let mut live_cache: HashMap<u32, Liveness> = HashMap::new();

    // FP context: pre-scan the trace for the entry mode.
    let mut entry_mmx = None;
    for s in &trace.steps {
        if let Step::Inst { inst, .. } = s {
            let is_mmx = matches!(
                inst,
                I32::Movd { .. } | I32::Movq { .. } | I32::PAlu { .. } | I32::Emms
            );
            let is_fp = matches!(
                inst,
                I32::Fld { .. }
                    | I32::Fst { .. }
                    | I32::Fild { .. }
                    | I32::Fistp { .. }
                    | I32::Farith { .. }
                    | I32::Fchs
                    | I32::Fabs
                    | I32::Fsqrt
                    | I32::Fxch { .. }
                    | I32::Fld1
                    | I32::Fldz
                    | I32::Fcomi { .. }
            );
            if is_mmx || is_fp {
                entry_mmx.get_or_insert(is_mmx);
            }
        }
    }
    let mut fp = FpCtx::new(spec.tos, true);
    fp.entry_mmx = entry_mmx.unwrap_or(false);
    fp.cur_mmx = fp.entry_mmx;
    let mut xmm = XmmCtx::new(spec.xmm_fmt);
    let mut align = AlignCache::default();
    let plan = MisalignPlan {
        default: AccessMode::Fast,
        overrides: misalign_overrides(engine, trace),
        info_base: engine.block(block_id).misinfo_base,
        block_id,
    };

    // Learned superinstruction table (tiny; cloned out of the cache so
    // the trace build carries no engine borrows).
    let si_table = if engine.cfg.enable_superinst {
        engine.cache.superinst.table.clone()
    } else {
        None
    };
    // Instructions absorbed into a fused template (everything past the
    // idiom head): translated by the head's single template dispatch,
    // so they are excluded from the per-instruction translation charge.
    let mut si_absorbed: u64 = 0;
    let mut body = Sink::new();
    let mut exits: Vec<ExitInfo> = Vec::new();
    let mut devirt_exits: Vec<DevirtExit> = Vec::new();
    let mut perm_by_ip: HashMap<u32, [u8; 8]> = HashMap::new();
    let mut ia32_count = 0u64;

    let mut i = 0usize;
    let mut guard: Option<ipf::regs::Pr> = None;
    let mut ends_indirect = false;
    while i < trace.steps.len() {
        match &trace.steps[i] {
            Step::Guard { cond, ip, .. } => {
                // The guard predicate: the hammock body runs when the
                // branch condition is FALSE.
                body.set_ip(*ip);
                perm_by_ip.insert(*ip, fp.perm);
                let (_, pf) = templates::emit_cond_pred(&mut body, *cond);
                guard = Some(pf);
                ia32_count += 1;
                i += 1;
            }
            Step::Inst {
                ip,
                inst,
                len,
                block,
                idx,
                guarded,
            } => {
                if !*guarded {
                    guard = None;
                }
                perm_by_ip.insert(*ip, fp.perm);
                // Learned superinstruction peephole: match a mined
                // idiom against the contiguous unguarded run ahead of
                // the cursor (side exits appear as their Jcc). CmpJcc
                // is left to the dedicated fusion below.
                if let Some(table) = si_table.as_ref() {
                    engine.stats.superinst_eligible_slots += 1;
                    let mut window: Vec<(u32, I32, u8)> = Vec::new();
                    let mut wmeta: Vec<(u32, usize)> = Vec::new();
                    let mut wexit: Option<(u32, u32)> = None;
                    if !*guarded {
                        // Contiguity in guest memory is required: a
                        // fused idiom restarts from its head IP after
                        // a fault, which re-interprets *sequential*
                        // guest bytes — a trace hop would diverge.
                        let mut expect = *ip;
                        for s in &trace.steps[i..] {
                            if window.len() >= crate::superinst::MAX_CHAIN + 2 {
                                break;
                            }
                            match s {
                                Step::Inst {
                                    ip,
                                    inst,
                                    len,
                                    block,
                                    idx,
                                    guarded: false,
                                } if *ip == expect => {
                                    window.push((*ip, *inst, *len));
                                    wmeta.push((*block, *idx));
                                    expect = ip.wrapping_add(*len as u32);
                                }
                                Step::SideExit {
                                    cond,
                                    target,
                                    block,
                                    idx,
                                    ip,
                                } if *ip == expect => {
                                    // Synthetic Jcc stand-in; the len
                                    // is unused by the fused emitters.
                                    window.push((
                                        *ip,
                                        I32::Jcc {
                                            cond: *cond,
                                            target: *target,
                                        },
                                        2,
                                    ));
                                    wmeta.push((*block, *idx));
                                    wexit = Some((*target, *ip));
                                    break;
                                }
                                _ => break,
                            }
                        }
                    }
                    let matched = if window.len() >= 2 {
                        let mut live_after = |j: usize| {
                            let (b, idx) = wmeta[j];
                            live_cache
                                .entry(b)
                                .or_insert_with(|| analyze(&discover(&engine.mem, b)))
                                .live_after(b, idx)
                        };
                        match crate::superinst::match_at(table, &window, 0, &mut live_after) {
                            Some((kind, n)) if kind != crate::superinst::IdiomKind::CmpJcc => {
                                Some((kind, n, live_after(n - 1)))
                            }
                            _ => None,
                        }
                    } else {
                        None
                    };
                    if let Some((kind, n, live_idiom)) = matched {
                        let last = n - 1;
                        let idiom_end = window[last].0.wrapping_add(window[last].2 as u32);
                        let mut ctx = EmitCtx {
                            ip: *ip,
                            next_ip: idiom_end,
                            live_flags: live_idiom,
                            fp: &mut fp,
                            xmm: &mut xmm,
                            misalign: &plan,
                            align: &mut align,
                        };
                        match crate::superinst::emit_idiom(&mut body, &mut ctx, kind, &window[..n])
                        {
                            crate::superinst::FusedEmit::Plain => {
                                engine.stats.superinst_hits += 1;
                                engine.stats.superinst_fused_slots += n as u64;
                                engine.stats.superinst_eligible_slots += (n - 1) as u64;
                                si_absorbed += (n - 1) as u64;
                                for w in &window[..n] {
                                    perm_by_ip.insert(w.0, fp.perm);
                                }
                                ia32_count += n as u64;
                                i += n;
                                continue;
                            }
                            crate::superinst::FusedEmit::Branch(pt) => {
                                let (target, _jip) =
                                    wexit.expect("branch idioms end at the side exit");
                                let label = body.local_label();
                                body.emit_pred(
                                    pt,
                                    Op::Br {
                                        target: Target::Label(label),
                                    },
                                );
                                exits.push(ExitInfo {
                                    label,
                                    target,
                                    perm: fp.perm,
                                    xmm_fmt: xmm.fmt,
                                });
                                engine.stats.superinst_hits += 1;
                                engine.stats.superinst_fused_slots += n as u64;
                                engine.stats.superinst_eligible_slots += (n - 1) as u64;
                                si_absorbed += (n - 1) as u64;
                                for w in &window[..n] {
                                    perm_by_ip.insert(w.0, fp.perm);
                                }
                                ia32_count += n as u64;
                                i += n;
                                continue;
                            }
                            crate::superinst::FusedEmit::Refused => {}
                        }
                    }
                }
                // Try fusing with a following side exit.
                if let Some(Step::SideExit {
                    cond,
                    target,
                    block: jb,
                    idx: jidx,
                    ip: jip,
                    ..
                }) = trace.steps.get(i + 1)
                {
                    let reads = cond.flags_read();
                    if !*guarded && inst.flags_written() & reads == reads {
                        let live = live_cache
                            .entry(*jb)
                            .or_insert_with(|| analyze(&discover(&engine.mem, *jb)))
                            .live_after(*jb, *jidx);
                        let mut ctx = EmitCtx {
                            ip: *ip,
                            next_ip: ip + *len as u32,
                            live_flags: live,
                            fp: &mut fp,
                            xmm: &mut xmm,
                            misalign: &plan,
                            align: &mut align,
                        };
                        if let Some(pt) =
                            templates::emit_fused_cmp_jcc(&mut body, inst, *cond, &mut ctx)
                        {
                            if si_table
                                .as_ref()
                                .is_some_and(|t| t.active(crate::superinst::IdiomKind::CmpJcc))
                            {
                                engine.stats.superinst_hits += 1;
                                engine.stats.superinst_fused_slots += 2;
                                engine.stats.superinst_eligible_slots += 1;
                            }
                            let label = body.local_label();
                            body.emit_pred(
                                pt,
                                Op::Br {
                                    target: Target::Label(label),
                                },
                            );
                            exits.push(ExitInfo {
                                label,
                                target: *target,
                                perm: fp.perm,
                                xmm_fmt: xmm.fmt,
                            });
                            perm_by_ip.insert(*jip, fp.perm);
                            ia32_count += 2;
                            i += 2;
                            continue;
                        }
                    }
                }
                let live = live_cache
                    .entry(*block)
                    .or_insert_with(|| analyze(&discover(&engine.mem, *block)))
                    .live_after(*block, *idx);
                let mut ctx = EmitCtx {
                    ip: *ip,
                    next_ip: ip + *len as u32,
                    live_flags: live,
                    fp: &mut fp,
                    xmm: &mut xmm,
                    misalign: &plan,
                    align: &mut align,
                };
                let before = body.items.len();
                match templates::emit(&mut body, inst, &mut ctx) {
                    Ok(None) => {}
                    // Terminators are excluded by selection.
                    Ok(Some(_)) | Err(_) => return None,
                }
                if *guarded {
                    let g = guard?;
                    // Predicate the whole expansion; templates that emit
                    // their own predicates cannot be if-converted.
                    for item in &mut body.items[before..] {
                        if let IlItem::Inst(e) = item {
                            if e.inst.qp != ipf::regs::P0 {
                                return None;
                            }
                            e.inst.qp = g;
                        }
                    }
                }
                ia32_count += 1;
                i += 1;
            }
            Step::Terminator {
                ip,
                inst,
                len,
                block,
                idx,
                predicted,
                ic_slot,
            } => {
                guard = None;
                perm_by_ip.insert(*ip, fp.perm);
                let live = live_cache
                    .entry(*block)
                    .or_insert_with(|| analyze(&discover(&engine.mem, *block)))
                    .live_after(*block, *idx);
                let mut ctx = EmitCtx {
                    ip: *ip,
                    next_ip: ip + *len as u32,
                    live_flags: live,
                    fp: &mut fp,
                    xmm: &mut xmm,
                    misalign: &plan,
                    align: &mut align,
                };
                match templates::emit(&mut body, inst, &mut ctx) {
                    // Direct call: the template already pushed the
                    // return address; the trace just falls through into
                    // the (static) target.
                    Ok(Some(Term::Call { .. })) => {}
                    // Indirect: guard the computed target against the
                    // prediction; on mismatch, hand the actual target
                    // and the site slot to the retrain exit.
                    Ok(Some(Term::Indirect { eip, .. })) => {
                        let c = body.vg();
                        body.mov_imm(c, *predicted as u64);
                        let pm = body.vp();
                        let pk = body.vp();
                        body.emit(Op::Cmp {
                            rel: CmpRel::Ne,
                            pt: pm,
                            pf: pk,
                            a: eip,
                            b: c,
                        });
                        body.emit_pred(
                            pm,
                            Op::AddImm {
                                d: GR_PAYLOAD0,
                                imm: 0,
                                a: eip,
                            },
                        );
                        body.emit_pred(
                            pm,
                            Op::Movl {
                                d: GR_PAYLOAD1,
                                imm: *ic_slot,
                            },
                        );
                        let label = body.local_label();
                        body.emit_pred(
                            pm,
                            Op::Br {
                                target: Target::Label(label),
                            },
                        );
                        devirt_exits.push(DevirtExit {
                            label,
                            perm: fp.perm,
                            xmm_fmt: xmm.fmt,
                        });
                    }
                    _ => return None,
                }
                ia32_count += 1;
                i += 1;
            }
            Step::IndirectEnd {
                ip,
                inst,
                len,
                block,
                idx,
                ic_slot,
                plain,
            } => {
                guard = None;
                perm_by_ip.insert(*ip, fp.perm);
                // The inline dispatch hands control to arbitrary
                // translated entries, so speculative FP/XMM state must
                // sit at its canonical entry configuration. Otherwise
                // end the trace *before* the terminator instead —
                // `trace.main_exit` already points at it, so the normal
                // exit path below recreates the legacy behavior.
                if fp.tos() != fp.entry_tos
                    || fp.perm != [0, 1, 2, 3, 4, 5, 6, 7]
                    || xmm.fmt != xmm.entry_fmt
                    || fp.cur_mmx != fp.entry_mmx
                {
                    break;
                }
                let live = live_cache
                    .entry(*block)
                    .or_insert_with(|| analyze(&discover(&engine.mem, *block)))
                    .live_after(*block, *idx);
                let mut ctx = EmitCtx {
                    ip: *ip,
                    next_ip: ip + *len as u32,
                    live_flags: live,
                    fp: &mut fp,
                    xmm: &mut xmm,
                    misalign: &plan,
                    align: &mut align,
                };
                let Ok(Some(Term::Indirect { eip, kind })) =
                    templates::emit(&mut body, inst, &mut ctx)
                else {
                    return None;
                };
                // The same inline dispatch cold blocks end with: hit
                // paths branch straight to translated entries, the miss
                // path leaves through the IndirectMiss stub with the
                // payload registers loaded.
                body.set_ip(*ip);
                match kind {
                    // Rets (and plain sites) go straight to the 2-way
                    // table: the return-address stream is low-degree in
                    // practice, the probe hits inline, and this is the
                    // state cold demotion converges to anyway — without
                    // a cold block's dispatch and counter overhead.
                    templates::IndKind::Ret => {
                        crate::cold::gen::emit_table_probe2(&mut body, eip, 0);
                    }
                    templates::IndKind::Call { ret } if !*plain => {
                        // The shadow push keeps a still-cold callee
                        // ret's pop from underflowing while it warms.
                        crate::cold::gen::emit_shadow_push(&mut body, ret);
                        crate::cold::gen::emit_ic_probe(&mut body, eip, *ic_slot);
                        crate::cold::gen::emit_table_probe2(&mut body, eip, *ic_slot);
                    }
                    templates::IndKind::Jump if !*plain => {
                        crate::cold::gen::emit_ic_probe(&mut body, eip, *ic_slot);
                        crate::cold::gen::emit_table_probe2(&mut body, eip, *ic_slot);
                    }
                    templates::IndKind::Call { ret } => {
                        // Even a plain (megamorphic) call site keeps
                        // seeding the shadow stack: its callees' rets
                        // may still be cold and popping, and chronic
                        // underflow would demote them for no reason.
                        crate::cold::gen::emit_shadow_push(&mut body, ret);
                        crate::cold::gen::emit_table_probe2(&mut body, eip, 0);
                    }
                    templates::IndKind::Jump => {
                        crate::cold::gen::emit_table_probe2(&mut body, eip, 0);
                    }
                }
                ends_indirect = true;
                ia32_count += 1;
                i += 1;
            }
            Step::SideExit {
                cond, target, ip, ..
            } => {
                guard = None;
                // Unfused side exit: read the materialized flags.
                body.set_ip(*ip);
                perm_by_ip.insert(*ip, fp.perm);
                let (pt, _) = templates::emit_cond_pred(&mut body, *cond);
                let label = body.local_label();
                body.emit_pred(
                    pt,
                    Op::Br {
                        target: Target::Label(label),
                    },
                );
                exits.push(ExitInfo {
                    label,
                    target: *target,
                    perm: fp.perm,
                    xmm_fmt: xmm.fmt,
                });
                ia32_count += 1;
                i += 1;
            }
        }
    }

    // A truncated trace that emitted nothing (a lone indirect terminator
    // whose FP gate failed) would install an empty self-loop.
    if ia32_count == 0 {
        return None;
    }

    // Collect ILs (validation + fault-stub state injection, shared with
    // the IR path).
    let exit_label_ids: HashSet<u32> = exits
        .iter()
        .map(|e| e.label)
        .chain(devirt_exits.iter().map(|e| e.label))
        .collect();
    let ils = ir::collect(&body, &exit_label_ids)?;

    // Compile. The typed-IR pipeline (propagation, EFLAGS elimination,
    // per-op liveness, constraint-driven allocation with spilling,
    // backend scheduling) falls back to the template pipeline within
    // the same promotion when a constraint cannot be satisfied; with
    // `enable_hot_ir` off only the template pipeline runs.
    let mut used_ir = false;
    let (compiled, recovery) = if engine.cfg.enable_hot_ir {
        match compile_ir(&ils, &perm_by_ip, si_table.is_some()) {
            Some(r) => {
                used_ir = true;
                r
            }
            None => compile_template(ils, &perm_by_ip)?,
        }
    } else {
        compile_template(ils, &perm_by_ip)?
    };

    // Head: speculation checks.
    let mut head = Sink::new();
    templates::emit_spec_checks(&mut head, &fp, &xmm, block_id);
    let mut cb = ipf::asm::CodeBuilder::new();
    crate::cold::lower::lower(&head, &mut cb).ok()?;
    let head_len = cb.len();

    // Body. A trace that loops back to its own head with unchanged FP
    // speculation state branches straight to the body (no exit block,
    // no re-check) — the common tight-loop case.
    let self_eip = engine.block(block_id).eip;
    let body_start = cb.label();
    cb.bind(body_start);
    let direct_loop = !ends_indirect
        && trace.main_exit == self_eip
        && fp.tos() == fp.entry_tos
        && fp.perm == [0, 1, 2, 3, 4, 5, 6, 7]
        && xmm.fmt == xmm.entry_fmt;
    let exit_labels: HashMap<u32, ipf::asm::Label> = exits
        .iter()
        .map(|e| e.label)
        .chain(devirt_exits.iter().map(|e| e.label))
        .map(|l| (l, cb.label()))
        .collect();
    for (inst, stop, _) in &compiled {
        let mut inst = *inst;
        if let Some(Target::Label(l)) = inst.op.target() {
            inst.op.set_target(Target::Label(exit_labels[&l].0));
        }
        cb.push_inst(inst);
        if *stop {
            cb.stop();
        }
    }

    // Exits. Side exits bump the (otherwise retired) taken-edge slot so
    // the premature-exit rate of traces is measurable (paper: ~6%).
    let exit_counter = engine.block(block_id).edge_counters.0;
    if ends_indirect {
        // The body already ends in the inline dispatch: hit paths
        // branch straight to translated entries, the miss path left
        // through the IndirectMiss stub. No fallthrough exit exists.
    } else if direct_loop {
        cb.push(Op::Br {
            target: Target::Label(body_start.0),
        });
        cb.stop();
    } else {
        emit_exit(
            engine,
            &mut cb,
            None,
            trace.main_exit,
            fp.perm,
            xmm.fmt,
            spec.xmm_fmt,
        );
    }
    for e in &exits {
        cb.bind(exit_labels[&e.label]);
        emit_exit_counter(&mut cb, exit_counter);
        emit_exit(
            engine,
            &mut cb,
            None,
            e.target,
            e.perm,
            e.xmm_fmt,
            spec.xmm_fmt,
        );
    }
    // Devirtualization-guard failures: count them (as premature exits
    // and as guard fails), restore FP/XMM state, then leave through the
    // IndirectMiss stub — GR_PAYLOAD0/1 were loaded on the guarded
    // path, so the dispatcher retrains the site's inline cache.
    for e in &devirt_exits {
        cb.bind(exit_labels[&e.label]);
        emit_exit_counter(&mut cb, exit_counter);
        emit_exit_counter(&mut cb, layout::CELL_DEVIRT_FAILS);
        emit_exit_prologue(&mut cb, e.perm, e.xmm_fmt, spec.xmm_fmt);
        cb.push(Op::Br {
            target: Target::Abs(StubKind::IndirectMiss.addr()),
        });
        cb.stop();
    }

    let (bundles, _labels, placements) = cb.assemble_with_placements(engine.machine.arena.end());
    let n_bundles = bundles.len() as u64;
    // Prefer filling an eviction hole over growing the arena. Hot code
    // is position-dependent (labels resolve to absolute bundle
    // addresses), so re-assemble at the hole's base; the recovery map
    // below is keyed on the final placement.
    let (base, bundles, placements) = match engine.machine.arena.alloc(bundles.len()) {
        Some(hole) => {
            let (b, _l, p) = cb.assemble_with_placements(hole);
            debug_assert_eq!(b.len() as u64, n_bundles);
            (hole, b, p)
        }
        None => (engine.machine.arena.end(), bundles, placements),
    };

    // Recovery map: compiled instruction k was pushed at head_len + k.
    let mut hot = HotData {
        recovery,
        by_slot: HashMap::new(),
    };
    for (k, (_, _, rec)) in compiled.iter().enumerate() {
        if let Some(rec) = *rec {
            let (bidx, slot) = placements[head_len + k];
            if bidx != usize::MAX {
                hot.by_slot
                    .insert((base + bidx as u64 * ipf::Bundle::SIZE, slot), rec);
            }
        }
    }

    // Install.
    let entry = if base == engine.machine.arena.end() {
        engine.machine.arena.append(bundles, region::HOT)
    } else {
        engine.machine.arena.place(base, bundles, region::HOT)
    };
    engine.register_inbound_links(entry, entry + n_bundles * ipf::Bundle::SIZE, block_id);
    // Slots absorbed into a fused template skip the per-instruction
    // trace walk (template selection, liveness and permission lookups,
    // guard bookkeeping) but still ride the optimizer with the rest of
    // the trace, so they pay half the per-instruction hot charge.
    let full = engine.cfg.cold_xlate_cycles * engine.cfg.hot_xlate_factor;
    engine.machine.charge(
        region::OVERHEAD,
        (ia32_count.max(1) * full).saturating_sub(si_absorbed * full / 2),
    );
    engine.stats.hot_traces += 1;
    if used_ir {
        engine.stats.hot_ir_traces += 1;
    }
    engine.stats.hot_ia32_insts += ia32_count;
    engine.stats.hot_native_insts += compiled.len() as u64;
    engine.stats.hot_commit_points += hot.recovery.len() as u64;
    if std::env::var_os("EL_DEBUG_HOT").is_some() {
        let shape: Vec<String> = trace
            .steps
            .iter()
            .map(|s| match s {
                Step::Inst { ip, .. } => format!("i{ip:#x}"),
                Step::Guard { ip, .. } => format!("g{ip:#x}"),
                Step::SideExit { ip, .. } => format!("x{ip:#x}"),
                Step::Terminator { ip, predicted, .. } => format!("T{ip:#x}->{predicted:#x}"),
                Step::IndirectEnd {
                    ip, inst, plain, ..
                } => {
                    format!("E{ip:#x}:{inst:?}(plain={plain})")
                }
            })
            .collect();
        eprintln!(
            "install blk{} eip={:#x} exit={:#x} native={} groups={} bundles={} [{}]",
            block_id,
            engine.block(block_id).eip,
            trace.main_exit,
            compiled.len(),
            compiled.iter().filter(|(_, s, _)| *s).count(),
            n_bundles,
            shape.join(" ")
        );
    }
    engine.install_hot(
        block_id,
        entry,
        (entry, entry + n_bundles * ipf::Bundle::SIZE),
        hot,
        ia32_count as usize,
    );
    let _ = trace.unrolled;
    Some(())
}

/// Assigns recovery indices (commit points) to faulty ops: one
/// [`RecEntry`] per faulting IA-32 instruction, carrying the FP
/// rotation captured at emission time.
fn assign_recovery<T>(
    items: &mut [T],
    get: impl Fn(&T) -> (bool, u32),
    set: impl Fn(&mut T, u32),
    perm_by_ip: &HashMap<u32, [u8; 8]>,
) -> Vec<RecEntry> {
    let mut recovery: Vec<RecEntry> = Vec::new();
    let mut rec_index: HashMap<u32, u32> = HashMap::new();
    for it in items.iter_mut() {
        let (faulty, ip) = get(it);
        if faulty {
            let idx = *rec_index.entry(ip).or_insert_with(|| {
                let idx = recovery.len() as u32;
                recovery.push(RecEntry {
                    ia32_ip: ip,
                    perm: perm_by_ip
                        .get(&ip)
                        .copied()
                        .unwrap_or([0, 1, 2, 3, 4, 5, 6, 7]),
                });
                idx
            });
            set(it, idx);
        }
    }
    recovery
}

/// Fully lowered trace code: one `(instruction, stop bit, recovery
/// index)` triple per emitted slot.
type CompiledCode = Vec<(ipf::Inst, bool, Option<u32>)>;

/// The original template-stitching pipeline: shared LVN/DCE, recovery
/// assignment, dependency scheduling over virtual ILs, then FIFO pool
/// allocation with stop bits. Kept bit-for-bit as the `enable_hot_ir`
/// off-state (the degradation ladder's known-good rung) and as the
/// in-promotion fallback when the IR pipeline's constraints fail.
fn compile_template(
    mut ils: Vec<HotIl>,
    perm_by_ip: &HashMap<u32, [u8; 8]>,
) -> Option<(CompiledCode, Vec<RecEntry>)> {
    // Optimization passes (paper: value tracking, address CSE,
    // dead-code elimination).
    opt::lvn(&mut ils);
    opt::dce(&mut ils);
    let recovery = assign_recovery(
        &mut ils,
        |il| (il.inst.op.can_fault(), il.ia32_ip),
        |il, idx| il.rec = Some(idx),
        perm_by_ip,
    );
    let order = sched::schedule(&ils);
    let scheduled = sched::allocate(&ils, &order)?;
    Some((
        scheduled
            .iter()
            .enumerate()
            .map(|(k, &(inst, stop))| (inst, stop, ils[order[k]].rec))
            .collect(),
        recovery,
    ))
}

/// The typed-IR pipeline: constant/copy propagation, shared LVN,
/// cross-block EFLAGS elimination, shared DCE, recovery assignment,
/// per-op liveness with constraint-driven allocation (spilling under
/// general-register pressure), and the backend scheduler over the
/// allocated code. `None` when a constraint cannot be satisfied.
fn compile_ir(
    ils: &[HotIl],
    perm_by_ip: &HashMap<u32, [u8; 8]>,
    superinst: bool,
) -> Option<(CompiledCode, Vec<RecEntry>)> {
    let base = ir::annotate(ils);
    // Const/copy propagation rewrites the value graph, which reshapes
    // the dependence heights the list scheduler packs by — sometimes
    // into groups that stall longer at issue than the unpropagated
    // code's. Compile both variants and keep the one the machine's
    // issue model prices cheaper; ties go to the unpropagated schedule
    // (bit-identical to what the template pipeline would pick).
    let propagated = {
        let mut irs = base.clone();
        opt::propagate(&mut irs);
        compile_ir_variant(irs, perm_by_ip, superinst)
    };
    let plain = compile_ir_variant(base, perm_by_ip, superinst);
    match (propagated, plain) {
        (Some(a), Some(b)) => Some(if a.0 < b.0 { (a.1, a.2) } else { (b.1, b.2) }),
        (Some(a), None) => Some((a.1, a.2)),
        (None, Some(b)) => Some((b.1, b.2)),
        (None, None) => None,
    }
}

/// Runs the shared tail of the IR pipeline (LVN, EFlags elimination,
/// DCE, pre-allocation scheduling, register allocation, backend stop
/// insertion) and returns the statically priced result.
fn compile_ir_variant(
    mut irs: Vec<ir::IrInst>,
    perm_by_ip: &HashMap<u32, [u8; 8]>,
    superinst: bool,
) -> Option<(u64, CompiledCode, Vec<RecEntry>)> {
    opt::lvn_ir(&mut irs);
    opt::eflags_elim(&mut irs);
    if superinst {
        opt::elide_dead_guest_writes(&mut irs);
    }
    opt::dce_ir(&mut irs);
    let recovery = assign_recovery(
        &mut irs,
        |x| (x.fx.can_fault, x.ia32_ip),
        |x, idx| x.rec = Some(idx),
        perm_by_ip,
    );
    // Reorder while still virtual (no false dependences), then allocate
    // in the scheduled order — the new program order for liveness and
    // every later pass.
    let insts: Vec<ipf::Inst> = irs.iter().map(|x| x.inst).collect();
    let order = sched::schedule_ir(&insts);
    let irs: Vec<ir::IrInst> = order.iter().map(|&k| irs[k].clone()).collect();
    let alloc = regalloc::allocate(&irs)?;
    let scheduled = sched::schedule_allocated(&alloc);
    let cost = sched::static_cost(&scheduled);
    let out = scheduled
        .into_iter()
        .map(|(inst, stop, src)| (inst, stop, src.and_then(|s| irs[s].rec)))
        .collect();
    Some((cost, out, recovery))
}

/// Emits a side-exit counter increment (uses caller-saved hot scratch).
fn emit_exit_counter(cb: &mut ipf::asm::CodeBuilder, slot: u64) {
    use ipf::regs::Gr;
    let (a, c) = (
        Gr(crate::state::GR_SCRATCH),
        Gr(crate::state::GR_SCRATCH + 1),
    );
    cb.push(Op::Movl { d: a, imm: slot });
    cb.stop();
    cb.push(Op::Ld {
        sz: 8,
        d: c,
        addr: a,
        spec: false,
    });
    cb.stop();
    cb.push(Op::AddImm { d: c, imm: 1, a: c });
    cb.stop();
    cb.push(Op::St {
        sz: 8,
        addr: a,
        val: c,
    });
    cb.stop();
}

/// Emits an exit block: FXCHG-permutation restore, XMM format-status
/// writeback, then a branch to the target (direct when translated).
fn emit_exit(
    engine: &Engine,
    cb: &mut ipf::asm::CodeBuilder,
    label: Option<ipf::asm::Label>,
    target: u32,
    perm: [u8; 8],
    xmm_fmt: u8,
    entry_fmt: u8,
) {
    if let Some(l) = label {
        cb.bind(l);
    }
    emit_exit_prologue(cb, perm, xmm_fmt, entry_fmt);
    match engine.entry_of_existing(target) {
        Some(addr) => {
            // The payload load must survive chaining: if the target
            // block is later evicted, eviction re-points this branch
            // at the `Untranslated` stub, which reads the guest EIP
            // from `GR_PAYLOAD0`.
            cb.push(Op::Movl {
                d: GR_PAYLOAD0,
                imm: target as u64,
            });
            cb.stop();
            cb.push(Op::Br {
                target: Target::Abs(addr),
            });
            cb.stop();
        }
        None => {
            cb.push(Op::Movl {
                d: GR_PAYLOAD0,
                imm: target as u64,
            });
            cb.stop();
            cb.push(Op::Br {
                target: Target::Abs(StubKind::Untranslated.addr()),
            });
            cb.stop();
        }
    }
}

/// The state-restore half of an exit block: FXCHG-permutation restore
/// and XMM format-status writeback (shared by target exits and
/// devirtualization-guard exits).
fn emit_exit_prologue(cb: &mut ipf::asm::CodeBuilder, perm: [u8; 8], xmm_fmt: u8, entry_fmt: u8) {
    // Restore the identity FP mapping (value of physical p lives in
    // FR perm[p]); swap chains via the reserved temp f63.
    if perm != [0, 1, 2, 3, 4, 5, 6, 7] {
        let mut cur = perm;
        let fr = |p: u8| ipf::regs::Fr(crate::state::FR_X87 + p as u16);
        let temp = ipf::regs::Fr(63);
        for start in 0..8u8 {
            while cur[start as usize] != start {
                let from = cur[start as usize];
                cb.push(Op::FmergeS {
                    d: temp,
                    a: fr(start),
                    b: fr(start),
                });
                cb.stop();
                cb.push(Op::FmergeS {
                    d: fr(start),
                    a: fr(from),
                    b: fr(from),
                });
                cb.stop();
                cb.push(Op::FmergeS {
                    d: fr(from),
                    a: temp,
                    b: temp,
                });
                cb.stop();
                cur.swap(start as usize, from as usize);
            }
        }
    }
    if xmm_fmt != entry_fmt {
        cb.push(Op::AddImm {
            d: GR_XMMFMT,
            imm: xmm_fmt as i64,
            a: ipf::regs::R0,
        });
        cb.stop();
    }
}
