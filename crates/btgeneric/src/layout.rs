//! Address-space layout of the translator: translation cache, exit
//! stubs, and the profile-data region.
//!
//! IA-32 EL lives in the translated process's own (64-bit) address
//! space; the IA-32 application owns the low 4 GiB, and everything the
//! translator allocates sits above it.

/// Base of the translation cache (code arena).
pub const TC_BASE: u64 = 0x8000_0000_0000;

/// Base of the exit-stub address range. Branching anywhere in
/// `[STUB_BASE, STUB_BASE + 16*NUM_STUBS)` leaves the arena and returns
/// control to the translator with the stub kind encoded in the address.
pub const STUB_BASE: u64 = 0xE000_0000_0000;

/// Sentinel branch target used by fault injection to model a corrupted
/// cache line: inside neither the arena nor the stub range, so a
/// clobbered bundle that branches here is caught by the engine's
/// degradation ladder instead of silently executing.
pub const CORRUPT_SENTINEL: u64 = 0xDEAD_0000_0000;

/// Base of the translator's profile-data region (counters, lookup
/// table), mapped as ordinary guest memory above 4 GiB.
pub const PROFILE_BASE: u64 = 0x1_0000_0000;

/// Size of the profile-data region.
pub const PROFILE_SIZE: u64 = 0x100_0000;

/// Base of the indirect-branch lookup table (inside the profile region).
pub const LOOKUP_BASE: u64 = PROFILE_BASE;

/// Total lookup-table entries (must be a power of 2).
pub const LOOKUP_ENTRIES: u64 = 4096;

/// Associativity of the lookup table when indirect acceleration is on.
pub const LOOKUP_WAYS: u64 = 2;

/// Number of 2-way sets.
pub const LOOKUP_SETS: u64 = LOOKUP_ENTRIES / LOOKUP_WAYS;

/// Bytes per lookup entry: `(eip: u64, target: u64)`.
pub const LOOKUP_ENTRY_SIZE: u64 = 16;

/// Key value marking a lookup-table entry empty. No guest EIP is
/// `u64::MAX`, so inline lookup code can never match an empty slot.
pub const LOOKUP_EMPTY_KEY: u64 = u64::MAX;

/// Base of the simulated return-address shadow stack (a 64-entry ring
/// of `(ret_eip: u64, target_entry: u64)` pairs), after the table.
pub const SHADOW_BASE: u64 = LOOKUP_BASE + LOOKUP_ENTRIES * LOOKUP_ENTRY_SIZE;

/// Shadow-stack ring depth (power of 2 so the emitted pop can mask).
pub const SHADOW_ENTRIES: u64 = 64;

/// Bytes per shadow entry: `(ret_eip: u64, target_entry: u64)`.
pub const SHADOW_ENTRY_SIZE: u64 = 16;

/// Top-of-stack ring index cell (one u64).
pub const SHADOW_TOS: u64 = SHADOW_BASE + SHADOW_ENTRIES * SHADOW_ENTRY_SIZE;

/// Memory cells bumped by emitted code on indirect events; harvested
/// into `Stats` by `Engine::collect_indirect_stats`. Kept adjacent to
/// `SHADOW_TOS` so the shadow pop sequence reaches them with one add.
pub const CELL_SHADOW_HITS: u64 = SHADOW_TOS + 8;
/// Shadow pops that found an empty (consumed or never-seeded) slot.
pub const CELL_SHADOW_UNDERFLOWS: u64 = SHADOW_TOS + 16;
/// Shadow pops whose recorded return EIP did not match the actual one.
pub const CELL_SHADOW_MISPREDICTS: u64 = SHADOW_TOS + 24;
/// Inline-cache misses (site fell through to the shared table probe).
pub const CELL_IC_MISSES: u64 = SHADOW_TOS + 32;
/// Hot-trace devirtualization guard failures (side exits taken).
pub const CELL_DEVIRT_FAILS: u64 = SHADOW_TOS + 40;

/// Base of the hot-phase register-allocator spill area: a small block
/// of always-mapped u64 slots the constraint-driven allocator spills
/// general registers to under pressure (`hot/regalloc.rs`).
pub const SPILL_BASE: u64 = SHADOW_TOS + 48;

/// Number of spill slots. Traces needing more stay cold.
pub const SPILL_SLOTS: u64 = 16;

/// Start of per-block profile slots (counters), after the lookup table,
/// shadow stack, event cells, and the spill area.
pub const COUNTERS_BASE: u64 = SPILL_BASE + SPILL_SLOTS * 8;

/// Tag bit in the `IndirectMiss` payload1 marking a shadow-stack pop
/// miss: the low 32 bits then carry the *ret block's* id (not an
/// inline-cache slot address), so the dispatcher can count per-block
/// pop misses and demote chronically mispredicting ret blocks back to
/// a plain table probe. Bit 62 cannot collide with a slot address
/// (profile memory sits far below 2^62).
pub const RET_MISS_TAG: u64 = 1 << 62;

/// Why translated code exited to the translator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum StubKind {
    /// Guest executed `HLT` (bare-metal exit).
    Exit = 0,
    /// Guest executed `INT n`; payload0 = vector, state register = next EIP.
    Syscall = 1,
    /// Direct branch to a not-yet-translated EIP; payload0 = target EIP.
    Untranslated = 2,
    /// Indirect branch missed the lookup table; payload0 = target EIP.
    IndirectMiss = 3,
    /// A block's use counter hit the heating threshold; payload0 = block id.
    Heat = 4,
    /// Stage-1 misalignment probe fired; payload0 = block id.
    MisalignRetrain = 5,
    /// Self-modifying-code prologue check failed; payload0 = block id.
    SmcFail = 6,
    /// FP TOS speculation check failed; payload0 = block id.
    TosFix = 7,
    /// FP tag-word speculation check failed; payload0 = block id.
    TagFix = 8,
    /// FP/MMX aliasing-mode check failed; payload0 = block id.
    MmxFix = 9,
    /// XMM format check failed; payload0 = block id.
    XmmFix = 10,
    /// Integer divide by zero detected; state register = faulting EIP.
    DivZero = 11,
    /// x87 stack fault detected; state register = faulting EIP.
    FpStackFault = 12,
    /// Hot-code `chk.s` failed: deoptimize; payload0 = block id,
    /// payload1 = recovery index.
    Deopt = 13,
    /// Rare slow path: single-step this instruction in the reference
    /// interpreter (64/32 divides, pop-to-memory, …); state register
    /// holds the instruction's EIP.
    InterpStep = 14,
    /// `UD2` or an undecodable instruction: raise `#UD`.
    InvalidOp = 15,
    /// An invalidated block's entry was patched to this stub: the engine
    /// re-dispatches by mapping the branching bundle back to its block.
    Reenter = 16,
}

impl StubKind {
    /// All kinds, indexed by discriminant.
    pub const ALL: [StubKind; 17] = [
        StubKind::Exit,
        StubKind::Syscall,
        StubKind::Untranslated,
        StubKind::IndirectMiss,
        StubKind::Heat,
        StubKind::MisalignRetrain,
        StubKind::SmcFail,
        StubKind::TosFix,
        StubKind::TagFix,
        StubKind::MmxFix,
        StubKind::XmmFix,
        StubKind::DivZero,
        StubKind::FpStackFault,
        StubKind::Deopt,
        StubKind::InterpStep,
        StubKind::InvalidOp,
        StubKind::Reenter,
    ];

    /// The stub address for this kind.
    pub fn addr(self) -> u64 {
        STUB_BASE + (self as u64) * 16
    }

    /// Decodes a stub address back to its kind.
    pub fn from_addr(addr: u64) -> Option<StubKind> {
        if !(STUB_BASE..STUB_BASE + Self::ALL.len() as u64 * 16).contains(&addr) {
            return None;
        }
        if !addr.is_multiple_of(16) {
            return None;
        }
        Some(Self::ALL[((addr - STUB_BASE) / 16) as usize])
    }
}

/// Cycle-attribution region ids used for Figures 6/7.
pub mod region {
    /// Dispatch / engine bookkeeping / fix-up time ("other").
    pub const OTHER: u32 = 0;
    /// Cold translated code.
    pub const COLD: u32 = 1;
    /// Hot translated code.
    pub const HOT: u32 = 2;
    /// Translation work itself (charged synthetically; "overhead").
    pub const OVERHEAD: u32 = 3;
    /// Native (untranslated) code: OS kernel / drivers in the Sysmark
    /// model.
    pub const NATIVE: u32 = 4;
    /// Idle time (Sysmark model).
    pub const IDLE: u32 = 5;
}

/// Set index for `eip` in the 2-way table. XOR-folding the high bits
/// in keeps targets 2^14 bytes apart (common for page- or
/// table-aligned function pointers) from aliasing, which the old
/// `eip >> 2` index did.
pub fn lookup_hash(eip: u32) -> u64 {
    let e = eip as u64;
    (e ^ (e >> 12)) & (LOOKUP_SETS - 1)
}

/// The address of way 0 of the lookup set for `eip` (way 1 is at
/// `+LOOKUP_ENTRY_SIZE`).
pub fn lookup_slot(eip: u32) -> u64 {
    LOOKUP_BASE + lookup_hash(eip) * LOOKUP_WAYS * LOOKUP_ENTRY_SIZE
}

/// The pre-acceleration direct-mapped slot for `eip`, still used when
/// `Config::enable_indirect_accel` is off (the before/after baseline).
pub fn lookup_slot_legacy(eip: u32) -> u64 {
    LOOKUP_BASE + ((eip as u64 >> 2) & (LOOKUP_ENTRIES - 1)) * LOOKUP_ENTRY_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_addr_roundtrip() {
        for k in StubKind::ALL {
            assert_eq!(StubKind::from_addr(k.addr()), Some(k));
        }
        assert_eq!(StubKind::from_addr(STUB_BASE - 16), None);
        assert_eq!(StubKind::from_addr(STUB_BASE + 17 * 16), None);
        assert_eq!(StubKind::from_addr(STUB_BASE + 8), None);
    }

    #[test]
    fn lookup_slots_in_region() {
        // Each probe's actual footprint must stay inside the table:
        // `lookup_slot` reads a whole set, the legacy slot is
        // direct-mapped and reads one entry.
        for eip in [0u32, 4, 0x40_0000, 0xFFFF_FFFF] {
            for (s, probe) in [
                (lookup_slot(eip), LOOKUP_WAYS * LOOKUP_ENTRY_SIZE),
                (lookup_slot_legacy(eip), LOOKUP_ENTRY_SIZE),
            ] {
                assert!(s >= LOOKUP_BASE);
                assert!(s + probe <= SHADOW_BASE);
                assert_eq!(s % 16, 0);
            }
        }
    }

    #[test]
    fn lookup_hash_mixes_high_bits() {
        // The legacy `>> 2` index aliases addresses exactly 16 KiB
        // apart; the mixed hash must separate them.
        let (a, b) = (0x40_1000u32, 0x40_1000 + (1 << 14));
        assert_eq!(lookup_slot_legacy(a), lookup_slot_legacy(b));
        assert_ne!(lookup_slot(a), lookup_slot(b));
    }

    #[test]
    fn shadow_region_disjoint_from_table_and_counters() {
        const { assert!(SHADOW_BASE >= LOOKUP_BASE + LOOKUP_SETS * LOOKUP_WAYS * LOOKUP_ENTRY_SIZE) };
        const { assert!(SHADOW_TOS == SHADOW_BASE + SHADOW_ENTRIES * SHADOW_ENTRY_SIZE) };
        const { assert!(COUNTERS_BASE > CELL_DEVIRT_FAILS) };
        const { assert!(COUNTERS_BASE < PROFILE_BASE + PROFILE_SIZE) };
    }

    #[test]
    fn regions_disjoint() {
        const { assert!(TC_BASE > PROFILE_BASE + PROFILE_SIZE) };
        const { assert!(STUB_BASE > TC_BASE) };
    }
}
