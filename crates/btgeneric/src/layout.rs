//! Address-space layout of the translator: translation cache, exit
//! stubs, and the profile-data region.
//!
//! IA-32 EL lives in the translated process's own (64-bit) address
//! space; the IA-32 application owns the low 4 GiB, and everything the
//! translator allocates sits above it.

/// Base of the translation cache (code arena).
pub const TC_BASE: u64 = 0x8000_0000_0000;

/// Base of the exit-stub address range. Branching anywhere in
/// `[STUB_BASE, STUB_BASE + 16*NUM_STUBS)` leaves the arena and returns
/// control to the translator with the stub kind encoded in the address.
pub const STUB_BASE: u64 = 0xE000_0000_0000;

/// Sentinel branch target used by fault injection to model a corrupted
/// cache line: inside neither the arena nor the stub range, so a
/// clobbered bundle that branches here is caught by the engine's
/// degradation ladder instead of silently executing.
pub const CORRUPT_SENTINEL: u64 = 0xDEAD_0000_0000;

/// Base of the translator's profile-data region (counters, lookup
/// table), mapped as ordinary guest memory above 4 GiB.
pub const PROFILE_BASE: u64 = 0x1_0000_0000;

/// Size of the profile-data region.
pub const PROFILE_SIZE: u64 = 0x100_0000;

/// Base of the indirect-branch lookup table (inside the profile region).
pub const LOOKUP_BASE: u64 = PROFILE_BASE;

/// Number of direct-mapped lookup-table entries (must be a power of 2).
pub const LOOKUP_ENTRIES: u64 = 4096;

/// Bytes per lookup entry: `(eip: u64, target: u64)`.
pub const LOOKUP_ENTRY_SIZE: u64 = 16;

/// Key value marking a lookup-table entry empty. No guest EIP is
/// `u64::MAX`, so inline lookup code can never match an empty slot.
pub const LOOKUP_EMPTY_KEY: u64 = u64::MAX;

/// Start of per-block profile slots (counters), after the lookup table.
pub const COUNTERS_BASE: u64 = LOOKUP_BASE + LOOKUP_ENTRIES * LOOKUP_ENTRY_SIZE;

/// Why translated code exited to the translator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum StubKind {
    /// Guest executed `HLT` (bare-metal exit).
    Exit = 0,
    /// Guest executed `INT n`; payload0 = vector, state register = next EIP.
    Syscall = 1,
    /// Direct branch to a not-yet-translated EIP; payload0 = target EIP.
    Untranslated = 2,
    /// Indirect branch missed the lookup table; payload0 = target EIP.
    IndirectMiss = 3,
    /// A block's use counter hit the heating threshold; payload0 = block id.
    Heat = 4,
    /// Stage-1 misalignment probe fired; payload0 = block id.
    MisalignRetrain = 5,
    /// Self-modifying-code prologue check failed; payload0 = block id.
    SmcFail = 6,
    /// FP TOS speculation check failed; payload0 = block id.
    TosFix = 7,
    /// FP tag-word speculation check failed; payload0 = block id.
    TagFix = 8,
    /// FP/MMX aliasing-mode check failed; payload0 = block id.
    MmxFix = 9,
    /// XMM format check failed; payload0 = block id.
    XmmFix = 10,
    /// Integer divide by zero detected; state register = faulting EIP.
    DivZero = 11,
    /// x87 stack fault detected; state register = faulting EIP.
    FpStackFault = 12,
    /// Hot-code `chk.s` failed: deoptimize; payload0 = block id,
    /// payload1 = recovery index.
    Deopt = 13,
    /// Rare slow path: single-step this instruction in the reference
    /// interpreter (64/32 divides, pop-to-memory, …); state register
    /// holds the instruction's EIP.
    InterpStep = 14,
    /// `UD2` or an undecodable instruction: raise `#UD`.
    InvalidOp = 15,
    /// An invalidated block's entry was patched to this stub: the engine
    /// re-dispatches by mapping the branching bundle back to its block.
    Reenter = 16,
}

impl StubKind {
    /// All kinds, indexed by discriminant.
    pub const ALL: [StubKind; 17] = [
        StubKind::Exit,
        StubKind::Syscall,
        StubKind::Untranslated,
        StubKind::IndirectMiss,
        StubKind::Heat,
        StubKind::MisalignRetrain,
        StubKind::SmcFail,
        StubKind::TosFix,
        StubKind::TagFix,
        StubKind::MmxFix,
        StubKind::XmmFix,
        StubKind::DivZero,
        StubKind::FpStackFault,
        StubKind::Deopt,
        StubKind::InterpStep,
        StubKind::InvalidOp,
        StubKind::Reenter,
    ];

    /// The stub address for this kind.
    pub fn addr(self) -> u64 {
        STUB_BASE + (self as u64) * 16
    }

    /// Decodes a stub address back to its kind.
    pub fn from_addr(addr: u64) -> Option<StubKind> {
        if !(STUB_BASE..STUB_BASE + Self::ALL.len() as u64 * 16).contains(&addr) {
            return None;
        }
        if !addr.is_multiple_of(16) {
            return None;
        }
        Some(Self::ALL[((addr - STUB_BASE) / 16) as usize])
    }
}

/// Cycle-attribution region ids used for Figures 6/7.
pub mod region {
    /// Dispatch / engine bookkeeping / fix-up time ("other").
    pub const OTHER: u32 = 0;
    /// Cold translated code.
    pub const COLD: u32 = 1;
    /// Hot translated code.
    pub const HOT: u32 = 2;
    /// Translation work itself (charged synthetically; "overhead").
    pub const OVERHEAD: u32 = 3;
    /// Native (untranslated) code: OS kernel / drivers in the Sysmark
    /// model.
    pub const NATIVE: u32 = 4;
    /// Idle time (Sysmark model).
    pub const IDLE: u32 = 5;
}

/// The address of the direct-mapped lookup-table entry for `eip`.
pub fn lookup_slot(eip: u32) -> u64 {
    // Simple direct-mapped hash on the low bits (entries are 16 bytes).
    LOOKUP_BASE + ((eip as u64 >> 2) & (LOOKUP_ENTRIES - 1)) * LOOKUP_ENTRY_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_addr_roundtrip() {
        for k in StubKind::ALL {
            assert_eq!(StubKind::from_addr(k.addr()), Some(k));
        }
        assert_eq!(StubKind::from_addr(STUB_BASE - 16), None);
        assert_eq!(StubKind::from_addr(STUB_BASE + 17 * 16), None);
        assert_eq!(StubKind::from_addr(STUB_BASE + 8), None);
    }

    #[test]
    fn lookup_slots_in_region() {
        for eip in [0u32, 4, 0x40_0000, 0xFFFF_FFFF] {
            let s = lookup_slot(eip);
            assert!(s >= LOOKUP_BASE);
            assert!(s < COUNTERS_BASE);
            assert_eq!(s % 16, 0);
        }
    }

    #[test]
    fn regions_disjoint() {
        const { assert!(TC_BASE > PROFILE_BASE + PROFILE_SIZE) };
        const { assert!(STUB_BASE > TC_BASE) };
    }
}
