#![deny(missing_docs)]
//! # BTGeneric — the OS-independent core of the IA-32 Execution Layer
//!
//! The paper's primary contribution: a two-phase dynamic binary
//! translator from IA-32 to Itanium. Cold translation works at
//! basic-block granularity from hand-tuned templates with
//! instrumentation in the translated code; hot translation re-derives an
//! IL from the *same* templates, optimizes traces (hyper-blocks), and
//! schedules aggressively while keeping exceptions precise through
//! commit points and recovery maps.

pub mod btos;
pub mod chaos;
pub mod cold;
pub mod engine;
pub mod hot;
pub mod layout;
pub mod persist;
pub mod serving;
pub mod state;
pub mod stats;
pub mod superinst;
pub mod templates;
pub mod trace;
