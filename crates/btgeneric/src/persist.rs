//! Persistent translation cache: warm-start images and static
//! pre-translation.
//!
//! Every run of the engine recomputes the entire cold phase from
//! scratch, even though a fleet executing the *same* guest binary pays
//! the same translation bill over and over. This module amortizes that
//! bill across process lifetimes:
//!
//! * [`snapshot`] / [`encode`] serialize the validated cold-phase
//!   translations into a versioned **warm-start image** — on-demand
//!   from [`Engine::run`] when `Config::save_image` is set.
//! * [`decode`] / [`load`] rebuild the translation cache from an image
//!   before first dispatch (`Config::load_image`).
//! * [`pretranslate`] walks the guest binary's static CFG from the
//!   entry point and translates every reachable block ahead of the
//!   first dispatch (`Config::pretranslate`), merging with whatever the
//!   image already installed.
//!
//! # What is serialized — metadata, not machine code
//!
//! Cold generation is deterministic and position-dependent: the same
//! inputs at the same arena base always produce the same bundles, and
//! `Engine` already re-runs the generator at a new base when filling an
//! eviction hole ("same shape, new addresses"). The image therefore
//! stores only each block's *generation inputs* — guest EIP, stage
//! (V1/V2), FP speculation seed, learned misalignment overrides,
//! indirect-dispatch shape — plus the source span and its FNV-1a
//! checksum. Loading re-runs the generator at the current arena
//! position, which relocates arena offsets for free, re-derives exit
//! trampolines and chain links through the engine's ordinary
//! `pending_exits`/`links_into` patching, and re-inserts lookup-table
//! slots keyed by EIP. What is *charged* differs: an image block costs
//! the flat `Config::image_load_cycles` instead of the per-instruction
//! cold-translation cost — that asymmetry is the warm-start speedup.
//!
//! Hot trace *bodies* are **not** serialized: their recovery maps are
//! deeply position- and profile-dependent. A hot block is saved as its
//! cold **base** block instead (the registry entry still carries the
//! cold generation inputs), so a warm process starts from warm cold
//! code and re-heats through the ordinary profile counters.
//!
//! Since format version 2 the *profile* itself rides along: each record
//! carries the block's heat (use counter), taken/fall-through edge
//! counts, and — when the block's indirect site had proven monomorphic
//! at save time — the inline-cache target hint with its hit count.
//! [`load`] writes the counters back into the freshly allocated profile
//! slots (`Stats::profile_heat_restored`) and, in a second pass once
//! every record has installed, re-trains inline caches whose predicted
//! target is itself a loaded block (`Stats::profile_ic_restored`). A
//! warm boot therefore resumes hot-phase promotion where the saved
//! process left off instead of re-profiling from zero — and a
//! multi-tenant warm boot re-heats every tenant at once. The hints are
//! validated by the same per-record checksums as the generation inputs;
//! a stale record drops its profile along with everything else.
//!
//! # Validation ladder — never die on a stale image
//!
//! Wholesale rejection (`Stats::image_rejects`): bad magic, unknown
//! version, corrupted header checksum, or a config/layout
//! [`fingerprint`] mismatch — an image produced by a different engine
//! version or an incompatible `Config` is discarded entirely.
//!
//! Per-record rejection (`Stats::image_blocks_rejected`): a record
//! whose own FNV trailer does not match (bit rot, truncation) is
//! skipped, and a record whose *source checksum* no longer matches the
//! guest bytes in memory (the binary changed since the image was saved)
//! is skipped — those EIPs simply fall back to ordinary on-demand
//! translation, riding the existing degradation ladder. A damaged image
//! can therefore never produce wrong execution, only a colder start.
//!
//! # Image format (version 3)
//!
//! All integers little-endian. Header, then (when `idiom_count` is
//! nonzero) the superinstruction idiom section, then `block_count`
//! records:
//!
//! ```text
//! header (40 bytes):
//!   0  magic        8B  "IA32EL01"
//!   8  version      4B  = 3
//!   12 block_count  4B
//!   16 fingerprint  8B  config/layout fingerprint (see `fingerprint`)
//!   24 idiom_count  2B  mined superinstruction idioms (v3; 0 = none)
//!   26 reserved     6B  = 0
//!   32 header_fnv   8B  FNV-1a over bytes 0..32
//! idiom section (idiom_count > 0 only):
//!   0  idioms       13B each (see `superinst::IDIOM_WIRE_BYTES`)
//!   .. section_fnv  8B  FNV-1a over the idiom bytes
//! record (48 + 4*n_overrides + 8 bytes):
//!   0  eip          4B
//!   4  src_start    4B  guest source span [start, end)
//!   8  src_end      4B
//!   12 ia32_insts   4B
//!   16 src_fnv      8B  FNV-1a of the source bytes at save time
//!   24 flags        1B  bit0 stage2 (ColdV2), bit1 inline_fp,
//!                       bit2 indirect_plain, bit3 spec.mmx_mode
//!   25 spec_tos     1B
//!   26 spec_xmm     1B
//!   27 n_overrides  1B
//!   28 heat         4B  block use counter (saturated to u32)
//!   32 edge_taken   4B  taken edge counter (saturated)
//!   36 edge_fall    4B  fall-through edge counter (saturated)
//!   40 ic_pred      4B  monomorphic indirect-target hint (0 = none)
//!   44 ic_hits      4B  inline-cache hits backing the hint (saturated)
//!   48 overrides    4B each: idx u16, mode u8, gran u8
//!   .. record_fnv   8B  FNV-1a over this record's preceding bytes
//! ```
//!
//! Older-version images (v1: no profile fields; v2: no idiom section)
//! are rejected wholesale with
//! [`ImageError::BadVersion`]; the fingerprint also covers [`VERSION`],
//! so even a hand-patched version field cannot smuggle one through.

use crate::btos::BtOs;
use crate::cold::discover::discover;
use crate::cold::gen::SpecSeed;
use crate::engine::{src_checksum, BlockKind, Config, Engine};
use crate::layout;
use crate::templates::AccessMode;
use std::collections::HashSet;

/// Image format version written by [`encode`] and required by
/// [`decode`].
pub const VERSION: u32 = 3;

/// Size of the image header in bytes.
pub const HEADER_LEN: usize = 40;

/// Fixed-size prefix of a record, before the overrides array.
const RECORD_FIXED: usize = 48;

const MAGIC: [u8; 8] = *b"IA32EL01";

/// FNV-1a over a byte slice (same construction as the engine's source
/// and arena checksums).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Computes the config/layout fingerprint stored in an image header.
///
/// Covers the format [`VERSION`], the address-space layout constants,
/// and every `Config` knob that changes the *shape* of generated cold
/// code. Two runs whose fingerprints match will regenerate identical
/// blocks from the same record; anything else must reject the image
/// wholesale (loading it could install code generated under different
/// assumptions).
pub fn fingerprint(cfg: &Config) -> u64 {
    let mut bytes = Vec::with_capacity(128);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    for c in [
        layout::TC_BASE,
        layout::STUB_BASE,
        layout::LOOKUP_BASE,
        layout::SHADOW_BASE,
        layout::COUNTERS_BASE,
        layout::PROFILE_BASE,
    ] {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    bytes.extend_from_slice(&cfg.heat_threshold.to_le_bytes());
    for flag in [
        cfg.enable_hot,
        cfg.enable_flag_liveness,
        cfg.enable_fusion,
        cfg.enable_misalign_avoidance,
        cfg.enable_fp_spec,
        cfg.enable_indirect_accel,
        cfg.enable_superinst,
    ] {
        bytes.push(flag as u8);
    }
    fnv64(&bytes)
}

/// One serialized cold block: the generation inputs needed to
/// deterministically rebuild it, plus the source span and checksum that
/// validate it against the guest binary at load time, plus (since
/// format version 2) the hot-phase profile hints that let a warm boot
/// re-heat without re-profiling.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ImageBlock {
    /// Guest entry EIP.
    pub eip: u32,
    /// Stage-2 block (`BlockKind::ColdV2`, misalignment-aware).
    pub stage2: bool,
    /// Inline FP checks variant (post-TagFix).
    pub inline_fp: bool,
    /// Indirect dispatch demoted to the plain probe (megamorphic).
    pub indirect_plain: bool,
    /// FP speculation seed the block was generated under.
    pub spec: SpecSeed,
    /// Learned per-access misalignment modes.
    pub overrides: Vec<(u16, AccessMode)>,
    /// Guest source span `[start, end)`.
    pub src_range: (u32, u32),
    /// FNV-1a of the source bytes at save time.
    pub src_fnv: u64,
    /// IA-32 instructions covered (informational).
    pub ia32_insts: u32,
    /// Block use counter at save time (heat; saturated to `u32` on
    /// the wire).
    pub heat: u64,
    /// Taken / fall-through edge counters at save time (saturated).
    pub edges: (u32, u32),
    /// Monomorphic indirect-target hint: the inline cache's predicted
    /// guest EIP, saved only when the site had proven monomorphic
    /// (`0` = no hint).
    pub ic_pred: u32,
    /// Inline-cache hit count backing `ic_pred` (saturated) — restored
    /// so the hot phase's devirtualization gate sees the earned
    /// confidence, not a cold counter.
    pub ic_hits: u32,
}

/// A decoded (or about-to-be-encoded) warm-start image.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Image {
    /// Config/layout fingerprint the image was produced under.
    pub fingerprint: u64,
    /// Serialized blocks, in save order.
    pub blocks: Vec<ImageBlock>,
    /// Serialized mined superinstruction idiom table
    /// ([`crate::superinst::IdiomTable::serialize`]); empty when the
    /// saving engine had not mined (or had superinstructions off).
    pub idioms: Vec<u8>,
}

/// Why an image was rejected wholesale (see [`decode`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// Shorter than a header, or header fields point past the end.
    Truncated,
    /// Magic mismatch — not a warm-start image.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Header FNV trailer mismatch (corrupted header).
    BadHeaderChecksum,
    /// Image was produced under an incompatible config/layout.
    FingerprintMismatch {
        /// Fingerprint stored in the image.
        image: u64,
        /// Fingerprint of the loading engine's config.
        ours: u64,
    },
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Truncated => write!(f, "image truncated"),
            ImageError::BadMagic => write!(f, "bad image magic"),
            ImageError::BadVersion(v) => write!(f, "unknown image version {v}"),
            ImageError::BadHeaderChecksum => write!(f, "image header checksum mismatch"),
            ImageError::FingerprintMismatch { image, ours } => {
                write!(f, "config fingerprint mismatch ({image:#x} vs {ours:#x})")
            }
        }
    }
}

/// Result of [`load`]: how much of the image actually warmed the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadSummary {
    /// Blocks installed into the translation cache.
    pub loaded: u64,
    /// Records skipped (stale source checksum, corrupt record, no
    /// cache room, or already translated).
    pub rejected: u64,
    /// The image was rejected wholesale (header/fingerprint).
    pub wholesale_reject: bool,
}

fn mode_to_wire(mode: AccessMode) -> (u8, u8) {
    match mode {
        AccessMode::Fast => (0, 0),
        AccessMode::Probe => (1, 0),
        AccessMode::DetectAvoid => (2, 0),
        AccessMode::AvoidKnown { gran } => (3, gran),
    }
}

fn mode_from_wire(code: u8, gran: u8) -> Option<AccessMode> {
    match code {
        0 => Some(AccessMode::Fast),
        1 => Some(AccessMode::Probe),
        2 => Some(AccessMode::DetectAvoid),
        3 => Some(AccessMode::AvoidKnown { gran }),
        _ => None,
    }
}

/// Captures the engine's current translation cache as an [`Image`].
///
/// Only *validated, current* cold blocks are captured: evicted blocks,
/// superseded generations (the registry points elsewhere), hot traces
/// (not serializable — see the module docs), and blocks whose source
/// bytes no longer match their recorded checksum (pending SMC
/// invalidation) are all skipped.
pub fn snapshot(engine: &Engine) -> Image {
    let mut blocks = Vec::new();
    for b in engine.blocks() {
        if b.evicted {
            continue;
        }
        // Skip superseded generations: the registry must map this EIP
        // to this very entry.
        if engine.entry_of_existing(b.eip) != Some(b.entry) {
            continue;
        }
        // Skip blocks already stale against guest memory (a store hit
        // the page and invalidation hasn't caught up) — saving them
        // would just produce load-time rejects.
        if src_checksum(&engine.mem, b.src_range) != b.src_fnv {
            continue;
        }
        blocks.push(record_of(engine, b));
    }
    blocks.sort_unstable_by_key(|b| b.eip);
    let idioms = engine
        .cache
        .superinst
        .table
        .as_ref()
        .map(|t| t.serialize())
        .unwrap_or_default();
    Image {
        fingerprint: fingerprint(&engine.cfg),
        blocks,
        idioms,
    }
}

/// Builds the serialized record for one live block: its cold
/// generation inputs plus the current profile hints read out of the
/// engine's profile slots. Shared between [`snapshot`] and the shared
/// serving cache's publish path (`Engine::shared_publish`) — both emit
/// the exact same metadata, so a record imported from a peer tenant is
/// indistinguishable from one loaded from a warm-start image.
///
/// The caller is responsible for validity checks (not evicted, not
/// superseded, source checksum still current).
pub(crate) fn record_of(engine: &Engine, b: &crate::engine::BlockInfo) -> ImageBlock {
    let mut overrides: Vec<(u16, AccessMode)> =
        b.misalign_overrides.iter().map(|(&i, &m)| (i, m)).collect();
    overrides.sort_unstable_by_key(|&(i, _)| i);
    let heat = engine.mem.read(b.counter_addr, 8).unwrap_or(0);
    let taken = engine.mem.read(b.edge_counters.0, 8).unwrap_or(0);
    let fall = engine.mem.read(b.edge_counters.1, 8).unwrap_or(0);
    // The IC hint is only worth shipping when the site has proven
    // monomorphic — a rotating site's last-seen target would just
    // mistrain every importer.
    let pred = engine
        .mem
        .read(b.ic_slot, 8)
        .unwrap_or(layout::LOOKUP_EMPTY_KEY);
    let hits = engine.mem.read(b.ic_slot + 16, 8).unwrap_or(0);
    let (ic_pred, ic_hits) = if pred != layout::LOOKUP_EMPTY_KEY
        && pred != 0
        && crate::engine::site_is_monomorphic(hits, heat)
    {
        (pred as u32, hits.min(u32::MAX as u64) as u32)
    } else {
        (0, 0)
    };
    // A hot trace is serialized as its cold *base* block: the
    // BlockInfo still carries the cold generation inputs, and the
    // warm process re-heats from the regenerated cold code (hot
    // recovery maps themselves are not serializable — module docs).
    ImageBlock {
        eip: b.eip,
        stage2: b.kind == BlockKind::ColdV2,
        inline_fp: b.inline_fp,
        indirect_plain: b.indirect_plain,
        spec: b.spec,
        overrides,
        src_range: b.src_range,
        src_fnv: b.src_fnv,
        ia32_insts: b.ia32_insts as u32,
        heat,
        edges: (
            taken.min(u32::MAX as u64) as u32,
            fall.min(u32::MAX as u64) as u32,
        ),
        ic_pred,
        ic_hits,
    }
}

/// Serializes an [`Image`] into the version-3 wire format.
pub fn encode(image: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + image.blocks.len() * 64);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(image.blocks.len() as u32).to_le_bytes());
    out.extend_from_slice(&image.fingerprint.to_le_bytes());
    let idiom_count = image.idioms.len() / crate::superinst::IDIOM_WIRE_BYTES;
    out.extend_from_slice(&(idiom_count as u16).to_le_bytes());
    out.extend_from_slice(&[0u8; 6]);
    let h = fnv64(&out[0..32]);
    out.extend_from_slice(&h.to_le_bytes());
    if idiom_count > 0 {
        out.extend_from_slice(&image.idioms);
        let ih = fnv64(&image.idioms);
        out.extend_from_slice(&ih.to_le_bytes());
    }
    for b in &image.blocks {
        let start = out.len();
        out.extend_from_slice(&b.eip.to_le_bytes());
        out.extend_from_slice(&b.src_range.0.to_le_bytes());
        out.extend_from_slice(&b.src_range.1.to_le_bytes());
        out.extend_from_slice(&b.ia32_insts.to_le_bytes());
        out.extend_from_slice(&b.src_fnv.to_le_bytes());
        let flags = (b.stage2 as u8)
            | ((b.inline_fp as u8) << 1)
            | ((b.indirect_plain as u8) << 2)
            | ((b.spec.mmx_mode as u8) << 3);
        out.push(flags);
        out.push(b.spec.tos);
        out.push(b.spec.xmm_fmt);
        out.push(b.overrides.len().min(255) as u8);
        out.extend_from_slice(&(b.heat.min(u32::MAX as u64) as u32).to_le_bytes());
        out.extend_from_slice(&b.edges.0.to_le_bytes());
        out.extend_from_slice(&b.edges.1.to_le_bytes());
        out.extend_from_slice(&b.ic_pred.to_le_bytes());
        out.extend_from_slice(&b.ic_hits.to_le_bytes());
        for &(idx, mode) in b.overrides.iter().take(255) {
            let (code, gran) = mode_to_wire(mode);
            out.extend_from_slice(&idx.to_le_bytes());
            out.push(code);
            out.push(gran);
        }
        let rh = fnv64(&out[start..]);
        out.extend_from_slice(&rh.to_le_bytes());
    }
    out
}

fn rd_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn rd_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Parses and validates an image, returning the decoded [`Image`] and
/// the number of records rejected individually.
///
/// Header damage (magic, version, checksum, truncation below header
/// size) and a fingerprint mismatch against `expected_fingerprint`
/// reject the image wholesale with an [`ImageError`]. Damage *inside*
/// the record stream (truncated body, flipped record bytes) only drops
/// the affected records — parsing stops at the first malformed record
/// and everything already decoded is kept.
pub fn decode(bytes: &[u8], expected_fingerprint: u64) -> Result<(Image, u64), ImageError> {
    if bytes.len() < HEADER_LEN {
        return Err(ImageError::Truncated);
    }
    if bytes[0..8] != MAGIC {
        return Err(ImageError::BadMagic);
    }
    let version = rd_u32(bytes, 8);
    if version != VERSION {
        return Err(ImageError::BadVersion(version));
    }
    if rd_u64(bytes, 32) != fnv64(&bytes[0..32]) {
        return Err(ImageError::BadHeaderChecksum);
    }
    let fp = rd_u64(bytes, 16);
    if fp != expected_fingerprint {
        return Err(ImageError::FingerprintMismatch {
            image: fp,
            ours: expected_fingerprint,
        });
    }
    let block_count = rd_u32(bytes, 12) as u64;
    let mut image = Image {
        fingerprint: fp,
        blocks: Vec::new(),
        idioms: Vec::new(),
    };
    let mut rejected = 0u64;
    let mut at = HEADER_LEN;
    // The idiom section rides between header and records. Its length
    // comes from the FNV-protected header, so the record stream stays
    // parseable even when the section's own checksum fails — in that
    // case the idioms are dropped (the loader re-mines) and the blocks
    // are kept.
    let idiom_count = u16::from_le_bytes(bytes[24..26].try_into().unwrap()) as usize;
    if idiom_count > 0 {
        let ilen = idiom_count * crate::superinst::IDIOM_WIRE_BYTES;
        if at + ilen + 8 > bytes.len() {
            return Err(ImageError::Truncated);
        }
        let section = &bytes[at..at + ilen];
        if rd_u64(bytes, at + ilen) == fnv64(section) {
            image.idioms = section.to_vec();
        }
        at += ilen + 8;
    }
    for i in 0..block_count {
        // A record that doesn't fully fit (truncated body) ends the
        // stream; the remaining declared records are all rejects.
        if at + RECORD_FIXED > bytes.len() {
            rejected += block_count - i;
            break;
        }
        let n_overrides = bytes[at + 27] as usize;
        let len = RECORD_FIXED + n_overrides * 4;
        if at + len + 8 > bytes.len() {
            rejected += block_count - i;
            break;
        }
        if rd_u64(bytes, at + len) != fnv64(&bytes[at..at + len]) {
            // Bit rot inside one record: skip it, keep scanning — the
            // per-record trailer makes record boundaries trustworthy
            // even when contents aren't.
            rejected += 1;
            at += len + 8;
            continue;
        }
        let flags = bytes[at + 24];
        let mut overrides = Vec::with_capacity(n_overrides);
        let mut ok = true;
        for o in 0..n_overrides {
            let ob = at + RECORD_FIXED + o * 4;
            let idx = u16::from_le_bytes(bytes[ob..ob + 2].try_into().unwrap());
            match mode_from_wire(bytes[ob + 2], bytes[ob + 3]) {
                Some(m) => overrides.push((idx, m)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            image.blocks.push(ImageBlock {
                eip: rd_u32(bytes, at),
                stage2: flags & 1 != 0,
                inline_fp: flags & 2 != 0,
                indirect_plain: flags & 4 != 0,
                spec: SpecSeed {
                    tos: bytes[at + 25],
                    mmx_mode: flags & 8 != 0,
                    xmm_fmt: bytes[at + 26],
                },
                overrides,
                src_range: (rd_u32(bytes, at + 4), rd_u32(bytes, at + 8)),
                src_fnv: rd_u64(bytes, at + 16),
                ia32_insts: rd_u32(bytes, at + 12),
                heat: rd_u32(bytes, at + 28) as u64,
                edges: (rd_u32(bytes, at + 32), rd_u32(bytes, at + 36)),
                ic_pred: rd_u32(bytes, at + 40),
                ic_hits: rd_u32(bytes, at + 44),
            });
        } else {
            rejected += 1;
        }
        at += len + 8;
    }
    Ok((image, rejected))
}

/// Loads a warm-start image into the engine (called by [`Engine::run`]
/// during warm boot when `Config::load_image` is set).
///
/// Wholesale rejection bumps `Stats::image_rejects` and leaves the
/// cache untouched. Each surviving record is validated against guest
/// memory — its source span is re-checksummed and compared to the
/// saved FNV — before the block is regenerated at the current arena
/// position; stale or unmaterializable records bump
/// `Stats::image_blocks_rejected` and fall back to on-demand
/// translation when (if) the EIP is actually reached. Loading stops
/// early if the cache capacity bound would be exceeded: a warm start
/// must never trigger the evictor against itself.
pub fn load(engine: &mut Engine, os: &mut dyn BtOs, bytes: &[u8]) -> LoadSummary {
    let fp = fingerprint(&engine.cfg);
    let (image, mut rejected) = match decode(bytes, fp) {
        Ok(r) => r,
        Err(_) => {
            engine.stats.image_rejects += 1;
            return LoadSummary {
                wholesale_reject: true,
                ..LoadSummary::default()
            };
        }
    };
    // Records the decoder already dropped (bit rot, truncation) count
    // as per-record rejects too: each is an extent that will fall back
    // to on-demand translation.
    engine.stats.image_blocks_rejected += rejected;
    // Install the persisted idiom table before regenerating any block:
    // warm-started translations must fuse from the very first one.
    if engine.cfg.enable_superinst
        && engine.cache.superinst.table.is_none()
        && !image.idioms.is_empty()
    {
        if let Some(t) = crate::superinst::IdiomTable::deserialize(&image.idioms) {
            engine.install_idiom_table(t);
        }
    }
    let mut loaded = 0u64;
    let accel = engine.cfg.enable_indirect_accel;
    // IC hints are installed in a second pass once every record has had
    // its chance to install: the predicted target must itself resolve
    // to a translated entry.
    let mut ic_hints: Vec<(u32, u32, u32)> = Vec::new();
    for b in &image.blocks {
        if engine.cfg.max_cache_bundles > 0
            && engine.machine.arena.live_len() >= engine.cfg.max_cache_bundles
        {
            // Image larger than the cache: keep what fits, surface the
            // rest as rejects rather than evicting freshly loaded code.
            rejected += 1;
            continue;
        }
        if engine.entry_of_existing(b.eip).is_some() {
            // Already translated (e.g. duplicate record); not a reject.
            continue;
        }
        if src_checksum(&engine.mem, b.src_range) != b.src_fnv {
            // The guest binary changed under this extent since the
            // image was saved — degrade to retranslating just it.
            engine.stats.image_blocks_rejected += 1;
            rejected += 1;
            continue;
        }
        let kind = if b.stage2 {
            BlockKind::ColdV2
        } else {
            BlockKind::ColdV1
        };
        let overrides = b.overrides.iter().copied().collect();
        match engine.translate_image(
            os,
            b.eip,
            kind,
            b.inline_fp,
            overrides,
            b.spec,
            b.indirect_plain,
        ) {
            Ok(entry) => {
                loaded += 1;
                if accel {
                    // Pre-seed the shared lookup table so indirect
                    // transfers into loaded blocks hit immediately.
                    engine.lookup_insert(b.eip, entry);
                }
                if engine.cfg.restore_profiles {
                    if b.heat != 0 || b.edges != (0, 0) {
                        engine.restore_profile(b.eip, b.heat, b.edges);
                    }
                    if b.ic_pred != 0 {
                        ic_hints.push((b.eip, b.ic_pred, b.ic_hits));
                    }
                }
            }
            Err(_) => {
                engine.stats.image_blocks_rejected += 1;
                rejected += 1;
            }
        }
    }
    for (eip, pred, hits) in ic_hints {
        engine.restore_ic_hint(eip, pred, hits);
    }
    LoadSummary {
        loaded,
        rejected,
        wholesale_reject: false,
    }
}

/// Bound on the static pre-translation walk (entry blocks visited).
const PRETRANSLATE_CAP: usize = 4096;

/// Statically pre-translates the guest CFG reachable from `entry`
/// before first dispatch (called by [`Engine::run`] during warm boot
/// when `Config::pretranslate` is set). Returns the number of blocks
/// translated.
///
/// The walk reuses the cold phase's own discovery
/// ([`crate::cold::discover`]): each discovered region contributes its
/// block starts and static successors (direct jumps, both branch arms,
/// call targets and fall-throughs) to the worklist. Indirect targets
/// are unknown statically and are left to on-demand translation — this
/// is deliberately the paper's two-phase shape with the cold phase
/// front-loaded, not a whole-binary static translator. Blocks already
/// installed (typically by a warm-start image) are skipped, so the two
/// warm-boot sources merge cleanly.
pub fn pretranslate(engine: &mut Engine, os: &mut dyn BtOs, entry: u32) -> u64 {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut work = vec![entry];
    let mut translated = 0u64;
    while let Some(eip) = work.pop() {
        if !seen.insert(eip) || seen.len() > PRETRANSLATE_CAP {
            continue;
        }
        if engine.cfg.max_cache_bundles > 0
            && engine.machine.arena.live_len() >= engine.cfg.max_cache_bundles
        {
            break;
        }
        let region = discover(&engine.mem, eip);
        for blk in &region.blocks {
            if blk.start != eip {
                work.push(blk.start);
            }
            for &s in &blk.succs {
                work.push(s);
            }
        }
        if engine.entry_of_existing(eip).is_none()
            && engine.translate_pre(os, eip, BlockKind::ColdV1).is_ok()
        {
            translated += 1;
            if engine.cfg.enable_indirect_accel {
                if let Some(e) = engine.entry_of_existing(eip) {
                    engine.lookup_insert(eip, e);
                }
            }
        }
    }
    translated
}

/// Flips the stored source checksum of the `nth % count` record in an
/// encoded image, re-sealing the record's own FNV trailer so the record
/// still *parses* but fails source validation at load time (the
/// "stale extent" chaos case — distinguishable from plain bit rot,
/// which the record trailer would catch first). Returns `false` if the
/// image holds no intact records.
pub fn flip_extent_checksum(bytes: &mut [u8], nth: usize) -> bool {
    if bytes.len() < HEADER_LEN {
        return false;
    }
    let block_count = rd_u32(bytes, 12) as usize;
    if block_count == 0 {
        return false;
    }
    let target = nth % block_count;
    let mut at = HEADER_LEN;
    let idiom_count = u16::from_le_bytes(bytes[24..26].try_into().unwrap()) as usize;
    if idiom_count > 0 {
        at += idiom_count * crate::superinst::IDIOM_WIRE_BYTES + 8;
    }
    for i in 0..block_count {
        if at + RECORD_FIXED > bytes.len() {
            return false;
        }
        let len = RECORD_FIXED + bytes[at + 27] as usize * 4;
        if at + len + 8 > bytes.len() {
            return false;
        }
        if i == target {
            let fnv = rd_u64(bytes, at + 16) ^ 0xDEAD_BEEF_DEAD_BEEF;
            bytes[at + 16..at + 24].copy_from_slice(&fnv.to_le_bytes());
            let rh = fnv64(&bytes[at..at + len]);
            bytes[at + len..at + len + 8].copy_from_slice(&rh.to_le_bytes());
            return true;
        }
        at += len + 8;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> Image {
        Image {
            fingerprint: fingerprint(&Config::default()),
            idioms: Vec::new(),
            blocks: vec![
                ImageBlock {
                    eip: 0x40_0000,
                    stage2: false,
                    inline_fp: false,
                    indirect_plain: false,
                    spec: SpecSeed::default(),
                    overrides: vec![],
                    src_range: (0x40_0000, 0x40_0010),
                    src_fnv: 0x1234_5678_9ABC_DEF0,
                    ia32_insts: 5,
                    heat: 0,
                    edges: (0, 0),
                    ic_pred: 0,
                    ic_hits: 0,
                },
                ImageBlock {
                    eip: 0x40_0010,
                    stage2: true,
                    inline_fp: true,
                    indirect_plain: true,
                    spec: SpecSeed {
                        tos: 3,
                        mmx_mode: true,
                        xmm_fmt: 1,
                    },
                    overrides: vec![
                        (2, AccessMode::AvoidKnown { gran: 4 }),
                        (7, AccessMode::Probe),
                    ],
                    src_range: (0x40_0010, 0x40_0030),
                    src_fnv: 0xFEED_FACE_CAFE_F00D,
                    ia32_insts: 9,
                    heat: 777,
                    edges: (512, 265),
                    ic_pred: 0x40_0000,
                    ic_hits: 600,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let img = sample_image();
        let bytes = encode(&img);
        let (back, rejected) = decode(&bytes, img.fingerprint).unwrap();
        assert_eq!(rejected, 0);
        assert_eq!(back.blocks, img.blocks);
        assert_eq!(back.fingerprint, img.fingerprint);
    }

    #[test]
    fn header_damage_rejects_wholesale() {
        let img = sample_image();
        let mut bytes = encode(&img);
        bytes[3] ^= 0xFF;
        assert_eq!(decode(&bytes, img.fingerprint), Err(ImageError::BadMagic));
        let mut bytes = encode(&img);
        bytes[17] ^= 0xFF; // fingerprint byte — caught by the header FNV
        assert_eq!(
            decode(&bytes, img.fingerprint),
            Err(ImageError::BadHeaderChecksum)
        );
        let bytes = encode(&img);
        assert!(matches!(
            decode(&bytes, img.fingerprint ^ 1),
            Err(ImageError::FingerprintMismatch { .. })
        ));
        assert_eq!(
            decode(&bytes[..HEADER_LEN - 1], img.fingerprint),
            Err(ImageError::Truncated)
        );
    }

    #[test]
    fn record_damage_rejects_per_record() {
        let img = sample_image();
        let mut bytes = encode(&img);
        // Flip a byte inside the first record's payload: that record is
        // dropped, the second survives.
        bytes[HEADER_LEN + 1] ^= 0xFF;
        let (back, rejected) = decode(&bytes, img.fingerprint).unwrap();
        assert_eq!(rejected, 1);
        assert_eq!(back.blocks, vec![img.blocks[1].clone()]);
        // Truncated body: everything from the cut onwards is rejected.
        let bytes = encode(&img);
        let cut = &bytes[..bytes.len() - 4];
        let (back, rejected) = decode(cut, img.fingerprint).unwrap();
        assert_eq!(rejected, 1);
        assert_eq!(back.blocks.len(), 1);
    }

    #[test]
    fn flip_extent_checksum_keeps_record_parseable() {
        let img = sample_image();
        let mut bytes = encode(&img);
        assert!(flip_extent_checksum(&mut bytes, 1));
        let (back, rejected) = decode(&bytes, img.fingerprint).unwrap();
        assert_eq!(rejected, 0, "flipped record must still parse");
        assert_eq!(back.blocks.len(), 2);
        assert_ne!(back.blocks[1].src_fnv, img.blocks[1].src_fnv);
        assert_eq!(back.blocks[0].src_fnv, img.blocks[0].src_fnv);
    }

    #[test]
    fn fingerprint_tracks_codegen_knobs() {
        let a = Config::default();
        let mut b = Config::default();
        b.enable_fusion = !b.enable_fusion;
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let mut c = Config::default();
        c.dispatch_cycles += 1; // timing-only knob: same code shape
        assert_eq!(fingerprint(&a), fingerprint(&c));
    }
}
