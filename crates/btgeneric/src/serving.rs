//! Multi-tenant serving: a shared, sharded translation-cache namespace.
//!
//! One process serving hundreds to thousands of concurrent guest
//! sessions wants to pay each cold translation *once*, not once per
//! session. Translated bundles themselves cannot be shared — every
//! session's `Machine` owns its arena and the translator's data
//! regions live at fixed addresses inside that session's own
//! `GuestMem` — so, exactly like the warm-start image format
//! ([`crate::persist`]), sharing happens at the *generation metadata*
//! level: a [`SharedCache`] stores validated [`ImageBlock`] records,
//! and an importing tenant replays the deterministic cold generator at
//! its own arena position, paying the flat `Config::image_load_cycles`
//! instead of the per-instruction translation cost.
//!
//! ## Namespaces
//!
//! Records are only meaningful under the config/layout fingerprint
//! they were generated under, and only for the binary whose source
//! bytes they checksum. A [`SharedCache`] therefore maps a
//! [`namespace_key`] — `persist::fingerprint(cfg)` mixed with a binary
//! identity — to an isolated [`Namespace`]. Different binaries (or
//! differently configured engines) can never observe each other's
//! translations.
//!
//! ## Shards and generation tags
//!
//! Each namespace is split into [`Namespace::shards`] independently
//! locked shards by EIP hash. Every shard carries a monotonically
//! increasing **generation**; every entry records the shard generation
//! at publish time. Any invalidation event — a tenant's SMC
//! invalidation, an eviction, a governor blacklist, a cache flush —
//! removes the affected entries *and bumps the shard generation*, so a
//! consult that races (or follows) the invalidation sees a stale tag
//! and rejects the entry. The epoch is deliberately conservative:
//! same-shard neighbours of an invalidated EIP are also rejected until
//! they are re-published, trading a little re-publish churn for the
//! guarantee that a stale or reclaimed extent is never handed out.
//!
//! Generation tags are a *sharing-profitability* gate, not the
//! correctness gate: an importing tenant always re-checksums the
//! record's source span against **its own** guest memory before
//! regenerating (see `Engine::shared_consult`), so even a
//! hypothetically stale record could only be rejected, never executed
//! against the wrong bytes.
//!
//! The per-tenant read-only dispatch fast path (18 cycles) never
//! touches a shard lock: the shared namespace is consulted only on a
//! local translation *miss*, on the slow path that was already paying
//! for translation work.
//!
//! ## Locking
//!
//! Shards use `std::sync::RwLock` with opportunistic `try_read` /
//! `try_write`: a failed try falls back to a blocking acquire and is
//! counted by the caller (`Stats::shared_lock_contention`), so the
//! serving bench can report contention honestly.

use crate::engine::Config;
use crate::persist::{self, ImageBlock};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default shard count per namespace (power of two).
pub const DEFAULT_SHARDS: usize = 64;

/// Derives the namespace key for a tenant: the persist fingerprint of
/// its config (codegen knobs + address-space layout) mixed with a
/// caller-supplied binary identity (e.g. an FNV of the guest image).
/// Tenants share translations iff both match.
pub fn namespace_key(cfg: &Config, binary_id: u64) -> u64 {
    persist::fingerprint(cfg) ^ binary_id.rotate_left(17)
}

/// One published translation record: the generation inputs
/// ([`ImageBlock`], profile hints included) plus the shard generation
/// it was published under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedEntry {
    /// The generation metadata an importing tenant replays.
    pub block: ImageBlock,
    /// Shard generation at publish time; a consult whose shard has
    /// moved past this tag rejects the entry.
    pub gen_tag: u64,
}

/// Outcome of a namespace consult (see [`Namespace::consult`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Consult {
    /// A current entry: the tenant may validate and import it.
    Hit(SharedEntry),
    /// An entry exists but its generation tag is stale (some tenant
    /// invalidated in this shard after it was published).
    GenStale,
    /// The EIP's page is denied (SMC-thrash governor blacklist).
    Denied,
    /// Nothing published for this EIP.
    Miss,
}

#[derive(Debug, Default)]
struct Shard {
    gen: u64,
    entries: HashMap<u32, SharedEntry>,
}

/// One binary's (and config shape's) shared translation namespace:
/// K independently locked, generation-tagged shards.
#[derive(Debug)]
pub struct Namespace {
    key: u64,
    shards: Vec<RwLock<Shard>>,
    /// Pages the SMC-thrash governor has denied for sharing: a tenant
    /// that blacklisted a page tells every other tenant not to import
    /// translations the guest is busy rewriting.
    denied_pages: RwLock<HashSet<u32>>,
    /// The serialized mined superinstruction idiom table (see
    /// [`crate::superinst`]), published by the first tenant to finish
    /// mining. Idioms describe the *binary*, not a tenant's cache
    /// layout, so co-tenants import them wholesale and fuse from their
    /// first translation. First publisher wins; tables are validated
    /// before publication so any winner is sound.
    idioms: RwLock<Option<Vec<u8>>>,
}

impl Namespace {
    fn new(key: u64, shards: usize) -> Namespace {
        Namespace {
            key,
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            denied_pages: RwLock::new(HashSet::new()),
            idioms: RwLock::new(None),
        }
    }

    /// Publishes a serialized idiom table. First publisher wins:
    /// later tenants' tables are dropped so every importer sees one
    /// stable table for the namespace's lifetime.
    pub fn publish_idioms(&self, bytes: Vec<u8>) {
        let mut slot = self.idioms.write().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(bytes);
        }
    }

    /// The published idiom table, if any tenant has mined one yet.
    pub fn idioms(&self) -> Option<Vec<u8>> {
        self.idioms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The namespace key this was created under.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, eip: u32) -> usize {
        // Same XOR-fold spirit as `layout::lookup_hash`: keep
        // page-aligned EIPs from piling into one shard.
        let e = eip as u64;
        ((e ^ (e >> 12)) % self.shards.len() as u64) as usize
    }

    fn read_shard(&self, i: usize, contention: &mut u64) -> RwLockReadGuard<'_, Shard> {
        match self.shards[i].try_read() {
            Ok(g) => g,
            Err(_) => {
                *contention += 1;
                self.shards[i].read().unwrap_or_else(|e| e.into_inner())
            }
        }
    }

    fn write_shard(&self, i: usize, contention: &mut u64) -> RwLockWriteGuard<'_, Shard> {
        match self.shards[i].try_write() {
            Ok(g) => g,
            Err(_) => {
                *contention += 1;
                self.shards[i].write().unwrap_or_else(|e| e.into_inner())
            }
        }
    }

    /// Looks up `eip`. Read-locks exactly one shard; `contention` is
    /// bumped if the lock was held.
    pub fn consult(&self, eip: u32, contention: &mut u64) -> Consult {
        if self
            .denied_pages
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&(eip >> 12))
        {
            return Consult::Denied;
        }
        let shard = self.read_shard(self.shard_index(eip), contention);
        match shard.entries.get(&eip) {
            Some(e) if e.gen_tag == shard.gen => Consult::Hit(e.clone()),
            Some(_) => Consult::GenStale,
            None => Consult::Miss,
        }
    }

    /// Publishes (or re-publishes) a record under the current shard
    /// generation. Returns false when the page is denied.
    pub fn publish(&self, block: ImageBlock, contention: &mut u64) -> bool {
        if self
            .denied_pages
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&(block.eip >> 12))
        {
            return false;
        }
        let mut shard = self.write_shard(self.shard_index(block.eip), contention);
        let tag = shard.gen;
        shard.entries.insert(
            block.eip,
            SharedEntry {
                block,
                gen_tag: tag,
            },
        );
        true
    }

    /// Updates a live entry's profile hints (heat, edge counters,
    /// indirect-target hint) without re-publishing the whole record —
    /// the end-of-session sync that lets later tenants start hot.
    /// Hints only ever grow (max-merge), so sync order between tenants
    /// cannot flap the stored profile.
    pub fn refresh_profile(
        &self,
        eip: u32,
        heat: u64,
        edges: (u32, u32),
        ic: (u32, u32),
        contention: &mut u64,
    ) -> bool {
        let mut shard = self.write_shard(self.shard_index(eip), contention);
        let gen = shard.gen;
        match shard.entries.get_mut(&eip) {
            Some(e) if e.gen_tag == gen => {
                let b = &mut e.block;
                b.heat = b.heat.max(heat);
                b.edges = (b.edges.0.max(edges.0), b.edges.1.max(edges.1));
                if ic.0 != 0 && ic.1 >= b.ic_hits {
                    b.ic_pred = ic.0;
                    b.ic_hits = ic.1;
                }
                true
            }
            _ => false,
        }
    }

    /// Invalidates one EIP (eviction, blacklist strike): removes the
    /// entry and bumps the shard generation. Returns true when an
    /// entry was actually present (a generation bump happened).
    pub fn invalidate(&self, eip: u32, contention: &mut u64) -> bool {
        let mut shard = self.write_shard(self.shard_index(eip), contention);
        if shard.entries.remove(&eip).is_some() {
            shard.gen += 1;
            true
        } else {
            false
        }
    }

    /// Invalidates every entry on a guest page (SMC invalidation):
    /// affected shards drop the entries and bump their generation.
    /// Returns the number of shard generations bumped.
    pub fn invalidate_page(&self, page: u32, contention: &mut u64) -> u64 {
        let mut bumped = 0;
        for i in 0..self.shards.len() {
            let mut shard = self.write_shard(i, contention);
            let before = shard.entries.len();
            shard.entries.retain(|&eip, _| eip >> 12 != page);
            if shard.entries.len() != before {
                shard.gen += 1;
                bumped += 1;
            }
        }
        bumped
    }

    /// Denies a page for sharing (SMC-thrash governor blacklist) and
    /// invalidates whatever it already published. Returns the number
    /// of shard generations bumped.
    pub fn deny_page(&self, page: u32, contention: &mut u64) -> u64 {
        self.denied_pages
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(page);
        self.invalidate_page(page, contention)
    }

    /// Bumps every shard generation (a tenant's full cache flush): all
    /// current entries become stale until re-published. Returns the
    /// number of shards bumped.
    pub fn bump_all(&self, contention: &mut u64) -> u64 {
        for i in 0..self.shards.len() {
            self.write_shard(i, contention).gen += 1;
        }
        self.shards.len() as u64
    }

    /// Number of entries currently stored (stale-tagged included).
    pub fn entries(&self) -> u64 {
        let mut c = 0;
        let mut cont = 0;
        for i in 0..self.shards.len() {
            c += self.read_shard(i, &mut cont).entries.len() as u64;
        }
        c
    }

    /// Number of *current* (non-stale) entries — the unique translated
    /// EIPs the namespace can serve, the denominator of the serving
    /// bench's dedup ratio.
    pub fn unique_eips(&self) -> u64 {
        let mut c = 0;
        let mut cont = 0;
        for i in 0..self.shards.len() {
            let s = self.read_shard(i, &mut cont);
            c += s.entries.values().filter(|e| e.gen_tag == s.gen).count() as u64;
        }
        c
    }

    /// Current generation of the shard holding `eip` (tests observe
    /// the tag protocol through this).
    pub fn shard_gen(&self, eip: u32) -> u64 {
        let mut cont = 0;
        self.read_shard(self.shard_index(eip), &mut cont).gen
    }
}

/// The process-wide shared translation cache: namespaces keyed by
/// [`namespace_key`], each sharded and generation-tagged.
#[derive(Debug)]
pub struct SharedCache {
    shards: usize,
    namespaces: Mutex<HashMap<u64, Arc<Namespace>>>,
    next_tenant: Mutex<u32>,
}

impl SharedCache {
    /// A shared cache whose namespaces will have `shards` shards each.
    pub fn new(shards: usize) -> Arc<SharedCache> {
        Arc::new(SharedCache {
            shards: shards.max(1),
            namespaces: Mutex::new(HashMap::new()),
            next_tenant: Mutex::new(0),
        })
    }

    /// The namespace for `key`, created on first use.
    pub fn namespace(&self, key: u64) -> Arc<Namespace> {
        let mut map = self.namespaces.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key)
            .or_insert_with(|| Arc::new(Namespace::new(key, self.shards)))
            .clone()
    }

    /// Mints a tenant handle into the namespace for `key` (tenant ids
    /// are unique across the cache, in admission order).
    pub fn tenant(&self, key: u64) -> SharedTenant {
        let ns = self.namespace(key);
        let mut next = self.next_tenant.lock().unwrap_or_else(|e| e.into_inner());
        let id = *next;
        *next += 1;
        SharedTenant { ns, tenant: id }
    }

    /// Number of namespaces created so far.
    pub fn namespaces(&self) -> usize {
        self.namespaces
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Sum of current (non-stale) entries across all namespaces.
    pub fn unique_eips(&self) -> u64 {
        self.namespaces
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|ns| ns.unique_eips())
            .sum()
    }

    /// One-line report: namespaces, shards, and entry population.
    pub fn summary(&self) -> String {
        let map = self.namespaces.lock().unwrap_or_else(|e| e.into_inner());
        let entries: u64 = map.values().map(|ns| ns.entries()).sum();
        let unique: u64 = map.values().map(|ns| ns.unique_eips()).sum();
        format!(
            "shared-cache: {} namespace(s) x {} shards | {} entries ({} current)",
            map.len(),
            self.shards,
            entries,
            unique,
        )
    }
}

/// One session's handle into a shared namespace: attach with
/// `Engine::attach_shared`.
#[derive(Clone, Debug)]
pub struct SharedTenant {
    /// The namespace this tenant publishes into / consults.
    pub ns: Arc<Namespace>,
    /// Unique tenant id (admission order).
    pub tenant: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(eip: u32) -> ImageBlock {
        ImageBlock {
            eip,
            src_range: (eip, eip + 4),
            ..ImageBlock::default()
        }
    }

    #[test]
    fn publish_consult_roundtrip() {
        let ns = Namespace::new(7, 8);
        let mut c = 0;
        assert_eq!(ns.consult(0x40_0000, &mut c), Consult::Miss);
        assert!(ns.publish(rec(0x40_0000), &mut c));
        match ns.consult(0x40_0000, &mut c) {
            Consult::Hit(e) => assert_eq!(e.block.eip, 0x40_0000),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(ns.unique_eips(), 1);
        assert_eq!(c, 0, "uncontended single-thread access");
    }

    #[test]
    fn invalidation_bumps_generation_and_rejects_neighbours() {
        let ns = Namespace::new(7, 1); // one shard: everything collides
        let mut c = 0;
        ns.publish(rec(0x40_0000), &mut c);
        ns.publish(rec(0x40_0100), &mut c);
        let g0 = ns.shard_gen(0x40_0000);
        assert!(ns.invalidate(0x40_0000, &mut c));
        assert_eq!(ns.shard_gen(0x40_0000), g0 + 1);
        // The invalidated EIP is gone; its same-shard neighbour is
        // conservatively stale until re-published.
        assert_eq!(ns.consult(0x40_0000, &mut c), Consult::Miss);
        assert_eq!(ns.consult(0x40_0100, &mut c), Consult::GenStale);
        assert!(ns.publish(rec(0x40_0100), &mut c));
        assert!(matches!(ns.consult(0x40_0100, &mut c), Consult::Hit(_)));
    }

    #[test]
    fn page_invalidation_and_denial() {
        let ns = Namespace::new(7, 8);
        let mut c = 0;
        ns.publish(rec(0x40_0000), &mut c);
        ns.publish(rec(0x40_0800), &mut c);
        ns.publish(rec(0x41_0000), &mut c); // different page
        assert!(ns.invalidate_page(0x400, &mut c) >= 1);
        assert_eq!(ns.consult(0x40_0000, &mut c), Consult::Miss);
        assert!(ns.consult(0x41_0000, &mut c) != Consult::Miss);
        ns.deny_page(0x410, &mut c);
        assert_eq!(ns.consult(0x41_0000, &mut c), Consult::Denied);
        assert!(
            !ns.publish(rec(0x41_0000), &mut c),
            "denied page refuses publish"
        );
    }

    #[test]
    fn profile_refresh_is_max_merge() {
        let ns = Namespace::new(7, 8);
        let mut c = 0;
        ns.publish(rec(0x40_0000), &mut c);
        assert!(ns.refresh_profile(0x40_0000, 100, (5, 7), (0x50_0000, 9), &mut c));
        assert!(ns.refresh_profile(0x40_0000, 40, (2, 11), (0x60_0000, 3), &mut c));
        match ns.consult(0x40_0000, &mut c) {
            Consult::Hit(e) => {
                assert_eq!(e.block.heat, 100);
                assert_eq!(e.block.edges, (5, 11));
                // The lower-hit IC hint must not displace the higher one.
                assert_eq!(e.block.ic_pred, 0x50_0000);
                assert_eq!(e.block.ic_hits, 9);
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn namespaces_are_isolated() {
        let cache = SharedCache::new(8);
        let a = cache.tenant(1);
        let b = cache.tenant(2);
        assert_eq!(a.tenant, 0);
        assert_eq!(b.tenant, 1);
        let mut c = 0;
        a.ns.publish(rec(0x40_0000), &mut c);
        assert_eq!(b.ns.consult(0x40_0000, &mut c), Consult::Miss);
        assert_eq!(cache.namespaces(), 2);
        let a2 = cache.tenant(1);
        assert!(matches!(a2.ns.consult(0x40_0000, &mut c), Consult::Hit(_)));
    }
}
