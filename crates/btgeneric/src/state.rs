//! The fixed mapping of IA-32 architectural state onto Itanium
//! registers, and the conversions between the two.
//!
//! IA-32 EL allocates the entire register file statically (paper §2
//! footnote 4: the whole 96-register stack, one frame). Our layout:
//!
//! | Itanium | IA-32 state |
//! |---|---|
//! | `r32`-`r39` | `EAX ECX EDX EBX ESP EBP ESI EDI` (zero-extended) |
//! | `r40` | the **IA-32 state register**: current IA-32 IP for cold-code state reconstruction |
//! | `r41` | EFLAGS (lazy; only live bits maintained) |
//! | `r42` | x87 TOS |
//! | `r43` | x87 tag word (bit per *physical* register, 1 = valid) |
//! | `r44` | x87 status word |
//! | `r45` | FP/MMX mode Boolean (1 = MMX values live in `r96`-`r103`) |
//! | `r46` | XMM format status (1 bit per XMM: 0 = packed, 1 = scalar) |
//! | `r47` | constant 1 |
//! | `r48`-`r63` | template scratch |
//! | `r64`-`r95` | hot-code renaming / backup pool |
//! | `r96`-`r103` | MMX `MM0`-`MM7` (when in MMX mode) |
//! | `r14`, `r15` | exit-stub payload |
//! | `f8`-`f15` | x87 *physical* registers `R0`-`R7` |
//! | `f16+3i`, `f17+3i`, `f18+3i` | `XMMi` scalar / lanes 0-1 / lanes 2-3 |
//! | `f40`-`f63` | FP scratch / renaming pool |

use ia32::cpu::Cpu;
use ia32::fpu::FpReg;
use ipf::machine::Machine;
use ipf::regs::{Fr, Gr, Pr};

/// First GR holding a guest GPR (`EAX`).
pub const GR_GUEST: u16 = 32;
/// The IA-32 state register (paper §4).
pub const GR_STATE: Gr = Gr(40);
/// Lazy EFLAGS home.
pub const GR_EFLAGS: Gr = Gr(41);
/// x87 top-of-stack value.
pub const GR_FPTOP: Gr = Gr(42);
/// x87 tag word (physical-register-indexed valid bits).
pub const GR_FPTAG: Gr = Gr(43);
/// x87 status word.
pub const GR_FPSTATUS: Gr = Gr(44);
/// FP/MMX aliasing mode Boolean.
pub const GR_FPMODE: Gr = Gr(45);
/// XMM format status word.
pub const GR_XMMFMT: Gr = Gr(46);
/// Always-one constant register.
pub const GR_ONE: Gr = Gr(47);
/// First template scratch GR.
pub const GR_SCRATCH: u16 = 48;
/// Number of template scratch GRs.
pub const NUM_SCRATCH: u16 = 16;
/// First hot-code renaming-pool GR.
pub const GR_POOL: u16 = 64;
/// Number of renaming-pool GRs.
pub const NUM_POOL: u16 = 32;
/// First MMX home GR.
pub const GR_MMX: u16 = 96;
/// Exit-stub payload register 0.
pub const GR_PAYLOAD0: Gr = Gr(14);
/// Exit-stub payload register 1.
pub const GR_PAYLOAD1: Gr = Gr(15);

/// First FR holding an x87 physical register.
pub const FR_X87: u16 = 8;
/// First FR of the XMM bank (3 registers per XMM).
pub const FR_XMM: u16 = 16;
/// First FP scratch register.
pub const FR_SCRATCH: u16 = 40;
/// Number of FP scratch registers.
pub const NUM_FR_SCRATCH: u16 = 24;
/// First template scratch predicate.
pub const PR_SCRATCH: u16 = 1;
/// Number of scratch predicates for templates.
pub const NUM_PR_SCRATCH: u16 = 15;
/// First hot-code predicate-pool register.
pub const PR_POOL: u16 = 16;
/// Number of pool predicates.
pub const NUM_PR_POOL: u16 = 32;

/// The GR holding guest GPR number `n` (ModRM encoding order).
pub fn guest_gpr(n: u8) -> Gr {
    debug_assert!(n < 8);
    Gr(GR_GUEST + n as u16)
}

/// The GR holding MMX register `n` (valid in MMX mode).
pub fn mmx_gr(n: u8) -> Gr {
    debug_assert!(n < 8);
    Gr(GR_MMX + n as u16)
}

/// The FR holding x87 *physical* register `i`.
pub fn x87_fr(phys: u8) -> Fr {
    debug_assert!(phys < 8);
    Fr(FR_X87 + phys as u16)
}

/// The scalar-format FR of `XMMn` (lane 0 as a double).
pub fn xmm_scalar_fr(n: u8) -> Fr {
    Fr(FR_XMM + 3 * n as u16)
}

/// The packed-low FR of `XMMn` (lanes 0-1, raw).
pub fn xmm_lo_fr(n: u8) -> Fr {
    Fr(FR_XMM + 3 * n as u16 + 1)
}

/// The packed-high FR of `XMMn` (lanes 2-3, raw).
pub fn xmm_hi_fr(n: u8) -> Fr {
    Fr(FR_XMM + 3 * n as u16 + 2)
}

/// A template scratch GR.
pub fn scratch_gr(i: u16) -> Gr {
    debug_assert!(i < NUM_SCRATCH);
    Gr(GR_SCRATCH + i)
}

/// A template scratch predicate.
pub fn scratch_pr(i: u16) -> Pr {
    debug_assert!(i < NUM_PR_SCRATCH);
    Pr(PR_SCRATCH + i)
}

/// XMM register format, tracked per register in [`GR_XMMFMT`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum XmmFmt {
    /// Lanes live as raw packed singles in the lo/hi FRs.
    Packed,
    /// Lane 0 lives as a converted double in the scalar FR; lanes 1-3
    /// are still raw in lo/hi.
    Scalar,
}

/// Loads the IA-32 architectural state into the machine's canonical
/// registers (process start, or after an engine-side fix-up).
pub fn cpu_to_machine(cpu: &Cpu, m: &mut Machine) {
    for i in 0..8 {
        m.gr[(GR_GUEST + i) as usize] = cpu.gpr[i as usize] as u64;
    }
    m.gr[GR_STATE.0 as usize] = cpu.eip as u64;
    m.gr[GR_EFLAGS.0 as usize] = cpu.eflags as u64;
    m.gr[GR_FPTOP.0 as usize] = cpu.fpu.top as u64;
    m.gr[GR_FPTAG.0 as usize] = cpu.fpu.tags as u64;
    m.gr[GR_FPSTATUS.0 as usize] = cpu.fpu.status as u64;
    m.gr[GR_FPMODE.0 as usize] = cpu.fpu.mmx_mode as u64;
    m.gr[GR_ONE.0 as usize] = 1;
    // x87 / MMX.
    if cpu.fpu.mmx_mode {
        for i in 0..8 {
            m.gr[(GR_MMX + i) as usize] = cpu.fpu.regs[i as usize].as_mmx();
        }
        // Keep FP values too (mode flag says which side is authoritative).
        for i in 0..8u16 {
            m.fr[(FR_X87 + i) as usize] = cpu.fpu.regs[i as usize].as_f64().to_bits();
        }
    } else {
        for i in 0..8u16 {
            m.fr[(FR_X87 + i) as usize] = cpu.fpu.regs[i as usize].as_f64().to_bits();
        }
    }
    // XMM: enter in packed format.
    m.gr[GR_XMMFMT.0 as usize] = 0;
    for i in 0..8u8 {
        let v = cpu.xmm[i as usize];
        m.fr[xmm_lo_fr(i).0 as usize] = v as u64;
        m.fr[xmm_hi_fr(i).0 as usize] = (v >> 64) as u64;
    }
}

/// Reads the IA-32 architectural state back out of the machine's
/// canonical registers. `eip` must be supplied by the caller (cold code:
/// the state register; hot code: the commit map).
pub fn machine_to_cpu(m: &Machine, eip: u32) -> Cpu {
    let mut cpu = Cpu::new();
    for i in 0..8 {
        cpu.gpr[i as usize] = m.gr[(GR_GUEST + i) as usize] as u32;
    }
    cpu.eip = eip;
    cpu.eflags = (m.gr[GR_EFLAGS.0 as usize] as u32) | ia32::flags::RESERVED_ONES;
    cpu.fpu.top = (m.gr[GR_FPTOP.0 as usize] & 7) as u8;
    cpu.fpu.tags = m.gr[GR_FPTAG.0 as usize] as u8;
    cpu.fpu.status = m.gr[GR_FPSTATUS.0 as usize] as u16;
    cpu.fpu.mmx_mode = m.gr[GR_FPMODE.0 as usize] & 1 != 0;
    for i in 0..8u16 {
        cpu.fpu.regs[i as usize] = if cpu.fpu.mmx_mode {
            FpReg::M(m.gr[(GR_MMX + i) as usize])
        } else {
            FpReg::F(f64::from_bits(m.fr[(FR_X87 + i) as usize]))
        };
    }
    let fmt = m.gr[GR_XMMFMT.0 as usize];
    for i in 0..8u8 {
        let lo = m.fr[xmm_lo_fr(i).0 as usize];
        let hi = m.fr[xmm_hi_fr(i).0 as usize];
        let mut v = lo as u128 | ((hi as u128) << 64);
        if (fmt >> i) & 1 != 0 {
            // Scalar format: lane 0's truth is the converted double.
            let lane0 = (f64::from_bits(m.fr[xmm_scalar_fr(i).0 as usize]) as f32).to_bits();
            v = (v & !0xFFFF_FFFFu128) | lane0 as u128;
        }
        cpu.xmm[i as usize] = v;
    }
    cpu
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipf::machine::{CodeArena, Timing};

    fn machine() -> Machine {
        Machine::new(CodeArena::new(0x1_0000), Timing::default())
    }

    #[test]
    fn roundtrip_integer_state() {
        let mut cpu = Cpu::new();
        for i in 0..8 {
            cpu.gpr[i] = 0x1000 + i as u32;
        }
        cpu.eip = 0x40_1234;
        cpu.eflags = ia32::flags::ZF | ia32::flags::CF | ia32::flags::RESERVED_ONES;
        let mut m = machine();
        cpu_to_machine(&cpu, &mut m);
        let back = machine_to_cpu(&m, cpu.eip);
        assert_eq!(back.gpr, cpu.gpr);
        assert_eq!(back.eip, cpu.eip);
        assert_eq!(back.eflags, cpu.eflags);
    }

    #[test]
    fn roundtrip_fpu_state() {
        let mut cpu = Cpu::new();
        cpu.fpu.push(1.5).unwrap();
        cpu.fpu.push(-2.25).unwrap();
        let mut m = machine();
        cpu_to_machine(&cpu, &mut m);
        let back = machine_to_cpu(&m, 0);
        assert_eq!(back.fpu.top, cpu.fpu.top);
        assert_eq!(back.fpu.tags, cpu.fpu.tags);
        assert_eq!(back.fpu.st(0).unwrap(), -2.25);
        assert_eq!(back.fpu.st(1).unwrap(), 1.5);
    }

    #[test]
    fn roundtrip_mmx_mode() {
        let mut cpu = Cpu::new();
        cpu.fpu.mmx_write(3, 0xAABB_CCDD_EEFF_0011);
        let mut m = machine();
        cpu_to_machine(&cpu, &mut m);
        assert_eq!(m.gr[GR_FPMODE.0 as usize], 1);
        let back = machine_to_cpu(&m, 0);
        assert!(back.fpu.mmx_mode);
        assert_eq!(back.fpu.mmx_read(3), 0xAABB_CCDD_EEFF_0011);
    }

    #[test]
    fn roundtrip_xmm_packed() {
        let mut cpu = Cpu::new();
        cpu.xmm[2] = 0x0123_4567_89AB_CDEF_1122_3344_5566_7788;
        let mut m = machine();
        cpu_to_machine(&cpu, &mut m);
        let back = machine_to_cpu(&m, 0);
        assert_eq!(back.xmm[2], cpu.xmm[2]);
    }

    #[test]
    fn scalar_format_takes_lane0_from_double() {
        let mut m = machine();
        let cpu = Cpu::new();
        cpu_to_machine(&cpu, &mut m);
        // Simulate a block leaving XMM1 in scalar format with lane0 = 3.5.
        m.gr[GR_XMMFMT.0 as usize] = 1 << 1;
        m.fr[xmm_scalar_fr(1).0 as usize] = 3.5f64.to_bits();
        m.fr[xmm_lo_fr(1).0 as usize] = 0xDEAD_DEAD_DEAD_DEAD; // stale lane 0
        let back = machine_to_cpu(&m, 0);
        assert_eq!(back.xmm_lane(ia32::regs::Xmm::new(1), 0), 3.5);
        assert_eq!((back.xmm[1] >> 32) as u32, 0xDEAD_DEAD, "lane 1 still raw");
    }

    #[test]
    fn register_map_is_disjoint() {
        // No overlaps between the architectural banks.
        let guest: Vec<u16> = (GR_GUEST..GR_GUEST + 8).collect();
        let scratch: Vec<u16> = (GR_SCRATCH..GR_SCRATCH + NUM_SCRATCH).collect();
        let pool: Vec<u16> = (GR_POOL..GR_POOL + NUM_POOL).collect();
        let mmx: Vec<u16> = (GR_MMX..GR_MMX + 8).collect();
        let mut all = Vec::new();
        all.extend(&guest);
        all.extend([
            GR_STATE.0,
            GR_EFLAGS.0,
            GR_FPTOP.0,
            GR_FPTAG.0,
            GR_FPSTATUS.0,
            GR_FPMODE.0,
            GR_XMMFMT.0,
            GR_ONE.0,
        ]);
        all.extend(&scratch);
        all.extend(&pool);
        all.extend(&mmx);
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "register banks overlap");
        assert!(all.iter().all(|&r| r < 128));
    }

    #[test]
    fn fr_map_is_disjoint() {
        let mut all: Vec<u16> = (0..8).map(|i| x87_fr(i).0).collect();
        for i in 0..8 {
            all.push(xmm_scalar_fr(i).0);
            all.push(xmm_lo_fr(i).0);
            all.push(xmm_hi_fr(i).0);
        }
        all.extend(FR_SCRATCH..FR_SCRATCH + NUM_FR_SCRATCH);
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
        assert!(all.iter().all(|&r| (2..128).contains(&r)));
    }
}
