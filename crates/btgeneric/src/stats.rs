//! Execution and translation statistics — the counters behind the
//! paper's Figures 6/7 (time distribution) and the in-text numbers
//! (heating rate, block sizes, speculation success, commit density).

use crate::layout::region;
use std::collections::HashMap;

/// Aggregated statistics for one engine run.
///
/// `PartialEq`/`Eq` back the fault-injection determinism test: two runs
/// of the same workload under the same `FaultPlan` seed must produce
/// identical counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Cold blocks translated (all versions).
    pub cold_blocks: u64,
    /// IA-32 instructions covered by cold translation.
    pub cold_ia32_insts: u64,
    /// Native instructions emitted by cold translation.
    pub cold_native_insts: u64,
    /// Hot traces generated.
    pub hot_traces: u64,
    /// Hot traces compiled through the typed-IR pipeline (liveness +
    /// constraint-driven regalloc) rather than the template path.
    pub hot_ir_traces: u64,
    /// IA-32 instructions covered by hot traces.
    pub hot_ia32_insts: u64,
    /// Native instructions emitted by hot translation.
    pub hot_native_insts: u64,
    /// Commit points recorded in hot code.
    pub hot_commit_points: u64,
    /// Side exits taken from hot traces (premature exits).
    pub hot_side_exits: u64,
    /// Heating-threshold triggers.
    pub heat_events: u64,
    /// Indirect-branch lookup misses handled.
    pub indirect_misses: u64,
    /// Inline-cache hits across all indirect jmp/call sites (summed
    /// from the per-site hit counters by `collect_indirect_stats`).
    pub ic_hits: u64,
    /// Inline-cache misses (site fell through to the shared table).
    pub ic_misses: u64,
    /// Inline-cache retrains performed by the dispatcher (a missing
    /// site was repointed at its newest observed target).
    pub ic_retrains: u64,
    /// Return-address shadow-stack hits (`ret` branched straight to the
    /// predicted translated entry).
    pub shadow_hits: u64,
    /// Shadow-stack pops that found an empty slot (ring wrapped, entry
    /// consumed, or prediction not yet seeded).
    pub shadow_underflows: u64,
    /// Shadow-stack pops whose recorded return EIP did not match the
    /// actual one (stack switch, `ret` to a different frame, hot-trace
    /// call folding).
    pub shadow_mispredicts: u64,
    /// Lookup-table inserts into a set already holding a live foreign
    /// key (table-pressure signal).
    pub lookup_collisions: u64,
    /// Lookup-table inserts that displaced a live entry because every
    /// way of the set was taken.
    pub lookup_way_conflicts: u64,
    /// Hot-trace devirtualization guards that failed (side exit back
    /// through the retrain path).
    pub devirt_guard_fails: u64,
    /// Blocks demoted to the plain table probe because their inline
    /// cache proved megamorphic or their shadow pops kept missing.
    pub indirect_demotions: u64,
    /// Misalignment probes that fired (stage 1 -> stage 2 regens).
    pub misalign_retrains: u64,
    /// OS-handled misalignment faults taken.
    pub misalign_faults: u64,
    /// Self-modifying-code events.
    pub smc_events: u64,
    /// FP TOS speculation fixes.
    pub tos_fixes: u64,
    /// FP tag speculation failures (block rebuilds).
    pub tag_fixes: u64,
    /// FP/MMX mode fixes.
    pub mmx_fixes: u64,
    /// XMM format fixes (engine side).
    pub xmm_fixes: u64,
    /// XMM format conversions performed by fix-ups.
    pub xmm_conversions: u64,
    /// Single-stepped instructions (escape hatch).
    pub interp_steps: u64,
    /// System calls serviced.
    pub syscalls: u64,
    /// Guest exceptions delivered or terminated on.
    pub exceptions: u64,
    /// Hot-code deoptimizations (chk.s failures).
    pub deopts: u64,
    /// Full translation-cache flushes. With incremental eviction
    /// enabled this is the emergency fallback only (nothing evictable
    /// under pressure); with eviction disabled it is the paper's
    /// wholesale garbage collection.
    pub cache_flushes: u64,
    /// Blocks evicted individually from the translation cache under
    /// capacity pressure (incremental, generation-aware eviction).
    pub evictions: u64,
    /// Bundles reclaimed to the arena free list by those evictions
    /// (all generations of each victim).
    pub evicted_bundles: u64,
    /// Chained direct branches un-linked on eviction: patched
    /// block-to-block branches re-pointed at the Untranslated stub so
    /// no live code targets a reclaimed extent.
    pub chain_unlinks: u64,
    /// Indirect-branch lookup-table entries surgically purged on
    /// eviction (instead of clearing the whole table).
    pub lookup_purges: u64,
    /// Dispatch-loop entries that hit an already-translated block (the
    /// fast path: no translation, reduced round-trip charge).
    pub dispatch_fast_hits: u64,
    /// Hot traces demoted back to cold by the degradation ladder
    /// (repeated faults, failed speculation, corruption).
    pub demotions: u64,
    /// Heat events suppressed because the block's EIP was blacklisted
    /// from re-promotion (backoff not yet expired).
    pub blacklist_hits: u64,
    /// Blocks whose speculation-failure retries ran out: demoted and
    /// rebuilt without the speculative assumptions.
    pub spec_retry_exhaustions: u64,
    /// Translation attempts that fell back to the `InterpStep` safety
    /// net (organic generation failure or injected translate fault).
    pub interp_fallbacks: u64,
    /// Installed extents evicted because verify-on-dispatch caught a
    /// checksum mismatch (corrupted cache line).
    pub integrity_evictions: u64,
    /// Hot optimization sessions aborted by the cycle-budget watchdog
    /// (cold code kept).
    pub watchdog_aborts: u64,
    /// Failures (injected or organic) recovered by walking the
    /// degradation ladder instead of dying.
    pub ladder_recoveries: u64,
    /// Translator-side allocation requests the OS refused (ENOMEM);
    /// the engine degraded (shared overflow profile slot) instead of
    /// aborting.
    pub os_alloc_failures: u64,
    /// Faults delivered by an attached `FaultPlan` (engine-side kinds).
    pub faults_injected: u64,
    /// Cycles charged to single-stepped instructions (the `InterpStep`
    /// safety net), so fallback time reconciles against total cycles.
    pub interp_cycles: u64,
    /// Asynchronous signals delivered to the guest handler (at a
    /// dispatch boundary or a mid-trace commit point).
    pub signals_delivered: u64,
    /// Translations orphaned by an SMC write because their source
    /// bytes actually changed (or they were hot traces, invalidated
    /// conservatively).
    pub smc_extent_orphans: u64,
    /// Translations on an SMC-written page whose source bytes were
    /// untouched and which therefore survived (per-extent invalidation
    /// paying off).
    pub smc_extent_keeps: u64,
    /// Pages demoted to interpret-only by the SMC-thrash governor.
    pub smc_blacklists: u64,
    /// Dispatches served by the interpreter because the target page is
    /// SMC-blacklisted (each is one guest instruction).
    pub smc_interp_blocks: u64,
    /// Recoveries entered while another recovery was already on the
    /// stack (the re-entrant descent of the ladder).
    pub reentrant_recoveries: u64,
    /// Deepest nested-recovery depth observed.
    pub recovery_depth_max: u64,
    /// Blocks materialized from a warm-start image (image hits).
    pub image_blocks_loaded: u64,
    /// Image records rejected individually — stale source checksum,
    /// corrupted record, or no cache room (each degrades to on-demand
    /// translation of just that extent).
    pub image_blocks_rejected: u64,
    /// Warm-start images rejected wholesale: unreadable file, bad
    /// magic/version, corrupted header, or config/layout fingerprint
    /// mismatch.
    pub image_rejects: u64,
    /// Warm-start images written on clean exit.
    pub image_saves: u64,
    /// Blocks serialized into saved images.
    pub image_blocks_saved: u64,
    /// Blocks translated by the static pre-translation pass (full cold
    /// cost, paid before first dispatch).
    pub pretranslated_blocks: u64,
    /// Blocks whose persisted profile heat / edge counters were written
    /// back into live profile slots (warm-start image load or shared
    /// namespace import) — the re-heat-without-re-profiling counter.
    pub profile_heat_restored: u64,
    /// Inline-cache sites re-trained from a persisted monomorphic
    /// target hint (second-pass restore after all records installed).
    pub profile_ic_restored: u64,
    /// Blocks materialized from the shared multi-tenant namespace
    /// instead of being cold-translated locally (flat
    /// `image_load_cycles` charge each — the dedup win).
    pub shared_installs: u64,
    /// Translations this tenant published to the shared namespace.
    pub shared_publishes: u64,
    /// Shard-generation bumps this tenant caused in the shared
    /// namespace (eviction, SMC page invalidation, governor blacklist,
    /// cache flush).
    pub shared_gen_bumps: u64,
    /// Shared-namespace consults rejected by the generation-tag or
    /// page-denial gate (a peer invalidated in that shard after
    /// publish).
    pub shared_gen_rejects: u64,
    /// Shared-namespace hits rejected by the source-checksum gate (the
    /// record does not match this tenant's guest bytes) or whose
    /// regeneration failed.
    pub shared_stale_rejects: u64,
    /// Shard-lock acquisitions that found the lock already held
    /// (opportunistic try-lock fell back to blocking).
    pub shared_lock_contention: u64,
    /// Superinstruction idioms mined from the block profiles and
    /// admitted into the active idiom table (whether mined locally,
    /// restored from a warm-start image, or imported from a shared
    /// namespace).
    pub superinst_mined_idioms: u64,
    /// Fused-template firings: each is one idiom instance replaced by a
    /// synthesized superinstruction template (cold peephole or hot
    /// trace).
    pub superinst_hits: u64,
    /// IA-32 instructions covered by superinstruction firings (2 for a
    /// pair, 3+ for triples/chains) — the numerator of the template hit
    /// rate.
    pub superinst_fused_slots: u64,
    /// IA-32 instructions scanned by a peephole window while an idiom
    /// table was active — the denominator of the template hit rate.
    pub superinst_eligible_slots: u64,
    /// Mined idioms rejected by the differential validation gate (the
    /// synthesized template disagreed with the interpreter oracle) and
    /// demoted to the unfused path.
    pub superinst_blacklists: u64,
    /// Dispatch-latency histogram: cycles from a dispatch boundary to
    /// the resolved translated entry, including any translation work on
    /// a miss.
    pub dispatch_hist: DispatchHist,
}

/// Fixed-bucket dispatch-latency histogram: bucket `i` counts
/// dispatches whose boundary-to-entry latency was in
/// `[2^i, 2^(i+1))` cycles (bucket 0 additionally holds 0- and 1-cycle
/// dispatches; the last bucket is open-ended). Powers of two cover the
/// whole observed range — 18-cycle fast-path hits to multi-thousand
/// cold translations — in 16 buckets with no allocation, keeping
/// `Stats` cheap to clone and `Eq`-comparable for the determinism
/// tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchHist {
    /// Per-bucket dispatch counts.
    pub buckets: [u64; DispatchHist::BUCKETS],
}

impl Default for DispatchHist {
    fn default() -> DispatchHist {
        DispatchHist {
            buckets: [0; DispatchHist::BUCKETS],
        }
    }
}

impl DispatchHist {
    /// Number of fixed buckets.
    pub const BUCKETS: usize = 16;

    /// Records one dispatch that took `cycles` from boundary to entry.
    pub fn record(&mut self, cycles: u64) {
        let b = (63 - cycles.max(1).leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.buckets[b] += 1;
    }

    /// Total dispatches recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The given percentile (e.g. `50.0`, `99.0`) as an upper-bound
    /// latency in cycles: the exclusive upper edge of the bucket
    /// holding that rank (`2^(i+1)`). Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << Self::BUCKETS
    }

    /// Merges another histogram into this one (bucket-wise sum) — how
    /// the serving bench aggregates per-session histograms.
    pub fn merge(&mut self, other: &DispatchHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

impl Stats {
    /// One-line cache-management summary (evictions vs. flushes) for
    /// bench/figures output.
    pub fn cache_summary(&self) -> String {
        format!(
            "evictions {} ({} bundles), unlinks {}, lookup purges {}, \
             lookup collisions {}, flushes {}, fast dispatches {}",
            self.evictions,
            self.evicted_bundles,
            self.chain_unlinks,
            self.lookup_purges,
            self.lookup_collisions,
            self.cache_flushes,
            self.dispatch_fast_hits
        )
    }

    /// One-line indirect control-transfer summary (inline caches,
    /// shadow stack, table pressure, devirtualization) for
    /// bench/figures output.
    pub fn indirect_summary(&self) -> String {
        format!(
            "indirect misses {}, ic {}/{}/{} (hit/miss/retrain), \
             shadow {}/{}/{} (hit/underflow/mispredict), \
             way conflicts {}, devirt guard fails {}, demotions {}",
            self.indirect_misses,
            self.ic_hits,
            self.ic_misses,
            self.ic_retrains,
            self.shadow_hits,
            self.shadow_underflows,
            self.shadow_mispredicts,
            self.lookup_way_conflicts,
            self.devirt_guard_fails,
            self.indirect_demotions
        )
    }

    /// One-line warm-start summary (image hits/rejects, pre-translation)
    /// for bench/figures output.
    pub fn persist_summary(&self) -> String {
        format!(
            "image loaded {}, rejected {} (wholesale {}), saved {} ({} blocks), \
             pretranslated {}",
            self.image_blocks_loaded,
            self.image_blocks_rejected,
            self.image_rejects,
            self.image_saves,
            self.image_blocks_saved,
            self.pretranslated_blocks
        )
    }

    /// One-line robustness summary (degradation-ladder activity) for
    /// bench/figures output.
    pub fn chaos_summary(&self) -> String {
        format!(
            "injected {}, recoveries {}, demotions {}, blacklist hits {}, \
             spec exhaustions {}, interp fallbacks {}, integrity evictions {}, \
             watchdog aborts {}, os alloc fails {}",
            self.faults_injected,
            self.ladder_recoveries,
            self.demotions,
            self.blacklist_hits,
            self.spec_retry_exhaustions,
            self.interp_fallbacks,
            self.integrity_evictions,
            self.watchdog_aborts,
            self.os_alloc_failures
        )
    }

    /// One-line multi-tenant serving summary (shared-namespace traffic,
    /// generation-tag activity, dispatch-latency percentiles) for
    /// bench/figures output.
    pub fn serving_summary(&self) -> String {
        format!(
            "shared installs {}, publishes {}, gen bumps {}, \
             gen rejects {}, stale rejects {}, lock contention {}, \
             profile restored {}/{} (heat/ic), \
             dispatch p50/p99 {}/{}cy over {}",
            self.shared_installs,
            self.shared_publishes,
            self.shared_gen_bumps,
            self.shared_gen_rejects,
            self.shared_stale_rejects,
            self.shared_lock_contention,
            self.profile_heat_restored,
            self.profile_ic_restored,
            self.dispatch_hist.percentile(50.0),
            self.dispatch_hist.percentile(99.0),
            self.dispatch_hist.count()
        )
    }

    /// One-line superinstruction summary (mined idiom table, fused
    /// firings, hit rate, validation blacklists) for bench/figures
    /// output.
    pub fn superinst_summary(&self) -> String {
        let rate = if self.superinst_eligible_slots == 0 {
            0.0
        } else {
            self.superinst_fused_slots as f64 / self.superinst_eligible_slots as f64
        };
        format!(
            "idioms {}, hits {}, fused/eligible slots {}/{} ({:.1}%), \
             validation blacklists {}",
            self.superinst_mined_idioms,
            self.superinst_hits,
            self.superinst_fused_slots,
            self.superinst_eligible_slots,
            rate * 100.0,
            self.superinst_blacklists
        )
    }

    /// One-line hostile-guest summary (async signals, per-extent SMC,
    /// re-entrant recovery) for bench/figures output.
    pub fn hostile_summary(&self) -> String {
        format!(
            "signals {}, smc orphans/keeps {}/{}, smc blacklists {}, \
             interp-only dispatches {}, reentrant recoveries {} (max depth {})",
            self.signals_delivered,
            self.smc_extent_orphans,
            self.smc_extent_keeps,
            self.smc_blacklists,
            self.smc_interp_blocks,
            self.reentrant_recoveries,
            self.recovery_depth_max
        )
    }
}

/// A cycle breakdown in the paper's Figure 6/7 categories.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeDistribution {
    /// Cycles in hot translated code.
    pub hot: u64,
    /// Cycles in cold translated code.
    pub cold: u64,
    /// Translation overhead cycles.
    pub overhead: u64,
    /// Dispatch, fix-ups, emulation ("other").
    pub other: u64,
    /// Natively executed (kernel/driver) cycles.
    pub native: u64,
    /// Idle cycles.
    pub idle: u64,
}

impl TimeDistribution {
    /// Builds the distribution from a machine's per-region cycles.
    pub fn from_region_cycles(rc: &HashMap<u32, u64>) -> TimeDistribution {
        let g = |r: u32| rc.get(&r).copied().unwrap_or(0);
        TimeDistribution {
            hot: g(region::HOT),
            cold: g(region::COLD),
            overhead: g(region::OVERHEAD),
            other: g(region::OTHER),
            native: g(region::NATIVE),
            idle: g(region::IDLE),
        }
    }

    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.hot + self.cold + self.overhead + self.other + self.native + self.idle
    }

    /// Percentage of the total for each category:
    /// `(hot, cold, overhead, other, native, idle)`.
    pub fn percentages(&self) -> (f64, f64, f64, f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.hot as f64 * 100.0 / t,
            self.cold as f64 * 100.0 / t,
            self.overhead as f64 * 100.0 / t,
            self.other as f64 * 100.0 / t,
            self.native as f64 * 100.0 / t,
            self.idle as f64 * 100.0 / t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_percentages() {
        let mut rc = HashMap::new();
        rc.insert(region::HOT, 95);
        rc.insert(region::COLD, 3);
        rc.insert(region::OVERHEAD, 1);
        rc.insert(region::OTHER, 1);
        let d = TimeDistribution::from_region_cycles(&rc);
        assert_eq!(d.total(), 100);
        let (hot, cold, ovh, other, _, _) = d.percentages();
        assert!((hot - 95.0).abs() < 1e-9);
        assert!((cold - 3.0).abs() < 1e-9);
        assert!((ovh - 1.0).abs() < 1e-9);
        assert!((other - 1.0).abs() < 1e-9);
    }
}
