//! Learned superinstruction templates: profile-mined idiom fusion
//! (ROADMAP item 4).
//!
//! The IA-32 EL paper wins much of its hot-phase speedup by
//! recognizing recurring IA-32 idioms and emitting fused IPF sequences
//! for them. This module generalizes that from hand-picked rules to
//! *learned* ones, after the learned-rules DBT line of work: it
//!
//! 1. **mines** recurring adjacent-instruction idioms from the per
//!    block profile counters (and, when lifecycle tracing is on, the
//!    tracer's [`crate::trace::ProfileTable`]), ranking idiom classes
//!    by dynamic frequency — compare+branch, mov+alu pairs and
//!    triples, same-destination ALU chains, push/push(+call) and
//!    push/pop sequences, and lea/mod-rm addressing idioms;
//! 2. **synthesizes** a fused template for each winner by composing
//!    the existing template emitters with the provably-dead
//!    intermediate writebacks elided ([`crate::templates::fused`]);
//! 3. **validates** every synthesized template differentially against
//!    the interpreter oracle before it may fire: the template runs on
//!    a scratch IPF machine over a deterministic sparse bus, the same
//!    guest instructions run through [`ia32::interp::Interp`], and any
//!    divergence in registers, live EFLAGS, touched memory, or branch
//!    direction demotes the idiom to the unfused path (a blacklist,
//!    never a death);
//! 4. **installs** the surviving table in both phases — a peephole
//!    window in the cold generator and in hot trace construction —
//!    and serializes it into warm-start images (format v3) and the
//!    multi-tenant shared cache so co-tenants and warm boots fuse
//!    from the first dispatch.
//!
//! Everything is deterministic: mining iterates profiles in EIP
//! order, ranking breaks ties by idiom kind, validation inputs are
//! fixed vectors, and the simulated costs are flat constants charged
//! to the OVERHEAD region.

use crate::state::{self, cpu_to_machine, machine_to_cpu};
use crate::templates::{self, fused, AccessMode, AlignCache, EmitCtx, FpCtx, MisalignPlan, XmmCtx};
use ia32::cpu::Cpu;
use ia32::inst::{AluOp, Inst, Rm, RmI};
use ia32::mem::{GuestMem, Prot, PAGE_SIZE};
use ia32::regs::Gpr;
use ia32::{flags, Size};
use ipf::inst::{Op, Target};
use ipf::machine::{Bus, BusError, CodeArena, Machine, StopReason};
use ipf::regs::{Pr, R0};
use std::collections::HashMap;

/// Maximum same-destination ALU chain length the matcher will fuse.
pub const MAX_CHAIN: usize = 6;
/// Idiom instances below this dynamic weight are not worth a template.
pub const MIN_WEIGHT: u64 = 8;
/// Simulated mining cost per profiled block (OVERHEAD region).
pub const MINE_CYCLES_PER_BLOCK: u64 = 40;
/// Simulated differential-validation cost per mined idiom.
pub const VALIDATE_CYCLES_PER_IDIOM: u64 = 600;
/// Cold-translated block count that triggers the early mining pass.
pub const COLD_MINE_TRIGGER: u64 = 24;
/// Longest idiom the matcher window looks at (chain + branch slack).
const WINDOW: usize = MAX_CHAIN + 2;
/// Where the scratch validation arena lives.
const VALIDATE_ARENA_BASE: u64 = 0x5000_0000;
/// Sentinel branch target ending a validation run.
const VALIDATE_EXIT: u64 = 0x7FF0_0000;
/// Native-instruction budget for one validation run.
const VALIDATE_INST_CAP: u64 = 4096;

/// The idiom classes the miner recognizes. `PushPushCall` and `LeaMem`
/// are *mined-only*: they are reported in the ranking (the paper calls
/// them out) but no fused template is synthesized for them yet, so
/// [`IdiomKind::fuseable`] is false and they never fire.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum IdiomKind {
    /// Flag-setter + conditional branch (the canonical fusion; firing
    /// reuses the existing `emit_fused_cmp_jcc` template).
    CmpJcc = 0,
    /// `mov rd, rs ; alu rd ; jcc` — the mov absorbed into the fused
    /// compare+branch.
    MovAluJcc = 1,
    /// `mov rd, rs ; alu rd, src` — the mov's writeback elided.
    MovAlu = 2,
    /// Same-destination ALU chain with one writeback at the end.
    AluChain = 3,
    /// Two pushes sharing one ESP writeback.
    PushPush = 4,
    /// `push ; pop` store-forwarded, ESP untouched.
    PushPop = 5,
    /// `push ; push ; call` — recognized and ranked, not yet fused.
    PushPushCall = 6,
    /// `lea` feeding the next instruction's addressing — recognized
    /// and ranked, not yet fused.
    LeaMem = 7,
}

impl IdiomKind {
    /// All kinds, in discriminant order.
    pub const ALL: [IdiomKind; 8] = [
        IdiomKind::CmpJcc,
        IdiomKind::MovAluJcc,
        IdiomKind::MovAlu,
        IdiomKind::AluChain,
        IdiomKind::PushPush,
        IdiomKind::PushPop,
        IdiomKind::PushPushCall,
        IdiomKind::LeaMem,
    ];

    /// Stable display name (bench/figures output).
    pub fn name(self) -> &'static str {
        match self {
            IdiomKind::CmpJcc => "cmp+jcc",
            IdiomKind::MovAluJcc => "mov+alu+jcc",
            IdiomKind::MovAlu => "mov+alu",
            IdiomKind::AluChain => "alu-chain",
            IdiomKind::PushPush => "push+push",
            IdiomKind::PushPop => "push+pop",
            IdiomKind::PushPushCall => "push+push+call",
            IdiomKind::LeaMem => "lea+mem",
        }
    }

    /// Whether a fused template exists for this kind.
    pub fn fuseable(self) -> bool {
        !matches!(self, IdiomKind::PushPushCall | IdiomKind::LeaMem)
    }

    fn from_u8(b: u8) -> Option<IdiomKind> {
        IdiomKind::ALL.get(b as usize).copied()
    }
}

/// One mined idiom: its class, accumulated dynamic weight, and the
/// EIP of the heaviest concrete instance (the validation exemplar).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MinedIdiom {
    /// Idiom class.
    pub kind: IdiomKind,
    /// Dynamic weight: Σ over instances of the containing block's use
    /// count (plus tracer dispatch counts when tracing is on).
    pub weight: u64,
    /// Head EIP of the heaviest instance, re-decoded for validation.
    pub exemplar: u32,
}

/// Serialized size of one [`MinedIdiom`] (kind + weight + exemplar).
pub const IDIOM_WIRE_BYTES: usize = 13;

/// The mined idiom table: ranked idioms plus the per-kind enable mask
/// maintained by the differential validation gate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IdiomTable {
    idioms: Vec<MinedIdiom>,
    enabled: u16,
}

impl IdiomTable {
    /// Builds a table from mined idioms: sorted by weight descending
    /// (kind discriminant breaks ties, so ranking is deterministic),
    /// everything initially enabled.
    pub fn new(mut idioms: Vec<MinedIdiom>) -> IdiomTable {
        idioms.sort_by(|a, b| {
            b.weight
                .cmp(&a.weight)
                .then((a.kind as u8).cmp(&(b.kind as u8)))
        });
        let mut enabled = 0u16;
        for i in &idioms {
            enabled |= 1 << i.kind as u8;
        }
        IdiomTable { idioms, enabled }
    }

    /// Ranked idioms, heaviest first.
    pub fn idioms(&self) -> &[MinedIdiom] {
        &self.idioms
    }

    /// Number of mined idioms (enabled or not).
    pub fn len(&self) -> usize {
        self.idioms.len()
    }

    /// True when nothing was mined.
    pub fn is_empty(&self) -> bool {
        self.idioms.is_empty()
    }

    /// Number of idioms that passed validation and may fire.
    pub fn enabled_count(&self) -> usize {
        self.idioms
            .iter()
            .filter(|i| self.enabled & (1 << i.kind as u8) != 0)
            .count()
    }

    /// Whether templates of `kind` may fire: mined, fuseable, and not
    /// blacklisted by validation.
    pub fn active(&self, kind: IdiomKind) -> bool {
        kind.fuseable() && self.enabled & (1 << kind as u8) != 0
    }

    /// Demotes `kind` to the unfused path (validation failure).
    pub fn disable(&mut self, kind: IdiomKind) {
        self.enabled &= !(1 << kind as u8);
    }

    /// Whether `kind` was ever mined into this table — enabled or
    /// demoted. A demoted kind still "counts": the merge pass must not
    /// re-validate (and accidentally re-enable) what the gate rejected.
    pub fn contains(&self, kind: IdiomKind) -> bool {
        self.idioms.iter().any(|i| i.kind == kind)
    }

    /// Inserts a newly mined idiom (enabled), keeping the ranking
    /// order. Used by the second mining pass to add kinds the early
    /// cold-phase pass had not yet observed.
    pub fn insert(&mut self, idiom: MinedIdiom) {
        debug_assert!(!self.contains(idiom.kind), "insert of a mined kind");
        self.idioms.push(idiom);
        self.idioms.sort_by(|a, b| {
            b.weight
                .cmp(&a.weight)
                .then((a.kind as u8).cmp(&(b.kind as u8)))
        });
        self.enabled |= 1 << idiom.kind as u8;
    }

    /// Wire format: `[kind u8][weight u64 le][exemplar u32 le]` per
    /// idiom, enabled idioms only (a reloaded table re-enables what it
    /// carries and nothing else).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.idioms.len() * IDIOM_WIRE_BYTES);
        for i in &self.idioms {
            if self.enabled & (1 << i.kind as u8) == 0 {
                continue;
            }
            out.push(i.kind as u8);
            out.extend_from_slice(&i.weight.to_le_bytes());
            out.extend_from_slice(&i.exemplar.to_le_bytes());
        }
        out
    }

    /// Parses [`IdiomTable::serialize`] output. `None` on any malformed
    /// byte (the caller degrades to mining from scratch).
    pub fn deserialize(bytes: &[u8]) -> Option<IdiomTable> {
        if !bytes.len().is_multiple_of(IDIOM_WIRE_BYTES) {
            return None;
        }
        let mut idioms = Vec::with_capacity(bytes.len() / IDIOM_WIRE_BYTES);
        for chunk in bytes.chunks_exact(IDIOM_WIRE_BYTES) {
            let kind = IdiomKind::from_u8(chunk[0])?;
            let weight = u64::from_le_bytes(chunk[1..9].try_into().unwrap());
            let exemplar = u32::from_le_bytes(chunk[9..13].try_into().unwrap());
            idioms.push(MinedIdiom {
                kind,
                weight,
                exemplar,
            });
        }
        Some(IdiomTable::new(idioms))
    }
}

/// Per-engine superinstruction state, living in the translation cache
/// (it describes the translations, so it is shareable like them).
#[derive(Default, Debug)]
pub struct SuperinstState {
    /// The active idiom table, once mined or installed.
    pub table: Option<IdiomTable>,
    /// The hot-session mining pass ran (or was skipped because a table
    /// arrived from a warm-start image or shared namespace).
    pub mined: bool,
    /// The early cold-phase mining pass ran. Most cold translation
    /// happens before the first hot session, so waiting for it would
    /// leave nearly all cold code unfused; the early pass (triggered by
    /// translated-block count) catches that mass, and the hot pass
    /// merges in whatever kinds the early profiles had not surfaced.
    pub cold_mined: bool,
    /// The table was installed from a persisted image or a co-tenant
    /// rather than mined locally.
    pub imported: bool,
}

// ---------------------------------------------------------------------
// Matching
// ---------------------------------------------------------------------

/// `mov rd, rs` between distinct 32-bit registers.
fn as_mov_rr(inst: &Inst) -> Option<(Gpr, Gpr)> {
    if let Inst::Mov {
        size: Size::D,
        dst: Rm::Reg(d),
        src: RmI::Reg(s),
    } = inst
    {
        if d.num() != s.num() {
            return Some((*d, *s));
        }
    }
    None
}

/// A 32-bit register-destination ALU with a register/immediate source
/// and no carry input: a chain member / absorbable pair middle.
fn as_chain_alu(inst: &Inst) -> Option<(AluOp, Gpr, RmI)> {
    if let Inst::Alu {
        op,
        size: Size::D,
        dst: Rm::Reg(d),
        src: src @ (RmI::Reg(_) | RmI::Imm(_)),
    } = inst
    {
        if fused::chainable(*op) {
            return Some((*op, *d, *src));
        }
    }
    None
}

/// The middle of a `MovAluJcc` triple writing `rd`: the `try_fuse`
/// compatible result-condition ALUs plus inc/dec.
fn as_triple_alu(inst: &Inst, rd: Gpr) -> bool {
    match inst {
        Inst::IncDec {
            size: Size::D,
            dst: Rm::Reg(d),
            ..
        } => d.num() == rd.num(),
        Inst::Alu {
            op: AluOp::Sub | AluOp::And | AluOp::Or | AluOp::Xor,
            size: Size::D,
            dst: Rm::Reg(d),
            src: RmI::Reg(_) | RmI::Imm(_),
        } => d.num() == rd.num(),
        _ => false,
    }
}

/// `push reg/imm` (the simple forms the fused stack idioms accept).
fn as_push_simple(inst: &Inst) -> Option<RmI> {
    if let Inst::Push {
        src: src @ (RmI::Reg(_) | RmI::Imm(_)),
    } = inst
    {
        return Some(*src);
    }
    None
}

/// `pop reg` with a non-ESP destination.
fn as_pop_reg(inst: &Inst) -> Option<Gpr> {
    if let Inst::Pop { dst: Rm::Reg(r) } = inst {
        if r.num() != 4 {
            return Some(*r);
        }
    }
    None
}

/// Whether `flag_setter` + `jcc cond` is fusable by the existing
/// `emit_fused_cmp_jcc` template (mirrors `int::try_fuse`'s arms).
fn cmp_jcc_fusable(flag_setter: &Inst, cond: ia32::Cond) -> bool {
    // Memory-operand flag setters are excluded: the validation harness
    // runs exemplars on synthetic entry registers, so a memory form
    // could take a spurious alignment fault and wrongly demote the
    // whole kind. The baseline `enable_fusion` path still fuses them.
    if flag_setter.mem_operands().is_some() {
        return false;
    }
    match flag_setter {
        Inst::Alu { op: AluOp::Cmp, .. } => fused::cmp_cond_fusable(cond),
        Inst::Test { .. } => fused::result_cond_fusable(cond),
        Inst::IncDec { .. } => {
            fused::result_cond_fusable(cond) && cond.flags_read() & flags::CF == 0
        }
        Inst::Alu {
            op: AluOp::Sub | AluOp::And | AluOp::Or | AluOp::Xor,
            ..
        } => fused::result_cond_fusable(cond),
        _ => false,
    }
}

/// Strict adjacency: `b` starts exactly where `a` ends.
fn adj(a: &(u32, Inst, u8), b: &(u32, Inst, u8)) -> bool {
    b.0 == a.0.wrapping_add(a.2 as u32)
}

/// Classifies the idiom starting at `insts[i]` for the miner (no
/// liveness or table constraints). Returns the kind and the number of
/// instructions covered.
pub fn classify(insts: &[(u32, Inst, u8)], i: usize) -> Option<(IdiomKind, usize)> {
    match_with(insts, i, &|_| true, None)
}

/// Classifies + gates the idiom starting at `insts[i]` for a peephole:
/// only `table`-active kinds match, and `live_after(j)` (EFLAGS live
/// after instruction index `j`) enforces the dead-intermediate rules.
pub fn match_at(
    table: &IdiomTable,
    insts: &[(u32, Inst, u8)],
    i: usize,
    live_after: &mut dyn FnMut(usize) -> u32,
) -> Option<(IdiomKind, usize)> {
    match_with(insts, i, &|k| table.active(k), Some(live_after))
}

fn match_with(
    insts: &[(u32, Inst, u8)],
    i: usize,
    active: &dyn Fn(IdiomKind) -> bool,
    mut live_after: Option<&mut dyn FnMut(usize) -> u32>,
) -> Option<(IdiomKind, usize)> {
    let cur = insts.get(i)?;
    // mov rd, rs; …
    if let Some((rd, _rs)) = as_mov_rr(&cur.1) {
        let next = insts.get(i + 1).filter(|n| adj(cur, n))?;
        // … alu rd ; jcc → the triple (checked first: a pair match
        // here would steal the flag setter from the terminal fusion).
        if as_triple_alu(&next.1, rd) {
            if let Some(third) = insts.get(i + 2).filter(|t| adj(next, t)) {
                if let Inst::Jcc { cond, .. } = third.1 {
                    if active(IdiomKind::MovAluJcc)
                        && fused::result_cond_fusable(cond)
                        && cond.flags_read() & flags::CF == 0
                        && cmp_jcc_fusable(&next.1, cond)
                    {
                        return Some((IdiomKind::MovAluJcc, 3));
                    }
                    // The jcc consumes the alu's flags: leave the pair
                    // alone so the plain cmp+jcc fusion still gets it.
                    if cmp_jcc_fusable(&next.1, cond) {
                        return None;
                    }
                }
            }
        }
        // … alu rd, src → the absorbable pair.
        if let Some((_, d, _)) = as_chain_alu(&next.1) {
            if d.num() == rd.num() && active(IdiomKind::MovAlu) {
                return Some((IdiomKind::MovAlu, 2));
            }
        }
        return None;
    }
    // flag-setter ; jcc → cmp+jcc (existing template; mined so firings
    // count and so the class appears in the ranking).
    if let Some(next) = insts.get(i + 1).filter(|n| adj(cur, n)) {
        if let Inst::Jcc { cond, .. } = next.1 {
            if cmp_jcc_fusable(&cur.1, cond) && active(IdiomKind::CmpJcc) {
                return Some((IdiomKind::CmpJcc, 2));
            }
        }
    }
    // alu rd ; alu rd ; … → same-destination chain.
    if let Some((_, rd, _)) = as_chain_alu(&cur.1) {
        let mut n = 1;
        while n < MAX_CHAIN {
            let Some(next) = insts.get(i + n).filter(|x| adj(&insts[i + n - 1], x)) else {
                break;
            };
            match as_chain_alu(&next.1) {
                Some((_, d, _)) if d.num() == rd.num() => n += 1,
                _ => break,
            }
        }
        // Do not consume a flag setter whose flags feed a following
        // fused branch — shrink the chain to end before it.
        if let Some(after) = insts.get(i + n).filter(|x| adj(&insts[i + n - 1], x)) {
            if let Inst::Jcc { cond, .. } = after.1 {
                if cmp_jcc_fusable(&insts[i + n - 1].1, cond) {
                    n -= 1;
                }
            }
        }
        if n >= 2 && active(IdiomKind::AluChain) {
            // Every non-final member's flags must be dead: the chain
            // carries untruncated intermediates that cannot feed the
            // flag sequences.
            if let Some(live) = live_after.as_mut() {
                for (j, inst) in insts.iter().enumerate().take(i + n - 1).skip(i) {
                    if live(j) & inst.1.flags_written_maybe() != 0 {
                        return None;
                    }
                }
            }
            return Some((IdiomKind::AluChain, n));
        }
        return None;
    }
    // push …
    if let Some(_s1) = as_push_simple(&cur.1) {
        let next = insts.get(i + 1).filter(|n| adj(cur, n))?;
        if as_pop_reg(&next.1).is_some() && active(IdiomKind::PushPop) {
            return Some((IdiomKind::PushPop, 2));
        }
        if let Some(s2) = as_push_simple(&next.1) {
            // The second push's source must not be ESP: it would read
            // the already-decremented value.
            if matches!(s2, RmI::Reg(r) if r.num() == 4) {
                return None;
            }
            if let Some(third) = insts.get(i + 2).filter(|t| adj(next, t)) {
                if matches!(third.1, Inst::Call { .. }) && active(IdiomKind::PushPushCall) {
                    return Some((IdiomKind::PushPushCall, 3));
                }
            }
            if active(IdiomKind::PushPush) {
                return Some((IdiomKind::PushPush, 2));
            }
        }
        return None;
    }
    // lea rd, [..] ; <mem op based on rd> → addressing idiom (ranked
    // only).
    if let Inst::Lea { dst, .. } = cur.1 {
        let next = insts.get(i + 1).filter(|n| adj(cur, n))?;
        if let Some(addr) = next.1.mem_operands() {
            if addr.base.map(|b| b.num()) == Some(dst.num()) && active(IdiomKind::LeaMem) {
                return Some((IdiomKind::LeaMem, 2));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Mining
// ---------------------------------------------------------------------

/// Decodes a block for mining: straight-line decode from `eip` until
/// a block terminator (included, mirroring cold discovery's
/// `DiscBlock`), decode failure, or a generous instruction cap.
pub fn decode_block(mem: &GuestMem, eip: u32) -> Vec<(u32, Inst, u8)> {
    let mut insts = Vec::new();
    let mut ip = eip;
    for _ in 0..64 {
        let Some(bytes) = (1..=16usize)
            .rev()
            .find_map(|n| mem.fetch(ip as u64, n).ok())
        else {
            break;
        };
        let Ok((inst, len)) = ia32::decode::decode(&bytes, ip) else {
            break;
        };
        let ends = inst.ends_block();
        insts.push((ip, inst, len as u8));
        if ends {
            break;
        }
        ip = ip.wrapping_add(len as u32);
    }
    insts
}

/// One profiled block: entry EIP, dynamic weight (use counter), and
/// the decoded instructions.
#[derive(Clone, Debug)]
pub struct BlockSample {
    /// Block entry EIP.
    pub eip: u32,
    /// Dynamic weight (block use counter + tracer dispatches).
    pub weight: u64,
    /// Decoded instructions `(ip, inst, len)`.
    pub insts: Vec<(u32, Inst, u8)>,
}

/// Mines the idiom table from profiled blocks. Deterministic: samples
/// are scanned in the order given (the engine passes EIP order), the
/// heaviest instance of each kind becomes its exemplar (EIP breaks
/// ties), and ranking is by total weight with the kind discriminant as
/// tiebreak.
pub fn mine(samples: &[BlockSample]) -> IdiomTable {
    struct Acc {
        weight: u64,
        exemplar: u32,
        exemplar_weight: u64,
    }
    let mut acc: HashMap<IdiomKind, Acc> = HashMap::new();
    for s in samples {
        let mut i = 0;
        while i < s.insts.len() {
            match classify(&s.insts, i) {
                Some((kind, len)) => {
                    let head = s.insts[i].0;
                    let a = acc.entry(kind).or_insert(Acc {
                        weight: 0,
                        exemplar: head,
                        exemplar_weight: 0,
                    });
                    a.weight += s.weight;
                    if s.weight > a.exemplar_weight
                        || (s.weight == a.exemplar_weight && head < a.exemplar)
                    {
                        a.exemplar = head;
                        a.exemplar_weight = s.weight;
                    }
                    i += len;
                }
                None => i += 1,
            }
        }
    }
    let idioms = IdiomKind::ALL
        .iter()
        .filter_map(|&k| {
            let a = acc.get(&k)?;
            if a.weight < MIN_WEIGHT {
                return None;
            }
            Some(MinedIdiom {
                kind: k,
                weight: a.weight,
                exemplar: a.exemplar,
            })
        })
        .collect();
    IdiomTable::new(idioms)
}

// ---------------------------------------------------------------------
// Differential validation
// ---------------------------------------------------------------------

/// Deterministic fill byte for unwritten validation memory; the oracle
/// side pre-fills its pages with the same pattern.
fn fill(addr: u64) -> u8 {
    (addr as u8) ^ ((addr >> 8) as u8).wrapping_mul(0x9D) ^ 0x5A
}

/// A byte-granular bus accepting every address: unwritten bytes read
/// as the deterministic fill pattern, and every touched address is
/// recorded for the memory comparison.
struct SparseBus {
    written: HashMap<u64, u8>,
    touched: Vec<u64>,
}

impl SparseBus {
    fn new() -> SparseBus {
        SparseBus {
            written: HashMap::new(),
            touched: Vec::new(),
        }
    }

    fn byte(&self, addr: u64) -> u8 {
        self.written
            .get(&addr)
            .copied()
            .unwrap_or_else(|| fill(addr))
    }
}

impl Bus for SparseBus {
    fn read(&mut self, addr: u64, size: u32) -> Result<u64, BusError> {
        let mut v = 0u64;
        for k in 0..size as u64 {
            self.touched.push(addr + k);
            v |= (self.byte(addr + k) as u64) << (8 * k);
        }
        Ok(v)
    }

    fn write(&mut self, addr: u64, size: u32, val: u64) -> Result<(), BusError> {
        for k in 0..size as u64 {
            self.touched.push(addr + k);
            self.written.insert(addr + k, (val >> (8 * k)) as u8);
        }
        Ok(())
    }
}

/// Entry-state vectors for validation: all values 4-aligned (the
/// machine faults on misaligned accesses), far from typical guest code
/// pages, with ESI held at a canary value the chaos test relies on.
/// The first vector sets CF|ZF on entry, the second SF — stale-flag
/// leakage shows up in the live-flags leg.
const ENTRY_VECTORS: [([u32; 8], u32); 2] = [
    (
        [
            0x0030_0000,
            0x0030_0040,
            0x0030_0080,
            0x0030_00C0,
            0x0030_0100, // ESP
            0x0030_0140,
            0x0034_F00C, // ESI canary
            0x0030_01C0,
        ],
        flags::RESERVED_ONES | flags::CF | flags::ZF,
    ),
    (
        [
            0x0030_0040,
            0x0030_0040,
            0,
            0xFFFF_FFFC,
            0x0030_0100, // ESP
            8,
            0x0034_F00C, // ESI canary
            0x7FFF_FFFC,
        ],
        flags::RESERVED_ONES | flags::SF,
    ),
];

/// What the chaos `TemplateSynth` fault injects: the corruption applied
/// to a synthesized template's emitted code before validation runs.
pub fn corrupt_template(arena: &mut CodeArena, addr: u64) {
    // Clobber the first micro-op with a write that zeroes ESI — the
    // canary register the entry vectors pin — so the corrupted
    // template provably diverges from the oracle.
    arena.patch_slot(
        addr,
        0,
        Op::Zxt {
            d: state::guest_gpr(6),
            a: R0,
            size: 4,
        },
    );
}

/// Outcome of emitting a fused idiom template.
pub(crate) enum FusedEmit {
    /// Straight-line idiom emitted; execution falls through.
    Plain,
    /// Branch idiom emitted; the predicate is true when taken.
    Branch(Pr),
    /// The concrete instructions don't fit the template after all; the
    /// caller falls back to the unfused path.
    Refused,
}

/// Emits the fused template for `kind` over `insts` (exactly the
/// idiom's instructions, head first). `ctx.ip` must be the idiom's
/// head IP and `ctx.live_flags` the EFLAGS liveness *after the idiom's
/// last instruction* — the per-kind writeback masks are derived here.
/// This single dispatch is shared by the cold peephole, the hot trace
/// peephole, and the differential validator, so what gets validated is
/// exactly what fires.
pub(crate) fn emit_idiom(
    sink: &mut templates::Sink,
    ctx: &mut EmitCtx<'_>,
    kind: IdiomKind,
    insts: &[(u32, Inst, u8)],
) -> FusedEmit {
    let n = insts.len();
    let live = ctx.live_flags;
    match kind {
        IdiomKind::MovAlu => {
            let (Some((rd, rs)), Some((op, _, src))) =
                (as_mov_rr(&insts[0].1), as_chain_alu(&insts[1].1))
            else {
                return FusedEmit::Refused;
            };
            let l = live & insts[1].1.flags_written_maybe();
            fused::emit_mov_alu(sink, ctx, rd, rs, op, &src, l);
            FusedEmit::Plain
        }
        IdiomKind::MovAluJcc => {
            let Some((rd, rs)) = as_mov_rr(&insts[0].1) else {
                return FusedEmit::Refused;
            };
            let Inst::Jcc { cond, .. } = insts[2].1 else {
                return FusedEmit::Refused;
            };
            let l = live & insts[1].1.flags_written();
            match fused::emit_mov_alu_jcc(sink, ctx, rd, rs, &insts[1].1, cond, l) {
                Some(p) => FusedEmit::Branch(p),
                None => FusedEmit::Refused,
            }
        }
        IdiomKind::CmpJcc => {
            let Inst::Jcc { cond, .. } = insts[1].1 else {
                return FusedEmit::Refused;
            };
            match templates::emit_fused_cmp_jcc(sink, &insts[0].1, cond, ctx) {
                Some(p) => FusedEmit::Branch(p),
                None => FusedEmit::Refused,
            }
        }
        IdiomKind::AluChain => {
            let members: Vec<(AluOp, RmI)> = insts
                .iter()
                .filter_map(|x| as_chain_alu(&x.1).map(|(op, _, src)| (op, src)))
                .collect();
            if members.len() != n {
                return FusedEmit::Refused;
            }
            let Some((_, rd, _)) = as_chain_alu(&insts[0].1) else {
                return FusedEmit::Refused;
            };
            let l = live & insts[n - 1].1.flags_written_maybe();
            fused::emit_alu_chain(sink, ctx, rd, &members, l);
            FusedEmit::Plain
        }
        IdiomKind::PushPush => {
            let (Some(s1), Some(s2)) = (as_push_simple(&insts[0].1), as_push_simple(&insts[1].1))
            else {
                return FusedEmit::Refused;
            };
            fused::emit_push_push(sink, ctx, &s1, &s2);
            FusedEmit::Plain
        }
        IdiomKind::PushPop => {
            let (Some(src), Some(rd)) = (as_push_simple(&insts[0].1), as_pop_reg(&insts[1].1))
            else {
                return FusedEmit::Refused;
            };
            fused::emit_push_pop(sink, ctx, &src, rd);
            FusedEmit::Plain
        }
        IdiomKind::PushPushCall | IdiomKind::LeaMem => FusedEmit::Refused,
    }
}

/// Differentially validates one mined idiom's synthesized template
/// against the interpreter oracle.
///
/// The exemplar instructions are re-decoded from guest memory, the
/// fused template is emitted exactly as the peepholes would emit it,
/// lowered, assembled and run on a scratch machine over a sparse bus;
/// the same instructions run through [`ia32::interp::Interp`] on a
/// scratch [`GuestMem`]. Registers, live EFLAGS, every machine-touched
/// memory byte, and (for branch idioms) the taken decision must agree
/// on two entry vectors × two liveness legs. Any fault, decode
/// failure, or divergence returns `false` — the caller demotes the
/// idiom, it never dies.
///
/// `corrupt` arms the chaos `TemplateSynth` injection: the assembled
/// template is corrupted via [`corrupt_template`] before each run.
pub fn validate(mem: &GuestMem, timing: ipf::Timing, idiom: &MinedIdiom, corrupt: bool) -> bool {
    // Re-decode the exemplar window.
    let mut insts: Vec<(u32, Inst, u8)> = Vec::new();
    let mut ip = idiom.exemplar;
    for _ in 0..WINDOW {
        // Near a page end a full 16-byte fetch can fail even though the
        // remaining instructions fit; fall back to shorter windows, and
        // stop (rather than refuse) once decode runs dry — only the
        // idiom-length prefix matters below.
        let Some(bytes) = (1..=16usize)
            .rev()
            .find_map(|n| mem.fetch(ip as u64, n).ok())
        else {
            break;
        };
        let Ok((inst, len)) = ia32::decode::decode(&bytes, ip) else {
            break;
        };
        insts.push((ip, inst, len as u8));
        ip = ip.wrapping_add(len as u32);
    }
    // The exemplar must still classify as the mined kind (guest code
    // may have changed since mining).
    let Some((kind, len)) = classify(&insts, 0) else {
        return false;
    };
    if kind != idiom.kind || !kind.fuseable() {
        return false;
    }
    let head = insts[0].0;
    let total_len: u32 = insts[..len].iter().map(|x| x.2 as u32).sum();
    let end_ip = head.wrapping_add(total_len);
    let Ok(code_bytes) = mem.fetch(head as u64, total_len as usize) else {
        return false;
    };
    let code_page = head as u64 & !(PAGE_SIZE - 1);
    let code_page_end = (end_ip as u64 - 1) & !(PAGE_SIZE - 1);

    for (gprs, eflags) in ENTRY_VECTORS {
        for live in [flags::STATUS, 0u32] {
            // --- Emit the fused template as the peepholes would. ---
            let mut sink = templates::Sink::new();
            sink.set_ip(head);
            let mut fp = FpCtx::new(0, false);
            let mut xmm = XmmCtx::new(0);
            let misalign = MisalignPlan::uniform(AccessMode::Fast, 0);
            let mut align = AlignCache::default();
            let mut ctx = EmitCtx {
                ip: head,
                next_ip: end_ip,
                live_flags: live,
                fp: &mut fp,
                xmm: &mut xmm,
                misalign: &misalign,
                align: &mut align,
            };
            let fe = emit_idiom(&mut sink, &mut ctx, kind, &insts[..len]);
            let pred = match fe {
                FusedEmit::Plain => None,
                FusedEmit::Branch(p) => Some(p),
                FusedEmit::Refused => return false,
            };
            let branch_idiom = pred.is_some();
            // Materialize the branch predicate so it can be compared.
            if let Some(p) = pred {
                sink.mov_imm(state::GR_PAYLOAD0, 0);
                sink.emit_pred(
                    p,
                    Op::AddImm {
                        d: state::GR_PAYLOAD0,
                        imm: 1,
                        a: R0,
                    },
                );
            }
            sink.emit(Op::Br {
                target: Target::Abs(VALIDATE_EXIT),
            });

            // --- Lower, assemble, (maybe corrupt), run. ---
            let mut cb = ipf::asm::CodeBuilder::new();
            if crate::cold::lower::lower(&sink, &mut cb).is_err() {
                return false;
            }
            let (bundles, _) = cb.assemble(VALIDATE_ARENA_BASE);
            let mut arena = CodeArena::new(VALIDATE_ARENA_BASE);
            let addr = arena.append(bundles, 0);
            if corrupt {
                corrupt_template(&mut arena, addr);
            }
            let cpu = Cpu {
                gpr: gprs,
                eflags,
                eip: head,
                ..Default::default()
            };
            let mut m = Machine::new(arena, timing);
            cpu_to_machine(&cpu, &mut m);
            m.gr[state::GR_ONE.0 as usize] = 1;
            m.set_ip(addr, 0);
            let mut bus = SparseBus::new();
            match m.run(&mut bus, VALIDATE_INST_CAP) {
                StopReason::ExternalBranch { target, .. } if target == VALIDATE_EXIT => {}
                _ => return false,
            }

            // --- Oracle. ---
            let mut omem = GuestMem::new();
            let mut pages: Vec<u64> = bus.touched.iter().map(|a| a & !(PAGE_SIZE - 1)).collect();
            pages.sort_unstable();
            pages.dedup();
            if pages.contains(&code_page) || pages.contains(&code_page_end) {
                // The synthetic data addresses collided with the
                // exemplar's code page; conservatively refuse to fuse.
                return false;
            }
            for &p in &pages {
                omem.map(p, PAGE_SIZE, Prot::rw());
                let patt: Vec<u8> = (0..PAGE_SIZE).map(|k| fill(p + k)).collect();
                omem.write_forced(p, &patt);
            }
            omem.map(
                code_page,
                code_page_end - code_page + PAGE_SIZE,
                Prot::rwx(),
            );
            omem.write_forced(head as u64, &code_bytes);
            let mut interp = ia32::interp::Interp::new();
            interp.cpu = cpu.clone();
            for _ in 0..len {
                match interp.step(&mut omem) {
                    Ok(ia32::interp::Event::Continue) => {}
                    _ => return false,
                }
            }

            // --- Compare. ---
            let mc = machine_to_cpu(&m, interp.cpu.eip);
            if mc.gpr != interp.cpu.gpr {
                return false;
            }
            if (mc.eflags ^ interp.cpu.eflags) & live & flags::STATUS != 0 {
                return false;
            }
            let mut taddrs = bus.touched.clone();
            taddrs.sort_unstable();
            taddrs.dedup();
            for a in taddrs {
                if omem.read(a, 1) != Ok(bus.byte(a) as u64) {
                    return false;
                }
            }
            if branch_idiom {
                let taken_target = match insts[len - 1].1 {
                    Inst::Jcc { target, .. } => target,
                    _ => return false,
                };
                if taken_target == end_ip {
                    // Degenerate jcc-to-fallthrough: both directions
                    // agree, either predicate value is correct.
                    continue;
                }
                // The oracle must have landed on one of the two arms.
                if interp.cpu.eip != taken_target && interp.cpu.eip != end_ip {
                    return false;
                }
                let oracle_taken = interp.cpu.eip == taken_target;
                if m.gr[state::GR_PAYLOAD0.0 as usize] != oracle_taken as u64 {
                    return false;
                }
            } else if interp.cpu.eip != end_ip {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(bytes: &[u8], base: u32) -> Vec<(u32, Inst, u8)> {
        let mut out = Vec::new();
        let mut at = 0usize;
        while at < bytes.len() {
            let (inst, len) = ia32::decode::decode(&bytes[at..], base + at as u32).unwrap();
            out.push((base + at as u32, inst, len as u8));
            at += len;
        }
        out
    }

    #[test]
    fn classify_mov_alu_pair_and_triple() {
        // mov ecx, ebx ; add ecx, edx  →  pair.
        let insts = dec(&[0x89, 0xD9, 0x01, 0xD1], 0x1000);
        assert_eq!(classify(&insts, 0), Some((IdiomKind::MovAlu, 2)));
        // mov ecx, ebx ; sub ecx, edx ; jne  →  triple.
        let insts = dec(&[0x89, 0xD9, 0x29, 0xD1, 0x75, 0x10], 0x1000);
        assert_eq!(classify(&insts, 0), Some((IdiomKind::MovAluJcc, 3)));
        // mov ecx, ebx ; dec ecx ; jne  →  triple (inc/dec middle).
        let insts = dec(&[0x89, 0xD9, 0x49, 0x75, 0x10], 0x1000);
        assert_eq!(classify(&insts, 0), Some((IdiomKind::MovAluJcc, 3)));
    }

    #[test]
    fn classify_respects_adjacency() {
        // Same pair but pretending the alu sits elsewhere: no match.
        let mut insts = dec(&[0x89, 0xD9, 0x01, 0xD1], 0x1000);
        insts[1].0 += 4; // break adjacency
        assert_eq!(classify(&insts, 0), None);
    }

    #[test]
    fn classify_chain_and_cmp_jcc() {
        // add eax, ebx ; xor eax, ecx ; add eax, 5  →  chain of 3.
        let insts = dec(&[0x01, 0xD8, 0x31, 0xC8, 0x83, 0xC0, 0x05], 0x1000);
        assert_eq!(classify(&insts, 0), Some((IdiomKind::AluChain, 3)));
        // cmp eax, ebx ; jl  →  cmp+jcc.
        let insts = dec(&[0x39, 0xD8, 0x7C, 0x10], 0x1000);
        assert_eq!(classify(&insts, 0), Some((IdiomKind::CmpJcc, 2)));
        // sub eax, ebx ; jne: the chain matcher must leave the flag
        // setter to the branch fusion.
        let insts = dec(&[0x29, 0xD8, 0x31, 0xC8, 0x75, 0x10], 0x1000);
        // sub;xor;jne — xor's flags feed jne, so the chain shrinks to
        // 1 and no chain fires; sub+xor would steal xor from the jne.
        assert_eq!(classify(&insts, 0), None);
    }

    #[test]
    fn classify_stack_idioms() {
        // push eax ; pop ebx.
        let insts = dec(&[0x50, 0x5B], 0x1000);
        assert_eq!(classify(&insts, 0), Some((IdiomKind::PushPop, 2)));
        // push eax ; push ebx.
        let insts = dec(&[0x50, 0x53], 0x1000);
        assert_eq!(classify(&insts, 0), Some((IdiomKind::PushPush, 2)));
        // push eax ; push ebx ; call rel32.
        let insts = dec(&[0x50, 0x53, 0xE8, 0x10, 0x00, 0x00, 0x00], 0x1000);
        assert_eq!(classify(&insts, 0), Some((IdiomKind::PushPushCall, 3)));
        // push eax ; pop esp is excluded.
        let insts = dec(&[0x50, 0x5C], 0x1000);
        assert_eq!(classify(&insts, 0), None);
    }

    #[test]
    fn mining_is_deterministic_and_ranked() {
        let blk = |eip: u32, weight: u64, bytes: &[u8]| BlockSample {
            eip,
            weight,
            insts: dec(bytes, eip),
        };
        let samples = vec![
            // Heavy block: chain of 3 + cmp/jcc.
            blk(
                0x1000,
                100,
                &[
                    0x01, 0xD8, 0x31, 0xC8, 0x83, 0xC0, 0x05, 0x39, 0xD8, 0x7C, 0x10,
                ],
            ),
            // Light block: push/pop.
            blk(0x2000, 10, &[0x50, 0x5B]),
            // Below MIN_WEIGHT: push/push, must not appear.
            blk(0x3000, 3, &[0x50, 0x53]),
        ];
        let a = mine(&samples);
        let b = mine(&samples);
        assert_eq!(a, b, "mining must be deterministic");
        let kinds: Vec<_> = a.idioms().iter().map(|i| (i.kind, i.weight)).collect();
        assert_eq!(
            kinds,
            vec![
                (IdiomKind::CmpJcc, 100),
                (IdiomKind::AluChain, 100),
                (IdiomKind::PushPop, 10),
            ],
            "ranked by weight, kind breaks the tie"
        );
        assert_eq!(a.idioms()[1].exemplar, 0x1000);
        assert!(a.active(IdiomKind::AluChain));
        assert!(!a.active(IdiomKind::PushPush), "below MIN_WEIGHT");
    }

    #[test]
    fn table_serialization_round_trips() {
        let samples = vec![BlockSample {
            eip: 0x1000,
            weight: 50,
            insts: dec(&[0x01, 0xD8, 0x31, 0xC8, 0x50, 0x5B], 0x1000),
        }];
        let mut t = mine(&samples);
        t.disable(IdiomKind::AluChain);
        let rt = IdiomTable::deserialize(&t.serialize()).unwrap();
        assert!(
            !rt.active(IdiomKind::AluChain),
            "disabled idioms are dropped"
        );
        assert!(rt.active(IdiomKind::PushPop));
        assert!(IdiomTable::deserialize(&[1, 2, 3]).is_none());
    }

    #[test]
    fn match_at_enforces_table_and_liveness() {
        let insts = dec(&[0x01, 0xD8, 0x31, 0xC8, 0x83, 0xC0, 0x05], 0x1000);
        let table = IdiomTable::new(vec![MinedIdiom {
            kind: IdiomKind::AluChain,
            weight: 100,
            exemplar: 0x1000,
        }]);
        let mut dead = |_: usize| 0u32;
        assert_eq!(
            match_at(&table, &insts, 0, &mut dead),
            Some((IdiomKind::AluChain, 3))
        );
        // Intermediate flags live → no fusion.
        let mut live = |j: usize| if j == 0 { flags::ZF } else { 0 };
        assert_eq!(match_at(&table, &insts, 0, &mut live), None);
        // Kind not in the table → no fusion.
        let other = IdiomTable::new(vec![MinedIdiom {
            kind: IdiomKind::PushPop,
            weight: 100,
            exemplar: 0x1000,
        }]);
        assert_eq!(match_at(&other, &insts, 0, &mut dead), None);
    }

    fn guest_with(bytes: &[u8], at: u32) -> GuestMem {
        let mut mem = GuestMem::new();
        mem.map(at as u64 & !(PAGE_SIZE - 1), PAGE_SIZE, Prot::rwx());
        mem.write_forced(at as u64, bytes);
        mem
    }

    #[test]
    fn validation_accepts_sound_templates() {
        for (kind, bytes) in [
            (IdiomKind::MovAlu, &[0x89, 0xD9, 0x01, 0xD1][..]),
            (
                IdiomKind::MovAluJcc,
                &[0x89, 0xD9, 0x29, 0xD1, 0x75, 0x10][..],
            ),
            (
                IdiomKind::AluChain,
                &[0x01, 0xD8, 0x31, 0xC8, 0x83, 0xC0, 0x05][..],
            ),
            (IdiomKind::PushPush, &[0x50, 0x53][..]),
            (IdiomKind::PushPop, &[0x50, 0x5B][..]),
            (IdiomKind::CmpJcc, &[0x39, 0xD8, 0x7C, 0x10][..]),
        ] {
            let mem = guest_with(bytes, 0x1000);
            let idiom = MinedIdiom {
                kind,
                weight: 100,
                exemplar: 0x1000,
            };
            assert!(
                validate(&mem, ipf::Timing::default(), &idiom, false),
                "sound template rejected: {}",
                kind.name()
            );
        }
    }

    #[test]
    fn validation_catches_corrupted_templates() {
        for (kind, bytes) in [
            (IdiomKind::MovAlu, &[0x89, 0xD9, 0x01, 0xD1][..]),
            (IdiomKind::PushPop, &[0x50, 0x5B][..]),
            (
                IdiomKind::AluChain,
                &[0x01, 0xD8, 0x31, 0xC8, 0x83, 0xC0, 0x05][..],
            ),
        ] {
            let mem = guest_with(bytes, 0x1000);
            let idiom = MinedIdiom {
                kind,
                weight: 100,
                exemplar: 0x1000,
            };
            assert!(
                !validate(&mem, ipf::Timing::default(), &idiom, true),
                "corrupted template passed: {}",
                kind.name()
            );
        }
    }

    #[test]
    fn validation_rejects_stale_exemplars() {
        // Exemplar bytes no longer contain the mined idiom.
        let mem = guest_with(&[0x90, 0x90, 0x90, 0x90], 0x1000);
        let idiom = MinedIdiom {
            kind: IdiomKind::MovAlu,
            weight: 100,
            exemplar: 0x1000,
        };
        assert!(!validate(&mem, ipf::Timing::default(), &idiom, false));
    }
}
