//! EFLAGS materialization sequences.
//!
//! Computing IA-32 flags on Itanium is pure overhead — several micro-ops
//! per flag — which is why the translator's liveness analysis only
//! materializes *live* bits, and why the fused compare+branch path (in
//! [`super::int`]) skips EFLAGS entirely. These helpers are shared by
//! the cold and hot phases.

use super::Sink;
use crate::state::GR_EFLAGS;
use ia32::flags;
use ia32::Size;
use ipf::inst::{CmpRel, Op};
use ipf::regs::{Gr, Pr, R0};

/// Accumulates flag bits into a scratch register, then merges them into
/// the canonical EFLAGS register, clearing exactly the bits in the mask.
pub(super) struct FlagAcc {
    acc: Gr,
    started: bool,
}

impl FlagAcc {
    pub(super) fn new(sink: &mut Sink) -> FlagAcc {
        let acc = sink.vg();
        sink.mov(acc, R0);
        FlagAcc { acc, started: true }
    }

    /// ORs constant `bits` into the accumulator when `pt` is true.
    pub(super) fn or_pred(&mut self, sink: &mut Sink, pt: Pr, bits: u32) {
        sink.emit_pred(
            pt,
            Op::OrImm {
                d: self.acc,
                imm: bits as i64,
                a: self.acc,
            },
        );
    }

    /// Deposits a 0/1 register value at flag position `pos` and ORs it in.
    pub(super) fn or_bit(&mut self, sink: &mut Sink, bit01: Gr, pos: u8) {
        let t = sink.vg();
        sink.emit(Op::DepZ {
            d: t,
            src: bit01,
            pos,
            len: 1,
        });
        sink.emit(Op::Or {
            d: self.acc,
            a: self.acc,
            b: t,
        });
    }

    /// Merges into EFLAGS: `r41 = (r41 & !mask) | acc`, optionally
    /// predicated (variable shifts leave flags untouched on zero count).
    pub(super) fn commit(self, sink: &mut Sink, mask: u32, qp: Option<Pr>) {
        debug_assert!(self.started);
        let cleared = sink.vg();
        let qp = qp.unwrap_or(ipf::regs::P0);
        sink.emit_pred(
            qp,
            Op::AndImm {
                d: cleared,
                imm: !(mask as i64) & 0xFFFF_FFFF,
                a: GR_EFLAGS,
            },
        );
        sink.emit_pred(
            qp,
            Op::Or {
                d: GR_EFLAGS,
                a: cleared,
                b: self.acc,
            },
        );
    }
}

/// Arithmetic-flag families.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(super) enum ArithKind {
    /// `ADD`/`ADC` (carry = bit `size` of the 64-bit sum).
    Add,
    /// `SUB`/`SBB`/`CMP`/`NEG` (borrow = sign of the 64-bit difference).
    Sub,
    /// Logic ops: CF/OF/AF cleared.
    Logic,
    /// `INC` (CF untouched).
    Inc,
    /// `DEC` (CF untouched).
    Dec,
}

/// Emits the flag updates for an arithmetic result.
///
/// * `a`, `b` — operands, zero-extended to `size` (64-bit registers).
///   For `Inc`/`Dec`, `b` should be [`GR_ONE`]. For `NEG`, pass
///   `a` = the operand and kind [`ArithKind::Sub`] with `b` = operand
///   and `a` = `r0` swapped by the caller.
/// * `res64` — the untruncated 64-bit arithmetic result.
/// * `res` — the result truncated (and zero-extended) to `size`.
/// * `live` — the flag bits to materialize (already masked to what the
///   instruction architecturally writes).
/// * `qp` — optional gate (variable shift counts of zero skip updates).
#[allow(clippy::too_many_arguments)]
pub(super) fn arith_flags(
    sink: &mut Sink,
    kind: ArithKind,
    a: Gr,
    b: Gr,
    res64: Gr,
    res: Gr,
    size: Size,
    live: u32,
    qp: Option<Pr>,
) {
    if live == 0 {
        return;
    }
    let mut fa = FlagAcc::new(sink);
    let bits = size.bits() as u8;

    if live & flags::CF != 0 {
        match kind {
            ArithKind::Add => {
                // Carry out = bit `size` of the 64-bit sum.
                let pt = sink.vp();
                let pf = sink.vp();
                sink.emit(Op::Tbit {
                    pt,
                    pf,
                    r: res64,
                    pos: bits,
                });
                fa.or_pred(sink, pt, flags::CF);
            }
            ArithKind::Sub => {
                // Borrow = the 64-bit difference went negative.
                let pt = sink.vp();
                let pf = sink.vp();
                sink.emit(Op::Tbit {
                    pt,
                    pf,
                    r: res64,
                    pos: 63,
                });
                fa.or_pred(sink, pt, flags::CF);
            }
            ArithKind::Logic => {} // cleared by the mask
            ArithKind::Inc | ArithKind::Dec => unreachable!("INC/DEC never write CF"),
        }
    }
    if live & flags::ZF != 0 {
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::Cmp {
            rel: CmpRel::Eq,
            pt,
            pf,
            a: res,
            b: R0,
        });
        fa.or_pred(sink, pt, flags::ZF);
    }
    if live & flags::SF != 0 {
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::Tbit {
            pt,
            pf,
            r: res,
            pos: bits - 1,
        });
        fa.or_pred(sink, pt, flags::SF);
    }
    if live & flags::OF != 0 {
        match kind {
            ArithKind::Add => {
                // (~(a^b) & (a^res)) sign bit.
                let t1 = sink.vg();
                let t2 = sink.vg();
                let t3 = sink.vg();
                sink.emit(Op::Xor { d: t1, a, b });
                sink.emit(Op::Xor { d: t2, a, b: res });
                sink.emit(Op::AndCm {
                    d: t3,
                    a: t2,
                    b: t1,
                });
                let pt = sink.vp();
                let pf = sink.vp();
                sink.emit(Op::Tbit {
                    pt,
                    pf,
                    r: t3,
                    pos: bits - 1,
                });
                fa.or_pred(sink, pt, flags::OF);
            }
            ArithKind::Sub => {
                // ((a^b) & (a^res)) sign bit.
                let t1 = sink.vg();
                let t2 = sink.vg();
                let t3 = sink.vg();
                sink.emit(Op::Xor { d: t1, a, b });
                sink.emit(Op::Xor { d: t2, a, b: res });
                sink.emit(Op::And {
                    d: t3,
                    a: t2,
                    b: t1,
                });
                let pt = sink.vp();
                let pf = sink.vp();
                sink.emit(Op::Tbit {
                    pt,
                    pf,
                    r: t3,
                    pos: bits - 1,
                });
                fa.or_pred(sink, pt, flags::OF);
            }
            ArithKind::Inc => {
                // a sign 0, res sign 1.
                let t = sink.vg();
                sink.emit(Op::AndCm { d: t, a: res, b: a });
                let pt = sink.vp();
                let pf = sink.vp();
                sink.emit(Op::Tbit {
                    pt,
                    pf,
                    r: t,
                    pos: bits - 1,
                });
                fa.or_pred(sink, pt, flags::OF);
            }
            ArithKind::Dec => {
                // a sign 1, res sign 0.
                let t = sink.vg();
                sink.emit(Op::AndCm { d: t, a, b: res });
                let pt = sink.vp();
                let pf = sink.vp();
                sink.emit(Op::Tbit {
                    pt,
                    pf,
                    r: t,
                    pos: bits - 1,
                });
                fa.or_pred(sink, pt, flags::OF);
            }
            ArithKind::Logic => {}
        }
    }
    if live & flags::PF != 0 {
        let t = sink.vg();
        sink.emit(Op::AndImm {
            d: t,
            imm: 0xFF,
            a: res,
        });
        let c = sink.vg();
        sink.emit(Op::Popcnt { d: c, a: t });
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::Tbit {
            pt,
            pf,
            r: c,
            pos: 0,
        });
        // Even parity sets PF.
        fa.or_pred(sink, pf, flags::PF);
    }
    if live & flags::AF != 0 && kind != ArithKind::Logic {
        let t1 = sink.vg();
        let t2 = sink.vg();
        sink.emit(Op::Xor { d: t1, a, b });
        sink.emit(Op::Xor {
            d: t2,
            a: t1,
            b: res,
        });
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::Tbit {
            pt,
            pf,
            r: t2,
            pos: 4,
        });
        fa.or_pred(sink, pt, flags::AF);
    }
    let written_mask = match kind {
        ArithKind::Inc | ArithKind::Dec => live & (flags::STATUS & !flags::CF),
        _ => live & flags::STATUS,
    };
    fa.commit(sink, written_mask, qp);
}

/// Emits `SF`/`ZF`/`PF` (+ cleared `CF`/`OF`/`AF`) for a logic result.
pub(super) fn logic_flags(sink: &mut Sink, res: Gr, size: Size, live: u32) {
    arith_flags(sink, ArithKind::Logic, R0, R0, res, res, size, live, None);
}

/// Builds the predicates for an IA-32 condition from the materialized
/// EFLAGS register. Returns `(true_pred, false_pred)`.
pub(super) fn cond_from_flags(sink: &mut Sink, cond: ia32::Cond) -> (Pr, Pr) {
    use ia32::Cond as C;
    let r41 = GR_EFLAGS;
    let tbit_pair = |sink: &mut Sink, pos: u8| {
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::Tbit {
            pt,
            pf,
            r: r41,
            pos,
        });
        (pt, pf)
    };
    let swap = |(a, b): (Pr, Pr)| (b, a);
    match cond {
        C::E => tbit_pair(sink, 6),
        C::Ne => swap(tbit_pair(sink, 6)),
        C::B => tbit_pair(sink, 0),
        C::Ae => swap(tbit_pair(sink, 0)),
        C::S => tbit_pair(sink, 7),
        C::Ns => swap(tbit_pair(sink, 7)),
        C::O => tbit_pair(sink, 11),
        C::No => swap(tbit_pair(sink, 11)),
        C::P => tbit_pair(sink, 2),
        C::Np => swap(tbit_pair(sink, 2)),
        C::Be | C::A => {
            let t = sink.vg();
            sink.emit(Op::AndImm {
                d: t,
                imm: (flags::CF | flags::ZF) as i64,
                a: r41,
            });
            let pt = sink.vp();
            let pf = sink.vp();
            sink.emit(Op::Cmp {
                rel: CmpRel::Ne,
                pt,
                pf,
                a: t,
                b: R0,
            });
            if cond == C::Be {
                (pt, pf)
            } else {
                (pf, pt)
            }
        }
        C::L | C::Ge => {
            let sf = sink.vg();
            let of = sink.vg();
            let x = sink.vg();
            sink.emit(Op::Extr {
                d: sf,
                a: r41,
                pos: 7,
                len: 1,
                signed: false,
            });
            sink.emit(Op::Extr {
                d: of,
                a: r41,
                pos: 11,
                len: 1,
                signed: false,
            });
            sink.emit(Op::Xor { d: x, a: sf, b: of });
            let pt = sink.vp();
            let pf = sink.vp();
            sink.emit(Op::Tbit {
                pt,
                pf,
                r: x,
                pos: 0,
            });
            if cond == C::L {
                (pt, pf)
            } else {
                (pf, pt)
            }
        }
        C::Le | C::G => {
            let sf = sink.vg();
            let of = sink.vg();
            let x = sink.vg();
            let zf = sink.vg();
            let y = sink.vg();
            sink.emit(Op::Extr {
                d: sf,
                a: r41,
                pos: 7,
                len: 1,
                signed: false,
            });
            sink.emit(Op::Extr {
                d: of,
                a: r41,
                pos: 11,
                len: 1,
                signed: false,
            });
            sink.emit(Op::Xor { d: x, a: sf, b: of });
            sink.emit(Op::Extr {
                d: zf,
                a: r41,
                pos: 6,
                len: 1,
                signed: false,
            });
            sink.emit(Op::Or { d: y, a: x, b: zf });
            let pt = sink.vp();
            let pf = sink.vp();
            sink.emit(Op::Tbit {
                pt,
                pf,
                r: y,
                pos: 0,
            });
            if cond == C::Le {
                (pt, pf)
            } else {
                (pf, pt)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_zero_emits_nothing() {
        let mut s = Sink::new();
        arith_flags(&mut s, ArithKind::Add, R0, R0, R0, R0, Size::D, 0, None);
        assert_eq!(s.inst_count(), 0);
    }

    #[test]
    fn full_status_emits_all_families() {
        let mut s = Sink::new();
        let a = s.vg();
        let b = s.vg();
        let r64 = s.vg();
        let r = s.vg();
        arith_flags(
            &mut s,
            ArithKind::Add,
            a,
            b,
            r64,
            r,
            Size::D,
            flags::STATUS,
            None,
        );
        // CF(2) + ZF(2) + SF(2) + OF(5) + PF(4) + AF(4) + init(1) + commit(2)
        assert!(s.inst_count() >= 18, "got {}", s.inst_count());
    }

    #[test]
    fn single_flag_is_cheap() {
        let mut s = Sink::new();
        let r = s.vg();
        arith_flags(
            &mut s,
            ArithKind::Logic,
            R0,
            R0,
            r,
            r,
            Size::D,
            flags::ZF,
            None,
        );
        assert!(s.inst_count() <= 5, "got {}", s.inst_count());
    }

    #[test]
    fn cond_pred_emission() {
        for cond in (0..16).map(ia32::Cond::from_code) {
            let mut s = Sink::new();
            let (pt, pf) = cond_from_flags(&mut s, cond);
            assert!(pt.is_virtual() && pf.is_virtual());
            assert_ne!(pt, pf);
            assert!(s.inst_count() >= 1);
        }
    }
}
