//! x87, MMX, and SSE templates — the paper's §5 optimizations:
//! TOS/tag-speculated FP-stack mapping onto the flat register file,
//! FXCHG elimination via static renaming, single-Boolean FP↔MMX
//! aliasing-mode speculation, and per-XMM format speculation with
//! explicit conversion code on transitions.

use super::flags_emit::FlagAcc;
use super::mem::{ea, guest_load, guest_store, read_gpr, write_gpr};
use super::{EmitCtx, Sink, Term, Unsupported};
use crate::layout::StubKind;
use crate::state::{
    self, mmx_gr, xmm_hi_fr, xmm_lo_fr, xmm_scalar_fr, GR_FPMODE, GR_FPTAG, GR_FPTOP,
};
use ia32::flags;
use ia32::inst::{
    Addr, FpArithForm, FpArithOp, FpOperand, Inst as I32, MmM, MmxOp, Rm, Size2, SseOp, XmmM,
};
use ia32::regs::{Mm, Xmm};
use ia32::Size;
use ipf::inst::{CmpRel, FXfer, FcmpRel, Op, Target};
use ipf::regs::{Fr, Gr, F0, F1};

// ---------------------------------------------------------------------
// x87 helpers
// ---------------------------------------------------------------------

/// Emits the validity check for `ST(i)`: in speculative mode this only
/// accumulates a block-head requirement; in inline mode (the "special
/// block" rebuilt after a tag mismatch) it emits a runtime tag test at
/// the access point so stack faults occur in precise program order.
fn check_valid(sink: &mut Sink, ctx: &mut EmitCtx<'_>, i: u8) {
    if ctx.fp.inline_checks {
        ctx.fp.uses_fp = true;
        let p = ctx.fp.phys(i);
        let (pv, pe) = (sink.vp(), sink.vp());
        sink.emit(Op::Tbit {
            pt: pv,
            pf: pe,
            r: GR_FPTAG,
            pos: p,
        });
        sink.emit_pred(
            pe,
            Op::Br {
                target: Target::Abs(StubKind::FpStackFault.addr()),
            },
        );
        return;
    }
    if ctx.fp.require_valid(i) {
        // Statically known empty: unconditional stack fault.
        sink.emit(Op::Br {
            target: Target::Abs(StubKind::FpStackFault.addr()),
        });
    }
}

fn check_push(sink: &mut Sink, ctx: &mut EmitCtx<'_>) {
    if ctx.fp.inline_checks {
        ctx.fp.uses_fp = true;
        let p = (ctx.fp.tos() + 7) & 7;
        let (pv, pe) = (sink.vp(), sink.vp());
        sink.emit(Op::Tbit {
            pt: pv,
            pf: pe,
            r: GR_FPTAG,
            pos: p,
        });
        sink.emit_pred(
            pv,
            Op::Br {
                target: Target::Abs(StubKind::FpStackFault.addr()),
            },
        );
        return;
    }
    if ctx.fp.require_empty_for_push() {
        sink.emit(Op::Br {
            target: Target::Abs(StubKind::FpStackFault.addr()),
        });
    }
}

/// Ensures the FP/MMX aliasing mode; mixed blocks pay the full transfer
/// cost the speculation normally avoids (paper §5).
fn ensure_mode(sink: &mut Sink, ctx: &mut EmitCtx<'_>, mmx: bool) {
    if ctx.fp.cur_mmx == mmx {
        return;
    }
    for i in 0..8u8 {
        if mmx {
            sink.emit(Op::Getf {
                kind: FXfer::Sig,
                d: mmx_gr(i),
                f: state::x87_fr(i),
            });
        } else {
            sink.emit(Op::Setf {
                kind: FXfer::Sig,
                f: state::x87_fr(i),
                r: mmx_gr(i),
            });
        }
    }
    sink.mov_imm(GR_FPMODE, mmx as u64);
    if mmx {
        ctx.fp.force_tos_zero();
        sink.mov_imm(GR_FPTOP, 0);
        ctx.fp.mmx_tos_done = true;
    }
    ctx.fp.cur_mmx = mmx;
}

/// Records a push: updates ctx, runtime TOS, and the tag word.
fn do_push(sink: &mut Sink, ctx: &mut EmitCtx<'_>) -> Fr {
    ctx.fp.did_push();
    let dst = ctx.fp.st_fr(0);
    sink.mov_imm(GR_FPTOP, ctx.fp.tos() as u64);
    sink.emit(Op::OrImm {
        d: GR_FPTAG,
        imm: 1i64 << ctx.fp.phys(0),
        a: GR_FPTAG,
    });
    dst
}

/// Records a pop.
fn do_pop(sink: &mut Sink, ctx: &mut EmitCtx<'_>) {
    let p = ctx.fp.phys(0);
    ctx.fp.did_pop();
    sink.mov_imm(GR_FPTOP, ctx.fp.tos() as u64);
    sink.emit(Op::AndImm {
        d: GR_FPTAG,
        imm: !(1i64 << p) & 0xFF,
        a: GR_FPTAG,
    });
}

/// Loads an FP memory operand, honoring the misalignment plan (loads go
/// through the integer path when avoidance is active).
fn fp_load(sink: &mut Sink, ctx: &mut EmitCtx<'_>, addr_expr: &Addr, single: bool) -> Fr {
    let addr = ea(sink, addr_expr);
    let bytes = if single { 4 } else { 8 };
    let v = guest_load(sink, ctx, addr, Some(addr_expr), bytes);
    let f = sink.vf();
    sink.emit(Op::Setf {
        kind: if single { FXfer::S } else { FXfer::D },
        f,
        r: v,
    });
    f
}

/// Stores an FP value (converting to single if needed).
fn fp_store(sink: &mut Sink, ctx: &mut EmitCtx<'_>, addr_expr: &Addr, single: bool, f: Fr) {
    let g = sink.vg();
    sink.emit(Op::Getf {
        kind: if single { FXfer::S } else { FXfer::D },
        d: g,
        f,
    });
    let addr = ea(sink, addr_expr);
    let bytes = if single { 4 } else { 8 };
    guest_store(sink, ctx, addr, Some(addr_expr), bytes, g);
}

/// Emits the exact double-precision divide `d = a / b` via `frcpa`,
/// three Newton-Raphson iterations, and the Markstein correction.
pub(super) fn emit_fdiv(sink: &mut Sink, d: Fr, a: Fr, b: Fr) {
    let p = sink.vp();
    sink.emit(Op::Frcpa { d, p, a, b });
    for _ in 0..3 {
        let e = sink.vf();
        sink.emit_pred(
            p,
            Op::Fnma {
                d: e,
                a: b,
                b: d,
                c: F1,
            },
        );
        sink.emit_pred(
            p,
            Op::Fma {
                d,
                a: d,
                b: e,
                c: d,
            },
        );
    }
    let q0 = sink.vf();
    sink.emit_pred(
        p,
        Op::Fma {
            d: q0,
            a,
            b: d,
            c: F0,
        },
    );
    let r = sink.vf();
    sink.emit_pred(
        p,
        Op::Fnma {
            d: r,
            a: b,
            b: q0,
            c: a,
        },
    );
    sink.emit_pred(
        p,
        Op::Fma {
            d,
            a: r,
            b: d,
            c: q0,
        },
    );
}

fn fp_arith(sink: &mut Sink, op: FpArithOp, d: Fr, dst: Fr, src: Fr) {
    match op {
        FpArithOp::Add => sink.emit(Op::Fma {
            d,
            a: dst,
            b: F1,
            c: src,
        }),
        FpArithOp::Sub => sink.emit(Op::Fms {
            d,
            a: dst,
            b: F1,
            c: src,
        }),
        FpArithOp::SubR => sink.emit(Op::Fms {
            d,
            a: src,
            b: F1,
            c: dst,
        }),
        FpArithOp::Mul => sink.emit(Op::Fma {
            d,
            a: dst,
            b: src,
            c: F0, // c = f0 is the fmpy pseudo-op (no add performed)
        }),
        FpArithOp::Div | FpArithOp::DivR => {
            // The quotient register must not alias the operands: frcpa
            // writes the approximation into it first.
            let t = sink.vf();
            if op == FpArithOp::Div {
                emit_fdiv(sink, t, dst, src);
            } else {
                emit_fdiv(sink, t, src, dst);
            }
            sink.fmov(d, t);
        }
    }
}

// ---------------------------------------------------------------------
// SSE format helpers
// ---------------------------------------------------------------------

/// Ensures `XMMn` is in scalar format (lane 0 as a converted double in
/// the scalar FR). Emits the conversion when the current format is
/// packed — the cost the paper's format speculation avoids.
fn ensure_scalar(sink: &mut Sink, ctx: &mut EmitCtx<'_>, n: u8) {
    ctx.xmm.touch(n);
    if ctx.xmm.is_scalar(n) {
        return;
    }
    ctx.xmm.conversions += 1;
    let g = sink.vg();
    sink.emit(Op::Getf {
        kind: FXfer::Sig,
        d: g,
        f: xmm_lo_fr(n),
    });
    let lane0 = sink.vg();
    sink.emit(Op::Zxt {
        d: lane0,
        a: g,
        size: 4,
    });
    sink.emit(Op::Setf {
        kind: FXfer::S,
        f: xmm_scalar_fr(n),
        r: lane0,
    });
    ctx.xmm.set_scalar(n, true);
}

/// Ensures `XMMn` is in packed format (lanes raw in lo/hi), writing the
/// scalar FR's value back into lane 0.
fn ensure_packed(sink: &mut Sink, ctx: &mut EmitCtx<'_>, n: u8) {
    ctx.xmm.touch(n);
    if !ctx.xmm.is_scalar(n) {
        return;
    }
    ctx.xmm.conversions += 1;
    let lane0 = sink.vg();
    sink.emit(Op::Getf {
        kind: FXfer::S,
        d: lane0,
        f: xmm_scalar_fr(n),
    });
    let lo = sink.vg();
    sink.emit(Op::Getf {
        kind: FXfer::Sig,
        d: lo,
        f: xmm_lo_fr(n),
    });
    let merged = sink.vg();
    sink.emit(Op::Dep {
        d: merged,
        src: lane0,
        target: lo,
        pos: 0,
        len: 32,
    });
    sink.emit(Op::Setf {
        kind: FXfer::Sig,
        f: xmm_lo_fr(n),
        r: merged,
    });
    ctx.xmm.set_scalar(n, false);
}

/// Reads an XMM-or-memory source in scalar form (a converted double).
fn xmm_src_scalar(sink: &mut Sink, ctx: &mut EmitCtx<'_>, src: &XmmM) -> Fr {
    match src {
        XmmM::Reg(x) => {
            ensure_scalar(sink, ctx, x.num());
            xmm_scalar_fr(x.num())
        }
        XmmM::Mem(a) => fp_load(sink, ctx, a, true),
    }
}

/// Reads an XMM-or-memory source in packed form: returns `(lo, hi)` FRs.
fn xmm_src_packed(sink: &mut Sink, ctx: &mut EmitCtx<'_>, src: &XmmM) -> (Fr, Fr) {
    match src {
        XmmM::Reg(x) => {
            ensure_packed(sink, ctx, x.num());
            (xmm_lo_fr(x.num()), xmm_hi_fr(x.num()))
        }
        XmmM::Mem(a) => {
            let addr = ea(sink, a);
            let lo_v = guest_load(sink, ctx, addr, Some(a), 8);
            let hi_addr = sink.vg();
            sink.emit(Op::AddImm {
                d: hi_addr,
                imm: 8,
                a: addr,
            });
            let hi_v = guest_load(sink, ctx, hi_addr, None, 8);
            let (lo, hi) = (sink.vf(), sink.vf());
            sink.emit(Op::Setf {
                kind: FXfer::Sig,
                f: lo,
                r: lo_v,
            });
            sink.emit(Op::Setf {
                kind: FXfer::Sig,
                f: hi,
                r: hi_v,
            });
            (lo, hi)
        }
    }
}

/// EFLAGS from an FP compare (`FCOMI`/`UCOMISS`): unordered sets
/// ZF|PF|CF, less sets CF, equal sets ZF.
fn fp_compare_flags(sink: &mut Sink, live: u32, a: Fr, b: Fr) {
    let written = live & (flags::ZF | flags::PF | flags::CF);
    if written == 0 {
        return;
    }
    let mut fa = FlagAcc::new(sink);
    let (pu, _po) = (sink.vp(), sink.vp());
    sink.emit(Op::Fcmp {
        rel: FcmpRel::Unord,
        pt: pu,
        pf: _po,
        a,
        b,
    });
    fa.or_pred(sink, pu, flags::ZF | flags::PF | flags::CF);
    let (pl, _pnl) = (sink.vp(), sink.vp());
    sink.emit(Op::Fcmp {
        rel: FcmpRel::Lt,
        pt: pl,
        pf: _pnl,
        a,
        b,
    });
    fa.or_pred(sink, pl, flags::CF);
    let (pe, _pne) = (sink.vp(), sink.vp());
    sink.emit(Op::Fcmp {
        rel: FcmpRel::Eq,
        pt: pe,
        pf: _pne,
        a,
        b,
    });
    fa.or_pred(sink, pe, flags::ZF);
    fa.commit(sink, flags::ZF | flags::PF | flags::CF, None);
}

/// Truncating f64→i32 with the IA-32 "integer indefinite" (0x80000000)
/// on overflow/NaN. Returns a GR holding the zero-extended result.
fn fcvt_to_i32(sink: &mut Sink, f: Fr) -> Gr {
    let t = sink.vf();
    sink.emit(Op::FcvtFx {
        d: t,
        a: f,
        trunc: true,
    });
    let g = sink.vg();
    sink.emit(Op::Getf {
        kind: FXfer::Sig,
        d: g,
        f: t,
    });
    let s = sink.vg();
    sink.emit(Op::Sxt {
        d: s,
        a: g,
        size: 4,
    });
    let (p_bad, _p_ok) = (sink.vp(), sink.vp());
    sink.emit(Op::Cmp {
        rel: CmpRel::Ne,
        pt: p_bad,
        pf: _p_ok,
        a: g,
        b: s,
    });
    sink.emit_pred(
        p_bad,
        Op::Movl {
            d: g,
            imm: 0x8000_0000,
        },
    );
    let out = sink.vg();
    sink.emit(Op::Zxt {
        d: out,
        a: g,
        size: 4,
    });
    out
}

// ---------------------------------------------------------------------
// dispatch
// ---------------------------------------------------------------------

/// Emits the translation of one x87/MMX/SSE instruction.
pub(super) fn emit_fp(
    sink: &mut Sink,
    inst: &I32,
    ctx: &mut EmitCtx<'_>,
) -> Result<Option<Term>, Unsupported> {
    let live = ctx.live_flags & inst.flags_written_maybe();
    match inst {
        // ---- x87 ----
        I32::Fld { src } => {
            ensure_mode(sink, ctx, false);
            let v = match src {
                FpOperand::M32(a) => fp_load(sink, ctx, a, true),
                FpOperand::M64(a) => fp_load(sink, ctx, a, false),
                FpOperand::St(i) => {
                    check_valid(sink, ctx, *i);
                    ctx.fp.st_fr(*i)
                }
            };
            check_push(sink, ctx);
            let dst = do_push(sink, ctx);
            sink.fmov(dst, v);
        }
        I32::Fst { dst, pop } => {
            ensure_mode(sink, ctx, false);
            check_valid(sink, ctx, 0);
            let v = ctx.fp.st_fr(0);
            match dst {
                FpOperand::M32(a) => fp_store(sink, ctx, a, true, v),
                FpOperand::M64(a) => fp_store(sink, ctx, a, false, v),
                FpOperand::St(i) => {
                    check_valid(sink, ctx, *i);
                    let d = ctx.fp.st_fr(*i);
                    sink.fmov(d, v);
                }
            }
            if *pop {
                do_pop(sink, ctx);
            }
        }
        I32::Fild { src } => {
            ensure_mode(sink, ctx, false);
            let addr = ea(sink, src);
            let raw = guest_load(sink, ctx, addr, Some(src), 4);
            let s = sink.vg();
            sink.emit(Op::Sxt {
                d: s,
                a: raw,
                size: 4,
            });
            let fsig = sink.vf();
            sink.emit(Op::Setf {
                kind: FXfer::Sig,
                f: fsig,
                r: s,
            });
            let fval = sink.vf();
            sink.emit(Op::FcvtXf { d: fval, a: fsig });
            check_push(sink, ctx);
            let dst = do_push(sink, ctx);
            sink.fmov(dst, fval);
        }
        I32::Fistp { dst } => {
            ensure_mode(sink, ctx, false);
            check_valid(sink, ctx, 0);
            let v = ctx.fp.st_fr(0);
            let out = fcvt_to_i32(sink, v);
            let addr = ea(sink, dst);
            guest_store(sink, ctx, addr, Some(dst), 4, out);
            do_pop(sink, ctx);
        }
        I32::Farith { op, form } => {
            ensure_mode(sink, ctx, false);
            match form {
                FpArithForm::St0Mem(sz, a) => {
                    let src = fp_load(sink, ctx, a, *sz == Size2::S);
                    check_valid(sink, ctx, 0);
                    let d = ctx.fp.st_fr(0);
                    fp_arith(sink, *op, d, d, src);
                }
                FpArithForm::St0Sti(i) => {
                    check_valid(sink, ctx, *i);
                    check_valid(sink, ctx, 0);
                    let src = ctx.fp.st_fr(*i);
                    let d = ctx.fp.st_fr(0);
                    fp_arith(sink, *op, d, d, src);
                }
                FpArithForm::StiSt0 { i, pop } => {
                    check_valid(sink, ctx, 0);
                    check_valid(sink, ctx, *i);
                    let src = ctx.fp.st_fr(0);
                    let d = ctx.fp.st_fr(*i);
                    fp_arith(sink, *op, d, d, src);
                    if *pop {
                        do_pop(sink, ctx);
                    }
                }
            }
        }
        I32::Fchs => {
            ensure_mode(sink, ctx, false);
            check_valid(sink, ctx, 0);
            let d = ctx.fp.st_fr(0);
            sink.emit(Op::FmergeNs { d, a: d, b: d });
        }
        I32::Fabs => {
            ensure_mode(sink, ctx, false);
            check_valid(sink, ctx, 0);
            let d = ctx.fp.st_fr(0);
            sink.emit(Op::FmergeS { d, a: F0, b: d });
        }
        I32::Fsqrt => {
            ensure_mode(sink, ctx, false);
            check_valid(sink, ctx, 0);
            let d = ctx.fp.st_fr(0);
            sink.emit(Op::Fsqrt { d, a: d });
        }
        I32::Fxch { i } => {
            ensure_mode(sink, ctx, false);
            check_valid(sink, ctx, 0);
            check_valid(sink, ctx, *i);
            if ctx.fp.elide_fxch {
                // FXCHG elimination (paper §5): a compile-time rename.
                let p0 = ctx.fp.phys(0) as usize;
                let pi = ctx.fp.phys(*i) as usize;
                ctx.fp.perm.swap(p0, pi);
            } else {
                let a = ctx.fp.st_fr(0);
                let b = ctx.fp.st_fr(*i);
                let t = sink.vf();
                sink.fmov(t, a);
                sink.fmov(a, b);
                sink.fmov(b, t);
            }
        }
        I32::Fld1 => {
            ensure_mode(sink, ctx, false);
            check_push(sink, ctx);
            let dst = do_push(sink, ctx);
            sink.fmov(dst, F1);
        }
        I32::Fldz => {
            ensure_mode(sink, ctx, false);
            check_push(sink, ctx);
            let dst = do_push(sink, ctx);
            sink.fmov(dst, F0);
        }
        I32::Fcomi { i, pop, .. } => {
            ensure_mode(sink, ctx, false);
            check_valid(sink, ctx, 0);
            check_valid(sink, ctx, *i);
            let a = ctx.fp.st_fr(0);
            let b = ctx.fp.st_fr(*i);
            fp_compare_flags(sink, live, a, b);
            if *pop {
                do_pop(sink, ctx);
            }
        }
        // ---- MMX ----
        I32::Movd { mm, rm, to_mm } => {
            mmx_prologue(sink, ctx);
            if *to_mm {
                let v = match rm {
                    Rm::Reg(r) => read_gpr(sink, *r, Size::D),
                    Rm::Mem(a) => {
                        let addr = ea(sink, a);
                        guest_load(sink, ctx, addr, Some(a), 4)
                    }
                };
                sink.mov(mmx_gr(mm.num()), v);
            } else {
                let v = sink.vg();
                sink.emit(Op::Zxt {
                    d: v,
                    a: mmx_gr(mm.num()),
                    size: 4,
                });
                match rm {
                    Rm::Reg(r) => write_gpr(sink, ctx, *r, Size::D, v),
                    Rm::Mem(a) => {
                        let addr = ea(sink, a);
                        guest_store(sink, ctx, addr, Some(a), 4, v);
                    }
                }
            }
            mmx_tag(sink, mm.num());
        }
        I32::Movq { mm, src, to_mm } => {
            mmx_prologue(sink, ctx);
            if *to_mm {
                let v = match src {
                    MmM::Reg(m) => mmx_gr(m.num()),
                    MmM::Mem(a) => {
                        let addr = ea(sink, a);
                        guest_load(sink, ctx, addr, Some(a), 8)
                    }
                };
                sink.mov(mmx_gr(mm.num()), v);
                mmx_tag(sink, mm.num());
            } else {
                match src {
                    MmM::Reg(m) => {
                        sink.mov(mmx_gr(m.num()), mmx_gr(mm.num()));
                        mmx_tag(sink, m.num());
                    }
                    MmM::Mem(a) => {
                        let addr = ea(sink, a);
                        guest_store(sink, ctx, addr, Some(a), 8, mmx_gr(mm.num()));
                    }
                }
                mmx_tag(sink, mm.num());
            }
        }
        I32::PAlu { op, dst, src } => {
            mmx_prologue(sink, ctx);
            let b = match src {
                MmM::Reg(m) => mmx_gr(m.num()),
                MmM::Mem(a) => {
                    let addr = ea(sink, a);
                    guest_load(sink, ctx, addr, Some(a), 8)
                }
            };
            let d = mmx_gr(dst.num());
            emit_palu(sink, *op, d, d, b);
            mmx_tag(sink, dst.num());
        }
        I32::Emms => {
            ctx.fp.uses_mmx = true;
            sink.mov_imm(GR_FPTAG, 0);
            sink.mov_imm(GR_FPMODE, 0);
            ctx.fp.cur_mmx = false;
            ctx.fp.known_valid = 0;
            ctx.fp.known_empty = 0xFF;
        }
        // ---- SSE ----
        I32::Movss { xmm, rm, to_xmm } => {
            if *to_xmm {
                match rm {
                    XmmM::Mem(a) => {
                        // Full redefinition: lanes 1-3 zeroed.
                        let addr = ea(sink, a);
                        let v = guest_load(sink, ctx, addr, Some(a), 4);
                        let n = xmm.num();
                        sink.emit(Op::Setf {
                            kind: FXfer::Sig,
                            f: xmm_lo_fr(n),
                            r: v,
                        });
                        sink.fmov(xmm_hi_fr(n), F0);
                        sink.emit(Op::Setf {
                            kind: FXfer::S,
                            f: xmm_scalar_fr(n),
                            r: v,
                        });
                        ctx.xmm.set_scalar(n, true);
                    }
                    XmmM::Reg(x) => {
                        // Lane 0 only; other lanes preserved.
                        ensure_scalar(sink, ctx, x.num());
                        ensure_scalar(sink, ctx, xmm.num());
                        sink.fmov(xmm_scalar_fr(xmm.num()), xmm_scalar_fr(x.num()));
                    }
                }
            } else {
                let n = xmm.num();
                ctx.xmm.touch(n);
                let v = sink.vg();
                if ctx.xmm.is_scalar(n) {
                    sink.emit(Op::Getf {
                        kind: FXfer::S,
                        d: v,
                        f: xmm_scalar_fr(n),
                    });
                } else {
                    let raw = sink.vg();
                    sink.emit(Op::Getf {
                        kind: FXfer::Sig,
                        d: raw,
                        f: xmm_lo_fr(n),
                    });
                    sink.emit(Op::Zxt {
                        d: v,
                        a: raw,
                        size: 4,
                    });
                }
                match rm {
                    XmmM::Mem(a) => {
                        let addr = ea(sink, a);
                        guest_store(sink, ctx, addr, Some(a), 4, v);
                    }
                    XmmM::Reg(x) => {
                        ensure_scalar(sink, ctx, x.num());
                        sink.emit(Op::Setf {
                            kind: FXfer::S,
                            f: xmm_scalar_fr(x.num()),
                            r: v,
                        });
                    }
                }
            }
        }
        I32::Movps {
            xmm, rm, to_xmm, ..
        } => {
            let n = xmm.num();
            if *to_xmm {
                match rm {
                    XmmM::Mem(a) => {
                        let addr = ea(sink, a);
                        let lo_v = guest_load(sink, ctx, addr, Some(a), 8);
                        let hi_addr = sink.vg();
                        sink.emit(Op::AddImm {
                            d: hi_addr,
                            imm: 8,
                            a: addr,
                        });
                        let hi_v = guest_load(sink, ctx, hi_addr, None, 8);
                        sink.emit(Op::Setf {
                            kind: FXfer::Sig,
                            f: xmm_lo_fr(n),
                            r: lo_v,
                        });
                        sink.emit(Op::Setf {
                            kind: FXfer::Sig,
                            f: xmm_hi_fr(n),
                            r: hi_v,
                        });
                        ctx.xmm.set_scalar(n, false);
                    }
                    XmmM::Reg(x) => {
                        ctx.xmm.touch(x.num());
                        sink.fmov(xmm_scalar_fr(n), xmm_scalar_fr(x.num()));
                        sink.fmov(xmm_lo_fr(n), xmm_lo_fr(x.num()));
                        sink.fmov(xmm_hi_fr(n), xmm_hi_fr(x.num()));
                        ctx.xmm.set_scalar(n, ctx.xmm.is_scalar(x.num()));
                    }
                }
            } else {
                ensure_packed(sink, ctx, n);
                match rm {
                    XmmM::Mem(a) => {
                        let lo_v = sink.vg();
                        sink.emit(Op::Getf {
                            kind: FXfer::Sig,
                            d: lo_v,
                            f: xmm_lo_fr(n),
                        });
                        let hi_v = sink.vg();
                        sink.emit(Op::Getf {
                            kind: FXfer::Sig,
                            d: hi_v,
                            f: xmm_hi_fr(n),
                        });
                        let addr = ea(sink, a);
                        guest_store(sink, ctx, addr, Some(a), 8, lo_v);
                        let hi_addr = sink.vg();
                        sink.emit(Op::AddImm {
                            d: hi_addr,
                            imm: 8,
                            a: addr,
                        });
                        guest_store(sink, ctx, hi_addr, None, 8, hi_v);
                    }
                    XmmM::Reg(x) => {
                        let xn = x.num();
                        sink.fmov(xmm_lo_fr(xn), xmm_lo_fr(n));
                        sink.fmov(xmm_hi_fr(xn), xmm_hi_fr(n));
                        ctx.xmm.set_scalar(xn, false);
                    }
                }
            }
        }
        I32::SseArith {
            op,
            scalar,
            dst,
            src,
        } => {
            let n = dst.num();
            if *scalar {
                let s = xmm_src_scalar(sink, ctx, src);
                ensure_scalar(sink, ctx, n);
                let d = xmm_scalar_fr(n);
                let t = sink.vf();
                match op {
                    SseOp::Add => sink.emit(Op::Fma {
                        d: t,
                        a: d,
                        b: F1,
                        c: s,
                    }),
                    SseOp::Sub => sink.emit(Op::Fms {
                        d: t,
                        a: d,
                        b: F1,
                        c: s,
                    }),
                    SseOp::Mul => sink.emit(Op::Fma {
                        d: t,
                        a: d,
                        b: s,
                        c: F0,
                    }),
                    SseOp::Div => emit_fdiv(sink, t, d, s),
                    SseOp::Min => sink.emit(Op::Fmin { d: t, a: d, b: s }),
                    SseOp::Max => sink.emit(Op::Fmax { d: t, a: d, b: s }),
                }
                if matches!(op, SseOp::Min | SseOp::Max) {
                    sink.fmov(d, t);
                } else {
                    // Round to single precision like the hardware op.
                    sink.emit(Op::FnormS { d, a: t });
                }
            } else {
                let (slo, shi) = xmm_src_packed(sink, ctx, src);
                ensure_packed(sink, ctx, n);
                let (dlo, dhi) = (xmm_lo_fr(n), xmm_hi_fr(n));
                for (d, s) in [(dlo, slo), (dhi, shi)] {
                    match op {
                        SseOp::Add => sink.emit(Op::Fpma {
                            d,
                            a: d,
                            b: F1,
                            c: s,
                        }),
                        SseOp::Sub => sink.emit(Op::Fpms {
                            d,
                            a: d,
                            b: F1,
                            c: s,
                        }),
                        SseOp::Mul => sink.emit(Op::Fpma {
                            d,
                            a: d,
                            b: s,
                            c: F0,
                        }),
                        SseOp::Div => sink.emit(Op::Fpdiv { d, a: d, b: s }),
                        SseOp::Min => sink.emit(Op::Fpmin { d, a: d, b: s }),
                        SseOp::Max => sink.emit(Op::Fpmax { d, a: d, b: s }),
                    }
                }
            }
        }
        I32::Xorps { dst, src } => {
            let n = dst.num();
            let (slo, shi) = xmm_src_packed(sink, ctx, src);
            ensure_packed(sink, ctx, n);
            for (d, s) in [(xmm_lo_fr(n), slo), (xmm_hi_fr(n), shi)] {
                let (a, b) = (sink.vg(), sink.vg());
                sink.emit(Op::Getf {
                    kind: FXfer::Sig,
                    d: a,
                    f: d,
                });
                sink.emit(Op::Getf {
                    kind: FXfer::Sig,
                    d: b,
                    f: s,
                });
                let x = sink.vg();
                sink.emit(Op::Xor { d: x, a, b });
                sink.emit(Op::Setf {
                    kind: FXfer::Sig,
                    f: d,
                    r: x,
                });
            }
        }
        I32::Sqrtss { dst, src } => {
            let s = xmm_src_scalar(sink, ctx, src);
            ensure_scalar(sink, ctx, dst.num());
            let d = xmm_scalar_fr(dst.num());
            let t = sink.vf();
            sink.emit(Op::Fsqrt { d: t, a: s });
            sink.emit(Op::FnormS { d, a: t });
        }
        I32::Cvtsi2ss { dst, src } => {
            let v = match src {
                Rm::Reg(r) => read_gpr(sink, *r, Size::D),
                Rm::Mem(a) => {
                    let addr = ea(sink, a);
                    guest_load(sink, ctx, addr, Some(a), 4)
                }
            };
            let s = sink.vg();
            sink.emit(Op::Sxt {
                d: s,
                a: v,
                size: 4,
            });
            let fsig = sink.vf();
            sink.emit(Op::Setf {
                kind: FXfer::Sig,
                f: fsig,
                r: s,
            });
            let t = sink.vf();
            sink.emit(Op::FcvtXf { d: t, a: fsig });
            ensure_scalar(sink, ctx, dst.num());
            sink.emit(Op::FnormS {
                d: xmm_scalar_fr(dst.num()),
                a: t,
            });
        }
        I32::Cvttss2si { dst, src } => {
            let s = xmm_src_scalar(sink, ctx, src);
            let out = fcvt_to_i32(sink, s);
            write_gpr(sink, ctx, *dst, Size::D, out);
        }
        I32::Ucomiss { a, b, .. } => {
            ensure_scalar(sink, ctx, a.num());
            let fb = xmm_src_scalar(sink, ctx, b);
            fp_compare_flags(sink, live, xmm_scalar_fr(a.num()), fb);
        }
        other => {
            let _ = other;
            return Err(Unsupported("x87/MMX/SSE form"));
        }
    }
    Ok(None)
}

/// Common MMX preamble: enter MMX mode, force TOS to 0 once per block.
fn mmx_prologue(sink: &mut Sink, ctx: &mut EmitCtx<'_>) {
    ctx.fp.uses_mmx = true;
    ensure_mode(sink, ctx, true);
    if !ctx.fp.mmx_tos_done {
        ctx.fp.force_tos_zero();
        if ctx.fp.entry_tos != 0 || ctx.fp.uses_fp {
            sink.mov_imm(GR_FPTOP, 0);
        }
        ctx.fp.mmx_tos_done = true;
    }
}

/// Any MMX instruction tags the touched register valid (matching the
/// oracle's aliasing model).
fn mmx_tag(sink: &mut Sink, reg: u8) {
    sink.emit(Op::OrImm {
        d: GR_FPTAG,
        imm: 1i64 << (reg & 7),
        a: GR_FPTAG,
    });
}

fn emit_palu(sink: &mut Sink, op: MmxOp, d: Gr, a: Gr, b: Gr) {
    match op {
        MmxOp::PAdd(w) => sink.emit(Op::Padd { sz: w, d, a, b }),
        MmxOp::PSub(w) => sink.emit(Op::Psub { sz: w, d, a, b }),
        MmxOp::Pand => sink.emit(Op::And { d, a, b }),
        MmxOp::Por => sink.emit(Op::Or { d, a, b }),
        MmxOp::Pxor => sink.emit(Op::Xor { d, a, b }),
        MmxOp::Pmullw => sink.emit(Op::Pmpy2 { d, a, b }),
    }
}

/// Re-exported for dispatch from [`super::emit`]: `Mm`/`Xmm` are used in
/// the instruction enum patterns above.
#[allow(unused)]
fn _type_uses(_: Mm, _: Xmm, _: FpArithForm) {}

#[allow(unused_variables)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{AccessMode, AlignCache, FpCtx, MisalignPlan, XmmCtx};

    fn emit_one(inst: &I32, fp: &mut FpCtx, xmm: &mut XmmCtx) -> Sink {
        let plan = MisalignPlan::uniform(AccessMode::Fast, 0);
        let mut align = AlignCache::default();
        let mut sink = Sink::new();
        let mut ctx = EmitCtx {
            ip: 0x1000,
            next_ip: 0x1002,
            live_flags: 0,
            fp,
            xmm,
            misalign: &plan,
            align: &mut align,
        };
        emit_fp(&mut sink, inst, &mut ctx).expect("template exists");
        sink
    }

    #[test]
    fn fxch_elided_in_hot_mode() {
        let mut fp = FpCtx::new(0, true);
        fp.known_valid = 0xFF; // pretend all valid
        let mut xmm = XmmCtx::new(0);
        let s = emit_one(&I32::Fxch { i: 2 }, &mut fp, &mut xmm);
        assert_eq!(s.inst_count(), 0, "hot FXCH costs zero instructions");
        assert_ne!(fp.perm, [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn fxch_cold_emits_moves() {
        let mut fp = FpCtx::new(0, false);
        fp.known_valid = 0xFF;
        let mut xmm = XmmCtx::new(0);
        let s = emit_one(&I32::Fxch { i: 2 }, &mut fp, &mut xmm);
        assert_eq!(s.inst_count(), 3, "cold FXCH is three FP moves");
    }

    #[test]
    fn fld_accumulates_head_requirements() {
        let mut fp = FpCtx::new(0, false);
        let mut xmm = XmmCtx::new(0);
        emit_one(&I32::Fld1, &mut fp, &mut xmm);
        assert_eq!(fp.req_empty, 1 << 7, "push target must be empty");
        assert_eq!(fp.tos(), 7);
    }

    #[test]
    fn scalar_to_packed_conversion_counted() {
        let mut fp = FpCtx::new(0, false);
        // XMM0 enters in scalar format; a packed op forces conversion.
        let mut xmm = XmmCtx::new(0b1);
        let s = emit_one(
            &I32::SseArith {
                op: SseOp::Add,
                scalar: false,
                dst: Xmm::new(0),
                src: XmmM::Reg(Xmm::new(1)),
            },
            &mut fp,
            &mut xmm,
        );
        assert_eq!(xmm.conversions, 1);
        assert!(!xmm.fmt & 1 == 1 || xmm.fmt & 1 == 0);
        assert!(s.inst_count() > 2);
    }

    #[test]
    fn scalar_op_with_matching_format_is_cheap() {
        let mut fp = FpCtx::new(0, false);
        let mut xmm = XmmCtx::new(0b11); // both scalar already
        let s = emit_one(
            &I32::SseArith {
                op: SseOp::Mul,
                scalar: true,
                dst: Xmm::new(0),
                src: XmmM::Reg(Xmm::new(1)),
            },
            &mut fp,
            &mut xmm,
        );
        assert_eq!(xmm.conversions, 0, "format speculation hit: no conversion");
        assert!(s.inst_count() <= 3);
    }

    #[test]
    fn mixed_fp_mmx_emits_transition() {
        let mut fp = FpCtx::new(0, false);
        fp.cur_mmx = false;
        let mut xmm = XmmCtx::new(0);
        let s = emit_one(
            &I32::PAlu {
                op: MmxOp::Pxor,
                dst: Mm::new(0),
                src: MmM::Reg(Mm::new(0)),
            },
            &mut fp,
            &mut xmm,
        );
        // 8 getf transfers + mode/top bookkeeping + the op itself.
        assert!(s.inst_count() >= 10);
        assert!(fp.cur_mmx);
    }
}
