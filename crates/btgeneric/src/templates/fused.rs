//! Synthesized superinstruction templates (ROADMAP item 4).
//!
//! Each emitter here is a *composition* of the hand-written per
//! instruction templates in `int.rs`/`mem.rs`: it emits the same guest
//! visible effects as the source idiom's instructions back to back,
//! but with the intermediate writebacks elided when they are provably
//! dead — the mov's zero-extending register writeback when the ALU
//! overwrites the same register, the intermediate truncations inside a
//! same-destination ALU chain, the push/pop ESP round trip.
//!
//! Every emitter obeys the paper's precise-exception discipline for a
//! *single* instruction, applied to the whole idiom: all guest state
//! writes are emitted after the last faulting micro-op, every op is
//! tagged with the idiom's **head** IP (the caller does
//! `sink.set_ip(head)`), and memory writes are pure functions of the
//! entry state. A fault anywhere inside the fused sequence therefore
//! re-enters the interpreter at the idiom head and replays it
//! idempotently — the same recovery contract the engine already
//! implements for single instructions.
//!
//! Which idioms may fire is decided by the mined table and the
//! differential validation gate in [`crate::superinst`]; nothing here
//! is reachable unless `Config::enable_superinst` is on.

use super::flags_emit::{arith_flags, ArithKind};
use super::int::{cond_to_rel, emit_alu, read_rmi, trunc, write_rm};
use super::mem::{guest_store, read_gpr, write_gpr};
use super::{EmitCtx, Sink};
use crate::state;
use ia32::inst::{AluOp, Inst as I32, Rm, RmI};
use ia32::regs::Gpr;
use ia32::{flags, Size};
use ipf::inst::{CmpRel, Op};
use ipf::regs::{Gr, Pr, R0};

/// ALU ops whose 32-bit result depends only on the low 32 bits of the
/// operands — the ops a chain may compose without intermediate
/// truncation — and which have no carry input.
pub(crate) fn chainable(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add | AluOp::Sub | AluOp::And | AluOp::Or | AluOp::Xor
    )
}

/// Whether a fused compare+branch template exists for `cond` on a
/// `cmp`-class flag setter (mirrors `int::try_fuse`).
pub(crate) fn cmp_cond_fusable(cond: ia32::Cond) -> bool {
    cond_to_rel(cond).is_some()
}

/// Whether `cond` is computable from the ALU *result* alone — the
/// condition set `int::try_fuse` accepts for `sub`/`and`/`or`/`xor`/
/// `inc`/`dec` fusions, and the set the `MovAluJcc` triple mirrors.
pub(crate) fn result_cond_fusable(cond: ia32::Cond) -> bool {
    use ia32::Cond as C;
    matches!(cond, C::E | C::Ne | C::S | C::Ns)
}

/// Reads the ALU source operand of an absorbable pair/triple, with
/// reads of the mov destination `rd` redirected to the mov source `rs`
/// (the value `rd` would have held after the elided mov).
fn read_subst(sink: &mut Sink, ctx: &mut EmitCtx<'_>, src: &RmI, rd: Gpr, rs: Gpr) -> Gr {
    match src {
        RmI::Reg(r) if r.num() == rd.num() => read_gpr(sink, rs, Size::D),
        other => read_rmi(sink, ctx, other, Size::D),
    }
}

/// `mov rd, rs ; op rd, src` → `rd = op(rs, src[rd→rs])`.
///
/// The mov's zero-extending writeback is elided entirely: the ALU
/// reads `rs`'s canonical register directly and its own writeback
/// produces the final `rd`. Saves one micro-op over the unfused pair.
pub(crate) fn emit_mov_alu(
    sink: &mut Sink,
    ctx: &mut EmitCtx<'_>,
    rd: Gpr,
    rs: Gpr,
    op: AluOp,
    src: &RmI,
    live: u32,
) {
    sink.set_ip(ctx.ip);
    let a = read_gpr(sink, rs, Size::D);
    // Immediate fast path: fold into the Itanium imm-form op (mirrors
    // the unfused `Alu` template).
    if live == 0 {
        if let RmI::Imm(v) = src {
            let imm = Size::D.trunc(*v as u32) as i64;
            let d = sink.vg();
            let fop = match op {
                AluOp::Add => Op::AddImm { d, imm, a },
                AluOp::Sub => Op::AddImm { d, imm: -imm, a },
                AluOp::And => Op::AndImm { d, imm, a },
                AluOp::Or => Op::OrImm { d, imm, a },
                AluOp::Xor => Op::XorImm { d, imm, a },
                _ => unreachable!("non-chainable op in mov+alu pair"),
            };
            sink.emit(fop);
            write_gpr(sink, ctx, rd, Size::D, d);
            return;
        }
    }
    let b = read_subst(sink, ctx, src, rd, rs);
    emit_alu(sink, ctx, op, Size::D, a, b, Some(&Rm::Reg(rd)), live);
}

/// `mov rd, rs ; alu rd[, src] ; jcc` → one fused unit, returning the
/// taken-predicate like `int::try_fuse`. The mov is absorbed (reads of
/// `rd` in the ALU become reads of `rs`), the ALU writeback lands in
/// `rd`, and the condition is computed straight off the result —
/// exactly the `try_fuse` arms with the left operand substituted.
///
/// `live` is the branch-surviving liveness already masked with the
/// ALU's must-write set. Returns `None` when the form isn't fusable;
/// the caller falls back to the unfused path.
pub(crate) fn emit_mov_alu_jcc(
    sink: &mut Sink,
    ctx: &mut EmitCtx<'_>,
    rd: Gpr,
    rs: Gpr,
    alu: &I32,
    cond: ia32::Cond,
    live: u32,
) -> Option<Pr> {
    use ia32::Cond as C;
    if !result_cond_fusable(cond) || cond.flags_read() & flags::CF != 0 {
        return None;
    }
    sink.set_ip(ctx.ip);
    let res = match alu {
        I32::IncDec {
            inc,
            size: Size::D,
            dst: Rm::Reg(d),
        } if d.num() == rd.num() => {
            let a = read_gpr(sink, rs, Size::D);
            let res64 = sink.vg();
            sink.emit(Op::AddImm {
                d: res64,
                imm: if *inc { 1 } else { -1 },
                a,
            });
            let res = trunc(sink, res64, Size::D);
            write_rm(sink, ctx, &Rm::Reg(rd), Size::D, res);
            if live != 0 {
                arith_flags(
                    sink,
                    if *inc { ArithKind::Inc } else { ArithKind::Dec },
                    a,
                    state::GR_ONE,
                    res64,
                    res,
                    Size::D,
                    live,
                    None,
                );
            }
            res
        }
        I32::Alu {
            op: op @ (AluOp::Sub | AluOp::And | AluOp::Or | AluOp::Xor),
            size: Size::D,
            dst: Rm::Reg(d),
            src: src @ (RmI::Reg(_) | RmI::Imm(_)),
        } if d.num() == rd.num() => {
            // The write target `rd` never aliases the operands (`a` is
            // `rs` ≠ `rd`; reads of `rd` in `src` are substituted), so
            // no snapshots are needed even with live flags.
            let a = read_gpr(sink, rs, Size::D);
            let b = read_subst(sink, ctx, src, rd, rs);
            let r = sink.vg();
            match op {
                AluOp::Sub => sink.emit(Op::Sub { d: r, a, b }),
                AluOp::And => sink.emit(Op::And { d: r, a, b }),
                AluOp::Or => sink.emit(Op::Or { d: r, a, b }),
                AluOp::Xor => sink.emit(Op::Xor { d: r, a, b }),
                _ => unreachable!(),
            }
            if *op == AluOp::Sub {
                let rt = trunc(sink, r, Size::D);
                write_rm(sink, ctx, &Rm::Reg(rd), Size::D, rt);
                if live != 0 {
                    arith_flags(sink, ArithKind::Sub, a, b, r, rt, Size::D, live, None);
                }
                rt
            } else {
                write_rm(sink, ctx, &Rm::Reg(rd), Size::D, r);
                if live != 0 {
                    super::flags_emit::logic_flags(sink, r, Size::D, live);
                }
                r
            }
        }
        _ => return None,
    };
    let (pt, pf) = (sink.vp(), sink.vp());
    match cond {
        C::E | C::Ne => sink.emit(Op::Cmp {
            rel: CmpRel::Eq,
            pt,
            pf,
            a: res,
            b: R0,
        }),
        _ => sink.emit(Op::Tbit {
            pt,
            pf,
            r: res,
            pos: 31,
        }),
    }
    Some(match cond {
        C::E | C::S => pt,
        _ => pf,
    })
}

/// `op₁ rd, s₁ ; op₂ rd, s₂ ; …` (same 32-bit register destination) →
/// one chain with a single zero-extending writeback at the end.
///
/// Sound without intermediate truncation because the low 32 result
/// bits of add/sub/and/or/xor are independent of the operands' high
/// bits; reads of `rd` by later members see the running (possibly
/// dirty-high) value, which is equally truncation-independent. The
/// matcher guarantees every non-final member's flags are dead; the
/// final member's live flags are computed from freshly truncated
/// operands.
pub(crate) fn emit_alu_chain(
    sink: &mut Sink,
    ctx: &mut EmitCtx<'_>,
    rd: Gpr,
    members: &[(AluOp, RmI)],
    live_last: u32,
) {
    sink.set_ip(ctx.ip);
    let mut cur = read_gpr(sink, rd, Size::D);
    for (k, (op, src)) in members.iter().enumerate() {
        let last = k + 1 == members.len();
        if last && live_last != 0 {
            // Flags need clean 32-bit operands: truncate the running
            // value and delegate to the standard ALU template (which
            // also performs the writeback).
            let a = trunc(sink, cur, Size::D);
            let b = match src {
                RmI::Reg(r) if r.num() == rd.num() => a,
                other => read_rmi(sink, ctx, other, Size::D),
            };
            emit_alu(sink, ctx, *op, Size::D, a, b, Some(&Rm::Reg(rd)), live_last);
            return;
        }
        match src {
            RmI::Imm(v) => {
                let imm = Size::D.trunc(*v as u32) as i64;
                let d = sink.vg();
                let fop = match op {
                    AluOp::Add => Op::AddImm { d, imm, a: cur },
                    AluOp::Sub => Op::AddImm {
                        d,
                        imm: -imm,
                        a: cur,
                    },
                    AluOp::And => Op::AndImm { d, imm, a: cur },
                    AluOp::Or => Op::OrImm { d, imm, a: cur },
                    AluOp::Xor => Op::XorImm { d, imm, a: cur },
                    _ => unreachable!("non-chainable op in chain"),
                };
                sink.emit(fop);
                cur = d;
            }
            RmI::Reg(r) => {
                let b = if r.num() == rd.num() {
                    cur
                } else {
                    read_gpr(sink, *r, Size::D)
                };
                let d = sink.vg();
                match op {
                    AluOp::Add => sink.emit(Op::Add { d, a: cur, b }),
                    AluOp::Sub => sink.emit(Op::Sub { d, a: cur, b }),
                    AluOp::And => sink.emit(Op::And { d, a: cur, b }),
                    AluOp::Or => sink.emit(Op::Or { d, a: cur, b }),
                    AluOp::Xor => sink.emit(Op::Xor { d, a: cur, b }),
                    _ => unreachable!("non-chainable op in chain"),
                }
                cur = d;
            }
            RmI::Mem(_) => unreachable!("memory source in chain"),
        }
    }
    write_gpr(sink, ctx, rd, Size::D, cur);
}

/// `push a ; push b` → both stores computed off the entry ESP, one ESP
/// writeback. Both stores precede the ESP update (paper Table 1), so a
/// fault in the second store replays the idiom idempotently.
pub(crate) fn emit_push_push(sink: &mut Sink, ctx: &mut EmitCtx<'_>, s1: &RmI, s2: &RmI) {
    sink.set_ip(ctx.ip);
    let esp = state::guest_gpr(4);
    // Operand reads first: `push esp` pushes the pre-push value, which
    // is exactly what the canonical register still holds (the matcher
    // excludes ESP as the *second* push's source, where the unfused
    // sequence would push the decremented value).
    let v1 = read_rmi(sink, ctx, s1, Size::D);
    let v2 = read_rmi(sink, ctx, s2, Size::D);
    let n1 = sink.vg();
    sink.emit(Op::AddImm {
        d: n1,
        imm: -4,
        a: esp,
    });
    let t1 = trunc(sink, n1, Size::D);
    guest_store(sink, ctx, t1, None, 4, v1);
    let n2 = sink.vg();
    sink.emit(Op::AddImm {
        d: n2,
        imm: -8,
        a: esp,
    });
    let t2 = trunc(sink, n2, Size::D);
    guest_store(sink, ctx, t2, None, 4, v2);
    sink.mov(esp, t2);
    ctx.align.invalidate_gpr(4);
}

/// `push v ; pop rd` → store-forward: the stored value goes straight
/// into `rd` and ESP is never touched (push's decrement and pop's
/// increment cancel). The store itself still happens — the bytes below
/// ESP are architecturally visible. Saves the load, both ESP updates
/// and the intermediate truncations: five micro-ops.
pub(crate) fn emit_push_pop(sink: &mut Sink, ctx: &mut EmitCtx<'_>, src: &RmI, rd: Gpr) {
    sink.set_ip(ctx.ip);
    let esp = state::guest_gpr(4);
    let v = read_rmi(sink, ctx, src, Size::D);
    let n = sink.vg();
    sink.emit(Op::AddImm {
        d: n,
        imm: -4,
        a: esp,
    });
    let t = trunc(sink, n, Size::D);
    guest_store(sink, ctx, t, None, 4, v);
    write_gpr(sink, ctx, rd, Size::D, v);
}
