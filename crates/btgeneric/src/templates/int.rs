//! Integer and control-flow instruction templates.

use super::flags_emit::{arith_flags, cond_from_flags, logic_flags, ArithKind};
use super::mem::{ea, guest_load, guest_store, read_gpr, snapshot, write_gpr};
use super::{EmitCtx, IndKind, Sink, Term, Unsupported};
use crate::layout::StubKind;
use crate::state::{self, GR_EFLAGS, GR_ONE};
use ia32::flags;
use ia32::inst::{AluOp, Inst as I32, MulDivOp, Rm, RmI, ShiftCount, ShiftOp};
use ia32::Size;
use ipf::inst::{CmpRel, FXfer, Op, Target};
use ipf::regs::{Gr, Pr, F0, R0};

/// Reads a register-or-memory operand (zero-extended at `size`).
pub(super) fn read_rm(sink: &mut Sink, ctx: &mut EmitCtx<'_>, rm: &Rm, size: Size) -> Gr {
    match rm {
        Rm::Reg(r) => read_gpr(sink, *r, size),
        Rm::Mem(a) => {
            let addr = ea(sink, a);
            guest_load(sink, ctx, addr, Some(a), size.bytes() as u8)
        }
    }
}

/// An ALU source: either a register value or a foldable immediate.
enum AluSrc {
    /// Register operand (read-through; unused by current callers, which
    /// fall back to `read_rmi`).
    #[allow(dead_code)]
    Reg(Gr),
    /// Foldable immediate.
    Imm(i64),
}

/// Reads an ALU source, keeping immediates symbolic so the imm-form
/// Itanium ops can be used.
fn read_alu_src(sink: &mut Sink, ctx: &mut EmitCtx<'_>, rmi: &RmI, size: Size) -> AluSrc {
    match rmi {
        RmI::Imm(v) => AluSrc::Imm(size.trunc(*v as u32) as i64),
        other => AluSrc::Reg(read_rmi(sink, ctx, other, size)),
    }
}

/// Reads a register, memory, or immediate operand.
pub(super) fn read_rmi(sink: &mut Sink, ctx: &mut EmitCtx<'_>, rmi: &RmI, size: Size) -> Gr {
    match rmi {
        RmI::Reg(r) => read_gpr(sink, *r, size),
        RmI::Mem(a) => {
            let addr = ea(sink, a);
            guest_load(sink, ctx, addr, Some(a), size.bytes() as u8)
        }
        RmI::Imm(v) => {
            let d = sink.vg();
            sink.mov_imm(d, size.trunc(*v as u32) as u64);
            d
        }
    }
}

/// Truncate-and-zero-extend to `size`.
pub(super) fn trunc(sink: &mut Sink, v: Gr, size: Size) -> Gr {
    let d = sink.vg();
    sink.emit(Op::Zxt {
        d,
        a: v,
        size: size.bytes() as u8,
    });
    d
}

/// Sign-extend at `size`.
pub(super) fn sext(sink: &mut Sink, v: Gr, size: Size) -> Gr {
    let d = sink.vg();
    sink.emit(Op::Sxt {
        d,
        a: v,
        size: size.bytes() as u8,
    });
    d
}

/// Writes a result to an `Rm` destination. For memory this is the
/// faulting op and must precede all state updates; the caller orders
/// accordingly by calling this before flag emission when `dst` is
/// memory.
pub(super) fn write_rm(sink: &mut Sink, ctx: &mut EmitCtx<'_>, rm: &Rm, size: Size, v: Gr) {
    match rm {
        Rm::Reg(r) => write_gpr(sink, ctx, *r, size, v),
        Rm::Mem(a) => {
            let addr = ea(sink, a);
            guest_store(sink, ctx, addr, Some(a), size.bytes() as u8, v);
        }
    }
}

/// Pushes `v` (32-bit): store first, ESP update after (paper Table 1).
pub(super) fn push32(sink: &mut Sink, ctx: &mut EmitCtx<'_>, v: Gr) {
    let esp = state::guest_gpr(4);
    let new = sink.vg();
    sink.emit(Op::AddImm {
        d: new,
        imm: -4,
        a: esp,
    });
    let new32 = trunc(sink, new, Size::D);
    guest_store(sink, ctx, new32, None, 4, v);
    sink.mov(esp, new32);
    ctx.align.invalidate_gpr(4);
}

/// Emits an exact unsigned 32-bit divide via `frcpa` + Newton-Raphson +
/// Markstein correction (there is no integer divide on Itanium).
/// Returns `(quotient, remainder)` as 64-bit GRs with 32-bit values.
fn emit_udiv32(sink: &mut Sink, a: Gr, b: Gr) -> (Gr, Gr) {
    let fa_sig = sink.vf();
    let fb_sig = sink.vf();
    sink.emit(Op::Setf {
        kind: FXfer::Sig,
        f: fa_sig,
        r: a,
    });
    sink.emit(Op::Setf {
        kind: FXfer::Sig,
        f: fb_sig,
        r: b,
    });
    let fa = sink.vf();
    let fb = sink.vf();
    sink.emit(Op::FcvtXf { d: fa, a: fa_sig });
    sink.emit(Op::FcvtXf { d: fb, a: fb_sig });
    let y = sink.vf();
    let p = sink.vp();
    sink.emit(Op::Frcpa {
        d: y,
        p,
        a: fa,
        b: fb,
    });
    // Two NR iterations are ample for 32-bit quotients.
    for _ in 0..2 {
        let e = sink.vf();
        sink.emit_pred(
            p,
            Op::Fnma {
                d: e,
                a: fb,
                b: y,
                c: ipf::regs::F1,
            },
        );
        sink.emit_pred(
            p,
            Op::Fma {
                d: y,
                a: y,
                b: e,
                c: y,
            },
        );
    }
    let q0 = sink.vf();
    sink.emit_pred(
        p,
        Op::Fma {
            d: q0,
            a: fa,
            b: y,
            c: F0,
        },
    );
    let qt = sink.vf();
    sink.emit(Op::FcvtFx {
        d: qt,
        a: q0,
        trunc: true,
    });
    let q = sink.vg();
    sink.emit(Op::Getf {
        kind: FXfer::Sig,
        d: q,
        f: qt,
    });
    // r = a - q*b, then correct q into [0, b).
    let qb_f = sink.vf();
    sink.emit(Op::Xma {
        d: qb_f,
        a: qt,
        b: fb_sig,
        c: F0,
        high: false,
    });
    let qb = sink.vg();
    sink.emit(Op::Getf {
        kind: FXfer::Sig,
        d: qb,
        f: qb_f,
    });
    let r = sink.vg();
    sink.emit(Op::Sub { d: r, a, b: qb });
    // If r < 0 (as i64): q -= 1, r += b.
    let p_neg = sink.vp();
    let p_nn = sink.vp();
    sink.emit(Op::CmpImm {
        rel: CmpRel::Gt,
        pt: p_neg,
        pf: p_nn,
        imm: 0,
        b: r,
    });
    sink.emit_pred(
        p_neg,
        Op::AddImm {
            d: q,
            imm: -1,
            a: q,
        },
    );
    sink.emit_pred(p_neg, Op::Add { d: r, a: r, b });
    // If r >= b: q += 1, r -= b.
    let p_ge = sink.vp();
    let p_lt = sink.vp();
    sink.emit(Op::Cmp {
        rel: CmpRel::Geu,
        pt: p_ge,
        pf: p_lt,
        a: r,
        b,
    });
    sink.emit_pred(p_ge, Op::AddImm { d: q, imm: 1, a: q });
    sink.emit_pred(p_ge, Op::Sub { d: r, a: r, b });
    (q, r)
}

/// Emits `|v|` of a sign-extended 64-bit value, returning
/// `(abs, p_negative)`.
fn emit_abs(sink: &mut Sink, v: Gr) -> (Gr, Pr) {
    let p_neg = sink.vp();
    let p_nn = sink.vp();
    sink.emit(Op::CmpImm {
        rel: CmpRel::Gt,
        pt: p_neg,
        pf: p_nn,
        imm: 0,
        b: v,
    });
    let out = sink.vg();
    sink.mov(out, v);
    sink.emit_pred(
        p_neg,
        Op::SubImm {
            d: out,
            imm: 0,
            a: v,
        },
    );
    (out, p_neg)
}

/// Emits the integer/control-flow translation of one instruction.
pub(super) fn emit_int(
    sink: &mut Sink,
    inst: &I32,
    ctx: &mut EmitCtx<'_>,
) -> Result<Option<Term>, Unsupported> {
    let live = ctx.live_flags & inst.flags_written_maybe();
    match inst {
        I32::Alu { op, size, dst, src } => {
            let a = read_rm(sink, ctx, dst, *size);
            // Immediate fast path: fold into the Itanium imm-form op.
            if live == 0 && op.writes_dst() {
                if let AluSrc::Imm(imm) = read_alu_src(sink, ctx, src, *size) {
                    let folded = match op {
                        AluOp::Add => Some(Op::AddImm {
                            d: sink.vg(),
                            imm,
                            a,
                        }),
                        AluOp::Sub => Some(Op::AddImm {
                            d: sink.vg(),
                            imm: -imm,
                            a,
                        }),
                        AluOp::And => Some(Op::AndImm {
                            d: sink.vg(),
                            imm,
                            a,
                        }),
                        AluOp::Or => Some(Op::OrImm {
                            d: sink.vg(),
                            imm,
                            a,
                        }),
                        AluOp::Xor => Some(Op::XorImm {
                            d: sink.vg(),
                            imm,
                            a,
                        }),
                        _ => None,
                    };
                    if let Some(fop) = folded {
                        let d = match fop {
                            Op::AddImm { d, .. }
                            | Op::AndImm { d, .. }
                            | Op::OrImm { d, .. }
                            | Op::XorImm { d, .. } => d,
                            _ => unreachable!(),
                        };
                        sink.emit(fop);
                        write_rm(sink, ctx, dst, *size, d);
                        return Ok(None);
                    }
                }
            }
            let b = read_rmi(sink, ctx, src, *size);
            emit_alu(sink, ctx, *op, *size, a, b, Some(dst), live);
        }
        I32::AluRM { op, size, dst, src } => {
            let a = read_gpr(sink, *dst, *size);
            let addr = ea(sink, src);
            let b = guest_load(sink, ctx, addr, Some(src), size.bytes() as u8);
            emit_alu(sink, ctx, *op, *size, a, b, Some(&Rm::Reg(*dst)), live);
        }
        I32::Test { size, a, b } => {
            let x = read_rm(sink, ctx, a, *size);
            let y = read_rmi(sink, ctx, b, *size);
            let res = sink.vg();
            sink.emit(Op::And { d: res, a: x, b: y });
            logic_flags(sink, res, *size, live);
        }
        I32::Mov { size, dst, src } => {
            if let (Rm::Reg(r), RmI::Imm(v), Size::D) = (dst, src, *size) {
                // Direct constant write: the truncation is in the imm.
                let g = crate::state::guest_gpr(r.num());
                sink.mov_imm(g, Size::D.trunc(*v as u32) as u64);
                ctx.align.invalidate_gpr(r.num());
                return Ok(None);
            }
            let v = read_rmi(sink, ctx, src, *size);
            write_rm(sink, ctx, dst, *size, v);
        }
        I32::MovLoad { size, dst, src } => {
            let addr = ea(sink, src);
            let v = guest_load(sink, ctx, addr, Some(src), size.bytes() as u8);
            write_gpr(sink, ctx, *dst, *size, v);
        }
        I32::Movzx { dst, src_size, src } => {
            let v = read_rm(sink, ctx, src, *src_size);
            write_gpr(sink, ctx, *dst, Size::D, v);
        }
        I32::Movsx { dst, src_size, src } => {
            let v = read_rm(sink, ctx, src, *src_size);
            let s = sext(sink, v, *src_size);
            write_gpr(sink, ctx, *dst, Size::D, s);
        }
        I32::Lea { dst, addr } => {
            let v = ea(sink, addr);
            write_gpr(sink, ctx, *dst, Size::D, v);
        }
        I32::Xchg { size, reg, rm } => {
            let a = read_gpr(sink, *reg, *size);
            let a = snapshot(sink, a);
            let b = read_rm(sink, ctx, rm, *size);
            let b = snapshot(sink, b);
            write_rm(sink, ctx, rm, *size, a);
            write_gpr(sink, ctx, *reg, *size, b);
        }
        I32::Push { src } => {
            let v = read_rmi(sink, ctx, src, Size::D);
            push32(sink, ctx, v);
        }
        I32::Pop { dst } => match dst {
            Rm::Reg(r) => {
                let esp = state::guest_gpr(4);
                let v = guest_load(sink, ctx, esp, None, 4);
                let new = sink.vg();
                sink.emit(Op::AddImm {
                    d: new,
                    imm: 4,
                    a: esp,
                });
                let new32 = trunc(sink, new, Size::D);
                sink.mov(esp, new32);
                ctx.align.invalidate_gpr(4);
                write_gpr(sink, ctx, *r, Size::D, v);
            }
            Rm::Mem(_) => return Err(Unsupported("pop to memory")),
        },
        I32::IncDec { inc, size, dst } => {
            let a = read_rm(sink, ctx, dst, *size);
            let a = if live != 0 { snapshot(sink, a) } else { a };
            let res64 = sink.vg();
            sink.emit(Op::AddImm {
                d: res64,
                imm: if *inc { 1 } else { -1 },
                a,
            });
            let res = trunc(sink, res64, *size);
            write_rm(sink, ctx, dst, *size, res);
            arith_flags(
                sink,
                if *inc { ArithKind::Inc } else { ArithKind::Dec },
                a,
                GR_ONE,
                res64,
                res,
                *size,
                live,
                None,
            );
        }
        I32::Neg { size, dst } => {
            let a = read_rm(sink, ctx, dst, *size);
            let a = if live != 0 { snapshot(sink, a) } else { a };
            let res64 = sink.vg();
            sink.emit(Op::SubImm {
                d: res64,
                imm: 0,
                a,
            });
            let res = trunc(sink, res64, *size);
            write_rm(sink, ctx, dst, *size, res);
            arith_flags(sink, ArithKind::Sub, R0, a, res64, res, *size, live, None);
        }
        I32::Not { size, dst } => {
            let a = read_rm(sink, ctx, dst, *size);
            let res64 = sink.vg();
            sink.emit(Op::XorImm {
                d: res64,
                imm: -1,
                a,
            });
            let res = trunc(sink, res64, *size);
            write_rm(sink, ctx, dst, *size, res);
        }
        I32::Shift {
            op,
            size,
            dst,
            count,
        } => emit_shift(sink, ctx, *op, *size, dst, count, live),
        I32::ImulRm { dst, src } => {
            let a = read_gpr(sink, *dst, Size::D);
            let b = read_rm(sink, ctx, src, Size::D);
            let p = emit_mul64(sink, a, b, true);
            let res = trunc(sink, p, Size::D);
            write_gpr(sink, ctx, *dst, Size::D, res);
            emit_mul_flags(sink, p, res, true, live);
        }
        I32::ImulRmImm { dst, src, imm } => {
            let a = read_rm(sink, ctx, src, Size::D);
            let b = sink.vg();
            sink.mov_imm(b, *imm as i64 as u64);
            let p = emit_mul64(sink, a, b, true);
            let res = trunc(sink, p, Size::D);
            write_gpr(sink, ctx, *dst, Size::D, res);
            emit_mul_flags(sink, p, res, true, live);
        }
        I32::MulDiv { op, size, src } => {
            if *size != Size::D {
                return Err(Unsupported("byte/word multiply/divide"));
            }
            emit_muldiv32(sink, ctx, *op, src, live)?;
        }
        I32::Cdq => {
            let eax = state::guest_gpr(0);
            let edx = state::guest_gpr(2);
            let t = sext(sink, eax, Size::D);
            let h = sink.vg();
            sink.emit(Op::ShrImm {
                d: h,
                a: t,
                count: 32,
                signed: true,
            });
            sink.emit(Op::Zxt {
                d: edx,
                a: h,
                size: 4,
            });
            ctx.align.invalidate_gpr(2);
        }
        I32::Cwde => {
            let eax = state::guest_gpr(0);
            let t = sext(sink, eax, Size::W);
            sink.emit(Op::Zxt {
                d: eax,
                a: t,
                size: 4,
            });
            ctx.align.invalidate_gpr(0);
        }
        I32::Jmp { target } => return Ok(Some(Term::Jump { target: *target })),
        I32::JmpInd { src } => {
            let t = read_rm(sink, ctx, src, Size::D);
            return Ok(Some(Term::Indirect {
                eip: t,
                kind: IndKind::Jump,
            }));
        }
        I32::Jcc { cond, target } => {
            let (pt, _) = cond_from_flags(sink, *cond);
            return Ok(Some(Term::CondJump {
                taken_pred: pt,
                taken: *target,
                fallthrough: ctx.next_ip,
            }));
        }
        I32::Call { target } => {
            let ret = sink.vg();
            sink.mov_imm(ret, ctx.next_ip as u64);
            push32(sink, ctx, ret);
            return Ok(Some(Term::Call {
                target: *target,
                ret: ctx.next_ip,
            }));
        }
        I32::CallInd { src } => {
            let t = read_rm(sink, ctx, src, Size::D);
            let ret = sink.vg();
            sink.mov_imm(ret, ctx.next_ip as u64);
            push32(sink, ctx, ret);
            return Ok(Some(Term::Indirect {
                eip: t,
                kind: IndKind::Call { ret: ctx.next_ip },
            }));
        }
        I32::Ret { pop } => {
            let esp = state::guest_gpr(4);
            let t = guest_load(sink, ctx, esp, None, 4);
            let new = sink.vg();
            sink.emit(Op::AddImm {
                d: new,
                imm: 4 + *pop as i64,
                a: esp,
            });
            let new32 = trunc(sink, new, Size::D);
            sink.mov(esp, new32);
            ctx.align.invalidate_gpr(4);
            return Ok(Some(Term::Indirect {
                eip: t,
                kind: IndKind::Ret,
            }));
        }
        I32::Setcc { cond, dst } => {
            let (pt, pf) = cond_from_flags(sink, *cond);
            let v = sink.vg();
            sink.emit_pred(
                pt,
                Op::AddImm {
                    d: v,
                    imm: 1,
                    a: R0,
                },
            );
            sink.emit_pred(
                pf,
                Op::AddImm {
                    d: v,
                    imm: 0,
                    a: R0,
                },
            );
            write_rm(sink, ctx, dst, Size::B, v);
        }
        I32::Cmovcc { cond, dst, src } => {
            // The source is read unconditionally (it may fault), as on
            // hardware.
            let v = read_rm(sink, ctx, src, Size::D);
            let (pt, _) = cond_from_flags(sink, *cond);
            let g = state::guest_gpr(dst.num());
            sink.emit_pred(
                pt,
                Op::Zxt {
                    d: g,
                    a: v,
                    size: 4,
                },
            );
            ctx.align.invalidate_gpr(dst.num());
        }
        I32::Nop => {}
        I32::Hlt => return Ok(Some(Term::Halt)),
        I32::Ud2 => return Ok(Some(Term::InvalidOp)),
        I32::Int { vector } => return Ok(Some(Term::Syscall { vector: *vector })),
        I32::Movs { size, rep } => emit_string(sink, ctx, *size, *rep, true),
        I32::Stos { size, rep } => emit_string(sink, ctx, *size, *rep, false),
        _ => return Err(Unsupported("non-integer instruction in emit_int")),
    }
    Ok(None)
}

#[allow(clippy::too_many_arguments)]
pub(super) fn emit_alu(
    sink: &mut Sink,
    ctx: &mut EmitCtx<'_>,
    op: AluOp,
    size: Size,
    a: Gr,
    b: Gr,
    dst: Option<&Rm>,
    live: u32,
) {
    // The flag sequences read the operands after the destination write;
    // snapshot them when the destination may alias an operand.
    let (a, b) = if live != 0 && op.writes_dst() {
        (snapshot(sink, a), snapshot(sink, b))
    } else {
        (a, b)
    };
    // With flags dead, the truncation can be left to the destination
    // write (guest-register writes zero-extend; stores mask).
    let maybe_trunc = |sink: &mut Sink, r: Gr| {
        if live == 0 {
            r
        } else {
            trunc(sink, r, size)
        }
    };
    let (res64, res, kind) = match op {
        AluOp::Add => {
            let r = sink.vg();
            sink.emit(Op::Add { d: r, a, b });
            let rt = maybe_trunc(sink, r);
            (r, rt, ArithKind::Add)
        }
        AluOp::Adc => {
            let cf = sink.vg();
            sink.emit(Op::Extr {
                d: cf,
                a: GR_EFLAGS,
                pos: 0,
                len: 1,
                signed: false,
            });
            let s = sink.vg();
            sink.emit(Op::Add { d: s, a, b });
            let r = sink.vg();
            sink.emit(Op::Add { d: r, a: s, b: cf });
            (r, trunc(sink, r, size), ArithKind::Add)
        }
        AluOp::Sub | AluOp::Cmp => {
            let r = sink.vg();
            sink.emit(Op::Sub { d: r, a, b });
            let rt = maybe_trunc(sink, r);
            (r, rt, ArithKind::Sub)
        }
        AluOp::Sbb => {
            let cf = sink.vg();
            sink.emit(Op::Extr {
                d: cf,
                a: GR_EFLAGS,
                pos: 0,
                len: 1,
                signed: false,
            });
            let s = sink.vg();
            sink.emit(Op::Sub { d: s, a, b });
            let r = sink.vg();
            sink.emit(Op::Sub { d: r, a: s, b: cf });
            (r, trunc(sink, r, size), ArithKind::Sub)
        }
        AluOp::And => {
            let r = sink.vg();
            sink.emit(Op::And { d: r, a, b });
            (r, r, ArithKind::Logic)
        }
        AluOp::Or => {
            let r = sink.vg();
            sink.emit(Op::Or { d: r, a, b });
            (r, r, ArithKind::Logic)
        }
        AluOp::Xor => {
            let r = sink.vg();
            sink.emit(Op::Xor { d: r, a, b });
            (r, r, ArithKind::Logic)
        }
    };
    // Memory destination: the store is the faulting op and must precede
    // the EFLAGS update.
    if op.writes_dst() {
        if let Some(rm) = dst {
            write_rm(sink, ctx, rm, size, res);
        }
    }
    arith_flags(sink, kind, a, b, res64, res, size, live, None);
}

fn emit_shift(
    sink: &mut Sink,
    ctx: &mut EmitCtx<'_>,
    op: ShiftOp,
    size: Size,
    dst: &Rm,
    count: &ShiftCount,
    live: u32,
) {
    let a = read_rm(sink, ctx, dst, size);
    let a = if live != 0 { snapshot(sink, a) } else { a };
    match count {
        ShiftCount::Imm(c0) => {
            let c = c0 & 0x1F;
            if c == 0 {
                return;
            }
            let (res64, res) = match op {
                ShiftOp::Shl => {
                    let r = sink.vg();
                    sink.emit(Op::ShlImm { d: r, a, count: c });
                    (r, trunc(sink, r, size))
                }
                ShiftOp::Shr => {
                    let r = sink.vg();
                    sink.emit(Op::ShrImm {
                        d: r,
                        a,
                        count: c,
                        signed: false,
                    });
                    (r, r)
                }
                ShiftOp::Sar => {
                    let s = sext(sink, a, size);
                    let r = sink.vg();
                    sink.emit(Op::ShrImm {
                        d: r,
                        a: s,
                        count: c,
                        signed: true,
                    });
                    (s, trunc(sink, r, size))
                }
            };
            write_rm(sink, ctx, dst, size, res);
            shift_flags(
                sink,
                op,
                a,
                ShiftAmount::Imm(c),
                res64,
                res,
                size,
                live,
                None,
            );
        }
        ShiftCount::Cl => {
            let cl = read_gpr(sink, ia32::regs::ECX, Size::B);
            let c = sink.vg();
            sink.emit(Op::AndImm {
                d: c,
                imm: 0x1F,
                a: cl,
            });
            let p_nz = sink.vp();
            let p_z = sink.vp();
            sink.emit(Op::CmpImm {
                rel: CmpRel::Ne,
                pt: p_nz,
                pf: p_z,
                imm: 0,
                b: c,
            });
            let (res64, res) = match op {
                ShiftOp::Shl => {
                    let r = sink.vg();
                    sink.emit(Op::ShlVar { d: r, a, c });
                    (r, trunc(sink, r, size))
                }
                ShiftOp::Shr => {
                    let r = sink.vg();
                    sink.emit(Op::ShrVar {
                        d: r,
                        a,
                        c,
                        signed: false,
                    });
                    (r, r)
                }
                ShiftOp::Sar => {
                    let s = sext(sink, a, size);
                    let r = sink.vg();
                    sink.emit(Op::ShrVar {
                        d: r,
                        a: s,
                        c,
                        signed: true,
                    });
                    (s, trunc(sink, r, size))
                }
            };
            match dst {
                Rm::Reg(r) => {
                    // c == 0 leaves the value unchanged, so the write is
                    // safe unconditionally.
                    write_gpr(sink, ctx, *r, size, res);
                }
                Rm::Mem(a_expr) => {
                    // Memory store must be skipped for c == 0 (the
                    // interpreter performs no write in that case).
                    let addr = ea(sink, a_expr);
                    let qaddr = sink.vg();
                    // Redirect the store to a scratch slot… simpler: use
                    // a predicated store via a copy of the address only
                    // valid under p_nz. Our guest_store is unpredicated,
                    // so emit the plain-store variant under p_nz.
                    let _ = qaddr;
                    sink.emit_pred(
                        p_nz,
                        Op::St {
                            sz: size.bytes() as u8,
                            addr,
                            val: res,
                        },
                    );
                }
            }
            shift_flags(
                sink,
                op,
                a,
                ShiftAmount::Var(c),
                res64,
                res,
                size,
                live,
                Some(p_nz),
            );
        }
    }
}

enum ShiftAmount {
    Imm(u8),
    Var(Gr),
}

/// Shift flags: CF = last bit out, OF per-op formula, SZP of the result.
/// All oracle-matching, including the quirky IA-32 corner cases.
#[allow(clippy::too_many_arguments)]
fn shift_flags(
    sink: &mut Sink,
    op: ShiftOp,
    a: Gr,
    amount: ShiftAmount,
    res64: Gr,
    res: Gr,
    size: Size,
    live: u32,
    qp: Option<Pr>,
) {
    if live == 0 {
        return;
    }
    use super::flags_emit::FlagAcc;
    let bits = size.bits() as u8;
    let mut fa = FlagAcc::new(sink);
    // CF.
    if live & flags::CF != 0 {
        let cf_bit = match (op, &amount) {
            (ShiftOp::Shl, _) => {
                // Bit `bits` of the untruncated shifted value.
                let t = sink.vg();
                sink.emit(Op::Extr {
                    d: t,
                    a: res64,
                    pos: bits,
                    len: 1,
                    signed: false,
                });
                t
            }
            (ShiftOp::Shr, ShiftAmount::Imm(c)) => {
                let t = sink.vg();
                sink.emit(Op::Extr {
                    d: t,
                    a,
                    pos: c - 1,
                    len: 1,
                    signed: false,
                });
                t
            }
            (ShiftOp::Sar, ShiftAmount::Imm(c)) => {
                let s = sext(sink, a, size);
                let t = sink.vg();
                sink.emit(Op::Extr {
                    d: t,
                    a: s,
                    pos: (c - 1).min(63),
                    len: 1,
                    signed: false,
                });
                t
            }
            (ShiftOp::Shr, ShiftAmount::Var(c)) => {
                let cm1 = sink.vg();
                sink.emit(Op::AddImm {
                    d: cm1,
                    imm: -1,
                    a: *c,
                });
                let sh = sink.vg();
                sink.emit(Op::ShrVar {
                    d: sh,
                    a,
                    c: cm1,
                    signed: false,
                });
                let t = sink.vg();
                sink.emit(Op::AndImm {
                    d: t,
                    imm: 1,
                    a: sh,
                });
                t
            }
            (ShiftOp::Sar, ShiftAmount::Var(c)) => {
                let s = sext(sink, a, size);
                let cm1 = sink.vg();
                sink.emit(Op::AddImm {
                    d: cm1,
                    imm: -1,
                    a: *c,
                });
                let sh = sink.vg();
                sink.emit(Op::ShrVar {
                    d: sh,
                    a: s,
                    c: cm1,
                    signed: true,
                });
                let t = sink.vg();
                sink.emit(Op::AndImm {
                    d: t,
                    imm: 1,
                    a: sh,
                });
                t
            }
        };
        fa.or_bit(sink, cf_bit, 0);
        // OF for SHL = CF ^ SF(res); compute while cf_bit is at hand.
        if op == ShiftOp::Shl && live & flags::OF != 0 {
            let sf = sink.vg();
            sink.emit(Op::Extr {
                d: sf,
                a: res,
                pos: bits - 1,
                len: 1,
                signed: false,
            });
            let x = sink.vg();
            sink.emit(Op::Xor {
                d: x,
                a: cf_bit,
                b: sf,
            });
            fa.or_bit(sink, x, 11);
        }
    } else if op == ShiftOp::Shl && live & flags::OF != 0 {
        let cf = sink.vg();
        sink.emit(Op::Extr {
            d: cf,
            a: res64,
            pos: bits,
            len: 1,
            signed: false,
        });
        let sf = sink.vg();
        sink.emit(Op::Extr {
            d: sf,
            a: res,
            pos: bits - 1,
            len: 1,
            signed: false,
        });
        let x = sink.vg();
        sink.emit(Op::Xor { d: x, a: cf, b: sf });
        fa.or_bit(sink, x, 11);
    }
    if op == ShiftOp::Shr && live & flags::OF != 0 {
        // OF = original sign.
        let t = sink.vg();
        sink.emit(Op::Extr {
            d: t,
            a,
            pos: bits - 1,
            len: 1,
            signed: false,
        });
        fa.or_bit(sink, t, 11);
    }
    // SAR clears OF (mask handles it).
    if live & flags::ZF != 0 {
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::Cmp {
            rel: CmpRel::Eq,
            pt,
            pf,
            a: res,
            b: R0,
        });
        fa.or_pred(sink, pt, flags::ZF);
    }
    if live & flags::SF != 0 {
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::Tbit {
            pt,
            pf,
            r: res,
            pos: bits - 1,
        });
        fa.or_pred(sink, pt, flags::SF);
    }
    if live & flags::PF != 0 {
        let t = sink.vg();
        sink.emit(Op::AndImm {
            d: t,
            imm: 0xFF,
            a: res,
        });
        let cnum = sink.vg();
        sink.emit(Op::Popcnt { d: cnum, a: t });
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::Tbit {
            pt,
            pf,
            r: cnum,
            pos: 0,
        });
        fa.or_pred(sink, pf, flags::PF);
    }
    // AF is undefined after shifts on hardware; the oracle leaves it
    // cleared via the mask (flags::shl/shr/sar never set it).
    fa.commit(sink, live & flags::STATUS, qp);
}

/// 64-bit product of two 32-bit operands via `xma` (the only integer
/// multiply on Itanium).
fn emit_mul64(sink: &mut Sink, a: Gr, b: Gr, signed: bool) -> Gr {
    let (a, b) = if signed {
        (sext(sink, a, Size::D), sext(sink, b, Size::D))
    } else {
        (a, b)
    };
    let fa = sink.vf();
    let fb = sink.vf();
    sink.emit(Op::Setf {
        kind: FXfer::Sig,
        f: fa,
        r: a,
    });
    sink.emit(Op::Setf {
        kind: FXfer::Sig,
        f: fb,
        r: b,
    });
    let fp = sink.vf();
    sink.emit(Op::Xma {
        d: fp,
        a: fa,
        b: fb,
        c: F0,
        high: false,
    });
    let p = sink.vg();
    sink.emit(Op::Getf {
        kind: FXfer::Sig,
        d: p,
        f: fp,
    });
    p
}

/// CF/OF (+SZP of the low half) for multiplies.
fn emit_mul_flags(sink: &mut Sink, p: Gr, low: Gr, signed: bool, live: u32) {
    if live == 0 {
        return;
    }
    use super::flags_emit::FlagAcc;
    let mut fa = FlagAcc::new(sink);
    if live & (flags::CF | flags::OF) != 0 {
        let (pt, pf) = (sink.vp(), sink.vp());
        if signed {
            let t = sext(sink, p, Size::D);
            sink.emit(Op::Cmp {
                rel: CmpRel::Ne,
                pt,
                pf,
                a: p,
                b: t,
            });
        } else {
            let h = sink.vg();
            sink.emit(Op::ShrImm {
                d: h,
                a: p,
                count: 32,
                signed: false,
            });
            sink.emit(Op::Cmp {
                rel: CmpRel::Ne,
                pt,
                pf,
                a: h,
                b: R0,
            });
        }
        fa.or_pred(sink, pt, (flags::CF | flags::OF) & live);
    }
    if live & flags::ZF != 0 {
        let (pt, pf) = (sink.vp(), sink.vp());
        sink.emit(Op::Cmp {
            rel: CmpRel::Eq,
            pt,
            pf,
            a: low,
            b: R0,
        });
        fa.or_pred(sink, pt, flags::ZF);
    }
    if live & flags::SF != 0 {
        let (pt, pf) = (sink.vp(), sink.vp());
        sink.emit(Op::Tbit {
            pt,
            pf,
            r: low,
            pos: 31,
        });
        fa.or_pred(sink, pt, flags::SF);
    }
    if live & flags::PF != 0 {
        let t = sink.vg();
        sink.emit(Op::AndImm {
            d: t,
            imm: 0xFF,
            a: low,
        });
        let c = sink.vg();
        sink.emit(Op::Popcnt { d: c, a: t });
        let (pt, pf) = (sink.vp(), sink.vp());
        sink.emit(Op::Tbit {
            pt,
            pf,
            r: c,
            pos: 0,
        });
        fa.or_pred(sink, pf, flags::PF);
    }
    fa.commit(sink, live & flags::STATUS, None);
}

fn emit_muldiv32(
    sink: &mut Sink,
    ctx: &mut EmitCtx<'_>,
    op: MulDivOp,
    src: &Rm,
    live: u32,
) -> Result<(), Unsupported> {
    let eax = state::guest_gpr(0);
    let edx = state::guest_gpr(2);
    let s = read_rm(sink, ctx, src, Size::D);
    match op {
        MulDivOp::Mul | MulDivOp::Imul => {
            let signed = op == MulDivOp::Imul;
            let p = emit_mul64(sink, eax, s, signed);
            let low = trunc(sink, p, Size::D);
            let hi = sink.vg();
            sink.emit(Op::ShrImm {
                d: hi,
                a: p,
                count: 32,
                signed: false,
            });
            emit_mul_flags(sink, p, low, signed, live);
            sink.mov(eax, low);
            sink.mov(edx, hi);
            ctx.align.invalidate_gpr(0);
            ctx.align.invalidate_gpr(2);
        }
        MulDivOp::Div => {
            // #DE on zero divisor.
            let (pz, pnz) = (sink.vp(), sink.vp());
            sink.emit(Op::CmpImm {
                rel: CmpRel::Eq,
                pt: pz,
                pf: pnz,
                imm: 0,
                b: s,
            });
            sink.emit_pred(
                pz,
                Op::Br {
                    target: Target::Abs(StubKind::DivZero.addr()),
                },
            );
            // Fast path requires EDX == 0 (the overwhelmingly common
            // compiler-generated pattern); otherwise single-step the
            // instruction in the engine.
            let (pslow, _pfast) = (sink.vp(), sink.vp());
            sink.emit(Op::CmpImm {
                rel: CmpRel::Ne,
                pt: pslow,
                pf: _pfast,
                imm: 0,
                b: edx,
            });
            sink.emit_pred(
                pslow,
                Op::Br {
                    target: Target::Abs(StubKind::InterpStep.addr()),
                },
            );
            let (q, r) = emit_udiv32(sink, eax, s);
            sink.emit(Op::Zxt {
                d: eax,
                a: q,
                size: 4,
            });
            sink.emit(Op::Zxt {
                d: edx,
                a: r,
                size: 4,
            });
            ctx.align.invalidate_gpr(0);
            ctx.align.invalidate_gpr(2);
        }
        MulDivOp::Idiv => {
            let (pz, pnz) = (sink.vp(), sink.vp());
            sink.emit(Op::CmpImm {
                rel: CmpRel::Eq,
                pt: pz,
                pf: pnz,
                imm: 0,
                b: s,
            });
            sink.emit_pred(
                pz,
                Op::Br {
                    target: Target::Abs(StubKind::DivZero.addr()),
                },
            );
            // Fast path requires EDX to be the sign-extension of EAX
            // (the CDQ pattern).
            let a_sx = sext(sink, eax, Size::D);
            let hi = sink.vg();
            sink.emit(Op::ShrImm {
                d: hi,
                a: a_sx,
                count: 32,
                signed: true,
            });
            let hi32 = trunc(sink, hi, Size::D);
            let (pslow, _pf) = (sink.vp(), sink.vp());
            sink.emit(Op::Cmp {
                rel: CmpRel::Ne,
                pt: pslow,
                pf: _pf,
                a: hi32,
                b: edx,
            });
            sink.emit_pred(
                pslow,
                Op::Br {
                    target: Target::Abs(StubKind::InterpStep.addr()),
                },
            );
            let b_sx = sext(sink, s, Size::D);
            let (a_abs, a_neg) = emit_abs(sink, a_sx);
            let (b_abs, b_neg) = emit_abs(sink, b_sx);
            let (q, r) = emit_udiv32(sink, a_abs, b_abs);
            // Apply signs: q negative iff signs differ; r takes a's sign.
            let qs = sink.vg();
            sink.mov(qs, q);
            let neg_q = sink.vg();
            sink.emit(Op::SubImm {
                d: neg_q,
                imm: 0,
                a: q,
            });
            // signs differ = a_neg XOR b_neg; predicates cannot be
            // XORed directly, so compute via 0/1 registers.
            let an = sink.vg();
            sink.mov(an, R0);
            sink.emit_pred(
                a_neg,
                Op::AddImm {
                    d: an,
                    imm: 1,
                    a: R0,
                },
            );
            let bn = sink.vg();
            sink.mov(bn, R0);
            sink.emit_pred(
                b_neg,
                Op::AddImm {
                    d: bn,
                    imm: 1,
                    a: R0,
                },
            );
            let x = sink.vg();
            sink.emit(Op::Xor { d: x, a: an, b: bn });
            let (p_diff, _pd) = (sink.vp(), sink.vp());
            sink.emit(Op::CmpImm {
                rel: CmpRel::Ne,
                pt: p_diff,
                pf: _pd,
                imm: 0,
                b: x,
            });
            sink.emit_pred(
                p_diff,
                Op::AddImm {
                    d: qs,
                    imm: 0,
                    a: neg_q,
                },
            );
            let rs = sink.vg();
            sink.mov(rs, r);
            let neg_r = sink.vg();
            sink.emit(Op::SubImm {
                d: neg_r,
                imm: 0,
                a: r,
            });
            sink.emit_pred(
                a_neg,
                Op::AddImm {
                    d: rs,
                    imm: 0,
                    a: neg_r,
                },
            );
            // #DE if the quotient does not fit i32 (INT_MIN / -1).
            let qt = sext(sink, qs, Size::D);
            let q32 = sink.vg();
            sink.emit(Op::Sxt {
                d: q32,
                a: qs,
                size: 4,
            });
            let (p_ovf, _po) = (sink.vp(), sink.vp());
            sink.emit(Op::Cmp {
                rel: CmpRel::Ne,
                pt: p_ovf,
                pf: _po,
                a: qt,
                b: q32,
            });
            sink.emit_pred(
                p_ovf,
                Op::Br {
                    target: Target::Abs(StubKind::DivZero.addr()),
                },
            );
            sink.emit(Op::Zxt {
                d: eax,
                a: qs,
                size: 4,
            });
            sink.emit(Op::Zxt {
                d: edx,
                a: rs,
                size: 4,
            });
            ctx.align.invalidate_gpr(0);
            ctx.align.invalidate_gpr(2);
        }
    }
    Ok(())
}

/// `MOVS`/`STOS` with optional `REP` as an inline loop. State updates
/// trail each element's store so the sequence is restartable on faults,
/// exactly like the hardware semantics.
fn emit_string(sink: &mut Sink, ctx: &mut EmitCtx<'_>, size: Size, rep: bool, movs: bool) {
    let esi = state::guest_gpr(6);
    let edi = state::guest_gpr(7);
    let ecx = state::guest_gpr(1);
    let n = size.bytes() as i64;
    // Step from DF (bit 10).
    let (p_df, p_up) = (sink.vp(), sink.vp());
    sink.emit(Op::Tbit {
        pt: p_df,
        pf: p_up,
        r: GR_EFLAGS,
        pos: 10,
    });
    let step = sink.vg();
    sink.emit_pred(
        p_up,
        Op::AddImm {
            d: step,
            imm: n,
            a: R0,
        },
    );
    sink.emit_pred(
        p_df,
        Op::AddImm {
            d: step,
            imm: -n,
            a: R0,
        },
    );
    let (top, done) = (sink.local_label(), sink.local_label());
    if rep {
        sink.bind(top);
        let (p_done, _p) = (sink.vp(), sink.vp());
        sink.emit(Op::CmpImm {
            rel: CmpRel::Eq,
            pt: p_done,
            pf: _p,
            imm: 0,
            b: ecx,
        });
        sink.emit_pred(
            p_done,
            Op::Br {
                target: Target::Label(done),
            },
        );
    }
    let v = if movs {
        guest_load(sink, ctx, esi, None, size.bytes() as u8)
    } else {
        read_gpr(sink, ia32::regs::EAX, size)
    };
    guest_store(sink, ctx, edi, None, size.bytes() as u8, v);
    if movs {
        let t = sink.vg();
        sink.emit(Op::Add {
            d: t,
            a: esi,
            b: step,
        });
        sink.emit(Op::Zxt {
            d: esi,
            a: t,
            size: 4,
        });
    }
    let t = sink.vg();
    sink.emit(Op::Add {
        d: t,
        a: edi,
        b: step,
    });
    sink.emit(Op::Zxt {
        d: edi,
        a: t,
        size: 4,
    });
    if rep {
        let t = sink.vg();
        sink.emit(Op::AddImm {
            d: t,
            imm: -1,
            a: ecx,
        });
        sink.emit(Op::Zxt {
            d: ecx,
            a: t,
            size: 4,
        });
        sink.emit(Op::Br {
            target: Target::Label(top),
        });
        sink.bind(done);
    }
    ctx.align.invalidate_gpr(1);
    ctx.align.invalidate_gpr(6);
    ctx.align.invalidate_gpr(7);
}

/// Maps an IA-32 condition to an Itanium compare relation over the
/// subtraction operands, when one exists.
pub(super) fn cond_to_rel(cond: ia32::Cond) -> Option<(CmpRel, bool)> {
    use ia32::Cond as C;
    // (relation, needs signed operands)
    Some(match cond {
        C::E => (CmpRel::Eq, false),
        C::Ne => (CmpRel::Ne, false),
        C::B => (CmpRel::Ltu, false),
        C::Ae => (CmpRel::Geu, false),
        C::A => (CmpRel::Gtu, false),
        C::Be => (CmpRel::Leu, false),
        C::L => (CmpRel::Lt, true),
        C::Ge => (CmpRel::Ge, true),
        C::G => (CmpRel::Gt, true),
        C::Le => (CmpRel::Le, true),
        _ => return None,
    })
}

/// The fused compare+branch emission (see [`super::emit_fused_cmp_jcc`]).
pub(super) fn try_fuse(
    sink: &mut Sink,
    alu: &I32,
    cond: ia32::Cond,
    ctx: &mut EmitCtx<'_>,
) -> Option<Pr> {
    sink.set_ip(ctx.ip);
    let live = ctx.live_flags & alu.flags_written();
    match alu {
        // cmp a, b + jcc — the canonical case: one Itanium cmp.
        I32::Alu {
            op: AluOp::Cmp,
            size,
            dst,
            src,
        } => {
            let (rel, signed) = cond_to_rel(cond)?;
            let a = read_rm(sink, ctx, dst, *size);
            // Immediate compare fast path (flags fully dead).
            if live == 0 {
                if let RmI::Imm(v) = src {
                    let imm = if signed {
                        size.sext(*v as u32) as i64
                    } else {
                        size.trunc(*v as u32) as i64
                    };
                    let a = if signed { sext(sink, a, *size) } else { a };
                    let (pt, pf) = (sink.vp(), sink.vp());
                    // CmpImm evaluates rel(imm, b): swap the relation.
                    let srel = match rel {
                        CmpRel::Lt => CmpRel::Gt,
                        CmpRel::Gt => CmpRel::Lt,
                        CmpRel::Le => CmpRel::Ge,
                        CmpRel::Ge => CmpRel::Le,
                        CmpRel::Ltu => CmpRel::Gtu,
                        CmpRel::Gtu => CmpRel::Ltu,
                        CmpRel::Leu => CmpRel::Geu,
                        CmpRel::Geu => CmpRel::Leu,
                        other => other,
                    };
                    sink.emit(Op::CmpImm {
                        rel: srel,
                        pt,
                        pf,
                        imm,
                        b: a,
                    });
                    return Some(pt);
                }
            }
            let b = read_rmi(sink, ctx, src, *size);
            // Any still-live flags must be materialized too — on the
            // zero-extended operands: the flag recipes read carry and
            // borrow out of the high bits of the 64-bit result, which
            // sign-extended operands would corrupt.
            if live != 0 {
                let r = sink.vg();
                sink.emit(Op::Sub { d: r, a, b });
                let rt = trunc(sink, r, *size);
                arith_flags(sink, ArithKind::Sub, a, b, r, rt, *size, live, None);
            }
            let (a, b) = if signed {
                (sext(sink, a, *size), sext(sink, b, *size))
            } else {
                (a, b)
            };
            let (pt, pf) = (sink.vp(), sink.vp());
            sink.emit(Op::Cmp { rel, pt, pf, a, b });
            Some(pt)
        }
        // test a, b + je/jne/js/jns.
        I32::Test { size, a, b } => {
            use ia32::Cond as C;
            if !matches!(cond, C::E | C::Ne | C::S | C::Ns) {
                return None;
            }
            let x = read_rm(sink, ctx, a, *size);
            let y = read_rmi(sink, ctx, b, *size);
            let r = sink.vg();
            sink.emit(Op::And { d: r, a: x, b: y });
            if live != 0 {
                logic_flags(sink, r, *size, live);
            }
            let (pt, pf) = (sink.vp(), sink.vp());
            match cond {
                C::E => sink.emit(Op::Cmp {
                    rel: CmpRel::Eq,
                    pt,
                    pf,
                    a: r,
                    b: R0,
                }),
                C::Ne => sink.emit(Op::Cmp {
                    rel: CmpRel::Ne,
                    pt,
                    pf,
                    a: r,
                    b: R0,
                }),
                C::S | C::Ns => {
                    sink.emit(Op::Tbit {
                        pt,
                        pf,
                        r,
                        pos: size.bits() as u8 - 1,
                    });
                }
                _ => unreachable!(),
            }
            Some(if cond == C::Ns { pf } else { pt })
        }
        // dec/inc r + jne/je/js/jns — the classic loop-closing pattern.
        I32::IncDec { inc, size, dst } => {
            use ia32::Cond as C;
            if !matches!(cond, C::E | C::Ne | C::S | C::Ns) {
                return None;
            }
            if cond.flags_read() & flags::CF != 0 {
                return None; // INC/DEC do not write CF
            }
            let a = read_rm(sink, ctx, dst, *size);
            let a = if live != 0 { snapshot(sink, a) } else { a };
            let res64 = sink.vg();
            sink.emit(Op::AddImm {
                d: res64,
                imm: if *inc { 1 } else { -1 },
                a,
            });
            let res = trunc(sink, res64, *size);
            write_rm(sink, ctx, dst, *size, res);
            if live != 0 {
                arith_flags(
                    sink,
                    if *inc { ArithKind::Inc } else { ArithKind::Dec },
                    a,
                    GR_ONE,
                    res64,
                    res,
                    *size,
                    live,
                    None,
                );
            }
            let (pt, pf) = (sink.vp(), sink.vp());
            match cond {
                C::E | C::Ne => sink.emit(Op::Cmp {
                    rel: CmpRel::Eq,
                    pt,
                    pf,
                    a: res,
                    b: R0,
                }),
                _ => sink.emit(Op::Tbit {
                    pt,
                    pf,
                    r: res,
                    pos: size.bits() as u8 - 1,
                }),
            }
            Some(match cond {
                C::E | C::S => pt,
                _ => pf,
            })
        }
        // sub/and/or/xor + result-based conditions: emit the ALU in full
        // (including the destination write), then compare the result.
        I32::Alu {
            op: op @ (AluOp::Sub | AluOp::And | AluOp::Or | AluOp::Xor),
            size,
            dst,
            src,
        } => {
            use ia32::Cond as C;
            if !matches!(cond, C::E | C::Ne | C::S | C::Ns) {
                return None;
            }
            let a = read_rm(sink, ctx, dst, *size);
            let b = read_rmi(sink, ctx, src, *size);
            let (a, b) = if live != 0 {
                (snapshot(sink, a), snapshot(sink, b))
            } else {
                (a, b)
            };
            let res = {
                let r = sink.vg();
                match op {
                    AluOp::Sub => sink.emit(Op::Sub { d: r, a, b }),
                    AluOp::And => sink.emit(Op::And { d: r, a, b }),
                    AluOp::Or => sink.emit(Op::Or { d: r, a, b }),
                    AluOp::Xor => sink.emit(Op::Xor { d: r, a, b }),
                    _ => unreachable!(),
                }
                if *op == AluOp::Sub {
                    let rt = trunc(sink, r, *size);
                    write_rm(sink, ctx, dst, *size, rt);
                    if live != 0 {
                        arith_flags(sink, ArithKind::Sub, a, b, r, rt, *size, live, None);
                    }
                    rt
                } else {
                    write_rm(sink, ctx, dst, *size, r);
                    if live != 0 {
                        logic_flags(sink, r, *size, live);
                    }
                    r
                }
            };
            let (pt, pf) = (sink.vp(), sink.vp());
            match cond {
                C::E | C::Ne => sink.emit(Op::Cmp {
                    rel: CmpRel::Eq,
                    pt,
                    pf,
                    a: res,
                    b: R0,
                }),
                _ => sink.emit(Op::Tbit {
                    pt,
                    pf,
                    r: res,
                    pos: size.bits() as u8 - 1,
                }),
            }
            Some(match cond {
                C::E | C::S => pt,
                _ => pf,
            })
        }
        _ => None,
    }
}
