//! Effective addresses, guest register access, and guest memory access
//! templates — including the three-stage misalignment detection and
//! avoidance machinery of paper §5.

use super::{EmitCtx, Sink};
use crate::layout::{StubKind, COUNTERS_BASE};
use crate::state::{self, GR_PAYLOAD0};
use ia32::inst::Addr;
use ia32::regs::Gpr;
use ia32::Size;
use ipf::inst::{CmpRel, Op, Target};
use ipf::regs::{Gr, Pr, R0};
use std::collections::HashMap;

/// How a guest memory access is generated (the three stages of §5 plus
/// the unchecked fast path).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessMode {
    /// Plain access; misalignment faults to the engine (native cost).
    Fast,
    /// Stage 1 (cold v1): a light probe that branches to the translator
    /// on the first misaligned access so the block can be regenerated.
    Probe,
    /// Stage 2 (cold v2): detect alignment, record which access
    /// misaligned and at what granularity, and avoid the fault by
    /// splitting the access.
    DetectAvoid,
    /// Stage 3 (hot): avoidance sized to the recorded granularity.
    AvoidKnown {
        /// The split granularity in bytes (1, 2, or 4).
        gran: u8,
    },
}

/// Per-access misalignment strategy for one block.
#[derive(Clone, Debug)]
pub struct MisalignPlan {
    /// Mode for accesses without an override.
    pub default: AccessMode,
    /// Per-access-index overrides (hot stage 3 uses recorded data).
    pub overrides: HashMap<u16, AccessMode>,
    /// Base address of this block's per-access misalignment-info slots
    /// (8 bytes per access), used by `DetectAvoid` recording.
    pub info_base: u64,
    /// Block id for `Probe` exits.
    pub block_id: u32,
}

impl MisalignPlan {
    /// A plan using one mode for every access.
    pub fn uniform(mode: AccessMode, block_id: u32) -> MisalignPlan {
        MisalignPlan {
            default: mode,
            overrides: HashMap::new(),
            info_base: COUNTERS_BASE,
            block_id,
        }
    }

    fn mode_of(&self, acc: u16) -> AccessMode {
        self.overrides.get(&acc).copied().unwrap_or(self.default)
    }
}

/// Key identifying misalignment-equivalent addresses (paper §5 stage
/// 3a): same base/index registers and congruent displacement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(super) struct AlignKey {
    base: Option<u8>,
    index: Option<(u8, u8)>,
    disp_mod: u32,
    size: u8,
}

/// Cache of alignment predicates for equivalent addresses, shared
/// across the instructions of a hot trace.
#[derive(Default, Debug)]
pub struct AlignCache {
    map: HashMap<AlignKey, (Pr, Pr)>,
}

impl AlignCache {
    /// Empties the cache (block boundaries).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Drops entries that depend on `gpr` (called on guest writes).
    pub fn invalidate_gpr(&mut self, gpr: u8) {
        self.map
            .retain(|k, _| k.base != Some(gpr) && k.index.map(|(r, _)| r) != Some(gpr));
    }
}

/// Computes the (zero-extended 32-bit) effective address of `a`.
pub(super) fn ea(sink: &mut Sink, a: &Addr) -> Gr {
    let mut cur: Option<Gr> = None;
    if let Some(b) = a.base {
        cur = Some(state::guest_gpr(b.num()));
    }
    if let Some((i, s)) = a.index {
        let idx = state::guest_gpr(i.num());
        let d = sink.vg();
        match (s, cur) {
            (1, Some(c)) => sink.emit(Op::Add { d, a: c, b: idx }),
            (1, None) => sink.mov(d, idx),
            (s, Some(c)) => sink.emit(Op::Shladd {
                d,
                a: idx,
                count: s.trailing_zeros() as u8,
                b: c,
            }),
            (s, None) => sink.emit(Op::ShlImm {
                d,
                a: idx,
                count: s.trailing_zeros() as u8,
            }),
        }
        cur = Some(d);
    }
    let with_disp = match (a.disp, cur) {
        (0, Some(c)) => c,
        (d, Some(c)) => {
            let t = sink.vg();
            sink.emit(Op::AddImm {
                d: t,
                imm: d as i64,
                a: c,
            });
            t
        }
        (d, None) => {
            let t = sink.vg();
            sink.mov_imm(t, d as u32 as u64);
            t
        }
    };
    // 32-bit wraparound.
    let out = sink.vg();
    sink.emit(Op::Zxt {
        d: out,
        a: with_disp,
        size: 4,
    });
    out
}

/// Reads guest GPR `r` at `size`, zero-extended into a 64-bit register.
/// For byte size, register numbers 4-7 are the high bytes of 0-3.
///
/// 32-bit reads return the canonical register itself (no copy).
/// Templates that consume the value *after* writing a destination that
/// may alias it (flag computation, XCHG, shifts) must call
/// [`snapshot`] first.
pub(super) fn read_gpr(sink: &mut Sink, r: Gpr, size: Size) -> Gr {
    let n = r.num();
    match size {
        Size::D => state::guest_gpr(n),
        Size::W => {
            let d = sink.vg();
            sink.emit(Op::Zxt {
                d,
                a: state::guest_gpr(n),
                size: 2,
            });
            d
        }
        Size::B => {
            let d = sink.vg();
            if n < 4 {
                sink.emit(Op::Zxt {
                    d,
                    a: state::guest_gpr(n),
                    size: 1,
                });
            } else {
                sink.emit(Op::Extr {
                    d,
                    a: state::guest_gpr(n - 4),
                    pos: 8,
                    len: 8,
                    signed: false,
                });
            }
            d
        }
    }
}

/// Copies `v` into a fresh virtual register — an explicit snapshot for
/// values that must survive a subsequent write to a canonical register.
pub(super) fn snapshot(sink: &mut Sink, v: Gr) -> Gr {
    if v.is_virtual() {
        return v; // virtuals are single-assignment in the templates
    }
    let d = sink.vg();
    sink.mov(d, v);
    d
}

/// Writes `v` (low `size` bits) into guest GPR `r`, preserving untouched
/// high bits. `v` need not be pre-truncated.
pub(super) fn write_gpr(sink: &mut Sink, ctx: &mut EmitCtx<'_>, r: Gpr, size: Size, v: Gr) {
    let n = r.num();
    ctx.align_cache_invalidate(n, size);
    match size {
        Size::D => {
            let g = state::guest_gpr(n);
            sink.emit(Op::Zxt {
                d: g,
                a: v,
                size: 4,
            });
        }
        Size::W => {
            let g = state::guest_gpr(n);
            sink.emit(Op::Dep {
                d: g,
                src: v,
                target: g,
                pos: 0,
                len: 16,
            });
        }
        Size::B => {
            if n < 4 {
                let g = state::guest_gpr(n);
                sink.emit(Op::Dep {
                    d: g,
                    src: v,
                    target: g,
                    pos: 0,
                    len: 8,
                });
            } else {
                let g = state::guest_gpr(n - 4);
                sink.emit(Op::Dep {
                    d: g,
                    src: v,
                    target: g,
                    pos: 8,
                    len: 8,
                });
            }
        }
    }
}

impl EmitCtx<'_> {
    pub(super) fn align_cache_invalidate(&mut self, gpr: u8, _size: Size) {
        // Any write (even a partial one) changes the register value.
        self.align.invalidate_gpr(gpr);
    }
}

fn align_preds(
    sink: &mut Sink,
    ctx: &mut EmitCtx<'_>,
    addr: Gr,
    addr_expr: Option<&Addr>,
    size: u8,
) -> (Pr, Pr) {
    // Reuse an earlier equivalent check where possible (stage 3a).
    let key = addr_expr.map(|a| AlignKey {
        base: a.base.map(|r| r.num()),
        index: a.index.map(|(r, s)| (r.num(), s)),
        disp_mod: (a.disp as u32) & (size as u32 - 1),
        size,
    });
    if let Some(k) = key {
        if let Some(&p) = ctx.align.map.get(&k) {
            return p;
        }
    }
    let t = sink.vg();
    sink.emit(Op::AndImm {
        d: t,
        imm: (size - 1) as i64,
        a: addr,
    });
    let p_al = sink.vp();
    let p_mis = sink.vp();
    sink.emit(Op::Cmp {
        rel: CmpRel::Eq,
        pt: p_al,
        pf: p_mis,
        a: t,
        b: R0,
    });
    if let Some(k) = key {
        ctx.align.map.insert(k, (p_al, p_mis));
    }
    (p_al, p_mis)
}

/// Emits a split load of `size` bytes in `gran`-byte parts, predicated
/// on `qp`, producing into `d`.
fn split_load(sink: &mut Sink, qp: Pr, addr: Gr, size: u8, gran: u8, d: Gr) {
    let parts = size / gran;
    for k in 0..parts {
        let pa = if k == 0 {
            addr
        } else {
            let t = sink.vg();
            sink.emit_pred(
                qp,
                Op::AddImm {
                    d: t,
                    imm: (k * gran) as i64,
                    a: addr,
                },
            );
            t
        };
        let b = sink.vg();
        sink.emit_pred(
            qp,
            Op::Ld {
                sz: gran,
                d: b,
                addr: pa,
                spec: false,
            },
        );
        if k == 0 {
            sink.emit_pred(qp, Op::AddImm { d, imm: 0, a: b });
        } else {
            sink.emit_pred(
                qp,
                Op::Dep {
                    d,
                    src: b,
                    target: d,
                    pos: k * gran * 8,
                    len: (gran * 8).min(63),
                },
            );
        }
    }
}

/// Emits a split store. A one-byte probe load of the final byte runs
/// first so a page fault surfaces before any part is written (precise
/// exceptions); the engine converts the probe's read fault back into
/// the write fault the IA-32 instruction would have raised.
fn split_store(sink: &mut Sink, qp: Pr, addr: Gr, size: u8, gran: u8, val: Gr) {
    let last = sink.vg();
    sink.emit_pred(
        qp,
        Op::AddImm {
            d: last,
            imm: (size - 1) as i64,
            a: addr,
        },
    );
    let probe = sink.vg();
    sink.emit_pred(
        qp,
        Op::Ld {
            sz: 1,
            d: probe,
            addr: last,
            spec: false,
        },
    );
    let parts = size / gran;
    for k in 0..parts {
        let pa = if k == 0 {
            addr
        } else {
            let t = sink.vg();
            sink.emit_pred(
                qp,
                Op::AddImm {
                    d: t,
                    imm: (k * gran) as i64,
                    a: addr,
                },
            );
            t
        };
        let part = sink.vg();
        if k == 0 {
            sink.emit_pred(
                qp,
                Op::AddImm {
                    d: part,
                    imm: 0,
                    a: val,
                },
            );
        } else {
            sink.emit_pred(
                qp,
                Op::ShrImm {
                    d: part,
                    a: val,
                    count: k * gran * 8,
                    signed: false,
                },
            );
        }
        sink.emit_pred(
            qp,
            Op::St {
                sz: gran,
                addr: pa,
                val: part,
            },
        );
    }
}

/// Emits the stage-2 misalignment recording: OR the observed low address
/// bits (plus a seen-flag) into this access's profile slot.
fn record_misalign(sink: &mut Sink, ctx: &EmitCtx<'_>, qp: Pr, addr: Gr, acc: u16, size: u8) {
    let slot = sink.vg();
    sink.emit_pred(
        qp,
        Op::Movl {
            d: slot,
            imm: ctx.misalign.info_base + acc as u64 * 8,
        },
    );
    let c = sink.vg();
    sink.emit_pred(
        qp,
        Op::Ld {
            sz: 8,
            d: c,
            addr: slot,
            spec: false,
        },
    );
    let low = sink.vg();
    sink.emit_pred(
        qp,
        Op::AndImm {
            d: low,
            imm: (size - 1) as i64,
            a: addr,
        },
    );
    let c2 = sink.vg();
    sink.emit_pred(
        qp,
        Op::Or {
            d: c2,
            a: c,
            b: low,
        },
    );
    let c3 = sink.vg();
    sink.emit_pred(
        qp,
        Op::OrImm {
            d: c3,
            imm: 0x100,
            a: c2,
        },
    );
    sink.emit_pred(
        qp,
        Op::St {
            sz: 8,
            addr: slot,
            val: c3,
        },
    );
}

/// Emits a guest data load of `size` bytes at `addr` (a 32-bit EA in a
/// 64-bit register), honoring the block's misalignment plan. Returns
/// the zero-extended value.
pub(super) fn guest_load(
    sink: &mut Sink,
    ctx: &mut EmitCtx<'_>,
    addr: Gr,
    addr_expr: Option<&Addr>,
    size: u8,
) -> Gr {
    let d = sink.vg();
    if size == 1 {
        let acc = sink.begin_access();
        let _ = acc;
        sink.emit(Op::Ld {
            sz: 1,
            d,
            addr,
            spec: false,
        });
        sink.end_access();
        return d;
    }
    let acc = sink.begin_access();
    match ctx.misalign.mode_of(acc) {
        AccessMode::Fast => {
            sink.emit(Op::Ld {
                sz: size,
                d,
                addr,
                spec: false,
            });
        }
        AccessMode::Probe => {
            let (_, p_mis) = align_preds(sink, ctx, addr, None, size);
            sink.emit_pred(
                p_mis,
                Op::AddImm {
                    d: GR_PAYLOAD0,
                    imm: ctx.misalign.block_id as i64,
                    a: R0,
                },
            );
            sink.emit_pred(
                p_mis,
                Op::Br {
                    target: Target::Abs(StubKind::MisalignRetrain.addr()),
                },
            );
            sink.emit(Op::Ld {
                sz: size,
                d,
                addr,
                spec: false,
            });
        }
        AccessMode::DetectAvoid => {
            let (p_al, p_mis) = align_preds(sink, ctx, addr, None, size);
            sink.emit_pred(
                p_al,
                Op::Ld {
                    sz: size,
                    d,
                    addr,
                    spec: false,
                },
            );
            record_misalign(sink, ctx, p_mis, addr, acc, size);
            split_load(sink, p_mis, addr, size, 1, d);
        }
        AccessMode::AvoidKnown { gran } => {
            let (p_al, p_mis) = align_preds(sink, ctx, addr, addr_expr, size);
            sink.emit_pred(
                p_al,
                Op::Ld {
                    sz: size,
                    d,
                    addr,
                    spec: false,
                },
            );
            split_load(sink, p_mis, addr, size, gran.min(size), d);
        }
    }
    sink.end_access();
    d
}

/// Emits a guest data store, honoring the misalignment plan. `val`'s
/// low `size` bytes are stored.
pub(super) fn guest_store(
    sink: &mut Sink,
    ctx: &mut EmitCtx<'_>,
    addr: Gr,
    addr_expr: Option<&Addr>,
    size: u8,
    val: Gr,
) {
    let acc = sink.begin_access();
    if size == 1 {
        sink.emit(Op::St { sz: 1, addr, val });
        sink.end_access();
        return;
    }
    match ctx.misalign.mode_of(acc) {
        AccessMode::Fast => {
            sink.emit(Op::St {
                sz: size,
                addr,
                val,
            });
        }
        AccessMode::Probe => {
            let (_, p_mis) = align_preds(sink, ctx, addr, None, size);
            sink.emit_pred(
                p_mis,
                Op::AddImm {
                    d: GR_PAYLOAD0,
                    imm: ctx.misalign.block_id as i64,
                    a: R0,
                },
            );
            sink.emit_pred(
                p_mis,
                Op::Br {
                    target: Target::Abs(StubKind::MisalignRetrain.addr()),
                },
            );
            sink.emit(Op::St {
                sz: size,
                addr,
                val,
            });
        }
        AccessMode::DetectAvoid => {
            let (p_al, p_mis) = align_preds(sink, ctx, addr, None, size);
            sink.emit_pred(
                p_al,
                Op::St {
                    sz: size,
                    addr,
                    val,
                },
            );
            record_misalign(sink, ctx, p_mis, addr, acc, size);
            split_store(sink, p_mis, addr, size, 1, val);
        }
        AccessMode::AvoidKnown { gran } => {
            let (p_al, p_mis) = align_preds(sink, ctx, addr, addr_expr, size);
            sink.emit_pred(
                p_al,
                Op::St {
                    sz: size,
                    addr,
                    val,
                },
            );
            split_store(sink, p_mis, addr, size, gran.min(size), val);
        }
    }
    sink.end_access();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{FpCtx, XmmCtx};

    fn ctx_parts() -> (FpCtx, XmmCtx, MisalignPlan, AlignCache) {
        (
            FpCtx::new(0, false),
            XmmCtx::new(0),
            MisalignPlan::uniform(AccessMode::Fast, 0),
            AlignCache::default(),
        )
    }

    #[test]
    fn ea_shapes() {
        let (mut fp, mut xmm, plan, mut al) = ctx_parts();
        let mut s = Sink::new();
        let mut ctx = EmitCtx {
            ip: 0,
            next_ip: 0,
            live_flags: 0,
            fp: &mut fp,
            xmm: &mut xmm,
            misalign: &plan,
            align: &mut al,
        };
        let _ = &mut ctx;
        // [ebx + esi*4 + 0x10]: shladd + adds + zxt = 3 ops.
        let a = Addr::base_index(ia32::regs::EBX, ia32::regs::ESI, 4, 0x10);
        ea(&mut s, &a);
        assert_eq!(s.inst_count(), 3);
        // [abs]: movl/adds + zxt.
        let n0 = s.inst_count();
        ea(&mut s, &Addr::abs(0x1234));
        assert_eq!(s.inst_count() - n0, 2);
    }

    #[test]
    fn probe_mode_emits_branch() {
        let (mut fp, mut xmm, plan, mut al) = ctx_parts();
        let plan = MisalignPlan {
            default: AccessMode::Probe,
            ..plan
        };
        let mut s = Sink::new();
        let mut ctx = EmitCtx {
            ip: 0,
            next_ip: 0,
            live_flags: 0,
            fp: &mut fp,
            xmm: &mut xmm,
            misalign: &plan,
            align: &mut al,
        };
        let addr = s.vg();
        guest_load(&mut s, &mut ctx, addr, None, 4);
        let branches = s
            .items
            .iter()
            .filter(|i| matches!(i, crate::templates::IlItem::Inst(e) if e.inst.op.is_branch()))
            .count();
        assert_eq!(branches, 1);
    }

    #[test]
    fn avoid_known_reuses_predicates() {
        let (mut fp, mut xmm, plan, mut al) = ctx_parts();
        let plan = MisalignPlan {
            default: AccessMode::AvoidKnown { gran: 4 },
            ..plan
        };
        let mut s = Sink::new();
        let mut ctx = EmitCtx {
            ip: 0,
            next_ip: 0,
            live_flags: 0,
            fp: &mut fp,
            xmm: &mut xmm,
            misalign: &plan,
            align: &mut al,
        };
        let a1 = Addr::base_disp(ia32::regs::EBX, 0);
        let a2 = Addr::base_disp(ia32::regs::EBX, 8); // congruent mod 8
        let addr1 = ea(&mut s, &a1);
        guest_load(&mut s, &mut ctx, addr1, Some(&a1), 8);
        let n1 = s.inst_count();
        let addr2 = ea(&mut s, &a2);
        guest_load(&mut s, &mut ctx, addr2, Some(&a2), 8);
        let n2 = s.inst_count() - n1;
        assert!(
            n2 < n1,
            "second congruent access reuses the alignment check ({n1} vs {n2})"
        );
    }

    #[test]
    fn access_indices_assigned() {
        let (mut fp, mut xmm, plan, mut al) = ctx_parts();
        let mut s = Sink::new();
        let mut ctx = EmitCtx {
            ip: 0,
            next_ip: 0,
            live_flags: 0,
            fp: &mut fp,
            xmm: &mut xmm,
            misalign: &plan,
            align: &mut al,
        };
        let addr = s.vg();
        guest_load(&mut s, &mut ctx, addr, None, 4);
        guest_store(&mut s, &mut ctx, addr, None, 4, addr);
        assert_eq!(s.access_count(), 2);
    }
}
