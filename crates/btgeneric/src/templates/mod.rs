//! The translation template library.
//!
//! One hand-written template per IA-32 instruction variant emits Itanium
//! micro-ops over *virtual* registers into a [`Sink`]. Both translation
//! phases consume the same templates — the paper: "The precompiled
//! binary templates and the IL-generation are derived from the same
//! template source code" — the cold backend lowers the IL immediately
//! with a trivial scratch-register allocator, the hot backend feeds it
//! to the optimizer. Cold and hot therefore cannot diverge semantically.
//!
//! Conventions the templates maintain (see [`crate::state`]):
//! * canonical guest GPRs always hold zero-extended 32-bit values;
//! * within one IA-32 instruction, all guest-state updates are emitted
//!   *after* the last faulting micro-op (paper §4, Table 1);
//! * virtual registers never live across IA-32 instruction boundaries —
//!   cross-instruction values flow through canonical state registers
//!   (the explicitly-fused compare+branch pattern is the one exception,
//!   and is emitted as a unit).

mod flags_emit;
mod fp;
pub(crate) mod fused;
mod int;
mod mem;

pub use mem::{AccessMode, AlignCache, MisalignPlan};

use crate::state;
use ia32::inst::Inst as Ia32Inst;
use ipf::inst::{Op, Target};
use ipf::regs::{Fr, Gr, Pr, VIRT_BASE};

/// An emitted micro-op with provenance metadata.
#[derive(Clone, Copy, Debug)]
pub struct IlEntry {
    /// The instruction (registers may be virtual).
    pub inst: ipf::Inst,
    /// Metadata.
    pub meta: IlMeta,
}

/// Metadata attached to each emitted micro-op.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IlMeta {
    /// IA-32 instruction this op was generated from.
    pub ia32_ip: u32,
    /// Memory-access index within the block (for misalignment
    /// profiling), if this op is a guest data access.
    pub acc: Option<u16>,
}

/// A sink item: an instruction or a local-label bind point.
#[derive(Clone, Copy, Debug)]
pub enum IlItem {
    /// An emitted instruction.
    Inst(IlEntry),
    /// Binds local label `n` here (templates with internal loops).
    Bind(u32),
}

/// Collects template output.
#[derive(Debug)]
pub struct Sink {
    /// Emitted items in program order.
    pub items: Vec<IlItem>,
    next_vg: u16,
    next_vf: u16,
    next_vp: u16,
    next_label: u32,
    next_acc: u16,
    cur_ip: u32,
    cur_acc: Option<u16>,
}

impl Default for Sink {
    fn default() -> Self {
        Self::new()
    }
}

impl Sink {
    /// An empty sink.
    pub fn new() -> Sink {
        Sink {
            items: Vec::new(),
            next_vg: VIRT_BASE,
            next_vf: VIRT_BASE,
            next_vp: VIRT_BASE,
            next_label: 0,
            next_acc: 0,
            cur_ip: 0,
            cur_acc: None,
        }
    }

    /// Sets the IA-32 IP recorded on subsequently emitted ops.
    pub fn set_ip(&mut self, ip: u32) {
        self.cur_ip = ip;
    }

    /// A fresh virtual general register.
    pub fn vg(&mut self) -> Gr {
        let r = Gr(self.next_vg);
        self.next_vg += 1;
        r
    }

    /// A fresh virtual FP register.
    pub fn vf(&mut self) -> Fr {
        let r = Fr(self.next_vf);
        self.next_vf += 1;
        r
    }

    /// A fresh virtual predicate register.
    pub fn vp(&mut self) -> Pr {
        let r = Pr(self.next_vp);
        self.next_vp += 1;
        r
    }

    /// A fresh local label id.
    pub fn local_label(&mut self) -> u32 {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    /// Number of local labels allocated.
    pub fn label_count(&self) -> u32 {
        self.next_label
    }

    /// Number of guest memory accesses indexed so far.
    pub fn access_count(&self) -> u16 {
        self.next_acc
    }

    /// Binds a local label at the current position.
    pub fn bind(&mut self, label: u32) {
        self.items.push(IlItem::Bind(label));
    }

    /// Allocates the next memory-access index and tags the following
    /// guest access ops with it.
    pub fn begin_access(&mut self) -> u16 {
        let a = self.next_acc;
        self.next_acc += 1;
        self.cur_acc = Some(a);
        a
    }

    /// Stops tagging ops with an access index.
    pub fn end_access(&mut self) {
        self.cur_acc = None;
    }

    /// Emits an unpredicated op.
    pub fn emit(&mut self, op: Op) {
        self.emit_pred(ipf::regs::P0, op);
    }

    /// Emits a predicated op.
    pub fn emit_pred(&mut self, qp: Pr, op: Op) {
        self.items.push(IlItem::Inst(IlEntry {
            inst: ipf::Inst::pred(qp, op),
            meta: IlMeta {
                ia32_ip: self.cur_ip,
                acc: self.cur_acc,
            },
        }));
    }

    /// Emits `mov d = imm` choosing `adds`/`movl` by range.
    pub fn mov_imm(&mut self, d: Gr, imm: u64) {
        if (imm as i64) >= -0x1F_FFFF && (imm as i64) <= 0x1F_FFFF {
            self.emit(Op::AddImm {
                d,
                imm: imm as i64,
                a: ipf::regs::R0,
            });
        } else {
            self.emit(Op::Movl { d, imm });
        }
    }

    /// Emits a copy `d = a`.
    pub fn mov(&mut self, d: Gr, a: Gr) {
        self.emit(Op::AddImm { d, imm: 0, a });
    }

    /// Emits an FP copy `d = a` (bit-exact, via `fmerge.s d = a, a`).
    pub fn fmov(&mut self, d: Fr, a: Fr) {
        self.emit(Op::FmergeS { d, a, b: a });
    }

    /// Number of instruction items emitted.
    pub fn inst_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, IlItem::Inst(_)))
            .count()
    }
}

/// What flavor of guest control transfer produced a `Term::Indirect`.
/// Cold codegen uses it to pick the acceleration strategy: jmp/call
/// sites get a per-site inline cache, calls additionally push onto the
/// simulated return-address shadow stack, and `ret` pops it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndKind {
    /// `jmp r/m32`.
    Jump,
    /// `call r/m32`; `ret` is the return EIP pushed on the guest stack.
    Call {
        /// Return EIP (the instruction after the call).
        ret: u32,
    },
    /// `ret` / `ret imm16`.
    Ret,
}

/// Control-flow outcome of translating one IA-32 instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Term {
    /// Unconditional jump to a guest address.
    Jump {
        /// Target EIP.
        target: u32,
    },
    /// Direct `call target`: like `Jump`, but codegen may also push a
    /// shadow-stack prediction for the matching `ret`.
    Call {
        /// Target EIP.
        target: u32,
        /// Return EIP (the instruction after the call).
        ret: u32,
    },
    /// Conditional branch: `taken_pred` selects `taken`.
    CondJump {
        /// Predicate (virtual) true when the branch is taken.
        taken_pred: Pr,
        /// Taken-target EIP.
        taken: u32,
        /// Fallthrough EIP.
        fallthrough: u32,
    },
    /// Indirect jump; the target EIP is in the given (virtual) register.
    Indirect {
        /// Register holding the target EIP.
        eip: Gr,
        /// Which guest instruction produced it.
        kind: IndKind,
    },
    /// `HLT`.
    Halt,
    /// `INT n`; EIP already conceptually advanced past it.
    Syscall {
        /// Interrupt vector.
        vector: u8,
    },
    /// `UD2` or an instruction outside the subset: raise `#UD` via the
    /// engine.
    InvalidOp,
}

/// The per-instruction emission context.
#[derive(Debug)]
pub struct EmitCtx<'a> {
    /// Address of the instruction.
    pub ip: u32,
    /// Address of the next instruction.
    pub next_ip: u32,
    /// EFLAGS status bits live *after* this instruction — only these are
    /// materialized (the paper's redundant-EFlags elimination).
    pub live_flags: u32,
    /// FP stack tracking state (speculated TOS etc.), updated in place.
    pub fp: &'a mut FpCtx,
    /// XMM format tracking state, updated in place.
    pub xmm: &'a mut XmmCtx,
    /// Per-access misalignment strategy.
    pub misalign: &'a MisalignPlan,
    /// Alignment-predicate reuse cache (paper §5 stage 3a), shared
    /// across the instructions of a block/trace.
    pub align: &'a mut AlignCache,
}

/// FP stack tracking across one block/trace (paper §5).
#[derive(Clone, Debug)]
pub struct FpCtx {
    /// Speculated TOS at block entry (checked at the block head).
    pub entry_tos: u8,
    /// Net TOS change so far (pushes decrement).
    pub tos_off: i8,
    /// Physical-register permutation from FXCHG elimination (hot code);
    /// identity in cold code. `perm[p]` is the FR offset actually
    /// holding x87 physical register `p`.
    pub perm: [u8; 8],
    /// Physical registers statically known valid at this point (block
    /// head checks plus in-block pushes).
    pub known_valid: u8,
    /// Physical registers statically known empty.
    pub known_empty: u8,
    /// FXCHG is eliminated via `perm` (hot) instead of emitting moves.
    pub elide_fxch: bool,
    /// True once any MMX op has set TOS=0 in this block.
    pub mmx_tos_done: bool,
    /// Tag bits required valid at entry (accumulated for the head check).
    pub req_valid: u8,
    /// Tag bits required empty at entry.
    pub req_empty: u8,
    /// Block contains FP (x87) ops.
    pub uses_fp: bool,
    /// Block contains MMX ops.
    pub uses_mmx: bool,
    /// Speculated FP/MMX mode at entry (true = MMX): the mode of the
    /// block's first FP-class instruction, verified by the head check.
    pub entry_mmx: bool,
    /// Current mode while emitting (mixed blocks emit transitions).
    pub cur_mmx: bool,
    /// Emit per-access runtime tag checks instead of the speculative
    /// block-head check — the paper's "rebuild a special block to catch
    /// the right stack fault" variant, used after a TagFix exit.
    pub inline_checks: bool,
}

impl FpCtx {
    /// Fresh context speculating entry TOS `tos`.
    pub fn new(entry_tos: u8, elide_fxch: bool) -> FpCtx {
        FpCtx {
            entry_tos,
            tos_off: 0,
            perm: [0, 1, 2, 3, 4, 5, 6, 7],
            known_valid: 0,
            known_empty: 0,
            elide_fxch,
            mmx_tos_done: false,
            req_valid: 0,
            req_empty: 0,
            uses_fp: false,
            uses_mmx: false,
            entry_mmx: false,
            cur_mmx: false,
            inline_checks: false,
        }
    }

    /// Adjusts the speculated TOS to zero (any MMX instruction forces
    /// TOS = 0 through the aliasing rule).
    pub fn force_tos_zero(&mut self) {
        let cur = self.tos() as i16;
        self.tos_off -= cur as i8;
    }

    /// Current speculated TOS.
    pub fn tos(&self) -> u8 {
        (self.entry_tos as i16 + self.tos_off as i16).rem_euclid(8) as u8
    }

    /// Physical x87 register index of `ST(i)` right now.
    pub fn phys(&self, i: u8) -> u8 {
        (self.tos() + i) & 7
    }

    /// The FR holding `ST(i)` right now (through the permutation).
    pub fn st_fr(&self, i: u8) -> Fr {
        state::x87_fr(self.perm[self.phys(i) as usize])
    }

    /// Requires `ST(i)` valid: returns `true` if a runtime tag check is
    /// still needed (not statically known).
    pub fn require_valid(&mut self, i: u8) -> bool {
        self.uses_fp = true;
        let p = self.phys(i);
        let bit = 1u8 << p;
        if self.known_valid & bit != 0 {
            return false;
        }
        if self.known_empty & bit != 0 {
            // Statically a stack fault; the caller emits the fault path.
            return true;
        }
        // Not yet constrained: add to the block-head requirement and
        // assume it from here on.
        self.req_valid |= bit;
        self.known_valid |= bit;
        false
    }

    /// Requires the push target (`ST(-1)`'s slot) empty; returns `true`
    /// if a runtime check is needed.
    pub fn require_empty_for_push(&mut self) -> bool {
        self.uses_fp = true;
        let p = (self.tos() + 7) & 7; // tos - 1
        let bit = 1u8 << p;
        if self.known_empty & bit != 0 {
            return false;
        }
        if self.known_valid & bit != 0 {
            return true; // statically overflow: caller emits fault path
        }
        self.req_empty |= bit;
        self.known_empty |= bit;
        false
    }

    /// Records a push (after checks).
    pub fn did_push(&mut self) {
        let p = (self.tos() + 7) & 7;
        self.tos_off -= 1;
        self.known_valid |= 1 << p;
        self.known_empty &= !(1 << p);
    }

    /// Records a pop.
    pub fn did_pop(&mut self) {
        let p = self.tos();
        self.tos_off += 1;
        self.known_empty |= 1 << p;
        self.known_valid &= !(1 << p);
    }
}

/// XMM format tracking across one block/trace (paper §5: the four-format
/// problem; our subset has the packed and scalar formats live).
#[derive(Clone, Debug)]
pub struct XmmCtx {
    /// Speculated entry format per XMM (bit set = scalar), checked at
    /// the block head for the registers in `used`.
    pub entry_fmt: u8,
    /// Current format per XMM (bit set = scalar).
    pub fmt: u8,
    /// XMM registers whose entry format the block head must check.
    pub used: u8,
    /// Conversions emitted (for the <0.2% statistic).
    pub conversions: u32,
}

impl XmmCtx {
    /// Fresh context speculating the given entry formats.
    pub fn new(entry_fmt: u8) -> XmmCtx {
        XmmCtx {
            entry_fmt,
            fmt: entry_fmt,
            used: 0,
            conversions: 0,
        }
    }

    fn is_scalar(&self, n: u8) -> bool {
        self.fmt & (1 << n) != 0
    }

    fn touch(&mut self, n: u8) {
        self.used |= 1 << n;
    }

    fn set_scalar(&mut self, n: u8, scalar: bool) {
        if scalar {
            self.fmt |= 1 << n;
        } else {
            self.fmt &= !(1 << n);
        }
    }
}

/// An unsupported instruction (outside the template subset); the caller
/// falls back to single-step interpretation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Unsupported(pub &'static str);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no template for {}", self.0)
    }
}

impl std::error::Error for Unsupported {}

/// Emits the translation of one IA-32 instruction.
///
/// Returns the control-flow outcome (`None` for straight-line
/// instructions).
///
/// # Errors
///
/// [`Unsupported`] for instruction forms deliberately left to the
/// engine's single-step interpreter fallback (byte/word divides, …).
pub fn emit(
    sink: &mut Sink,
    inst: &Ia32Inst,
    ctx: &mut EmitCtx<'_>,
) -> Result<Option<Term>, Unsupported> {
    sink.set_ip(ctx.ip);
    match inst {
        // Integer / control flow.
        Ia32Inst::Alu { .. }
        | Ia32Inst::AluRM { .. }
        | Ia32Inst::Test { .. }
        | Ia32Inst::Mov { .. }
        | Ia32Inst::MovLoad { .. }
        | Ia32Inst::Movzx { .. }
        | Ia32Inst::Movsx { .. }
        | Ia32Inst::Lea { .. }
        | Ia32Inst::Xchg { .. }
        | Ia32Inst::Push { .. }
        | Ia32Inst::Pop { .. }
        | Ia32Inst::IncDec { .. }
        | Ia32Inst::Neg { .. }
        | Ia32Inst::Not { .. }
        | Ia32Inst::Shift { .. }
        | Ia32Inst::ImulRm { .. }
        | Ia32Inst::ImulRmImm { .. }
        | Ia32Inst::MulDiv { .. }
        | Ia32Inst::Cdq
        | Ia32Inst::Cwde
        | Ia32Inst::Jmp { .. }
        | Ia32Inst::JmpInd { .. }
        | Ia32Inst::Jcc { .. }
        | Ia32Inst::Call { .. }
        | Ia32Inst::CallInd { .. }
        | Ia32Inst::Ret { .. }
        | Ia32Inst::Setcc { .. }
        | Ia32Inst::Cmovcc { .. }
        | Ia32Inst::Nop
        | Ia32Inst::Hlt
        | Ia32Inst::Ud2
        | Ia32Inst::Int { .. }
        | Ia32Inst::Movs { .. }
        | Ia32Inst::Stos { .. } => int::emit_int(sink, inst, ctx),
        // x87 / MMX / SSE.
        _ => fp::emit_fp(sink, inst, ctx),
    }
}

/// Fuses a flag-setting instruction with a following conditional branch:
/// emits the ALU instruction (with `live_flags` already excluding the
/// branch's bits) plus a direct predicate computation, returning the
/// taken-predicate. Returns `None` when the pattern isn't fusable; the
/// caller then translates the two instructions separately.
///
/// This is where the paper's EFlags-elimination pays off: the common
/// `cmp`+`jcc` pair becomes a single Itanium `cmp` and a predicated
/// branch with no EFLAGS materialization at all.
pub fn emit_fused_cmp_jcc(
    sink: &mut Sink,
    alu: &Ia32Inst,
    cond: ia32::Cond,
    ctx: &mut EmitCtx<'_>,
) -> Option<Pr> {
    int::try_fuse(sink, alu, cond, ctx)
}

/// Emits the predicates `(true, false)` for `cond` from the
/// materialized EFLAGS register (the unfused `Jcc`/`SETcc`/`CMOVcc`
/// path).
pub fn emit_cond_pred(sink: &mut Sink, cond: ia32::Cond) -> (Pr, Pr) {
    flags_emit::cond_from_flags(sink, cond)
}

/// Emits the block-head speculation checks (paper §5): TOS, tag word,
/// FP/MMX mode, and XMM formats, each branching to the corresponding
/// fix-up stub on mismatch. Must be called *after* the block body has
/// been emitted into a separate sink, since the requirements are
/// accumulated during emission; the caller stitches head + body.
pub fn emit_spec_checks(sink: &mut Sink, fp: &FpCtx, xmm: &XmmCtx, block_id: u32) {
    use crate::layout::StubKind;
    let payload = state::GR_PAYLOAD0;
    if fp.uses_fp || fp.uses_mmx {
        // FP/MMX mode check: single Boolean compare (paper §5).
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::CmpImm {
            rel: ipf::inst::CmpRel::Ne,
            pt,
            pf,
            imm: i64::from(fp.entry_mmx),
            b: state::GR_FPMODE,
        });
        sink.mov_imm(payload, block_id as u64);
        sink.emit_pred(
            pt,
            Op::Br {
                target: Target::Abs(StubKind::MmxFix.addr()),
            },
        );
    }
    if fp.uses_fp {
        // TOS check.
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::CmpImm {
            rel: ipf::inst::CmpRel::Ne,
            pt,
            pf,
            imm: fp.entry_tos as i64,
            b: state::GR_FPTOP,
        });
        sink.mov_imm(payload, block_id as u64);
        sink.emit_pred(
            pt,
            Op::Br {
                target: Target::Abs(StubKind::TosFix.addr()),
            },
        );
        // Tag check: required-valid bits set, required-empty bits clear.
        if fp.req_valid != 0 {
            let t = sink.vg();
            sink.emit(Op::AndImm {
                d: t,
                imm: fp.req_valid as i64,
                a: state::GR_FPTAG,
            });
            let pt = sink.vp();
            let pf = sink.vp();
            sink.emit(Op::CmpImm {
                rel: ipf::inst::CmpRel::Ne,
                pt,
                pf,
                imm: fp.req_valid as i64,
                b: t,
            });
            sink.emit_pred(
                pt,
                Op::Br {
                    target: Target::Abs(StubKind::TagFix.addr()),
                },
            );
        }
        if fp.req_empty != 0 {
            let t = sink.vg();
            sink.emit(Op::AndImm {
                d: t,
                imm: fp.req_empty as i64,
                a: state::GR_FPTAG,
            });
            let pt = sink.vp();
            let pf = sink.vp();
            sink.emit(Op::CmpImm {
                rel: ipf::inst::CmpRel::Ne,
                pt,
                pf,
                imm: 0,
                b: t,
            });
            sink.emit_pred(
                pt,
                Op::Br {
                    target: Target::Abs(StubKind::TagFix.addr()),
                },
            );
        }
    }
    if xmm.used != 0 {
        // XMM format check over the used registers.
        let t = sink.vg();
        sink.emit(Op::AndImm {
            d: t,
            imm: xmm.used as i64,
            a: state::GR_XMMFMT,
        });
        let pt = sink.vp();
        let pf = sink.vp();
        sink.emit(Op::CmpImm {
            rel: ipf::inst::CmpRel::Ne,
            pt,
            pf,
            imm: (xmm.entry_fmt & xmm.used) as i64,
            b: t,
        });
        sink.mov_imm(payload, block_id as u64);
        sink.emit_pred(
            pt,
            Op::Br {
                target: Target::Abs(StubKind::XmmFix.addr()),
            },
        );
    }
}

/// Emits the end-of-block FP state writeback: the runtime TOS register
/// and (if changed) the mode Boolean. Tag-word updates are emitted
/// incrementally by the templates themselves.
pub fn emit_fp_epilogue(sink: &mut Sink, fp: &FpCtx, xmm: &XmmCtx) {
    if fp.uses_fp && fp.tos_off != 0 {
        sink.mov_imm(state::GR_FPTOP, fp.tos() as u64);
    }
    if fp.uses_mmx && !fp.mmx_tos_done {
        // MMX ops force TOS to 0 (aliasing rule); emitted once.
        if fp.entry_tos != 0 || fp.uses_fp {
            sink.mov_imm(state::GR_FPTOP, 0);
        }
    }
    if xmm.fmt != xmm.entry_fmt {
        sink.mov_imm(state::GR_XMMFMT, xmm.fmt as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_allocates_distinct_virtuals() {
        let mut s = Sink::new();
        let a = s.vg();
        let b = s.vg();
        assert_ne!(a, b);
        assert!(a.is_virtual() && b.is_virtual());
        let p = s.vp();
        assert!(p.is_virtual());
    }

    #[test]
    fn fpctx_tracks_tos() {
        let mut fp = FpCtx::new(5, false);
        assert_eq!(fp.tos(), 5);
        assert!(!fp.require_empty_for_push());
        fp.did_push();
        assert_eq!(fp.tos(), 4);
        assert_eq!(fp.phys(0), 4);
        assert!(!fp.require_valid(0), "just pushed: no check needed");
        fp.did_pop();
        assert_eq!(fp.tos(), 5);
        assert_eq!(fp.req_empty, 1 << 4);
    }

    #[test]
    fn fpctx_head_requirements_accumulate() {
        let mut fp = FpCtx::new(0, false);
        assert!(!fp.require_valid(0)); // adds phys 0 to req_valid
        assert!(!fp.require_valid(1));
        assert_eq!(fp.req_valid, 0b11);
        // Second access to ST(0) needs no new requirement.
        let before = fp.req_valid;
        assert!(!fp.require_valid(0));
        assert_eq!(fp.req_valid, before);
    }

    #[test]
    fn xmm_ctx_tracks_formats() {
        let mut x = XmmCtx::new(0);
        assert!(!x.is_scalar(3));
        x.set_scalar(3, true);
        assert!(x.is_scalar(3));
        x.touch(3);
        assert_eq!(x.used, 0b1000);
    }

    #[test]
    fn spec_checks_emit_branches() {
        let mut body = Sink::new();
        let mut fp = FpCtx::new(2, false);
        fp.uses_fp = true;
        fp.req_valid = 0b101;
        let xmm = XmmCtx::new(0);
        emit_spec_checks(&mut body, &fp, &xmm, 42);
        let branches = body
            .items
            .iter()
            .filter(|i| matches!(i, IlItem::Inst(e) if e.inst.op.is_branch()))
            .count();
        assert_eq!(branches, 3, "mode check + TOS check + tag check");
    }
}
