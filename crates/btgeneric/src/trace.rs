//! Structured lifecycle tracing and per-block profiling — the
//! observability layer behind policy tuning.
//!
//! The paper's two-phase design is driven by visibility into block
//! lifecycles: use counters decide heating, edge counters shape traces,
//! misalignment instrumentation picks access modes. This module makes
//! those lifecycles *observable* without a debugger:
//!
//! - a fixed-capacity **ring buffer** of typed [`TraceEvent`]s (block
//!   translated / promoted / demoted / evicted / blacklisted, trace
//!   selected, commit point taken, fault injected, ladder rung entered,
//!   interp fallback, phase spans), each stamped with the engine's
//!   **simulated cycle clock** — never wall time, so the same seed and
//!   workload produce a byte-identical event stream, composing with the
//!   chaos harness's determinism guarantee;
//! - a [`ProfileTable`] of per-block [`BlockProfile`]s (dispatch
//!   counts, cycles attributed cold vs hot vs interp, translation /
//!   promotion / demotion / eviction history);
//! - a span-style scope API ([`Tracer::phase_enter`] /
//!   [`Tracer::phase_exit`]) bracketing translation and optimization
//!   sessions;
//! - reporting surfaces: a deterministic text rendering
//!   ([`Tracer::render_text`]), a collapsed-stack file consumable by
//!   standard flamegraph tooling ([`Tracer::collapsed_stacks`]), and a
//!   `chrome://tracing` JSON exporter ([`Tracer::chrome_trace_json`]).
//!
//! ## Cost contract
//!
//! Tracing is **zero-cost when off**: with
//! [`TraceConfig::enabled`]`== false` (the default) the engine performs
//! a single branch per potential event and charges nothing, so a run
//! with tracing disabled is cycle-identical to one that never knew
//! about tracing. When enabled, each event recorded into the ring is
//! charged [`TraceConfig::event_cycles`] simulated cycles to the
//! `OTHER` region — the `trace_overhead` bench experiment holds the
//! total below 2% of run cycles on the gcc workload.
//!
//! ## Determinism contract
//!
//! Events are stamped with [`ipf::machine::Machine::cycles`] (the
//! simulated clock) and a per-tracer sequence number. No wall time, no
//! host allocation addresses, no iteration over unordered maps at
//! record time. Consequently `same seed + same workload + same config ⇒
//! byte-identical [`Tracer::render_text`] output`, faults included.

use crate::chaos::FaultKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Number of distinct [`EventKind`]s.
pub const NUM_EVENT_KINDS: usize = 15;

/// The kind of a lifecycle event (one bit each in an [`EventMask`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum EventKind {
    /// A cold block was (re)translated and installed.
    BlockTranslated = 0,
    /// A block was promoted to a hot trace.
    BlockPromoted = 1,
    /// A hot block was demoted back to cold by the degradation ladder.
    BlockDemoted = 2,
    /// A block was evicted from the translation cache.
    BlockEvicted = 3,
    /// An EIP was struck on the re-promotion blacklist.
    Blacklisted = 4,
    /// The hot optimizer selected a trace over the profile counters.
    TraceSelected = 5,
    /// A commit point was *taken*: hot code deoptimized through its
    /// recovery map.
    CommitPointTaken = 6,
    /// The attached [`FaultPlan`](crate::chaos::FaultPlan) delivered an
    /// injection.
    FaultInjected = 7,
    /// The degradation ladder entered a recovery rung.
    LadderRung = 8,
    /// Execution fell back to the `InterpStep` safety net.
    InterpFallback = 9,
    /// A translation/session phase span was entered or exited.
    Phase = 10,
    /// The dispatcher retrained an indirect-branch inline cache (the
    /// site's prediction was repointed at its newest observed target).
    IndirectRetrain = 11,
    /// A block was demoted to the plain table probe (megamorphic
    /// inline cache or chronically missing shadow pops).
    IndirectDemote = 12,
    /// An asynchronous signal was delivered to the guest handler.
    SignalDelivered = 13,
    /// The SMC-thrash governor demoted a page to interpret-only.
    SmcBlacklist = 14,
}

impl EventKind {
    /// All kinds, indexed by discriminant.
    pub const ALL: [EventKind; NUM_EVENT_KINDS] = [
        EventKind::BlockTranslated,
        EventKind::BlockPromoted,
        EventKind::BlockDemoted,
        EventKind::BlockEvicted,
        EventKind::Blacklisted,
        EventKind::TraceSelected,
        EventKind::CommitPointTaken,
        EventKind::FaultInjected,
        EventKind::LadderRung,
        EventKind::InterpFallback,
        EventKind::Phase,
        EventKind::IndirectRetrain,
        EventKind::IndirectDemote,
        EventKind::SignalDelivered,
        EventKind::SmcBlacklist,
    ];

    /// Short display name (reports, chrome trace).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::BlockTranslated => "translate",
            EventKind::BlockPromoted => "promote",
            EventKind::BlockDemoted => "demote",
            EventKind::BlockEvicted => "evict",
            EventKind::Blacklisted => "blacklist",
            EventKind::TraceSelected => "trace-select",
            EventKind::CommitPointTaken => "commit-taken",
            EventKind::FaultInjected => "fault",
            EventKind::LadderRung => "ladder",
            EventKind::InterpFallback => "interp",
            EventKind::Phase => "phase",
            EventKind::IndirectRetrain => "ind-retrain",
            EventKind::IndirectDemote => "ind-demote",
            EventKind::SignalDelivered => "signal",
            EventKind::SmcBlacklist => "smc-blacklist",
        }
    }

    /// The mask containing only this kind.
    pub const fn mask(self) -> EventMask {
        EventMask(1 << self as u16)
    }
}

/// A set of [`EventKind`]s the tracer records (one bit per kind).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EventMask(pub u16);

impl EventMask {
    /// Record nothing.
    pub const NONE: EventMask = EventMask(0);
    /// Record every kind.
    pub const ALL: EventMask = EventMask((1 << NUM_EVENT_KINDS as u16) - 1);

    /// Does the mask contain `kind`?
    pub const fn contains(self, kind: EventKind) -> bool {
        self.0 & (1 << kind as u16) != 0
    }

    /// This mask with `kind` added (builder style).
    #[must_use]
    pub const fn with(self, kind: EventKind) -> EventMask {
        EventMask(self.0 | (1 << kind as u16))
    }

    /// This mask with `kind` removed (builder style).
    #[must_use]
    pub const fn without(self, kind: EventKind) -> EventMask {
        EventMask(self.0 & !(1 << kind as u16))
    }
}

impl Default for EventMask {
    fn default() -> EventMask {
        EventMask::ALL
    }
}

/// Tracing knobs, carried inside
/// [`Config`](crate::engine::Config)`::trace`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceConfig {
    /// Master switch. Off (the default) means zero recorded events and
    /// zero charged cycles — the run is cycle-identical to a build that
    /// never had tracing.
    pub enabled: bool,
    /// Ring-buffer capacity in events. When full, the oldest event is
    /// overwritten and counted in [`Tracer::dropped`] (flight-recorder
    /// semantics: the most recent history survives).
    pub capacity: usize,
    /// Which event kinds to record.
    pub event_mask: EventMask,
    /// Sampling stride over mask-passing events: 1 records every event,
    /// `n` records every n-th (per-kind counters still count them all).
    pub sample_stride: u64,
    /// Simulated cycles charged (to the `OTHER` region) per event
    /// actually recorded into the ring — the honest cost of a trace
    /// write. The `trace_overhead` experiment bounds the total.
    pub event_cycles: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: false,
            capacity: 4096,
            event_mask: EventMask::ALL,
            sample_stride: 1,
            event_cycles: 10,
        }
    }
}

impl TraceConfig {
    /// A config with tracing switched on and everything else default.
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }
}

/// A translation/session phase bracketed by a span.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// One cold translation (discover → liveness → generate → install).
    ColdTranslate,
    /// One hot optimization session (select → build → schedule →
    /// install, over all candidates).
    HotSession,
}

impl Phase {
    /// Short display name (reports, chrome trace).
    pub fn name(self) -> &'static str {
        match self {
            Phase::ColdTranslate => "cold-translate",
            Phase::HotSession => "hot-session",
        }
    }
}

/// A recovery rung of the degradation ladder (DESIGN.md §8).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rung {
    /// Rung 1: retry the block unchanged (a transient fault may clear).
    Retry,
    /// Rung 2: demote the hot block to cold and blacklist its EIP.
    Demote,
    /// Rung 3: evict the block and blacklist its EIP.
    Evict,
    /// Rung 4: single-step through the `InterpStep` safety net.
    Interpret,
}

impl Rung {
    /// Short display name (reports).
    pub fn name(self) -> &'static str {
        match self {
            Rung::Retry => "retry",
            Rung::Demote => "demote",
            Rung::Evict => "evict",
            Rung::Interpret => "interpret",
        }
    }
}

/// The payload of one lifecycle event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventData {
    /// A cold block was (re)translated and installed.
    BlockTranslated {
        /// Block id.
        id: u32,
        /// Guest entry EIP.
        eip: u32,
        /// True for a stage-2 (detect+avoid) regeneration.
        stage2: bool,
        /// Bundles installed.
        bundles: u64,
    },
    /// A block was promoted to a hot trace.
    BlockPromoted {
        /// Block id.
        id: u32,
        /// Guest entry EIP.
        eip: u32,
        /// Commit points recorded in the new hot code.
        commit_points: u64,
    },
    /// A hot block was demoted back to cold.
    BlockDemoted {
        /// Block id.
        id: u32,
        /// Guest entry EIP.
        eip: u32,
        /// Blacklist strikes against the EIP after this demotion.
        strikes: u32,
    },
    /// A block was evicted from the translation cache.
    BlockEvicted {
        /// Block id.
        id: u32,
        /// Guest entry EIP.
        eip: u32,
        /// Bundles reclaimed (all generations).
        bundles: u64,
    },
    /// An EIP was struck on the re-promotion blacklist.
    Blacklisted {
        /// The struck guest EIP.
        eip: u32,
        /// Simulated cycle until which re-promotion is blocked.
        until: u64,
    },
    /// The hot optimizer selected a trace.
    TraceSelected {
        /// Seed block id.
        id: u32,
        /// Guest entry EIP.
        eip: u32,
        /// Steps in the selected trace.
        steps: u32,
    },
    /// Hot code deoptimized through a commit-point recovery map.
    CommitPointTaken {
        /// Block id.
        id: u32,
        /// Recovery-map index taken.
        recovery: u32,
    },
    /// The attached fault plan delivered an injection.
    FaultInjected {
        /// The injected fault kind.
        kind: FaultKind,
    },
    /// The degradation ladder entered a recovery rung.
    LadderRung {
        /// The rung entered.
        rung: Rung,
        /// Guest EIP the recovery resumed at.
        eip: u32,
    },
    /// Execution fell back to the `InterpStep` safety net.
    InterpFallback {
        /// Guest EIP of the fallback entry.
        eip: u32,
    },
    /// The dispatcher retrained an indirect-branch inline cache.
    IndirectRetrain {
        /// Target guest EIP the site now predicts.
        eip: u32,
        /// Profile address of the retrained per-site IC slot (0 when
        /// the miss came from a site-less path such as `ret`).
        site: u64,
    },
    /// A block's per-site acceleration was demoted to the plain probe.
    IndirectDemote {
        /// Guest EIP of the demoted block.
        eip: u32,
        /// Block id.
        id: u32,
    },
    /// An asynchronous signal was delivered to the guest handler.
    SignalDelivered {
        /// Guest EIP that was interrupted (pushed in the frame).
        eip: u32,
        /// Handler EIP entered.
        handler: u32,
    },
    /// The SMC-thrash governor demoted a page to interpret-only.
    SmcBlacklist {
        /// Guest page number (address >> 12).
        page: u32,
        /// Strikes recorded against the page so far.
        strikes: u32,
    },
    /// A phase span opened.
    PhaseEnter {
        /// The phase.
        phase: Phase,
    },
    /// A phase span closed.
    PhaseExit {
        /// The phase.
        phase: Phase,
        /// Simulated cycles spent inside the span.
        cycles: u64,
    },
}

impl EventData {
    /// The kind of this payload (its bit in the [`EventMask`]).
    pub fn kind(&self) -> EventKind {
        match self {
            EventData::BlockTranslated { .. } => EventKind::BlockTranslated,
            EventData::BlockPromoted { .. } => EventKind::BlockPromoted,
            EventData::BlockDemoted { .. } => EventKind::BlockDemoted,
            EventData::BlockEvicted { .. } => EventKind::BlockEvicted,
            EventData::Blacklisted { .. } => EventKind::Blacklisted,
            EventData::TraceSelected { .. } => EventKind::TraceSelected,
            EventData::CommitPointTaken { .. } => EventKind::CommitPointTaken,
            EventData::FaultInjected { .. } => EventKind::FaultInjected,
            EventData::LadderRung { .. } => EventKind::LadderRung,
            EventData::InterpFallback { .. } => EventKind::InterpFallback,
            EventData::IndirectRetrain { .. } => EventKind::IndirectRetrain,
            EventData::IndirectDemote { .. } => EventKind::IndirectDemote,
            EventData::SignalDelivered { .. } => EventKind::SignalDelivered,
            EventData::SmcBlacklist { .. } => EventKind::SmcBlacklist,
            EventData::PhaseEnter { .. } | EventData::PhaseExit { .. } => EventKind::Phase,
        }
    }
}

/// One recorded lifecycle event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Simulated cycle at which the event was recorded (the machine's
    /// deterministic clock — never wall time).
    pub cycle: u64,
    /// Sequence number among mask-passing events (0-based, monotonic;
    /// gaps appear only under a sampling stride > 1).
    pub seq: u64,
    /// The payload.
    pub data: EventData,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>12}] #{:<6} ", self.cycle, self.seq)?;
        match self.data {
            EventData::BlockTranslated {
                id,
                eip,
                stage2,
                bundles,
            } => write!(
                f,
                "translate    block {id} @ {eip:#x} ({} bundles{})",
                bundles,
                if stage2 { ", stage2" } else { "" }
            ),
            EventData::BlockPromoted {
                id,
                eip,
                commit_points,
            } => write!(
                f,
                "promote      block {id} @ {eip:#x} ({commit_points} commit points)"
            ),
            EventData::BlockDemoted { id, eip, strikes } => {
                write!(f, "demote       block {id} @ {eip:#x} (strike {strikes})")
            }
            EventData::BlockEvicted { id, eip, bundles } => write!(
                f,
                "evict        block {id} @ {eip:#x} ({bundles} bundles freed)"
            ),
            EventData::Blacklisted { eip, until } => {
                write!(f, "blacklist    {eip:#x} until cycle {until}")
            }
            EventData::TraceSelected { id, eip, steps } => {
                write!(f, "trace-select block {id} @ {eip:#x} ({steps} steps)")
            }
            EventData::CommitPointTaken { id, recovery } => {
                write!(f, "commit-taken block {id} (recovery {recovery})")
            }
            EventData::FaultInjected { kind } => write!(f, "fault        {}", kind.name()),
            EventData::LadderRung { rung, eip } => {
                write!(f, "ladder       {} @ {eip:#x}", rung.name())
            }
            EventData::InterpFallback { eip } => write!(f, "interp       @ {eip:#x}"),
            EventData::IndirectRetrain { eip, site } => {
                write!(f, "ind-retrain  -> {eip:#x} (site {site:#x})")
            }
            EventData::IndirectDemote { eip, id } => {
                write!(f, "ind-demote   block {id} @ {eip:#x}")
            }
            EventData::SignalDelivered { eip, handler } => {
                write!(f, "signal       @ {eip:#x} -> handler {handler:#x}")
            }
            EventData::SmcBlacklist { page, strikes } => {
                write!(f, "smc-blacklist page {page:#x} (strike {strikes})")
            }
            EventData::PhaseEnter { phase } => write!(f, "phase-enter  {}", phase.name()),
            EventData::PhaseExit { phase, cycles } => {
                write!(f, "phase-exit   {} ({cycles} cy)", phase.name())
            }
        }
    }
}

/// An open phase span; close it with [`Tracer::phase_exit`].
///
/// Token-based rather than RAII because the closing timestamp must come
/// from the machine's cycle clock, which the tracer does not own.
#[must_use = "close the span with Tracer::phase_exit"]
#[derive(Debug)]
pub struct SpanToken {
    phase: Phase,
    start: u64,
}

/// Aggregated per-block profile, keyed by guest EIP so it survives
/// retranslation and eviction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockProfile {
    /// Guest entry EIP.
    pub eip: u32,
    /// Dispatch-loop entries targeting this EIP.
    pub dispatches: u64,
    /// Cycles executed in cold translated code while this EIP was the
    /// dispatch target (chained successors are attributed to the
    /// dispatch target — see `Engine::run`).
    pub cold_cycles: u64,
    /// Cycles executed in hot translated code while this EIP was the
    /// dispatch target.
    pub hot_cycles: u64,
    /// Cycles spent single-stepping this EIP in the safety net.
    pub interp_cycles: u64,
    /// Single-stepped instructions at this EIP.
    pub interp_steps: u64,
    /// Cold (re)translations of this EIP.
    pub translations: u64,
    /// Promotions to hot.
    pub promotions: u64,
    /// Demotions back to cold.
    pub demotions: u64,
    /// Evictions from the cache.
    pub evictions: u64,
}

impl BlockProfile {
    /// Total execution cycles attributed to this block (cold + hot +
    /// interp).
    pub fn total_cycles(&self) -> u64 {
        self.cold_cycles + self.hot_cycles + self.interp_cycles
    }
}

/// The per-block profile table (keyed by guest EIP).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileTable {
    map: HashMap<u32, BlockProfile>,
}

impl ProfileTable {
    /// The profile for `eip`, if any activity was recorded.
    pub fn get(&self, eip: u32) -> Option<&BlockProfile> {
        self.map.get(&eip)
    }

    /// Number of profiled EIPs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing was profiled.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All profiles in deterministic order (EIP ascending).
    pub fn iter_sorted(&self) -> Vec<&BlockProfile> {
        let mut v: Vec<&BlockProfile> = self.map.values().collect();
        v.sort_unstable_by_key(|p| p.eip);
        v
    }

    /// The `n` hottest profiles by attributed cycles (descending; ties
    /// broken by EIP ascending, so the order is deterministic).
    pub fn top_by_cycles(&self, n: usize) -> Vec<&BlockProfile> {
        let mut v: Vec<&BlockProfile> = self.map.values().collect();
        v.sort_unstable_by(|a, b| {
            b.total_cycles()
                .cmp(&a.total_cycles())
                .then(a.eip.cmp(&b.eip))
        });
        v.truncate(n);
        v
    }

    fn entry(&mut self, eip: u32) -> &mut BlockProfile {
        self.map.entry(eip).or_insert_with(|| BlockProfile {
            eip,
            ..BlockProfile::default()
        })
    }
}

/// The flight recorder: a fixed-capacity ring of [`TraceEvent`]s plus
/// the [`ProfileTable`], owned by the engine and fed at lifecycle
/// boundaries.
#[derive(Clone, Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    ring: Vec<TraceEvent>,
    /// Next write position once the ring is full.
    head: usize,
    /// Mask-passing events offered (recorded + sampled-out + dropped).
    seen: u64,
    /// Events overwritten by ring wraparound.
    dropped: u64,
    /// Mask-passing events skipped by the sampling stride.
    sampled_out: u64,
    /// Events observed per kind, before mask/stride filtering.
    observed: [u64; NUM_EVENT_KINDS],
    profiles: ProfileTable,
}

impl Tracer {
    /// A tracer over the given config (capacity is clamped to ≥ 1 so a
    /// misconfigured zero-capacity ring still records the latest event).
    pub fn new(cfg: TraceConfig) -> Tracer {
        let cfg = TraceConfig {
            capacity: cfg.capacity.max(1),
            sample_stride: cfg.sample_stride.max(1),
            ..cfg
        };
        Tracer {
            cfg,
            ring: Vec::new(),
            head: 0,
            seen: 0,
            dropped: 0,
            sampled_out: 0,
            observed: [0; NUM_EVENT_KINDS],
            profiles: ProfileTable::default(),
        }
    }

    /// The effective config (after clamping).
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Offers one event at simulated time `cycle`. Returns true when
    /// the event was recorded into the ring (the engine charges
    /// [`TraceConfig::event_cycles`] exactly then).
    ///
    /// Filtering is deterministic: the per-kind counter always ticks;
    /// the mask drops unobserved kinds for free; the sampling stride
    /// keeps every `stride`-th mask-passing event.
    pub fn offer(&mut self, cycle: u64, data: EventData) -> bool {
        let kind = data.kind();
        self.observed[kind as usize] += 1;
        if !self.cfg.event_mask.contains(kind) {
            return false;
        }
        let seq = self.seen;
        self.seen += 1;
        if !seq.is_multiple_of(self.cfg.sample_stride) {
            self.sampled_out += 1;
            return false;
        }
        let ev = TraceEvent { cycle, seq, data };
        if self.ring.len() < self.cfg.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.cfg.capacity;
            self.dropped += 1;
        }
        true
    }

    /// Opens a phase span (and offers a [`EventData::PhaseEnter`]
    /// event). Close with [`Tracer::phase_exit`]. The second return is
    /// whether the enter event was recorded (the caller charges its
    /// cost exactly then).
    pub fn phase_enter(&mut self, now: u64, phase: Phase) -> (SpanToken, bool) {
        let recorded = self.offer(now, EventData::PhaseEnter { phase });
        (SpanToken { phase, start: now }, recorded)
    }

    /// Closes a phase span, offering a [`EventData::PhaseExit`] event
    /// carrying the span's simulated duration. Returns whether the exit
    /// event was recorded.
    pub fn phase_exit(&mut self, now: u64, token: SpanToken) -> bool {
        self.offer(
            now,
            EventData::PhaseExit {
                phase: token.phase,
                cycles: now.saturating_sub(token.start),
            },
        )
    }

    /// Recorded events, oldest first (ring order restored).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.ring.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Number of events currently held in the ring.
    pub fn recorded(&self) -> usize {
        self.ring.len()
    }

    /// Mask-passing events offered so far (recorded + dropped +
    /// sampled out).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events lost to ring wraparound (the drop counter).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Mask-passing events skipped by the sampling stride.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Events observed for `kind`, before mask/stride filtering.
    pub fn observed(&self, kind: EventKind) -> u64 {
        self.observed[kind as usize]
    }

    /// The per-block profile table.
    pub fn profiles(&self) -> &ProfileTable {
        &self.profiles
    }

    // ---- profile feeders (engine-side) -------------------------------

    /// Counts one dispatch-loop entry targeting `eip`.
    pub fn profile_dispatch(&mut self, eip: u32) {
        self.profiles.entry(eip).dispatches += 1;
    }

    /// Attributes executed cycles to `eip` (the current dispatch
    /// target), split into cold- and hot-region cycles.
    pub fn profile_exec(&mut self, eip: u32, cold_cycles: u64, hot_cycles: u64) {
        let p = self.profiles.entry(eip);
        p.cold_cycles += cold_cycles;
        p.hot_cycles += hot_cycles;
    }

    /// Attributes one single-stepped instruction at `eip`.
    pub fn profile_interp(&mut self, eip: u32, cycles: u64) {
        let p = self.profiles.entry(eip);
        p.interp_steps += 1;
        p.interp_cycles += cycles;
    }

    /// Counts one lifecycle transition for `eip` (called alongside the
    /// matching ring event).
    pub fn profile_lifecycle(&mut self, eip: u32, kind: EventKind) {
        let p = self.profiles.entry(eip);
        match kind {
            EventKind::BlockTranslated => p.translations += 1,
            EventKind::BlockPromoted => p.promotions += 1,
            EventKind::BlockDemoted => p.demotions += 1,
            EventKind::BlockEvicted => p.evictions += 1,
            _ => {}
        }
    }

    // ---- reporting surfaces ------------------------------------------

    /// Renders every recorded event, one per line, oldest first. The
    /// output is **byte-identical** across runs with the same seed,
    /// workload, and config (the determinism contract).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            let _ = writeln!(out, "{ev}");
        }
        out
    }

    /// One-line counters summary.
    pub fn summary(&self) -> String {
        let mut kinds = String::new();
        for k in EventKind::ALL {
            let n = self.observed(k);
            if n > 0 {
                if !kinds.is_empty() {
                    kinds.push_str(", ");
                }
                let _ = write!(kinds, "{} {}", k.name(), n);
            }
        }
        format!(
            "trace: {} recorded ({} seen, {} dropped, {} sampled out), {} profiled blocks [{}]",
            self.recorded(),
            self.seen(),
            self.dropped(),
            self.sampled_out(),
            self.profiles.len(),
            kinds
        )
    }

    /// Renders the profile table in the **collapsed-stack** ("folded")
    /// format consumed by standard flamegraph tooling: one line per
    /// stack, `frame;frame;frame count`, where the count is attributed
    /// simulated cycles.
    ///
    /// Stacks have three frames: the engine root, the execution tier
    /// (`cold` / `hot` / `interp`), and the block's guest EIP.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for p in self.profiles.iter_sorted() {
            if p.cold_cycles > 0 {
                let _ = writeln!(out, "el;cold;block_{:#010x} {}", p.eip, p.cold_cycles);
            }
            if p.hot_cycles > 0 {
                let _ = writeln!(out, "el;hot;block_{:#010x} {}", p.eip, p.hot_cycles);
            }
            if p.interp_cycles > 0 {
                let _ = writeln!(out, "el;interp;block_{:#010x} {}", p.eip, p.interp_cycles);
            }
        }
        out
    }

    /// Renders a top-`n` hot-path table (by attributed cycles) as
    /// aligned text.
    pub fn hot_path_table(&self, n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>12} {:>12} {:>10} {:>5} {:>5} {:>5} {:>5}",
            "block", "dispatch", "cold cy", "hot cy", "interp cy", "xlat", "promo", "demo", "evict"
        );
        for p in self.profiles.top_by_cycles(n) {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>12} {:>12} {:>10} {:>5} {:>5} {:>5} {:>5}",
                format!("{:#010x}", p.eip),
                p.dispatches,
                p.cold_cycles,
                p.hot_cycles,
                p.interp_cycles,
                p.translations,
                p.promotions,
                p.demotions,
                p.evictions
            );
        }
        out
    }

    /// Exports the recorded events as `chrome://tracing` / Perfetto
    /// JSON (the "trace event format"): phase spans become `B`/`E`
    /// duration events, everything else an instant event, with the
    /// simulated cycle as the microsecond timestamp.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for ev in self.events() {
            if !first {
                out.push(',');
            }
            first = false;
            let (name, ph, args) = match ev.data {
                EventData::PhaseEnter { phase } => (phase.name().to_owned(), "B", String::new()),
                EventData::PhaseExit { phase, cycles } => {
                    (phase.name().to_owned(), "E", format!("\"cycles\":{cycles}"))
                }
                EventData::BlockTranslated { id, eip, .. } => (
                    format!("translate {eip:#x}"),
                    "i",
                    format!("\"block\":{id},\"eip\":{eip}"),
                ),
                EventData::BlockPromoted { id, eip, .. } => (
                    format!("promote {eip:#x}"),
                    "i",
                    format!("\"block\":{id},\"eip\":{eip}"),
                ),
                EventData::BlockDemoted { id, eip, strikes } => (
                    format!("demote {eip:#x}"),
                    "i",
                    format!("\"block\":{id},\"eip\":{eip},\"strikes\":{strikes}"),
                ),
                EventData::BlockEvicted { id, eip, bundles } => (
                    format!("evict {eip:#x}"),
                    "i",
                    format!("\"block\":{id},\"eip\":{eip},\"bundles\":{bundles}"),
                ),
                EventData::Blacklisted { eip, until } => (
                    format!("blacklist {eip:#x}"),
                    "i",
                    format!("\"eip\":{eip},\"until\":{until}"),
                ),
                EventData::TraceSelected { id, eip, steps } => (
                    format!("trace-select {eip:#x}"),
                    "i",
                    format!("\"block\":{id},\"eip\":{eip},\"steps\":{steps}"),
                ),
                EventData::CommitPointTaken { id, recovery } => (
                    "commit-taken".to_owned(),
                    "i",
                    format!("\"block\":{id},\"recovery\":{recovery}"),
                ),
                EventData::FaultInjected { kind } => {
                    (format!("fault {}", kind.name()), "i", String::new())
                }
                EventData::LadderRung { rung, eip } => (
                    format!("ladder {}", rung.name()),
                    "i",
                    format!("\"eip\":{eip}"),
                ),
                EventData::InterpFallback { eip } => {
                    (format!("interp {eip:#x}"), "i", format!("\"eip\":{eip}"))
                }
                EventData::IndirectRetrain { eip, site } => (
                    format!("ind-retrain {eip:#x}"),
                    "i",
                    format!("\"eip\":{eip},\"site\":{site}"),
                ),
                EventData::IndirectDemote { eip, id } => (
                    format!("ind-demote {eip:#x}"),
                    "i",
                    format!("\"eip\":{eip},\"id\":{id}"),
                ),
                EventData::SignalDelivered { eip, handler } => (
                    format!("signal {eip:#x}"),
                    "i",
                    format!("\"eip\":{eip},\"handler\":{handler}"),
                ),
                EventData::SmcBlacklist { page, strikes } => (
                    format!("smc-blacklist {page:#x}"),
                    "i",
                    format!("\"page\":{page},\"strikes\":{strikes}"),
                ),
            };
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":1",
                ev.cycle
            );
            if ph == "i" {
                out.push_str(",\"s\":\"t\"");
            }
            if !args.is_empty() {
                let _ = write!(out, ",\"args\":{{{args}}}");
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(eip: u32) -> EventData {
        EventData::InterpFallback { eip }
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            capacity: 4,
            ..TraceConfig::default()
        });
        for i in 0..10u32 {
            assert!(t.offer(i as u64 * 100, ev(i)));
        }
        assert_eq!(t.recorded(), 4);
        assert_eq!(t.seen(), 10);
        assert_eq!(t.dropped(), 6);
        // Ring holds the most recent 4, oldest first.
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![600, 700, 800, 900]);
    }

    #[test]
    fn mask_filters_for_free() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            event_mask: EventMask::NONE.with(EventKind::BlockEvicted),
            ..TraceConfig::default()
        });
        assert!(!t.offer(1, ev(0x1000)));
        assert!(t.offer(
            2,
            EventData::BlockEvicted {
                id: 0,
                eip: 0x1000,
                bundles: 3
            }
        ));
        assert_eq!(t.seen(), 1, "masked-out events are not seen");
        assert_eq!(t.observed(EventKind::InterpFallback), 1, "but observed");
        assert_eq!(t.recorded(), 1);
    }

    #[test]
    fn stride_samples_deterministically() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            sample_stride: 3,
            ..TraceConfig::default()
        });
        let recorded: Vec<bool> = (0..9).map(|i| t.offer(i, ev(i as u32))).collect();
        assert_eq!(
            recorded,
            vec![true, false, false, true, false, false, true, false, false]
        );
        assert_eq!(t.sampled_out(), 6);
        assert_eq!(t.seen(), 9);
    }

    #[test]
    fn span_duration_is_cycle_delta() {
        let mut t = Tracer::new(TraceConfig::on());
        let (sp, recorded) = t.phase_enter(100, Phase::ColdTranslate);
        assert!(recorded);
        t.phase_exit(350, sp);
        let evs: Vec<&TraceEvent> = t.events().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[1].data,
            EventData::PhaseExit {
                phase: Phase::ColdTranslate,
                cycles: 250
            }
        );
    }

    #[test]
    fn top_by_cycles_is_deterministic() {
        let mut t = Tracer::new(TraceConfig::on());
        t.profile_exec(0x2000, 50, 0);
        t.profile_exec(0x1000, 50, 0);
        t.profile_exec(0x3000, 500, 100);
        let top = t.profiles().top_by_cycles(2);
        assert_eq!(top[0].eip, 0x3000);
        assert_eq!(top[1].eip, 0x1000, "ties break by EIP ascending");
    }

    #[test]
    fn chrome_json_is_wellformed_ish() {
        let mut t = Tracer::new(TraceConfig::on());
        let (sp, _) = t.phase_enter(10, Phase::HotSession);
        t.offer(
            20,
            EventData::FaultInjected {
                kind: FaultKind::BitFlip,
            },
        );
        t.phase_exit(30, sp);
        let j = t.chrome_trace_json();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.ends_with("]}"));
        assert_eq!(j.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(j.matches("\"ph\":\"E\"").count(), 1);
        assert_eq!(j.matches("\"ph\":\"i\"").count(), 1);
    }
}
