#![deny(missing_docs)]
//! # BTLib — the OS abstraction layer of the IA-32 Execution Layer
//!
//! The thin, OS-specific glue of paper §3: it loads BTGeneric, performs
//! the BTOS version handshake, provides system services (memory,
//! syscalls, exception policy), and launches the IA-32 application.
//! One implementation exists per OS personality; [`SimOs`] is a
//! simulated Linux-like personality with `int 0x80` syscalls.
//!
//! ## Example
//!
//! ```rust
//! use btlib::{Process, SimOs};
//! use ia32::asm::{Asm, Image};
//! use ia32::regs::{EAX, EBX};
//!
//! // exit(42)
//! let mut a = Asm::new(0x40_0000);
//! a.mov_ri(EAX, 1); // SYS_exit
//! a.mov_ri(EBX, 42);
//! a.int(0x80);
//! let image = Image::from_asm(&a);
//!
//! let mut process = Process::launch(&image, SimOs::new()).unwrap();
//! let outcome = process.run(1_000_000);
//! assert_eq!(outcome, btgeneric::engine::Outcome::Exited(42));
//! ```

use btgeneric::btos::{
    negotiate, BtOs, ExceptionOutcome, GuestException, SyscallOutcome, Version, BTOS_MAJOR,
    BTOS_MINOR,
};
use btgeneric::engine::{Config, Engine, Outcome};
pub use btgeneric::trace::{EventKind, EventMask, TraceConfig, TraceEvent, Tracer};
use ia32::asm::Image;
use ia32::cpu::Cpu;
use ia32::mem::{GuestMem, Prot};
use ia32::regs::{EAX, EBX, ECX, EDX};

/// Simulated Linux-like syscall numbers (`int 0x80` ABI: number in
/// `EAX`, arguments in `EBX`, `ECX`, `EDX`).
pub mod sys {
    /// `exit(status)`.
    pub const EXIT: u32 = 1;
    /// `write(fd, buf, len)`.
    pub const WRITE: u32 = 4;
    /// `brk(addr)`.
    pub const BRK: u32 = 45;
    /// `gettick()` — returns a simulated tick (test aid).
    pub const GETTICK: u32 = 78;
    /// `signal(handler_eip)` — registers the process-wide exception
    /// handler (the SimOs stand-in for sigaction).
    pub const SIGNAL: u32 = 48;
}

/// Deterministic OS-side fault injection: how many upcoming requests of
/// each kind SimOs refuses before returning to normal service.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimOsFaults {
    /// Translator-side allocation requests to refuse (ENOMEM).
    pub fail_allocs: u32,
    /// `write` syscalls to fail transiently (EAGAIN) — guest-visible,
    /// so only armed for workloads/tests that retry.
    pub fail_syscalls: u32,
}

/// The simulated Linux-like OS personality.
#[derive(Debug)]
pub struct SimOs {
    /// Bytes written to fd 1 (captured "stdout").
    pub stdout: Vec<u8>,
    /// Current program break.
    pub brk: u32,
    /// Registered guest exception handler.
    pub handler: Option<u32>,
    /// Log lines from BTGeneric.
    pub log: Vec<String>,
    /// Armed fault injection (remaining refusals).
    pub faults: SimOsFaults,
    /// Allocation requests refused so far.
    pub denied_allocs: u64,
    /// Syscalls failed with EAGAIN so far.
    pub denied_syscalls: u64,
    tick: u64,
}

impl Default for SimOs {
    fn default() -> Self {
        Self::new()
    }
}

impl SimOs {
    /// A fresh personality.
    pub fn new() -> SimOs {
        SimOs {
            stdout: Vec::new(),
            brk: 0x6000_0000,
            handler: None,
            log: Vec::new(),
            faults: SimOsFaults::default(),
            denied_allocs: 0,
            denied_syscalls: 0,
            tick: 0,
        }
    }

    /// A personality with fault injection armed.
    pub fn with_faults(faults: SimOsFaults) -> SimOs {
        SimOs {
            faults,
            ..SimOs::new()
        }
    }

    /// Captured stdout as UTF-8 (lossy).
    pub fn stdout_string(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }
}

impl BtOs for SimOs {
    fn version(&self) -> Version {
        Version {
            major: BTOS_MAJOR,
            minor: BTOS_MINOR,
        }
    }

    fn syscall(&mut self, cpu: &mut Cpu, mem: &mut GuestMem) -> SyscallOutcome {
        let num = cpu.gpr[EAX.num() as usize];
        let a1 = cpu.gpr[EBX.num() as usize];
        let a2 = cpu.gpr[ECX.num() as usize];
        let a3 = cpu.gpr[EDX.num() as usize];
        match num {
            sys::EXIT => return SyscallOutcome::Exit(a1 as i32),
            sys::WRITE => {
                if self.faults.fail_syscalls > 0 {
                    // Injected transient failure: the guest sees EAGAIN
                    // and may retry.
                    self.faults.fail_syscalls -= 1;
                    self.denied_syscalls += 1;
                    cpu.gpr[EAX.num() as usize] = -11i32 as u32; // EAGAIN
                } else if a1 == 1 {
                    match mem.read_bytes(a2 as u64, a3 as usize) {
                        Ok(bytes) => {
                            let n = bytes.len() as u32;
                            self.stdout.extend_from_slice(&bytes);
                            cpu.gpr[EAX.num() as usize] = n;
                        }
                        Err(_) => cpu.gpr[EAX.num() as usize] = -14i32 as u32, // EFAULT
                    }
                } else {
                    cpu.gpr[EAX.num() as usize] = -9i32 as u32; // EBADF
                }
            }
            sys::BRK => {
                if a1 > self.brk {
                    mem.map(self.brk as u64, (a1 - self.brk) as u64, Prot::rw());
                    self.brk = a1;
                }
                cpu.gpr[EAX.num() as usize] = self.brk;
            }
            sys::GETTICK => {
                self.tick += 1;
                cpu.gpr[EAX.num() as usize] = self.tick as u32;
            }
            sys::SIGNAL => {
                self.handler = if a1 == 0 { None } else { Some(a1) };
                cpu.gpr[EAX.num() as usize] = 0;
            }
            _ => cpu.gpr[EAX.num() as usize] = -38i32 as u32, // ENOSYS
        }
        SyscallOutcome::Continue
    }

    fn exception(&mut self, _exc: GuestException, _cpu: &Cpu) -> ExceptionOutcome {
        match self.handler {
            Some(h) => ExceptionOutcome::DeliverTo(h),
            None => ExceptionOutcome::Terminate,
        }
    }

    fn alloc_pages(&mut self, mem: &mut GuestMem, addr: u64, len: u64) -> bool {
        if self.faults.fail_allocs > 0 {
            // Injected ENOMEM: the engine must degrade, not die.
            self.faults.fail_allocs -= 1;
            self.denied_allocs += 1;
            return false;
        }
        mem.map(addr, len, Prot::rw());
        true
    }

    fn log(&mut self, msg: &str) {
        self.log.push(msg.to_owned());
    }
}

/// A launched IA-32 process under the Execution Layer: BTLib has loaded
/// the image, checked BTOS versions, and initialized BTGeneric (paper
/// Figure 3 A).
pub struct Process<O: BtOs> {
    /// The translation engine (BTGeneric).
    pub engine: Engine,
    /// The OS personality.
    pub os: O,
    /// The initial CPU state produced by the loader.
    pub cpu: Cpu,
    /// The negotiated BTOS version.
    pub btos_version: Version,
}

/// Launch errors.
#[derive(Debug)]
pub enum LaunchError {
    /// BTOS version negotiation failed.
    Handshake(btgeneric::btos::HandshakeError),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Handshake(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl<O: BtOs> Process<O> {
    /// Loads `image`, negotiates versions, and prepares the engine with
    /// the default configuration.
    ///
    /// # Errors
    ///
    /// [`LaunchError::Handshake`] when the BTLib/BTGeneric versions are
    /// incompatible.
    pub fn launch(image: &Image, os: O) -> Result<Process<O>, LaunchError> {
        Self::launch_with(image, os, Config::default())
    }

    /// Like [`Process::launch`] with an explicit engine configuration.
    ///
    /// # Errors
    ///
    /// Same as [`Process::launch`].
    pub fn launch_with(image: &Image, os: O, cfg: Config) -> Result<Process<O>, LaunchError> {
        let version = negotiate(os.version()).map_err(LaunchError::Handshake)?;
        let mut mem = GuestMem::new();
        let cpu = image.load(&mut mem);
        let engine = Engine::new(mem, cfg);
        Ok(Process {
            engine,
            os,
            cpu,
            btos_version: version,
        })
    }

    /// Runs the process for up to `max_slots` Itanium instruction slots.
    pub fn run(&mut self, max_slots: u64) -> Outcome {
        let cpu = self.cpu.clone();
        self.engine.run(&mut self.os, cpu, max_slots)
    }

    /// One-line translation-cache management summary (evictions,
    /// unlinks, purges, fallback flushes, fast dispatches) for bench
    /// and figures output.
    pub fn cache_report(&self) -> String {
        self.engine.stats.cache_summary()
    }

    /// The engine's lifecycle tracer: the event ring, recorder
    /// counters, and the per-block [`ProfileTable`](
    /// btgeneric::trace::ProfileTable). Inert (empty) unless the
    /// process was launched with [`TraceConfig::enabled`].
    pub fn tracer(&self) -> &Tracer {
        &self.engine.tracer
    }

    /// Human-readable trace report: recorder counters plus the top-10
    /// hot-path table.
    ///
    /// ```rust
    /// use btlib::{Process, SimOs, TraceConfig};
    /// use btgeneric::engine::Config;
    /// use ia32::asm::{Asm, Image};
    /// use ia32::regs::{EAX, EBX};
    ///
    /// let mut a = Asm::new(0x40_0000);
    /// a.mov_ri(EAX, 1); // SYS_exit
    /// a.mov_ri(EBX, 0);
    /// a.int(0x80);
    /// let image = Image::from_asm(&a);
    ///
    /// let cfg = Config {
    ///     trace: TraceConfig::on(),
    ///     ..Config::default()
    /// };
    /// let mut p = Process::launch_with(&image, SimOs::new(), cfg).unwrap();
    /// p.run(1_000_000);
    /// assert!(p.tracer().recorded() > 0);
    /// println!("{}", p.trace_summary());
    /// ```
    pub fn trace_summary(&self) -> String {
        self.engine.trace_summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia32::asm::Asm;
    use ia32::inst::AluOp;
    use ia32::regs::{ESI, ESP};

    #[test]
    fn exit_syscall() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, sys::EXIT as i32);
        a.mov_ri(EBX, 7);
        a.int(0x80);
        let image = Image::from_asm(&a);
        let mut p = Process::launch(&image, SimOs::new()).unwrap();
        assert_eq!(p.run(1_000_000), Outcome::Exited(7));
    }

    #[test]
    fn write_captures_stdout() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 0x0A6968); // "hi\n"
        a.alu_ri(AluOp::Sub, ESP, 4);
        a.mov_store(ia32::inst::Addr::base(ESP), EAX);
        a.mov_ri(EAX, sys::WRITE as i32);
        a.mov_ri(EBX, 1);
        a.mov_rr(ECX, ESP);
        a.mov_ri(EDX, 3);
        a.int(0x80);
        a.mov_ri(EAX, sys::EXIT as i32);
        a.mov_ri(EBX, 0);
        a.int(0x80);
        let image = Image::from_asm(&a);
        let mut p = Process::launch(&image, SimOs::new()).unwrap();
        assert_eq!(p.run(1_000_000), Outcome::Exited(0));
        assert_eq!(p.os.stdout_string(), "hi\n");
    }

    #[test]
    fn brk_extends_memory() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, sys::BRK as i32);
        a.mov_ri(EBX, 0x6000_4000u32 as i32);
        a.int(0x80);
        a.mov_ri(ESI, 0x6000_1000u32 as i32);
        a.mov_mi(ia32::inst::Addr::base(ESI), 0x55);
        a.mov_load(EBX, ia32::inst::Addr::base(ESI));
        a.mov_ri(EAX, sys::EXIT as i32);
        a.int(0x80);
        let image = Image::from_asm(&a);
        let mut p = Process::launch(&image, SimOs::new()).unwrap();
        assert_eq!(p.run(1_000_000), Outcome::Exited(0x55));
    }

    #[test]
    fn unhandled_exception_terminates() {
        let mut a = Asm::new(0x40_0000);
        a.mov_load(EAX, ia32::inst::Addr::abs(0x10)); // unmapped
        a.hlt();
        let image = Image::from_asm(&a);
        let mut p = Process::launch(&image, SimOs::new()).unwrap();
        match p.run(1_000_000) {
            Outcome::Terminated { exc, cpu } => {
                assert_eq!(
                    exc,
                    GuestException::PageFault {
                        addr: 0x10,
                        write: false
                    }
                );
                assert_eq!(cpu.eip, 0x40_0000, "precise faulting EIP");
            }
            other => panic!("expected termination, got {other:?}"),
        }
    }

    #[test]
    fn handler_receives_divide_error() {
        // Build once to learn the handler address, then rebuild with it.
        let build = |haddr: i32| {
            let mut a = Asm::new(0x40_0000);
            let handler = a.label();
            a.mov_ri(EAX, sys::SIGNAL as i32);
            a.mov_ri(EBX, haddr);
            a.int(0x80);
            a.mov_ri(EAX, 10);
            a.mov_ri(EDX, 0);
            a.mov_ri(ECX, 0);
            a.divide(ia32::inst::MulDivOp::Div, ECX);
            a.hlt();
            a.bind(handler);
            a.mov_ri(EAX, sys::EXIT as i32);
            a.mov_ri(EBX, 99);
            a.int(0x80);
            let addr = a.label_addr(handler);
            (a, addr)
        };
        let (_, haddr) = build(0);
        let (a, haddr2) = build(haddr as i32);
        assert_eq!(haddr, haddr2, "layout stable");
        let image = Image::from_asm(&a);
        let mut p = Process::launch(&image, SimOs::new()).unwrap();
        assert_eq!(p.run(1_000_000), Outcome::Exited(99));
    }

    #[test]
    fn version_mismatch_fails_launch() {
        struct OldLib;
        impl BtOs for OldLib {
            fn version(&self) -> Version {
                Version {
                    major: BTOS_MAJOR + 1,
                    minor: 0,
                }
            }
            fn syscall(&mut self, _: &mut Cpu, _: &mut GuestMem) -> SyscallOutcome {
                SyscallOutcome::Exit(0)
            }
            fn exception(&mut self, _: GuestException, _: &Cpu) -> ExceptionOutcome {
                ExceptionOutcome::Terminate
            }
        }
        let mut a = Asm::new(0x40_0000);
        a.hlt();
        let image = Image::from_asm(&a);
        assert!(Process::launch(&image, OldLib).is_err());
    }
}
