#![deny(missing_docs)]
//! # BTLib — the OS abstraction layer of the IA-32 Execution Layer
//!
//! The thin, OS-specific glue of paper §3: it loads BTGeneric, performs
//! the BTOS version handshake, provides system services (memory,
//! syscalls, exception policy), and launches the IA-32 application.
//! One implementation exists per OS personality; [`SimOs`] is a
//! simulated Linux-like personality with `int 0x80` syscalls.
//!
//! ## Example
//!
//! ```rust
//! use btlib::{Process, SimOs};
//! use ia32::asm::{Asm, Image};
//! use ia32::regs::{EAX, EBX};
//!
//! // exit(42)
//! let mut a = Asm::new(0x40_0000);
//! a.mov_ri(EAX, 1); // SYS_exit
//! a.mov_ri(EBX, 42);
//! a.int(0x80);
//! let image = Image::from_asm(&a);
//!
//! let mut process = Process::launch(&image, SimOs::new()).unwrap();
//! let outcome = process.run(1_000_000);
//! assert_eq!(outcome, btgeneric::engine::Outcome::Exited(42));
//! ```

use btgeneric::btos::{
    negotiate, BtOs, ExceptionOutcome, GuestException, SyscallOutcome, Version, BTOS_MAJOR,
    BTOS_MINOR,
};
use btgeneric::engine::{Config, Engine, Outcome};
pub use btgeneric::trace::{EventKind, EventMask, TraceConfig, TraceEvent, Tracer};
use ia32::asm::Image;
use ia32::cpu::Cpu;
use ia32::mem::{GuestMem, Prot};
use ia32::regs::{EAX, EBX, ECX, EDX};

pub mod serve;

/// Simulated Linux-like syscall numbers (`int 0x80` ABI: number in
/// `EAX`, arguments in `EBX`, `ECX`, `EDX`).
pub mod sys {
    /// `exit(status)`.
    pub const EXIT: u32 = 1;
    /// `write(fd, buf, len)`.
    pub const WRITE: u32 = 4;
    /// `brk(addr)`.
    pub const BRK: u32 = 45;
    /// `gettick()` — returns a simulated tick (test aid).
    pub const GETTICK: u32 = 78;
    /// `signal(handler_eip)` — registers the process-wide exception
    /// handler (the SimOs stand-in for sigaction).
    pub const SIGNAL: u32 = 48;
    /// `sigreturn()` — returns from an *asynchronous* signal handler:
    /// pops the 3-word frame the engine pushed (`[esp]` = interrupted
    /// EIP, `[esp+4]` = EFLAGS, `[esp+8]` = EAX) and resumes the
    /// interrupted code. Synchronous trap handlers keep the plain
    /// 1-word `ret` ABI.
    pub const SIGRETURN: u32 = 119;
}

/// xorshift64 step (the same in-tree generator the chaos plan uses).
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// A deterministic asynchronous-signal schedule: seeded arrival cycles
/// plus a nesting bound. Signals whose arrival cycle has passed are
/// delivered by the engine at its next safe interruption point (dispatch
/// boundary or hot-trace commit point); signals arriving while the
/// handler stack is at `max_depth` stay queued until a `sigreturn`
/// unwinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignalPlan {
    /// Arrival cycles, ascending.
    pub arrivals: Vec<u64>,
    /// Maximum handler nesting depth (1 = no nesting).
    pub max_depth: u32,
}

impl SignalPlan {
    /// `count` arrivals drawn uniformly from `[0, window)` by a seeded
    /// xorshift64, sorted ascending. Depth defaults to 2 (one level of
    /// nesting); override the field for deeper storms.
    pub fn seeded(seed: u64, count: usize, window: u64) -> SignalPlan {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut arrivals: Vec<u64> = (0..count)
            .map(|_| xorshift(&mut s) % window.max(1))
            .collect();
        arrivals.sort_unstable();
        SignalPlan {
            arrivals,
            max_depth: 2,
        }
    }
}

/// Deterministic OS-side fault injection: how many upcoming requests of
/// each kind SimOs refuses before returning to normal service.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimOsFaults {
    /// Translator-side allocation requests to refuse (ENOMEM).
    pub fail_allocs: u32,
    /// `write` syscalls to fail transiently (EAGAIN) — guest-visible,
    /// so only armed for workloads/tests that retry.
    pub fail_syscalls: u32,
}

/// The simulated Linux-like OS personality.
#[derive(Debug)]
pub struct SimOs {
    /// Bytes written to fd 1 (captured "stdout").
    pub stdout: Vec<u8>,
    /// Current program break.
    pub brk: u32,
    /// Registered guest exception handler.
    pub handler: Option<u32>,
    /// Log lines from BTGeneric.
    pub log: Vec<String>,
    /// Armed fault injection (remaining refusals).
    pub faults: SimOsFaults,
    /// Allocation requests refused so far.
    pub denied_allocs: u64,
    /// Syscalls failed with EAGAIN so far.
    pub denied_syscalls: u64,
    /// Pending asynchronous-signal arrival cycles, ascending (consumed
    /// from the front). Signals never expire: one queued before the
    /// guest registers a handler delivers once registration happens.
    pub pending_signals: std::collections::VecDeque<u64>,
    /// Current handler nesting depth (poll increments, sigreturn
    /// decrements).
    pub sig_depth: u32,
    /// Maximum handler nesting depth.
    pub sig_max_depth: u32,
    /// `sigreturn` syscalls serviced.
    pub sigreturns: u64,
    /// Polls that found a due signal blocked by the depth cap (each
    /// deferred delivery counts once per poll).
    pub sig_deferrals: u64,
    tick: u64,
}

impl Default for SimOs {
    fn default() -> Self {
        Self::new()
    }
}

impl SimOs {
    /// A fresh personality.
    pub fn new() -> SimOs {
        SimOs {
            stdout: Vec::new(),
            brk: 0x6000_0000,
            handler: None,
            log: Vec::new(),
            faults: SimOsFaults::default(),
            denied_allocs: 0,
            denied_syscalls: 0,
            pending_signals: std::collections::VecDeque::new(),
            sig_depth: 0,
            sig_max_depth: 2,
            sigreturns: 0,
            sig_deferrals: 0,
            tick: 0,
        }
    }

    /// A personality with fault injection armed.
    pub fn with_faults(faults: SimOsFaults) -> SimOs {
        SimOs {
            faults,
            ..SimOs::new()
        }
    }

    /// Arms a deterministic asynchronous-signal schedule (builder
    /// style, composes with [`SimOs::with_faults`]).
    #[must_use]
    pub fn with_signals(mut self, plan: SignalPlan) -> SimOs {
        self.pending_signals = plan.arrivals.into();
        self.sig_max_depth = plan.max_depth.max(1);
        self
    }

    /// Captured stdout as UTF-8 (lossy).
    pub fn stdout_string(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }
}

impl BtOs for SimOs {
    fn version(&self) -> Version {
        Version {
            major: BTOS_MAJOR,
            minor: BTOS_MINOR,
        }
    }

    fn syscall(&mut self, cpu: &mut Cpu, mem: &mut GuestMem) -> SyscallOutcome {
        let num = cpu.gpr[EAX.num() as usize];
        let a1 = cpu.gpr[EBX.num() as usize];
        let a2 = cpu.gpr[ECX.num() as usize];
        let a3 = cpu.gpr[EDX.num() as usize];
        match num {
            sys::EXIT => return SyscallOutcome::Exit(a1 as i32),
            sys::WRITE => {
                if self.faults.fail_syscalls > 0 {
                    // Injected transient failure: the guest sees EAGAIN
                    // and may retry.
                    self.faults.fail_syscalls -= 1;
                    self.denied_syscalls += 1;
                    cpu.gpr[EAX.num() as usize] = -11i32 as u32; // EAGAIN
                } else if a1 == 1 {
                    match mem.read_bytes(a2 as u64, a3 as usize) {
                        Ok(bytes) => {
                            let n = bytes.len() as u32;
                            self.stdout.extend_from_slice(&bytes);
                            cpu.gpr[EAX.num() as usize] = n;
                        }
                        Err(_) => cpu.gpr[EAX.num() as usize] = -14i32 as u32, // EFAULT
                    }
                } else {
                    cpu.gpr[EAX.num() as usize] = -9i32 as u32; // EBADF
                }
            }
            sys::BRK => {
                if a1 > self.brk {
                    mem.map(self.brk as u64, (a1 - self.brk) as u64, Prot::rw());
                    self.brk = a1;
                }
                cpu.gpr[EAX.num() as usize] = self.brk;
            }
            sys::GETTICK => {
                self.tick += 1;
                cpu.gpr[EAX.num() as usize] = self.tick as u32;
            }
            sys::SIGNAL => {
                self.handler = if a1 == 0 { None } else { Some(a1) };
                cpu.gpr[EAX.num() as usize] = 0;
            }
            sys::SIGRETURN => {
                // Pop the async frame the engine pushed at delivery and
                // resume the interrupted instruction stream exactly.
                let esp = cpu.esp();
                let (Ok(eip), Ok(eflags), Ok(eax)) = (
                    mem.read(esp as u64, 4),
                    mem.read(esp as u64 + 4, 4),
                    mem.read(esp as u64 + 8, 4),
                ) else {
                    cpu.gpr[EAX.num() as usize] = -14i32 as u32; // EFAULT
                    return SyscallOutcome::Continue;
                };
                cpu.eip = eip as u32;
                cpu.eflags = eflags as u32;
                cpu.gpr[EAX.num() as usize] = eax as u32;
                cpu.set_esp(esp.wrapping_add(12));
                self.sig_depth = self.sig_depth.saturating_sub(1);
                self.sigreturns += 1;
            }
            _ => cpu.gpr[EAX.num() as usize] = -38i32 as u32, // ENOSYS
        }
        SyscallOutcome::Continue
    }

    fn exception(&mut self, _exc: GuestException, _cpu: &Cpu) -> ExceptionOutcome {
        match self.handler {
            Some(h) => ExceptionOutcome::DeliverTo(h),
            None => ExceptionOutcome::Terminate,
        }
    }

    fn alloc_pages(&mut self, mem: &mut GuestMem, addr: u64, len: u64) -> bool {
        if self.faults.fail_allocs > 0 {
            // Injected ENOMEM: the engine must degrade, not die.
            self.faults.fail_allocs -= 1;
            self.denied_allocs += 1;
            return false;
        }
        mem.map(addr, len, Prot::rw());
        true
    }

    fn poll_signal(&mut self, now: u64) -> Option<u32> {
        let handler = self.handler?;
        let due = *self.pending_signals.front()? <= now;
        if !due {
            return None;
        }
        if self.sig_depth >= self.sig_max_depth {
            self.sig_deferrals += 1;
            return None;
        }
        self.pending_signals.pop_front();
        self.sig_depth += 1;
        Some(handler)
    }

    fn signal_due(&self, now: u64) -> bool {
        self.handler.is_some()
            && self.sig_depth < self.sig_max_depth
            && self.pending_signals.front().is_some_and(|&a| a <= now)
    }

    fn signals_pending(&self) -> bool {
        self.handler.is_some()
            && self.sig_depth < self.sig_max_depth
            && !self.pending_signals.is_empty()
    }

    fn raise_signal(&mut self) -> bool {
        if self.handler.is_none() {
            return false;
        }
        // Immediately due, regardless of the current cycle.
        self.pending_signals.push_front(0);
        true
    }

    fn log(&mut self, msg: &str) {
        self.log.push(msg.to_owned());
    }
}

/// A launched IA-32 process under the Execution Layer: BTLib has loaded
/// the image, checked BTOS versions, and initialized BTGeneric (paper
/// Figure 3 A).
pub struct Process<O: BtOs> {
    /// The translation engine (BTGeneric).
    pub engine: Engine,
    /// The OS personality.
    pub os: O,
    /// The initial CPU state produced by the loader.
    pub cpu: Cpu,
    /// The negotiated BTOS version.
    pub btos_version: Version,
    /// Whether the engine has dispatched at least once (set by
    /// [`Process::run`] / [`Process::run_slice`]); later slices resume
    /// mid-stream instead of re-launching from the loader CPU state.
    started: bool,
}

/// Launch errors.
#[derive(Debug)]
pub enum LaunchError {
    /// BTOS version negotiation failed.
    Handshake(btgeneric::btos::HandshakeError),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Handshake(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl<O: BtOs> Process<O> {
    /// Loads `image`, negotiates versions, and prepares the engine with
    /// the default configuration.
    ///
    /// # Errors
    ///
    /// [`LaunchError::Handshake`] when the BTLib/BTGeneric versions are
    /// incompatible.
    pub fn launch(image: &Image, os: O) -> Result<Process<O>, LaunchError> {
        Self::launch_with(image, os, Config::default())
    }

    /// Like [`Process::launch`] with an explicit engine configuration.
    ///
    /// # Errors
    ///
    /// Same as [`Process::launch`].
    pub fn launch_with(image: &Image, os: O, cfg: Config) -> Result<Process<O>, LaunchError> {
        let version = negotiate(os.version()).map_err(LaunchError::Handshake)?;
        let mut mem = GuestMem::new();
        let cpu = image.load(&mut mem);
        let engine = Engine::new(mem, cfg);
        Ok(Process {
            engine,
            os,
            cpu,
            btos_version: version,
            started: false,
        })
    }

    /// Runs the process for up to `max_slots` Itanium instruction slots.
    pub fn run(&mut self, max_slots: u64) -> Outcome {
        self.started = true;
        let cpu = self.cpu.clone();
        self.engine.run(&mut self.os, cpu, max_slots)
    }

    /// Runs one cooperative time slice of up to `max_slots` slots.
    ///
    /// The first slice launches the process from the loader CPU state;
    /// every later slice resumes exactly where the previous one stopped
    /// (mid-block, via [`Engine::resume`]), so a scheduler can
    /// interleave thousands of sessions without perturbing any of them.
    /// Returns [`Outcome::InstLimit`] while the slice budget runs out
    /// before the guest finishes.
    pub fn run_slice(&mut self, max_slots: u64) -> Outcome {
        if self.started {
            self.engine.resume(&mut self.os, max_slots)
        } else {
            self.run(max_slots)
        }
    }

    /// One-line translation-cache management summary (evictions,
    /// unlinks, purges, fallback flushes, fast dispatches) for bench
    /// and figures output.
    pub fn cache_report(&self) -> String {
        self.engine.stats.cache_summary()
    }

    /// The engine's lifecycle tracer: the event ring, recorder
    /// counters, and the per-block [`ProfileTable`](
    /// btgeneric::trace::ProfileTable). Inert (empty) unless the
    /// process was launched with [`TraceConfig::enabled`].
    pub fn tracer(&self) -> &Tracer {
        &self.engine.tracer
    }

    /// Human-readable trace report: recorder counters plus the top-10
    /// hot-path table.
    ///
    /// ```rust
    /// use btlib::{Process, SimOs, TraceConfig};
    /// use btgeneric::engine::Config;
    /// use ia32::asm::{Asm, Image};
    /// use ia32::regs::{EAX, EBX};
    ///
    /// let mut a = Asm::new(0x40_0000);
    /// a.mov_ri(EAX, 1); // SYS_exit
    /// a.mov_ri(EBX, 0);
    /// a.int(0x80);
    /// let image = Image::from_asm(&a);
    ///
    /// let cfg = Config {
    ///     trace: TraceConfig::on(),
    ///     ..Config::default()
    /// };
    /// let mut p = Process::launch_with(&image, SimOs::new(), cfg).unwrap();
    /// p.run(1_000_000);
    /// assert!(p.tracer().recorded() > 0);
    /// println!("{}", p.trace_summary());
    /// ```
    pub fn trace_summary(&self) -> String {
        self.engine.trace_summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia32::asm::Asm;
    use ia32::inst::AluOp;
    use ia32::regs::{ESI, ESP};

    #[test]
    fn exit_syscall() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, sys::EXIT as i32);
        a.mov_ri(EBX, 7);
        a.int(0x80);
        let image = Image::from_asm(&a);
        let mut p = Process::launch(&image, SimOs::new()).unwrap();
        assert_eq!(p.run(1_000_000), Outcome::Exited(7));
    }

    #[test]
    fn write_captures_stdout() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 0x0A6968); // "hi\n"
        a.alu_ri(AluOp::Sub, ESP, 4);
        a.mov_store(ia32::inst::Addr::base(ESP), EAX);
        a.mov_ri(EAX, sys::WRITE as i32);
        a.mov_ri(EBX, 1);
        a.mov_rr(ECX, ESP);
        a.mov_ri(EDX, 3);
        a.int(0x80);
        a.mov_ri(EAX, sys::EXIT as i32);
        a.mov_ri(EBX, 0);
        a.int(0x80);
        let image = Image::from_asm(&a);
        let mut p = Process::launch(&image, SimOs::new()).unwrap();
        assert_eq!(p.run(1_000_000), Outcome::Exited(0));
        assert_eq!(p.os.stdout_string(), "hi\n");
    }

    #[test]
    fn brk_extends_memory() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, sys::BRK as i32);
        a.mov_ri(EBX, 0x6000_4000u32 as i32);
        a.int(0x80);
        a.mov_ri(ESI, 0x6000_1000u32 as i32);
        a.mov_mi(ia32::inst::Addr::base(ESI), 0x55);
        a.mov_load(EBX, ia32::inst::Addr::base(ESI));
        a.mov_ri(EAX, sys::EXIT as i32);
        a.int(0x80);
        let image = Image::from_asm(&a);
        let mut p = Process::launch(&image, SimOs::new()).unwrap();
        assert_eq!(p.run(1_000_000), Outcome::Exited(0x55));
    }

    #[test]
    fn unhandled_exception_terminates() {
        let mut a = Asm::new(0x40_0000);
        a.mov_load(EAX, ia32::inst::Addr::abs(0x10)); // unmapped
        a.hlt();
        let image = Image::from_asm(&a);
        let mut p = Process::launch(&image, SimOs::new()).unwrap();
        match p.run(1_000_000) {
            Outcome::Terminated { exc, cpu } => {
                assert_eq!(
                    exc,
                    GuestException::PageFault {
                        addr: 0x10,
                        write: false
                    }
                );
                assert_eq!(cpu.eip, 0x40_0000, "precise faulting EIP");
            }
            other => panic!("expected termination, got {other:?}"),
        }
    }

    #[test]
    fn handler_receives_divide_error() {
        // Build once to learn the handler address, then rebuild with it.
        let build = |haddr: i32| {
            let mut a = Asm::new(0x40_0000);
            let handler = a.label();
            a.mov_ri(EAX, sys::SIGNAL as i32);
            a.mov_ri(EBX, haddr);
            a.int(0x80);
            a.mov_ri(EAX, 10);
            a.mov_ri(EDX, 0);
            a.mov_ri(ECX, 0);
            a.divide(ia32::inst::MulDivOp::Div, ECX);
            a.hlt();
            a.bind(handler);
            a.mov_ri(EAX, sys::EXIT as i32);
            a.mov_ri(EBX, 99);
            a.int(0x80);
            let addr = a.label_addr(handler);
            (a, addr)
        };
        let (_, haddr) = build(0);
        let (a, haddr2) = build(haddr as i32);
        assert_eq!(haddr, haddr2, "layout stable");
        let image = Image::from_asm(&a);
        let mut p = Process::launch(&image, SimOs::new()).unwrap();
        assert_eq!(p.run(1_000_000), Outcome::Exited(99));
    }

    #[test]
    fn version_mismatch_fails_launch() {
        struct OldLib;
        impl BtOs for OldLib {
            fn version(&self) -> Version {
                Version {
                    major: BTOS_MAJOR + 1,
                    minor: 0,
                }
            }
            fn syscall(&mut self, _: &mut Cpu, _: &mut GuestMem) -> SyscallOutcome {
                SyscallOutcome::Exit(0)
            }
            fn exception(&mut self, _: GuestException, _: &Cpu) -> ExceptionOutcome {
                ExceptionOutcome::Terminate
            }
        }
        let mut a = Asm::new(0x40_0000);
        a.hlt();
        let image = Image::from_asm(&a);
        assert!(Process::launch(&image, OldLib).is_err());
    }

    /// Two-pass build of a counting loop with an async handler: the
    /// handler bumps a side cell and `sigreturn`s; the loop's checksum
    /// must be identical with and without signals (transparency).
    fn signal_loop_image(spin: i32) -> Image {
        const COUNT: u32 = 0x50_0800;
        let build = |haddr: i32| {
            let mut a = Asm::new(0x40_0000);
            let handler = a.label();
            a.mov_ri(EAX, sys::SIGNAL as i32);
            a.mov_ri(EBX, haddr);
            a.int(0x80);
            a.mov_ri(ECX, 20_000);
            a.mov_ri(ESI, 0);
            let top = a.label();
            a.bind(top);
            a.alu_rr(AluOp::Add, ESI, ECX);
            a.alu_rr(AluOp::Xor, ESI, ECX);
            a.dec(ECX);
            a.jcc(ia32::Cond::Ne, top);
            a.mov_store(ia32::inst::Addr::abs(0x50_0000), ESI);
            a.hlt();
            a.bind(handler);
            // Nesting window: spin before touching the count cell.
            if spin > 0 {
                a.mov_ri(EAX, spin);
                let hs = a.label();
                a.bind(hs);
                a.dec(EAX);
                a.jcc(ia32::Cond::Ne, hs);
            }
            a.mov_load(EAX, ia32::inst::Addr::abs(COUNT));
            a.inc(EAX);
            a.mov_store(ia32::inst::Addr::abs(COUNT), EAX);
            a.mov_ri(EAX, sys::SIGRETURN as i32);
            a.int(0x80);
            (a.label_addr(handler), a)
        };
        let (h, _) = build(0);
        let (h2, a) = build(h as i32);
        assert_eq!(h, h2, "layout stable");
        Image::from_asm(&a).with_bss(0x50_0000, 0x1000)
    }

    fn run_signal_loop(image: &Image, plan: Option<SignalPlan>) -> (u64, u64, Process<SimOs>) {
        let mut os = SimOs::new();
        if let Some(plan) = plan {
            os = os.with_signals(plan);
        }
        let mut p = Process::launch(image, os).unwrap();
        match p.run(100_000_000) {
            Outcome::Halted(_) => {}
            other => panic!("signal loop did not halt: {other:?}"),
        }
        let result = p.engine.mem.read(0x50_0000, 4).unwrap();
        let count = p.engine.mem.read(0x50_0800, 4).unwrap();
        (result, count, p)
    }

    #[test]
    fn async_signals_deliver_and_reconcile() {
        let image = signal_loop_image(0);
        let (clean, zero, _) = run_signal_loop(&image, None);
        assert_eq!(zero, 0, "no signals, no handler runs");
        let (result, count, p) = run_signal_loop(&image, Some(SignalPlan::seeded(7, 8, 60_000)));
        assert!(
            p.engine.stats.signals_delivered > 0,
            "the plan never interrupted the loop"
        );
        assert_eq!(
            p.os.sigreturns, p.engine.stats.signals_delivered,
            "every delivered signal must sigreturn (no leaked frames)"
        );
        assert_eq!(count, p.os.sigreturns, "handler ran once per delivery");
        assert_eq!(result, clean, "delivery must be transparent to the loop");
        assert_eq!(p.os.sig_depth, 0, "all frames unwound at halt");
    }

    #[test]
    fn nesting_is_depth_bounded_and_deferrals_drain() {
        let image = signal_loop_image(400);
        let (clean, _, _) = run_signal_loop(&image, None);
        // A burst of near-simultaneous arrivals against a slow handler:
        // the depth cap (2) must defer the excess, and every deferred
        // signal still delivers once the stack unwinds.
        let plan = SignalPlan::seeded(3, 12, 2_000);
        let (result, count, p) = run_signal_loop(&image, Some(plan));
        assert!(p.os.sig_deferrals > 0, "the burst never hit the depth cap");
        assert_eq!(
            p.engine.stats.signals_delivered, 12,
            "all 12 eventually deliver"
        );
        assert_eq!(p.os.sigreturns, 12);
        assert_eq!(count, 12);
        assert_eq!(result, clean, "nested delivery must stay transparent");
    }

    #[test]
    fn seeded_signal_plans_replay() {
        let a = SignalPlan::seeded(9, 16, 100_000);
        let b = SignalPlan::seeded(9, 16, 100_000);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.arrivals.len(), 16);
        assert!(a.arrivals.windows(2).all(|w| w[0] <= w[1]), "ascending");
        assert!(a.arrivals.iter().all(|&c| c < 100_000), "inside the window");
        assert_ne!(
            a.arrivals,
            SignalPlan::seeded(10, 16, 100_000).arrivals,
            "seed changes the schedule"
        );
    }
}
