//! Cooperative multi-tenant serving: a round-robin quantum scheduler.
//!
//! One host process serves N guest sessions by time-slicing them over
//! the engine's resume mechanism ([`crate::Process::run_slice`]): each
//! session runs for up to a fixed quantum of Itanium instruction slots,
//! yields at the engine's next safe point, and rejoins the back of the
//! round-robin queue. Sessions attached to the same
//! [`btgeneric::serving::SharedCache`] namespace reuse each other's
//! translations, so the scheduler is the driver of the multi-tenant
//! dedup story: admission order, slice order, and completion order are
//! all strictly deterministic, which keeps whole-fleet runs replayable.
//!
//! Admission control bounds live memory: at most `max_live` sessions
//! have launched engines at once; the rest wait in an admission queue
//! and are seated in arrival order as seats free up. On completion a
//! session's profile is synced back to its shared namespace
//! ([`btgeneric::engine::Engine::shared_sync`]) so later tenants start
//! from the hottest profile any peer earned.

use crate::Process;
use btgeneric::btos::BtOs;
use btgeneric::engine::Outcome;
use std::collections::VecDeque;

/// One admitted session: a tagged process with a remaining slot budget.
struct Session<O: BtOs> {
    tag: u64,
    process: Process<O>,
    budget: u64,
}

/// A deterministic cooperative round-robin scheduler over
/// [`Process`] sessions.
///
/// ```rust
/// use btlib::{Process, SimOs};
/// use btlib::serve::Scheduler;
/// use ia32::asm::{Asm, Image};
/// use ia32::regs::{EAX, EBX};
///
/// let mut a = Asm::new(0x40_0000);
/// a.mov_ri(EAX, 1); // SYS_exit
/// a.mov_ri(EBX, 5);
/// a.int(0x80);
/// let image = Image::from_asm(&a);
///
/// let mut sched = Scheduler::new(10_000, 64);
/// for tag in 0..4 {
///     let p = Process::launch(&image, SimOs::new()).unwrap();
///     sched.admit(tag, p, 1_000_000);
/// }
/// sched.drain(1_000);
/// let done = sched.take_completed();
/// assert_eq!(done.len(), 4);
/// assert!(done
///     .iter()
///     .all(|(_, _, out)| *out == btgeneric::engine::Outcome::Exited(5)));
/// ```
pub struct Scheduler<O: BtOs> {
    quantum: u64,
    max_live: usize,
    live: VecDeque<Session<O>>,
    waiting: VecDeque<Session<O>>,
    completed: Vec<(u64, Process<O>, Outcome)>,
    rounds: u64,
    slices: u64,
}

impl<O: BtOs> Scheduler<O> {
    /// A scheduler granting `quantum` slots per slice with at most
    /// `max_live` simultaneously seated sessions. Both are clamped to
    /// at least 1.
    pub fn new(quantum: u64, max_live: usize) -> Scheduler<O> {
        Scheduler {
            quantum: quantum.max(1),
            max_live: max_live.max(1),
            live: VecDeque::new(),
            waiting: VecDeque::new(),
            completed: Vec::new(),
            rounds: 0,
            slices: 0,
        }
    }

    /// Admits a session with a total slot budget. Sessions are seated
    /// in admission order; `tag` is returned with the completed
    /// process so callers can map results back. A session whose budget
    /// runs dry completes with [`Outcome::InstLimit`].
    pub fn admit(&mut self, tag: u64, process: Process<O>, budget: u64) {
        self.waiting.push_back(Session {
            tag,
            process,
            budget,
        });
    }

    /// Seats waiting sessions while live seats are free.
    fn fill(&mut self) {
        while self.live.len() < self.max_live {
            match self.waiting.pop_front() {
                Some(s) => self.live.push_back(s),
                None => break,
            }
        }
    }

    /// Runs one round-robin sweep: every currently seated session gets
    /// one quantum slice (freshly seated sessions wait for the next
    /// sweep). Returns `true` while sessions remain live or waiting.
    pub fn tick(&mut self) -> bool {
        self.fill();
        if self.live.is_empty() {
            return false;
        }
        self.rounds += 1;
        for _ in 0..self.live.len() {
            let mut s = self.live.pop_front().expect("sweep bound");
            let slice = self.quantum.min(s.budget);
            let out = s.process.run_slice(slice);
            s.budget = s.budget.saturating_sub(slice);
            self.slices += 1;
            match out {
                Outcome::InstLimit if s.budget > 0 => self.live.push_back(s),
                out => {
                    // Harvest: push the session's earned profile back
                    // to its shared namespace before retiring it.
                    s.process.engine.shared_sync();
                    self.completed.push((s.tag, s.process, out));
                }
            }
        }
        !self.live.is_empty() || !self.waiting.is_empty()
    }

    /// Ticks until every session completes or `max_rounds` sweeps have
    /// run; returns the number of sweeps executed.
    pub fn drain(&mut self, max_rounds: u64) -> u64 {
        let start = self.rounds;
        while self.rounds - start < max_rounds && self.tick() {}
        self.rounds - start
    }

    /// Sessions currently seated with live engines.
    pub fn live(&self) -> usize {
        self.live.len()
    }

    /// Sessions admitted but not yet seated.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Round-robin sweeps run so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Individual quantum slices granted so far.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Takes the completed sessions (tag, process, final outcome) in
    /// completion order, leaving the scheduler's completion list empty.
    pub fn take_completed(&mut self) -> Vec<(u64, Process<O>, Outcome)> {
        std::mem::take(&mut self.completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimOs;
    use ia32::asm::{Asm, Image};
    use ia32::inst::AluOp;
    use ia32::regs::{EAX, EBX, ECX, ESI};

    /// A checksum loop that exits with the low byte of its result.
    fn loop_image(iters: i32) -> Image {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(ECX, iters);
        a.mov_ri(ESI, 0);
        let top = a.label();
        a.bind(top);
        a.alu_rr(AluOp::Add, ESI, ECX);
        a.alu_rr(AluOp::Xor, ESI, ECX);
        a.dec(ECX);
        a.jcc(ia32::Cond::Ne, top);
        a.mov_store(ia32::inst::Addr::abs(0x50_0000), ESI);
        a.mov_ri(EAX, crate::sys::EXIT as i32);
        a.mov_rr(EBX, ESI);
        a.int(0x80);
        Image::from_asm(&a).with_bss(0x50_0000, 0x1000)
    }

    fn solo_result(image: &Image) -> (Outcome, u64) {
        let mut p = Process::launch(image, SimOs::new()).unwrap();
        let out = p.run(u64::MAX);
        let sum = p.engine.mem.read(0x50_0000, 4).unwrap();
        (out, sum)
    }

    #[test]
    fn time_slicing_is_transparent() {
        let image = loop_image(9_000);
        let (solo_out, solo_sum) = solo_result(&image);
        let mut sched = Scheduler::new(5_000, 8);
        for tag in 0..8 {
            let p = Process::launch(&image, SimOs::new()).unwrap();
            sched.admit(tag, p, u64::MAX);
        }
        sched.drain(10_000);
        let done = sched.take_completed();
        assert_eq!(done.len(), 8);
        for (_, p, out) in &done {
            assert_eq!(*out, solo_out, "sliced outcome matches solo run");
            assert_eq!(
                p.engine.mem.read(0x50_0000, 4).unwrap(),
                solo_sum,
                "sliced checksum matches solo run"
            );
        }
        assert!(
            sched.slices() > done.len() as u64,
            "quantum actually split sessions across sweeps"
        );
    }

    #[test]
    fn admission_control_bounds_live_sessions() {
        let image = loop_image(4_000);
        let mut sched = Scheduler::new(2_000, 3);
        for tag in 0..10 {
            let p = Process::launch(&image, SimOs::new()).unwrap();
            sched.admit(tag, p, u64::MAX);
        }
        assert_eq!(sched.waiting(), 10);
        assert!(sched.tick());
        assert!(sched.live() <= 3, "seat cap respected");
        sched.drain(10_000);
        assert_eq!(sched.take_completed().len(), 10);
        assert_eq!(sched.live() + sched.waiting(), 0);
    }

    #[test]
    fn budget_exhaustion_completes_with_inst_limit() {
        let image = loop_image(1_000_000);
        let mut sched = Scheduler::new(1_000, 2);
        let p = Process::launch(&image, SimOs::new()).unwrap();
        sched.admit(7, p, 5_000);
        sched.drain(10_000);
        let done = sched.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 7);
        assert_eq!(done[0].2, Outcome::InstLimit);
    }

    #[test]
    fn completion_order_is_deterministic() {
        let run = || {
            let mut sched = Scheduler::new(3_000, 4);
            for tag in 0..6u64 {
                // Staggered lengths so completion order differs from
                // admission order.
                let p =
                    Process::launch(&loop_image(2_000 + 3_000 * (tag as i32 % 3)), SimOs::new())
                        .unwrap();
                sched.admit(tag, p, u64::MAX);
            }
            sched.drain(10_000);
            sched
                .take_completed()
                .into_iter()
                .map(|(tag, _, out)| (tag, out))
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same fleet, same completion order");
        assert_eq!(a.len(), 6);
    }
}
