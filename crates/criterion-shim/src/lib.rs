//! A tiny, dependency-free subset of the `criterion` API.
//!
//! The real criterion crate lives on crates.io, which this workspace
//! cannot reach in offline environments. The bench sources only use a
//! narrow slice of the API — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — so this shim
//! implements exactly that slice with plain wall-clock timing and
//! median-of-samples reporting. Swap the `criterion` workspace
//! dependency back to the crates.io package for publication-grade
//! statistics; no bench source changes are required.

use std::time::{Duration, Instant};

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line median/min/max summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        if let (Some(&min), Some(&max)) = (samples.first(), samples.last()) {
            let median = samples[samples.len() / 2];
            println!(
                "{}/{}: median {} (min {}, max {}, {} samples)",
                self.name,
                id,
                fmt_time(median),
                fmt_time(min),
                fmt_time(max),
                samples.len()
            );
        }
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Per-sample timing context handed to the closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` once and records its wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Opaque value sink preventing the optimizer from deleting the work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running
/// each benchmark function with a default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: defines `main` running the
/// given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
