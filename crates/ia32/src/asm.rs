//! IA-32 assembler with labels, plus the program-image builder the
//! workloads and tests use to produce loadable IA-32 binaries.

use crate::encode::encode;
use crate::flags::{Cond, Size};
use crate::inst::*;
use crate::regs::Gpr;

/// A forward-referenceable code label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

#[derive(Clone, Copy, Debug)]
enum Item {
    Inst(Inst),
    /// Branch whose target is a label (patched at assembly).
    Branch {
        inst: Inst,
        label: Label,
    },
    Bind(Label),
}

/// A single-pass assembler with label patching.
///
/// Branch instructions taking a [`Label`] are encoded in their long
/// (rel32) forms so instruction sizes are position-independent, allowing
/// one layout pass followed by target patching.
#[derive(Debug)]
pub struct Asm {
    base: u32,
    items: Vec<Item>,
    next_label: usize,
}

impl Asm {
    /// New assembler producing code that will be loaded at `base`.
    pub fn new(base: u32) -> Asm {
        Asm {
            base,
            items: Vec::new(),
            next_label: 0,
        }
    }

    /// The load address the code is assembled for.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Allocates a fresh label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        self.items.push(Item::Bind(label));
    }

    /// Appends a raw instruction.
    pub fn inst(&mut self, inst: Inst) {
        self.items.push(Item::Inst(inst));
    }

    // --- ergonomic helpers for the common forms -------------------------

    /// `mov r32, imm32`.
    pub fn mov_ri(&mut self, r: Gpr, imm: i32) {
        self.inst(Inst::Mov {
            size: Size::D,
            dst: Rm::Reg(r),
            src: RmI::Imm(imm),
        });
    }

    /// `mov r32, r32`.
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) {
        self.inst(Inst::Mov {
            size: Size::D,
            dst: Rm::Reg(dst),
            src: RmI::Reg(src),
        });
    }

    /// `mov r32, [mem]`.
    pub fn mov_load(&mut self, dst: Gpr, src: Addr) {
        self.inst(Inst::MovLoad {
            size: Size::D,
            dst,
            src,
        });
    }

    /// `mov [mem], r32`.
    pub fn mov_store(&mut self, dst: Addr, src: Gpr) {
        self.inst(Inst::Mov {
            size: Size::D,
            dst: Rm::Mem(dst),
            src: RmI::Reg(src),
        });
    }

    /// `mov dword [mem], imm32`.
    pub fn mov_mi(&mut self, dst: Addr, imm: i32) {
        self.inst(Inst::Mov {
            size: Size::D,
            dst: Rm::Mem(dst),
            src: RmI::Imm(imm),
        });
    }

    /// `op r32, r32`.
    pub fn alu_rr(&mut self, op: AluOp, dst: Gpr, src: Gpr) {
        self.inst(Inst::Alu {
            op,
            size: Size::D,
            dst: Rm::Reg(dst),
            src: RmI::Reg(src),
        });
    }

    /// `op r32, imm`.
    pub fn alu_ri(&mut self, op: AluOp, dst: Gpr, imm: i32) {
        self.inst(Inst::Alu {
            op,
            size: Size::D,
            dst: Rm::Reg(dst),
            src: RmI::Imm(imm),
        });
    }

    /// `op r32, [mem]`.
    pub fn alu_rm(&mut self, op: AluOp, dst: Gpr, src: Addr) {
        self.inst(Inst::AluRM {
            op,
            size: Size::D,
            dst,
            src,
        });
    }

    /// `lea r32, [mem]`.
    pub fn lea(&mut self, dst: Gpr, addr: Addr) {
        self.inst(Inst::Lea { dst, addr });
    }

    /// `inc r32`.
    pub fn inc(&mut self, r: Gpr) {
        self.inst(Inst::IncDec {
            inc: true,
            size: Size::D,
            dst: Rm::Reg(r),
        });
    }

    /// `dec r32`.
    pub fn dec(&mut self, r: Gpr) {
        self.inst(Inst::IncDec {
            inc: false,
            size: Size::D,
            dst: Rm::Reg(r),
        });
    }

    /// `shl/shr/sar r32, imm`.
    pub fn shift_i(&mut self, op: ShiftOp, r: Gpr, count: u8) {
        self.inst(Inst::Shift {
            op,
            size: Size::D,
            dst: Rm::Reg(r),
            count: ShiftCount::Imm(count),
        });
    }

    /// `imul r32, r/m32`.
    pub fn imul_rr(&mut self, dst: Gpr, src: Gpr) {
        self.inst(Inst::ImulRm {
            dst,
            src: Rm::Reg(src),
        });
    }

    /// One-operand `mul`/`imul`/`div`/`idiv` by a register.
    pub fn divide(&mut self, op: MulDivOp, src: Gpr) {
        self.inst(Inst::MulDiv {
            op,
            size: Size::D,
            src: Rm::Reg(src),
        });
    }

    /// `cdq`.
    pub fn cdq(&mut self) {
        self.inst(Inst::Cdq);
    }

    /// `push r32`.
    pub fn push_r(&mut self, r: Gpr) {
        self.inst(Inst::Push { src: RmI::Reg(r) });
    }

    /// `pop r32`.
    pub fn pop_r(&mut self, r: Gpr) {
        self.inst(Inst::Pop { dst: Rm::Reg(r) });
    }

    /// `cmp r32, imm` (alias for the ALU form).
    pub fn cmp_ri(&mut self, r: Gpr, imm: i32) {
        self.alu_ri(AluOp::Cmp, r, imm);
    }

    /// `cmp r32, r32`.
    pub fn cmp_rr(&mut self, a: Gpr, b: Gpr) {
        self.alu_rr(AluOp::Cmp, a, b);
    }

    /// `test r32, r32`.
    pub fn test_rr(&mut self, a: Gpr, b: Gpr) {
        self.inst(Inst::Test {
            size: Size::D,
            a: Rm::Reg(a),
            b: RmI::Reg(b),
        });
    }

    /// `jmp label`.
    pub fn jmp(&mut self, label: Label) {
        self.items.push(Item::Branch {
            inst: Inst::Jmp { target: 0 },
            label,
        });
    }

    /// `jcc label`.
    pub fn jcc(&mut self, cond: Cond, label: Label) {
        self.items.push(Item::Branch {
            inst: Inst::Jcc { cond, target: 0 },
            label,
        });
    }

    /// `call label`.
    pub fn call(&mut self, label: Label) {
        self.items.push(Item::Branch {
            inst: Inst::Call { target: 0 },
            label,
        });
    }

    /// `jmp r32` (indirect).
    pub fn jmp_r(&mut self, r: Gpr) {
        self.inst(Inst::JmpInd { src: Rm::Reg(r) });
    }

    /// `call r32` (indirect).
    pub fn call_r(&mut self, r: Gpr) {
        self.inst(Inst::CallInd { src: Rm::Reg(r) });
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.inst(Inst::Ret { pop: 0 });
    }

    /// `hlt`.
    pub fn hlt(&mut self) {
        self.inst(Inst::Hlt);
    }

    /// `int vector`.
    pub fn int(&mut self, vector: u8) {
        self.inst(Inst::Int { vector });
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.inst(Inst::Nop);
    }

    /// The current offset a label bound *now* would get (for
    /// data-in-code layouts). Computed by a dry layout pass.
    pub fn here(&self) -> u32 {
        self.base + self.layout().1
    }

    fn layout(&self) -> (Vec<u32>, u32) {
        // First pass: compute instruction offsets and label addresses.
        // Branch instructions always use their long encodings, whose
        // length does not depend on the displacement value.
        let mut label_addr = vec![0u32; self.next_label];
        let mut pc = self.base;
        let mut scratch = Vec::with_capacity(16);
        for item in &self.items {
            match item {
                Item::Bind(l) => label_addr[l.0] = pc,
                Item::Inst(i) | Item::Branch { inst: i, .. } => {
                    scratch.clear();
                    let len = encode(i, pc, &mut scratch)
                        .unwrap_or_else(|e| panic!("unencodable instruction {i}: {e}"));
                    pc += len as u32;
                }
            }
        }
        (label_addr, pc - self.base)
    }

    /// Assembles to bytes.
    ///
    /// # Panics
    ///
    /// Panics if an instruction has no valid encoding (programmer error
    /// in the operand combination) or a branch references an unbound
    /// label.
    pub fn assemble(&self) -> Vec<u8> {
        let (label_addr, total) = self.layout();
        let mut out = Vec::with_capacity(total as usize);
        let mut pc = self.base;
        for item in &self.items {
            match item {
                Item::Bind(_) => {}
                Item::Inst(i) => {
                    pc += encode(i, pc, &mut out).expect("validated in layout") as u32;
                }
                Item::Branch { inst, label } => {
                    let target = label_addr[label.0];
                    let patched = match inst {
                        Inst::Jmp { .. } => Inst::Jmp { target },
                        Inst::Jcc { cond, .. } => Inst::Jcc {
                            cond: *cond,
                            target,
                        },
                        Inst::Call { .. } => Inst::Call { target },
                        other => *other,
                    };
                    pc += encode(&patched, pc, &mut out).expect("validated in layout") as u32;
                }
            }
        }
        out
    }

    /// Resolved address of a bound label (available after layout).
    pub fn label_addr(&self, label: Label) -> u32 {
        self.layout().0[label.0]
    }
}

/// A loadable IA-32 program image: code, data segments, entry point, and
/// stack placement. What the [`btlib`-style] loader maps into guest
/// memory.
///
/// [`btlib`-style]: crate
#[derive(Clone, Debug)]
pub struct Image {
    /// Load address of the code.
    pub code_base: u32,
    /// Code bytes.
    pub code: Vec<u8>,
    /// Entry point.
    pub entry: u32,
    /// Initialized data segments: `(address, bytes)`.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Zero-initialized regions: `(address, length)`.
    pub bss: Vec<(u32, u32)>,
    /// Initial stack pointer (top of stack region).
    pub stack_top: u32,
    /// Stack region size.
    pub stack_size: u32,
    /// Whether code pages should be mapped writable (enables SMC).
    pub writable_code: bool,
}

impl Image {
    /// Builds an image from assembled code with conventional placements:
    /// 64 KiB stack below `0x7FFF_0000`.
    pub fn from_asm(asm: &Asm) -> Image {
        Image {
            code_base: asm.base(),
            code: asm.assemble(),
            entry: asm.base(),
            data: Vec::new(),
            bss: Vec::new(),
            stack_top: 0x7FFF_0000,
            stack_size: 0x1_0000,
            writable_code: false,
        }
    }

    /// Adds an initialized data segment.
    pub fn with_data(mut self, addr: u32, bytes: Vec<u8>) -> Image {
        self.data.push((addr, bytes));
        self
    }

    /// Adds a zero-initialized region.
    pub fn with_bss(mut self, addr: u32, len: u32) -> Image {
        self.bss.push((addr, len));
        self
    }

    /// Marks code pages writable (self-modifying-code capable).
    pub fn with_writable_code(mut self) -> Image {
        self.writable_code = true;
        self
    }

    /// Maps the image into `mem` and returns the initial CPU state.
    pub fn load(&self, mem: &mut crate::mem::GuestMem) -> crate::cpu::Cpu {
        use crate::mem::Prot;
        let code_prot = if self.writable_code {
            Prot::rwx()
        } else {
            Prot::rx()
        };
        mem.map(
            self.code_base as u64,
            self.code.len().max(1) as u64,
            code_prot,
        );
        mem.write_forced(self.code_base as u64, &self.code);
        for (addr, bytes) in &self.data {
            mem.map(*addr as u64, bytes.len().max(1) as u64, Prot::rw());
            mem.write_forced(*addr as u64, bytes);
        }
        for (addr, len) in &self.bss {
            mem.map(*addr as u64, *len as u64, Prot::rw());
        }
        mem.map(
            (self.stack_top - self.stack_size) as u64,
            self.stack_size as u64,
            Prot::rw(),
        );
        let mut cpu = crate::cpu::Cpu::new();
        cpu.eip = self.entry;
        cpu.set_esp(self.stack_top - 16);
        cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::regs::{EAX, ECX};

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new(0x1000);
        let fwd = a.label();
        let back = a.label();
        a.bind(back);
        a.mov_ri(EAX, 1);
        a.jmp(fwd);
        a.mov_ri(EAX, 2); // skipped
        a.bind(fwd);
        a.jcc(Cond::E, back);
        let code = a.assemble();
        // Decode the jmp at offset 5 and verify it targets the jcc.
        let (inst, _) = decode(&code[5..], 0x1005).unwrap();
        assert_eq!(inst, Inst::Jmp { target: 0x100F });
        let (inst, _) = decode(&code[15..], 0x100F).unwrap();
        assert_eq!(
            inst,
            Inst::Jcc {
                cond: Cond::E,
                target: 0x1000
            }
        );
    }

    #[test]
    fn label_addr_query() {
        let mut a = Asm::new(0x2000);
        a.nop();
        let l = a.label();
        a.bind(l);
        a.nop();
        assert_eq!(a.label_addr(l), 0x2001);
    }

    #[test]
    fn image_loads() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(ECX, 7);
        a.hlt();
        let img = Image::from_asm(&a).with_data(0x50_0000, vec![1, 2, 3]);
        let mut mem = crate::mem::GuestMem::new();
        let cpu = img.load(&mut mem);
        assert_eq!(cpu.eip, 0x40_0000);
        assert_eq!(mem.read(0x50_0000, 1).unwrap(), 1);
        // Code pages are non-writable by default.
        assert!(mem.write(0x40_0000, 1, 0).is_err());
    }
}
