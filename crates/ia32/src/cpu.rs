//! The IA-32 architectural register state.
//!
//! [`Cpu`] is the full application-visible state: it is what the
//! interpreter mutates, what the translator maps onto Itanium registers,
//! and what precise-exception reconstruction must be able to regenerate
//! at any faulting instruction.

use crate::flags;
use crate::flags::Size;
use crate::fpu::Fpu;
use crate::regs::Gpr;

/// The IA-32 architectural state (registers only; memory lives in
/// [`crate::mem::GuestMem`]).
#[derive(Clone, PartialEq, Debug)]
pub struct Cpu {
    /// General-purpose registers, indexed by [`Gpr::num`].
    pub gpr: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Flags register.
    pub eflags: u32,
    /// x87 FPU / MMX state.
    pub fpu: Fpu,
    /// XMM registers.
    pub xmm: [u128; 8],
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Power-on-like state (EFLAGS reserved bit set, everything else 0).
    pub fn new() -> Cpu {
        Cpu {
            gpr: [0; 8],
            eip: 0,
            eflags: flags::RESERVED_ONES,
            fpu: Fpu::new(),
            xmm: [0; 8],
        }
    }

    /// Reads a register at the given operand size. For byte size,
    /// register numbers 4-7 read the high byte of registers 0-3
    /// (`AH`/`CH`/`DH`/`BH`).
    pub fn read(&self, r: Gpr, size: Size) -> u32 {
        let n = r.num() as usize;
        match size {
            Size::D => self.gpr[n],
            Size::W => self.gpr[n] & 0xFFFF,
            Size::B => {
                if n < 4 {
                    self.gpr[n] & 0xFF
                } else {
                    (self.gpr[n - 4] >> 8) & 0xFF
                }
            }
        }
    }

    /// Writes a register at the given operand size, preserving the
    /// untouched high bits (IA-32 semantics for 8/16-bit writes).
    pub fn write(&mut self, r: Gpr, size: Size, v: u32) {
        let n = r.num() as usize;
        match size {
            Size::D => self.gpr[n] = v,
            Size::W => self.gpr[n] = (self.gpr[n] & 0xFFFF_0000) | (v & 0xFFFF),
            Size::B => {
                if n < 4 {
                    self.gpr[n] = (self.gpr[n] & 0xFFFF_FF00) | (v & 0xFF);
                } else {
                    self.gpr[n - 4] = (self.gpr[n - 4] & 0xFFFF_00FF) | ((v & 0xFF) << 8);
                }
            }
        }
    }

    /// The stack pointer.
    pub fn esp(&self) -> u32 {
        self.gpr[4]
    }

    /// Sets the stack pointer.
    pub fn set_esp(&mut self, v: u32) {
        self.gpr[4] = v;
    }

    /// Evaluates `cond` against the current flags.
    pub fn cond(&self, cond: flags::Cond) -> bool {
        cond.eval(self.eflags)
    }

    /// Updates the given status-flag bits from `new_bits`.
    pub fn set_flags(&mut self, new_bits: u32, mask: u32) {
        self.eflags = flags::merge(self.eflags, new_bits, mask);
    }

    /// Reads an XMM register lane as `f32`.
    pub fn xmm_lane(&self, x: crate::regs::Xmm, lane: usize) -> f32 {
        f32::from_bits((self.xmm[x.num() as usize] >> (lane * 32)) as u32)
    }

    /// Writes an XMM register lane from `f32`.
    pub fn set_xmm_lane(&mut self, x: crate::regs::Xmm, lane: usize, v: f32) {
        let shift = lane * 32;
        let mask = !(0xFFFF_FFFFu128 << shift);
        let n = x.num() as usize;
        self.xmm[n] = (self.xmm[n] & mask) | ((v.to_bits() as u128) << shift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::*;

    #[test]
    fn subregister_writes_preserve_high_bits() {
        let mut c = Cpu::new();
        c.gpr[0] = 0xAABBCCDD;
        c.write(EAX, Size::B, 0x11); // AL
        assert_eq!(c.gpr[0], 0xAABBCC11);
        c.write(ESP, Size::B, 0x22); // number 4 at byte size = AH
        assert_eq!(c.gpr[0], 0xAABB2211);
        c.write(EAX, Size::W, 0x3344);
        assert_eq!(c.gpr[0], 0xAABB3344);
        c.write(EAX, Size::D, 0x55667788);
        assert_eq!(c.gpr[0], 0x55667788);
    }

    #[test]
    fn subregister_reads() {
        let mut c = Cpu::new();
        c.gpr[3] = 0x1234_5678; // EBX
        assert_eq!(c.read(EBX, Size::B), 0x78); // BL
        assert_eq!(c.read(EDI, Size::B), 0x56); // number 7 = BH
        assert_eq!(c.read(EBX, Size::W), 0x5678);
    }

    #[test]
    fn xmm_lanes() {
        let mut c = Cpu::new();
        let x = Xmm::new(2);
        c.set_xmm_lane(x, 0, 1.5);
        c.set_xmm_lane(x, 3, -2.0);
        assert_eq!(c.xmm_lane(x, 0), 1.5);
        assert_eq!(c.xmm_lane(x, 3), -2.0);
        assert_eq!(c.xmm_lane(x, 1), 0.0);
    }

    #[test]
    fn flag_helpers() {
        let mut c = Cpu::new();
        c.set_flags(flags::ZF, flags::STATUS);
        assert!(c.cond(flags::Cond::E));
        assert!(!c.cond(flags::Cond::Ne));
        assert_ne!(c.eflags & flags::RESERVED_ONES, 0);
    }
}
